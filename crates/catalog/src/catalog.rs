//! The catalog proper: table registry with schemas, statistics, placements,
//! and index annotations.

use std::collections::HashMap;
use std::sync::Arc;

use hsd_storage::StoreKind;
use hsd_types::{Error, Result, TableId, TableSchema};

use crate::layout::{StorageLayout, TablePlacement};
use crate::stats::TableStats;

/// Catalog entry for one table.
#[derive(Debug, Clone)]
pub struct TableEntry {
    /// Table id.
    pub id: TableId,
    /// Schema (shared with the physical tables).
    pub schema: Arc<TableSchema>,
    /// Latest collected basic statistics.
    pub stats: TableStats,
    /// Current placement annotation (evaluated by the query rewriter).
    pub placement: TablePlacement,
    /// Row-store columns carrying a secondary index (advisory for the cost
    /// model's `f_selectivity`).
    pub indexed_columns: Vec<usize>,
}

/// The system catalog.
///
/// Deliberately a plain single-writer structure: the engine wraps it behind
/// its own synchronization. Keeping it lock-free here makes the advisor's
/// read paths trivial.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    entries: HashMap<TableId, TableEntry>,
    by_name: HashMap<String, TableId>,
    next_id: u32,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a table, returning its id. Fails on duplicate names.
    pub fn register(
        &mut self,
        schema: Arc<TableSchema>,
        placement: TablePlacement,
    ) -> Result<TableId> {
        if self.by_name.contains_key(&schema.name) {
            return Err(Error::InvalidOperation(format!(
                "table {} already registered",
                schema.name
            )));
        }
        let id = TableId(self.next_id);
        self.next_id += 1;
        self.by_name.insert(schema.name.clone(), id);
        let stats = TableStats::empty(schema.arity());
        self.entries.insert(
            id,
            TableEntry {
                id,
                schema,
                stats,
                placement,
                indexed_columns: Vec::new(),
            },
        );
        Ok(id)
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Resolve a table name.
    pub fn id_of(&self, name: &str) -> Result<TableId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| Error::UnknownTable(name.to_string()))
    }

    /// Entry by id.
    pub fn entry(&self, id: TableId) -> Result<&TableEntry> {
        self.entries
            .get(&id)
            .ok_or_else(|| Error::UnknownTable(id.to_string()))
    }

    /// Mutable entry by id.
    pub fn entry_mut(&mut self, id: TableId) -> Result<&mut TableEntry> {
        self.entries
            .get_mut(&id)
            .ok_or_else(|| Error::UnknownTable(id.to_string()))
    }

    /// Entry by name.
    pub fn entry_by_name(&self, name: &str) -> Result<&TableEntry> {
        self.entry(self.id_of(name)?)
    }

    /// Iterate entries in name order (deterministic for reports).
    pub fn entries(&self) -> Vec<&TableEntry> {
        let mut out: Vec<&TableEntry> = self.entries.values().collect();
        out.sort_by(|a, b| a.schema.name.cmp(&b.schema.name));
        out
    }

    /// Update a table's statistics.
    pub fn set_stats(&mut self, id: TableId, stats: TableStats) -> Result<()> {
        self.entry_mut(id)?.stats = stats;
        Ok(())
    }

    /// Update a table's placement annotation.
    pub fn set_placement(&mut self, id: TableId, placement: TablePlacement) -> Result<()> {
        self.entry_mut(id)?.placement = placement;
        Ok(())
    }

    /// Snapshot the current layout of all tables.
    pub fn current_layout(&self) -> StorageLayout {
        let mut layout = StorageLayout::new();
        for entry in self.entries.values() {
            layout.set(entry.schema.name.clone(), entry.placement.clone());
        }
        layout
    }

    /// Convenience: the store a *single-store* table resides in.
    pub fn single_store_of(&self, name: &str) -> Result<StoreKind> {
        match &self.entry_by_name(name)?.placement {
            TablePlacement::Single(s) => Ok(*s),
            TablePlacement::Partitioned(_) => Err(Error::InvalidOperation(format!(
                "table {name} is partitioned"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsd_types::{ColumnDef, ColumnType};

    fn schema(name: &str) -> Arc<TableSchema> {
        Arc::new(
            TableSchema::new(
                name,
                vec![ColumnDef::new("id", ColumnType::Integer)],
                vec![0],
            )
            .unwrap(),
        )
    }

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new();
        let id = c
            .register(schema("a"), TablePlacement::Single(StoreKind::Row))
            .unwrap();
        assert_eq!(c.id_of("a").unwrap(), id);
        assert_eq!(c.entry(id).unwrap().schema.name, "a");
        assert_eq!(c.len(), 1);
        assert!(c.id_of("b").is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut c = Catalog::new();
        c.register(schema("a"), TablePlacement::Single(StoreKind::Row))
            .unwrap();
        assert!(c
            .register(schema("a"), TablePlacement::Single(StoreKind::Row))
            .is_err());
    }

    #[test]
    fn placement_round_trip() {
        let mut c = Catalog::new();
        let id = c
            .register(schema("a"), TablePlacement::Single(StoreKind::Row))
            .unwrap();
        assert_eq!(c.single_store_of("a").unwrap(), StoreKind::Row);
        c.set_placement(id, TablePlacement::Single(StoreKind::Column))
            .unwrap();
        assert_eq!(c.single_store_of("a").unwrap(), StoreKind::Column);
        let layout = c.current_layout();
        assert_eq!(
            layout.placement("a"),
            TablePlacement::Single(StoreKind::Column)
        );
    }

    #[test]
    fn entries_sorted_by_name() {
        let mut c = Catalog::new();
        c.register(schema("zeta"), TablePlacement::Single(StoreKind::Row))
            .unwrap();
        c.register(schema("alpha"), TablePlacement::Single(StoreKind::Row))
            .unwrap();
        let names: Vec<&str> = c.entries().iter().map(|e| e.schema.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn stats_update() {
        let mut c = Catalog::new();
        let id = c
            .register(schema("a"), TablePlacement::Single(StoreKind::Row))
            .unwrap();
        let mut stats = TableStats::empty(1);
        stats.row_count = 42;
        c.set_stats(id, stats.clone()).unwrap();
        assert_eq!(c.entry(id).unwrap().stats.row_count, 42);
    }
}
