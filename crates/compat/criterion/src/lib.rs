//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset this workspace's benches use — `Criterion`,
//! `benchmark_group` with `measurement_time` / `sample_size`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple but
//! honest timing loop: per-sample wall-clock means with warmup, reporting
//! mean / best / worst over the sample set.
//!
//! Statistical machinery (outlier classification, regression against saved
//! baselines, HTML reports) is intentionally absent; results print to stdout
//! in a stable, grep-friendly `bench: <group>/<id> mean=..` format.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier inside a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Id from a function name and a parameter.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), param))
    }

    /// Id from a parameter alone.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Apply CLI configuration (accepted for API compatibility; the only
    /// recognized filter is a substring argument matching group names).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        eprintln!("benchmark group: {name}");
        BenchmarkGroup {
            name,
            measurement_time: Duration::from_secs(2),
            sample_size: 20,
        }
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup {
    name: String,
    measurement_time: Duration,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Target time spent measuring each benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            sample: Duration::ZERO,
            iters: 0,
        };
        // Warmup: one short untimed pass so lazy setup work (page faults,
        // lazily grown hash maps) does not pollute the first sample.
        f(&mut b);
        let mut samples = Vec::with_capacity(self.sample_size);
        let per_sample = self.measurement_time.div_f64(self.sample_size as f64);
        for _ in 0..self.sample_size {
            let started = Instant::now();
            let mut sample_time = Duration::ZERO;
            let mut sample_iters = 0u64;
            while started.elapsed() < per_sample {
                f(&mut b);
                sample_time += b.sample;
                sample_iters += b.iters;
            }
            if sample_iters > 0 {
                samples.push(sample_time.as_secs_f64() / sample_iters as f64);
            }
        }
        report(&self.name, &id.0, &samples);
        self
    }

    /// Run one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group.
    pub fn finish(self) {}
}

fn report(group: &str, id: &str, samples: &[f64]) {
    if samples.is_empty() {
        eprintln!("bench: {group}/{id} produced no samples");
        return;
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let best = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let worst = samples.iter().copied().fold(0.0f64, f64::max);
    println!(
        "bench: {group}/{id} mean={} best={} worst={} samples={}",
        fmt_time(mean),
        fmt_time(best),
        fmt_time(worst),
        samples.len()
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1}ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2}us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{secs:.3}s")
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    sample: Duration,
    iters: u64,
}

impl Bencher {
    /// Time repeated executions of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // A small fixed batch per call; the group loop accumulates batches
        // until the per-sample budget is spent.
        const BATCH: u64 = 4;
        let start = Instant::now();
        for _ in 0..BATCH {
            black_box(routine());
        }
        self.sample = start.elapsed();
        self.iters = BATCH;
    }
}

/// Collect benchmark functions into a runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($bench(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_loop_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .measurement_time(Duration::from_millis(50))
            .sample_size(3)
            .bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter("x"), &41, |b, &x| {
            b.iter(|| x + 1)
        });
        group.finish();
    }

    #[test]
    fn id_forms() {
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").0, "p");
    }
}
