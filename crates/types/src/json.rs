//! Minimal JSON value model, parser, and writer.
//!
//! The workspace persists two artifacts as JSON — storage layouts and
//! calibrated cost models — and the bench harness emits JSON result files.
//! With no registry access in the build environment, this module replaces
//! `serde`/`serde_json` with a small hand-rolled codec: a [`Json`] tree,
//! a recursive-descent parser, and compact / pretty writers.
//!
//! Integers and floats are kept apart ([`Json::Int`] vs [`Json::Num`]) so
//! `Value::BigInt` round-trips losslessly beyond 2^53.

use std::collections::BTreeMap;
use std::fmt;

use crate::value::Value;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer literal (no fraction or exponent).
    Int(i64),
    /// Floating-point literal.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; insertion order is preserved via sorted keys for stable
    /// output (layouts and cost models are diffed in version control).
    Obj(BTreeMap<String, Json>),
}

impl fmt::Display for Json {
    /// Compact single-line JSON encoding.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

/// Error produced by [`Json::parse`] or the typed decode helpers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

/// Result alias for JSON decoding.
pub type JsonResult<T> = std::result::Result<T, JsonError>;

fn err<T>(msg: impl Into<String>) -> JsonResult<T> {
    Err(JsonError(msg.into()))
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> JsonResult<&Json> {
        match self {
            Json::Obj(m) => m
                .get(key)
                .ok_or_else(|| JsonError(format!("missing field `{key}`"))),
            other => err(format!("expected object with `{key}`, got {other:?}")),
        }
    }

    /// Optional object field (`None` when absent or `null`).
    pub fn get_opt(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key).filter(|v| !matches!(v, Json::Null)),
            _ => None,
        }
    }

    /// The value as `f64` (integers widen).
    pub fn as_f64(&self) -> JsonResult<f64> {
        match self {
            Json::Num(v) => Ok(*v),
            Json::Int(v) => Ok(*v as f64),
            other => err(format!("expected number, got {other:?}")),
        }
    }

    /// The value as `i64`.
    pub fn as_i64(&self) -> JsonResult<i64> {
        match self {
            Json::Int(v) => Ok(*v),
            other => err(format!("expected integer, got {other:?}")),
        }
    }

    /// The value as `usize`.
    pub fn as_usize(&self) -> JsonResult<usize> {
        let v = self.as_i64()?;
        usize::try_from(v).map_err(|_| JsonError(format!("expected usize, got {v}")))
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> JsonResult<bool> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => err(format!("expected bool, got {other:?}")),
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> JsonResult<&str> {
        match self {
            Json::Str(s) => Ok(s),
            other => err(format!("expected string, got {other:?}")),
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> JsonResult<&[Json]> {
        match self {
            Json::Arr(a) => Ok(a),
            other => err(format!("expected array, got {other:?}")),
        }
    }

    /// The value as an object map.
    pub fn as_obj(&self) -> JsonResult<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Ok(m),
            other => err(format!("expected object, got {other:?}")),
        }
    }

    /// Encode a [`Value`] (externally tagged, like the previous serde
    /// representation: `{"Int": 5}`, `"Null"`, ...).
    pub fn from_value(v: &Value) -> Json {
        match v {
            Value::Null => Json::Str("Null".to_string()),
            Value::Int(x) => Json::obj([("Int", Json::Int(*x as i64))]),
            Value::BigInt(x) => Json::obj([("BigInt", Json::Int(*x))]),
            Value::Double(x) => Json::obj([("Double", Json::Num(*x))]),
            Value::Decimal(x) => Json::obj([("Decimal", Json::Int(*x))]),
            Value::Text(s) => Json::obj([("Text", Json::Str(s.to_string()))]),
            Value::Date(x) => Json::obj([("Date", Json::Int(*x as i64))]),
            Value::Bool(b) => Json::obj([("Bool", Json::Bool(*b))]),
        }
    }

    /// Decode a [`Value`] written by [`Json::from_value`].
    pub fn to_value(&self) -> JsonResult<Value> {
        match self {
            Json::Str(s) if s == "Null" => Ok(Value::Null),
            Json::Obj(m) => {
                let (tag, body) = match m.iter().next() {
                    Some(kv) if m.len() == 1 => kv,
                    _ => {
                        return err(format!(
                            "expected single-variant value object, got {self:?}"
                        ))
                    }
                };
                match tag.as_str() {
                    "Int" => Ok(Value::Int(body.as_i64()? as i32)),
                    "BigInt" => Ok(Value::BigInt(body.as_i64()?)),
                    "Double" => Ok(Value::Double(body.as_f64()?)),
                    "Decimal" => Ok(Value::Decimal(body.as_i64()?)),
                    "Text" => Ok(Value::text(body.as_str()?)),
                    "Date" => Ok(Value::Date(body.as_i64()? as i32)),
                    "Bool" => Ok(Value::Bool(body.as_bool()?)),
                    other => err(format!("unknown value variant `{other}`")),
                }
            }
            other => err(format!("expected value encoding, got {other:?}")),
        }
    }

    /// Parse a JSON document.
    pub fn parse(input: &str) -> JsonResult<Json> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Human-readable indented encoding. (The compact single-line encoding
    /// is the `Display` impl, i.e. `to_string()`.)
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Num(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1)
            }),
            Json::Obj(map) => {
                let entries: Vec<(&String, &Json)> = map.iter().collect();
                write_seq(out, indent, depth, '{', '}', entries.len(), |out, i| {
                    let (k, v) = entries[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1)
                })
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let s = format!("{v}");
        out.push_str(&s);
        // Keep floats distinguishable from ints on re-parse.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no Inf/NaN; emit null like serde_json does.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> JsonResult<u8> {
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| JsonError("unexpected end of input".to_string()))
    }

    fn expect(&mut self, b: u8) -> JsonResult<()> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> JsonResult<Json> {
        match self.peek()? {
            b'n' => self.literal("null", Json::Null),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'"' => Ok(Json::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => err(format!(
                "unexpected byte `{}` at {}",
                other as char, self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> JsonResult<Json> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn string(&mut self) -> JsonResult<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self.peek()? != b'"' && self.bytes[self.pos] != b'\\' {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError("invalid utf-8 in string".to_string()))?,
            );
            if self.peek()? == b'"' {
                self.pos += 1;
                return Ok(out);
            }
            // Escape sequence.
            self.pos += 1;
            let esc = self.peek()?;
            self.pos += 1;
            match esc {
                b'"' => out.push('"'),
                b'\\' => out.push('\\'),
                b'/' => out.push('/'),
                b'n' => out.push('\n'),
                b'r' => out.push('\r'),
                b't' => out.push('\t'),
                b'b' => out.push('\u{8}'),
                b'f' => out.push('\u{c}'),
                b'u' => {
                    if self.pos + 4 > self.bytes.len() {
                        return err("truncated \\u escape");
                    }
                    let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                        .map_err(|_| JsonError("invalid \\u escape".to_string()))?;
                    let code = u32::from_str_radix(hex, 16)
                        .map_err(|_| JsonError("invalid \\u escape".to_string()))?;
                    self.pos += 4;
                    // Surrogate pairs are not needed for this workspace's
                    // artifacts; map unpaired surrogates to the replacement
                    // character rather than erroring.
                    out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                }
                other => return err(format!("invalid escape `\\{}`", other as char)),
            }
        }
    }

    fn number(&mut self) -> JsonResult<Json> {
        let start = self.pos;
        if self.peek()? == b'-' {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError("invalid number".to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| JsonError(format!("invalid number `{text}`")))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| JsonError(format!("invalid integer `{text}`")))
        }
    }

    fn array(&mut self) -> JsonResult<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return err(format!("expected `,` or `]`, got `{}`", other as char)),
            }
        }
    }

    fn object(&mut self) -> JsonResult<Json> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                other => return err(format!("expected `,` or `}}`, got `{}`", other as char)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-12", "3.5", "\"s\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.to_string()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn nested_round_trip() {
        let text = r#"{"a":[1,2.5,"x\n\"y\""],"b":{"c":null,"d":true},"e":-7}"#;
        let v = Json::parse(text).unwrap();
        let back = Json::parse(&v.to_string()).unwrap();
        assert_eq!(v, back);
        let pretty = v.to_string_pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn int_float_distinction_survives() {
        let v = Json::Arr(vec![Json::Int(5), Json::Num(5.0)]);
        let back = Json::parse(&v.to_string()).unwrap();
        assert_eq!(back, v);
        // Large i64 survives exactly.
        let big = Json::Int(i64::MAX - 1);
        assert_eq!(Json::parse(&big.to_string()).unwrap(), big);
    }

    #[test]
    fn accessors_and_errors() {
        let v = Json::parse(r#"{"n":1,"s":"x","a":[true]}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_i64().unwrap(), 1);
        assert_eq!(v.get("n").unwrap().as_f64().unwrap(), 1.0);
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "x");
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert!(v.get("missing").is_err());
        assert!(v.get("s").unwrap().as_i64().is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("12 34").is_err());
    }

    #[test]
    fn value_codec_round_trips() {
        let values = [
            Value::Null,
            Value::Int(-5),
            Value::BigInt(1 << 60),
            Value::Double(2.75),
            Value::Decimal(1234),
            Value::text("hello \"world\""),
            Value::Date(42),
            Value::Bool(true),
        ];
        for v in values {
            let j = Json::from_value(&v);
            let text = j.to_string();
            let back = Json::parse(&text).unwrap().to_value().unwrap();
            assert_eq!(back, v, "{text}");
        }
    }

    #[test]
    fn unicode_strings() {
        let v = Json::Str("héllo ☃".to_string());
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        assert_eq!(Json::parse(r#""A""#).unwrap(), Json::Str("A".to_string()));
    }
}
