//! Delta-merge maintenance policy.
//!
//! Column-store partitions accumulate unsorted dictionary tails as writes
//! intern new values; folding them back in (the delta merge) restores scan
//! locality at an O(rows) remap cost. This module owns the *when*: the
//! engine-level fallback policy ([`MergeConfig`]) that every write statement
//! consults, and the explicit entry points the advisor's scheduled merges go
//! through ([`crate::mover::merge_delta`],
//! [`crate::database::HybridDatabase::set_merge_config`]).
//!
//! The fallback is **hysteretic**: a merge only fires once the accumulated
//! tail crosses the *high* watermark, and when it fires only the columns
//! whose own tail exceeds the *low* watermark are compacted. The band
//! between the residual small tails and the high watermark is what keeps a
//! hot write loop from re-triggering an O(rows) merge on every statement —
//! the size-only policy this replaces re-evaluated one fixed threshold after
//! each write and paid a full-table remap (every column, even those with a
//! one-entry tail) whenever it tripped.

use hsd_storage::{ColumnTable, Table};

use crate::partition::{ColdPart, TableData};

/// When the engine-level fallback merge runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeMode {
    /// Compact every column-store partition after every write statement
    /// (the `always-merge` ablation baseline).
    Always,
    /// Hysteretic watermark policy (the default): merge when the tail
    /// crosses the high watermark, compacting only columns above the low
    /// watermark.
    Auto,
    /// Never merge automatically. Merges happen only through the explicit
    /// maintenance entry points — the mode the advisor-scheduled policy
    /// runs the engine in.
    Disabled,
}

/// Configuration of the engine-level delta-merge fallback.
///
/// The watermarks are expressed as fractions of the partition's row count
/// with absolute floors, so small tables are not merged on every handful of
/// fresh values and large tables are not allowed to accumulate
/// proportionally unbounded tails.
///
/// # Example
///
/// ```
/// use hsd_engine::{MergeConfig, MergeMode};
///
/// // The default policy is hysteretic: merge once the tail crosses the
/// // high watermark, compacting only columns above the low watermark.
/// let cfg = MergeConfig::default();
/// assert_eq!(cfg.mode, MergeMode::Auto);
/// assert_eq!(cfg.high_watermark(1 << 20), (1 << 20) / 32);
/// assert_eq!(cfg.high_watermark(0), cfg.min_tail); // absolute floor
///
/// // An advisor that schedules merges itself runs the engine with the
/// // fallback disabled (`db.set_merge_config(MergeConfig::disabled())`).
/// assert_eq!(MergeConfig::disabled().mode, MergeMode::Disabled);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MergeConfig {
    /// When the fallback merge runs.
    pub mode: MergeMode,
    /// High watermark as a fraction of the row count: the merge trigger.
    /// A table's accumulated tail must exceed
    /// `max(min_tail, high_fraction · rows)` before any compaction happens.
    pub high_fraction: f64,
    /// Low watermark as a fraction of the row count: the per-column floor.
    /// When a merge fires, only columns whose own tail exceeds
    /// `max(min_col_tail, low_fraction · rows)` are compacted; smaller
    /// tails ride along until a later merge.
    pub low_fraction: f64,
    /// Absolute floor of the high watermark (entries).
    pub min_tail: usize,
    /// Absolute floor of the per-column low watermark (entries).
    pub min_col_tail: usize,
}

impl Default for MergeConfig {
    fn default() -> Self {
        MergeConfig {
            mode: MergeMode::Auto,
            // Trigger point matches the historical size-only policy
            // (rows/32, floor 4096), so default write amortization — and the
            // calibration that measures it — is unchanged.
            high_fraction: 1.0 / 32.0,
            low_fraction: 1.0 / 512.0,
            min_tail: 4096,
            min_col_tail: 64,
        }
    }
}

impl MergeConfig {
    /// Policy that merges after every write (ablation baseline).
    pub fn always() -> Self {
        MergeConfig {
            mode: MergeMode::Always,
            ..Default::default()
        }
    }

    /// Policy that never merges automatically (advisor-scheduled mode).
    pub fn disabled() -> Self {
        MergeConfig {
            mode: MergeMode::Disabled,
            ..Default::default()
        }
    }

    /// The merge-trigger threshold for a partition of `rows` rows.
    pub fn high_watermark(&self, rows: usize) -> usize {
        ((rows as f64 * self.high_fraction) as usize).max(self.min_tail)
    }

    /// The per-column compaction floor for a partition of `rows` rows.
    pub fn low_watermark(&self, rows: usize) -> usize {
        ((rows as f64 * self.low_fraction) as usize).max(self.min_col_tail)
    }
}

/// Visit every column-store table (partition or fragment) of `data`.
fn for_each_columnar(data: &mut TableData, mut f: impl FnMut(&mut ColumnTable)) {
    match data {
        TableData::Single(Table::Column(ct)) => f(ct),
        TableData::Single(Table::Row(_)) => {}
        TableData::Partitioned { cold, .. } => match cold {
            ColdPart::Single(Table::Column(ct)) => f(ct),
            ColdPart::Single(Table::Row(_)) => {}
            ColdPart::Vertical(p) => {
                if let Table::Column(ct) = p.col_fragment_mut() {
                    f(ct);
                }
            }
            // Disk-resident cold partitions are compacted at demotion and
            // immutable afterwards; maintenance never touches them.
            ColdPart::DiskColumn(_) => {}
        },
    }
}

/// Run the fallback merge policy after a write statement. Returns whether
/// any compaction actually happened (the durability layer logs a merge
/// record only then).
pub(crate) fn after_write(data: &mut TableData, cfg: &MergeConfig) -> bool {
    let mut compacted = false;
    match cfg.mode {
        MergeMode::Disabled => {}
        MergeMode::Always => {
            for_each_columnar(data, |ct| {
                if ct.tail_total() > 0 {
                    ct.compact();
                    compacted = true;
                }
            });
        }
        MergeMode::Auto => {
            for_each_columnar(data, |ct| {
                let rows = ct.row_count();
                if ct.tail_total() <= cfg.high_watermark(rows) {
                    return;
                }
                let merged = ct.compact_columns_over(cfg.low_watermark(rows));
                if merged == 0 {
                    // The total crossed the high watermark but every
                    // individual tail sits below the low watermark: fold
                    // everything so the tail stays bounded.
                    ct.compact();
                }
                compacted = true;
            });
        }
    }
    compacted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::HybridDatabase;
    use crate::mover;
    use hsd_query::{Query, UpdateQuery};
    use hsd_storage::{ColRange, StoreKind};
    use hsd_types::{ColumnDef, ColumnType, TableSchema, Value};

    fn column_db() -> HybridDatabase {
        let db = HybridDatabase::new();
        db.create_single(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("id", ColumnType::BigInt),
                    ColumnDef::new("a", ColumnType::Double),
                    ColumnDef::new("b", ColumnType::Double),
                ],
                vec![0],
            )
            .unwrap(),
            StoreKind::Column,
        )
        .unwrap();
        db.bulk_load(
            "t",
            (0..100).map(|i| {
                vec![
                    Value::BigInt(i),
                    Value::Double(i as f64),
                    Value::Double(i as f64),
                ]
            }),
        )
        .unwrap();
        db
    }

    /// Point update writing a fresh (never-seen) value into `col`.
    fn fresh_update(db: &HybridDatabase, id: i64, col: usize, salt: f64) {
        db.execute(&Query::Update(UpdateQuery {
            table: "t".into(),
            sets: vec![(col, Value::Double(10_000.0 + salt))],
            filter: vec![ColRange::eq(0, Value::BigInt(id))],
        }))
        .unwrap();
    }

    #[test]
    fn always_mode_merges_after_every_write() {
        let db = column_db();
        db.set_merge_config(MergeConfig::always());
        for i in 0..5 {
            fresh_update(&db, i, 1, i as f64);
            assert_eq!(db.delta_tail("t").unwrap(), 0);
        }
    }

    #[test]
    fn disabled_mode_accumulates_until_explicit_merge() {
        let db = column_db();
        db.set_merge_config(MergeConfig::disabled());
        for i in 0..20 {
            fresh_update(&db, i, 1, i as f64);
        }
        assert_eq!(db.delta_tail("t").unwrap(), 20);
        let merged = mover::merge_delta(&db, "t").unwrap();
        assert_eq!(merged, 20);
        assert_eq!(db.delta_tail("t").unwrap(), 0);
    }

    #[test]
    fn auto_mode_is_hysteretic_and_selective() {
        let db = column_db();
        db.set_merge_config(MergeConfig {
            mode: MergeMode::Auto,
            high_fraction: 0.0,
            low_fraction: 0.0,
            min_tail: 8,
            min_col_tail: 2,
        });
        // Grow column `a`'s tail to exactly the high watermark: no merge.
        for i in 0..8 {
            fresh_update(&db, i, 1, i as f64);
        }
        assert_eq!(db.delta_tail("t").unwrap(), 8, "at watermark, not above");
        // One fresh value in column `b` crosses the high watermark. The
        // merge fires, but only column `a` (tail 8 > low watermark 2) is
        // compacted — `b`'s one-entry tail rides along.
        fresh_update(&db, 0, 2, 99.0);
        assert_eq!(
            db.delta_tail("t").unwrap(),
            1,
            "column a folded, column b's small tail kept"
        );
        // The band below the high watermark absorbs further writes without
        // re-triggering a merge on every statement.
        fresh_update(&db, 1, 2, 100.0);
        assert_eq!(db.delta_tail("t").unwrap(), 2);
    }

    #[test]
    fn auto_mode_folds_everything_when_tails_are_spread_thin() {
        let db = column_db();
        db.set_merge_config(MergeConfig {
            mode: MergeMode::Auto,
            high_fraction: 0.0,
            low_fraction: 0.0,
            min_tail: 2,
            min_col_tail: 8,
        });
        // Total tail (3) crosses high (2) but each column is below the
        // per-column floor (8): the bounded-growth fallback folds all.
        fresh_update(&db, 0, 1, 1.0);
        fresh_update(&db, 1, 2, 2.0);
        assert_eq!(db.delta_tail("t").unwrap(), 2);
        fresh_update(&db, 2, 2, 3.0);
        assert_eq!(db.delta_tail("t").unwrap(), 0);
    }

    #[test]
    fn watermarks_scale_with_rows() {
        let cfg = MergeConfig::default();
        assert_eq!(cfg.high_watermark(0), 4096);
        assert_eq!(cfg.high_watermark(1 << 20), (1 << 20) / 32);
        assert_eq!(cfg.low_watermark(0), 64);
        assert_eq!(cfg.low_watermark(1 << 20), (1 << 20) / 512);
    }

    #[test]
    fn mode_constructors() {
        assert_eq!(MergeConfig::always().mode, MergeMode::Always);
        assert_eq!(MergeConfig::disabled().mode, MergeMode::Disabled);
        assert_eq!(MergeConfig::default().mode, MergeMode::Auto);
    }
}
