//! The HTAP scenario matrix, end-to-end at smoke scale: every named
//! scenario (uniform, zipf-skew, flash-crowd, phase-shift, tenant-churn)
//! is generated deterministically, the budget-constrained advisor picks a
//! layout for it, and the full statement stream executes under both that
//! layout and an all-row reference — the logical results must agree
//! statement for statement. This is the transparency property under
//! realistic HTAP pressure: skew, bursts, phase shifts, and tenant churn
//! must never change *what* a query answers, only how fast.
//!
//! CI also runs this suite in the threaded debug-assertion stress step
//! (`RUST_TEST_THREADS=8`), so the five scenarios exercise the shared
//! engine concurrently.

use std::collections::BTreeMap;
use std::sync::Arc;

use hybrid_store_advisor::advisor::cost::AdjustmentFn;
use hybrid_store_advisor::engine::{GroupRow, QueryOutput};
use hybrid_store_advisor::prelude::*;
use hybrid_store_advisor::tpch::scenario::{
    generate_scenario, load_tenants, MixedWorkload, Scenario, ScenarioConfig,
};
use hybrid_store_advisor::tpch::TpchGenerator;

/// A cost model with the canonical asymmetries (CS cheaper scans, RS
/// cheaper writes), as a fully deterministic stand-in for calibration.
fn model() -> CostModel {
    let mut m = CostModel::neutral();
    m.row.f_rows = AdjustmentFn::Linear {
        slope: 1e-3,
        intercept: 0.05,
    };
    m.column.f_rows = AdjustmentFn::Linear {
        slope: 1e-4,
        intercept: 0.05,
    };
    m.row.ins_row = AdjustmentFn::Constant(0.002);
    m.column.ins_row = AdjustmentFn::Constant(0.01);
    m.row.sel_point_ms = 0.002;
    m.column.sel_point_ms = 0.008;
    m.row.upd_row_ms = 0.002;
    m.column.upd_row_ms = 0.01;
    m.row.sel_per_row_scan = 2e-5;
    m.column.sel_per_row_scan = 2e-6;
    m
}

/// Aggregation results accumulate in store-specific orders, so floating
/// sums may differ in the last ulps; everything else must match exactly.
fn assert_outputs_close(a: &QueryOutput, b: &QueryOutput, ctx: &str) {
    match (a, b) {
        (QueryOutput::Aggregates(x), QueryOutput::Aggregates(y)) => {
            assert_eq!(x.len(), y.len(), "group count diverges: {ctx}");
            for (
                GroupRow {
                    key: ka,
                    values: va,
                },
                GroupRow {
                    key: kb,
                    values: vb,
                },
            ) in x.iter().zip(y)
            {
                assert_eq!(ka, kb, "group keys diverge: {ctx}");
                assert_eq!(va.len(), vb.len(), "aggregate count diverges: {ctx}");
                for (p, q) in va.iter().zip(vb) {
                    let tol = 1e-9 * p.abs().max(q.abs()).max(1.0);
                    assert!((p - q).abs() <= tol, "{p} vs {q} diverges: {ctx}");
                }
            }
        }
        _ => assert_eq!(a, b, "outputs diverge: {ctx}"),
    }
}

fn smoke_cfg(scenario: Scenario) -> ScenarioConfig {
    ScenarioConfig {
        scenario,
        tenants: 2,
        statements: 150,
        olap_fraction: 0.12,
        zipf_theta: 1.0,
        seed: 0x3A7_81C5,
    }
}

/// Load the multi-tenant catalog all-row and snapshot schemas + stats.
fn reference_db(
    g: &TpchGenerator,
    tenants: usize,
) -> (
    HybridDatabase,
    Vec<Arc<TableSchema>>,
    BTreeMap<String, TableStats>,
) {
    let db = HybridDatabase::new();
    load_tenants(g, &db, tenants, |_| TablePlacement::Single(StoreKind::Row)).unwrap();
    let schemas: Vec<Arc<TableSchema>> = db
        .catalog()
        .entries()
        .iter()
        .map(|e| e.schema.clone())
        .collect();
    let stats = db
        .catalog()
        .entries()
        .iter()
        .map(|e| (e.schema.name.clone(), e.stats.clone()))
        .collect();
    (db, schemas, stats)
}

/// End-to-end: advisor-chosen (budget-constrained) layout vs the all-row
/// reference, executing the identical stream on both.
fn run_scenario(scenario: Scenario) {
    let g = TpchGenerator::new(0.0005, 11);
    let cfg = smoke_cfg(scenario);
    let wl: MixedWorkload = generate_scenario(&g, &cfg);
    assert_eq!(wl.statements.len(), cfg.statements);

    let (reference, schemas, stats) = reference_db(&g, cfg.tenants);

    // Budget three quarters of the all-row footprint, so the knapsack path
    // is live in at least some scenarios (loose budgets fall back to the
    // greedy special case — also a valid layout to verify).
    let ctx = hybrid_store_advisor::advisor::advisor::build_ctx(&schemas, &stats);
    let row_fp = hybrid_store_advisor::advisor::layout_footprint_bytes(
        &ctx,
        &StorageLayout::uniform(schemas.iter().map(|s| s.name.as_str()), StoreKind::Row),
    );
    let advisor = StorageAdvisor::new(model()).with_budget(0.75 * row_fp);
    let rec = advisor
        .recommend_offline(&schemas, &stats, &wl.workload(), true)
        .unwrap();
    assert!(
        rec.budget_feasible,
        "{}: budget infeasible",
        scenario.name()
    );
    assert!(
        rec.footprint_bytes <= 0.75 * row_fp + 1e-6,
        "{}: footprint exceeds budget",
        scenario.name()
    );

    let advised = HybridDatabase::new();
    load_tenants(&g, &advised, cfg.tenants, |_| {
        TablePlacement::Single(StoreKind::Row)
    })
    .unwrap();
    mover::apply_layout(&advised, &rec.layout).unwrap();

    for (i, s) in wl.statements.iter().enumerate() {
        let expect = reference.execute(&s.query).unwrap();
        let got = advised.execute(&s.query).unwrap();
        assert_outputs_close(
            &got,
            &expect,
            &format!("{} statement #{i} (tenant {})", scenario.name(), s.tenant),
        );
    }
}

#[test]
fn uniform_matches_all_row_reference() {
    run_scenario(Scenario::Uniform);
}

#[test]
fn zipf_skew_matches_all_row_reference() {
    run_scenario(Scenario::ZipfSkew);
}

#[test]
fn flash_crowd_matches_all_row_reference() {
    run_scenario(Scenario::FlashCrowd);
}

#[test]
fn phase_shift_matches_all_row_reference() {
    run_scenario(Scenario::PhaseShift);
}

#[test]
fn tenant_churn_matches_all_row_reference() {
    run_scenario(Scenario::TenantChurn);
}

#[test]
fn matrix_streams_are_deterministic_and_seed_sensitive() {
    let g = TpchGenerator::new(0.0005, 11);
    for scenario in Scenario::ALL {
        let cfg = smoke_cfg(scenario);
        let a = generate_scenario(&g, &cfg);
        let b = generate_scenario(&g, &cfg);
        assert_eq!(
            a.render(),
            b.render(),
            "{}: same seed must replay byte-identically",
            scenario.name()
        );
        let c = generate_scenario(
            &g,
            &ScenarioConfig {
                seed: cfg.seed ^ 1,
                ..cfg
            },
        );
        assert_ne!(
            a.render(),
            c.render(),
            "{}: different seeds must differ",
            scenario.name()
        );
        assert!(
            a.render().contains(&format!("# seed: {}", cfg.seed)),
            "stream must document its seed"
        );
    }
}
