//! The hybrid database: catalog + physical table data.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use hsd_catalog::{Catalog, StorageLayout, TablePlacement, TableStats};
use hsd_query::Query;
use hsd_storage::wal::{WalStats, WalWriter};
use hsd_storage::{StoreKind, Table};
use hsd_types::{Error, Result, TableId, TableSchema, Value};

use crate::durability::WalRecord;
use crate::executor;
use crate::maintenance::MergeConfig;
use crate::partition::TableData;

/// An in-memory hybrid-store database instance.
///
/// # Example
///
/// ```
/// use hsd_engine::HybridDatabase;
/// use hsd_query::{AggFunc, AggregateQuery, Query};
/// use hsd_storage::StoreKind;
/// use hsd_types::{ColumnDef, ColumnType, TableSchema, Value};
///
/// let mut db = HybridDatabase::new();
/// let schema = TableSchema::new(
///     "orders",
///     vec![
///         ColumnDef::new("id", ColumnType::BigInt),
///         ColumnDef::new("amount", ColumnType::Double),
///     ],
///     vec![0], // primary key
/// )?;
/// db.create_single(schema, StoreKind::Column)?;
/// db.bulk_load(
///     "orders",
///     (0..100i64).map(|i| vec![Value::BigInt(i), Value::Double(i as f64)]),
/// )?;
///
/// // The executor is store-agnostic: the same query runs against either
/// // store or any partitioned layout the advisor recommends.
/// let q = Query::Aggregate(AggregateQuery::simple("orders", AggFunc::Sum, 1));
/// let out = db.execute(&q)?;
/// assert_eq!(out.aggregates().unwrap()[0].values[0], 4950.0);
/// # Ok::<(), hsd_types::Error>(())
/// ```
#[derive(Debug, Default)]
pub struct HybridDatabase {
    catalog: Catalog,
    tables: HashMap<TableId, TableData>,
    merge_config: MergeConfig,
    /// Write-ahead log, when durability is enabled (see
    /// [`crate::durability`]). `None` keeps the engine purely in-memory.
    wal: Option<WalWriter>,
    /// Tables quarantined read-only by crash recovery, with reasons.
    degraded: BTreeMap<String, String>,
}

impl HybridDatabase {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a table with the given placement.
    pub fn create_table(
        &mut self,
        schema: TableSchema,
        placement: TablePlacement,
    ) -> Result<TableId> {
        let schema = Arc::new(schema);
        let data = TableData::new(schema.clone(), &placement)?;
        let id = self.catalog.register(schema.clone(), placement.clone())?;
        self.tables.insert(id, data);
        self.log_record(&WalRecord::CreateTable {
            schema: (*schema).clone(),
            placement,
        })?;
        Ok(id)
    }

    /// Create a single-store table (convenience).
    pub fn create_single(&mut self, schema: TableSchema, store: StoreKind) -> Result<TableId> {
        self.create_table(schema, TablePlacement::Single(store))
    }

    /// Bulk-load rows into a table (hot partition rules apply). For
    /// column-store targets the dictionaries are compacted afterwards, as a
    /// real bulk load would end with a delta merge.
    pub fn bulk_load<I>(&mut self, table: &str, rows: I) -> Result<usize>
    where
        I: IntoIterator<Item = Vec<Value>>,
    {
        self.check_writable(table)?;
        let id = self.catalog.id_of(table)?;
        let wal_on = self.wal.is_some();
        // The applied rows are collected (only while logging) so a midway
        // failure can still log the prefix that stuck: the engine has no
        // statement rollback, and recovery must reproduce the same prefix.
        let mut applied: Vec<Vec<Value>> = Vec::new();
        let mut failure: Option<Error> = None;
        let mut n = 0;
        {
            let data = self
                .tables
                .get_mut(&id)
                .ok_or_else(|| Error::UnknownTable(table.into()))?;
            for row in rows {
                match data.insert(&row) {
                    Ok(_) => {
                        n += 1;
                        if wal_on {
                            applied.push(row);
                        }
                    }
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
            if failure.is_none() {
                compact_tables(data);
            }
        }
        if wal_on && !applied.is_empty() {
            // `load` marks the success path (replay re-compacts); a partial
            // prefix replays as a plain insert, leaving the tail as-is.
            self.log_record(&WalRecord::Insert {
                table: table.to_string(),
                rows: applied,
                load: failure.is_none(),
            })?;
        }
        if let Some(e) = failure {
            return Err(e);
        }
        self.refresh_stats_id(id)?;
        Ok(n)
    }

    /// The system catalog (read-only).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access (used by the mover and index management).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Physical data of a table.
    pub fn table_data(&self, table: &str) -> Result<&TableData> {
        let id = self.catalog.id_of(table)?;
        self.tables
            .get(&id)
            .ok_or_else(|| Error::UnknownTable(table.into()))
    }

    /// Mutable physical data of a table.
    pub fn table_data_mut(&mut self, table: &str) -> Result<&mut TableData> {
        let id = self.catalog.id_of(table)?;
        self.tables
            .get_mut(&id)
            .ok_or_else(|| Error::UnknownTable(table.into()))
    }

    /// Replace a table's physical data and placement annotation (the data
    /// mover's commit step).
    pub(crate) fn replace_table(
        &mut self,
        table: &str,
        data: TableData,
        placement: TablePlacement,
    ) -> Result<()> {
        let id = self.catalog.id_of(table)?;
        self.tables.insert(id, data);
        self.catalog.set_placement(id, placement)?;
        self.refresh_stats_id(id)
    }

    /// Total logical rows of a table.
    pub fn row_count(&self, table: &str) -> Result<usize> {
        Ok(self.table_data(table)?.row_count())
    }

    /// The engine-level delta-merge fallback policy.
    pub fn merge_config(&self) -> MergeConfig {
        self.merge_config
    }

    /// Replace the delta-merge fallback policy (e.g.
    /// [`MergeConfig::disabled`] when an online advisor schedules merges
    /// explicitly, leaving the executor's auto-merge as a safety valve
    /// only).
    pub fn set_merge_config(&mut self, cfg: MergeConfig) {
        self.merge_config = cfg;
    }

    /// Accumulated dictionary-tail entries of a table's column-store
    /// partitions (0 for row-store-only layouts).
    pub fn delta_tail(&self, table: &str) -> Result<usize> {
        Ok(self.table_data(table)?.delta_tail())
    }

    /// Rows resident in the region a delta merge on `table` would remap:
    /// the whole table for single-store layouts, the cold partition for
    /// hot/cold layouts ([`TableData::merge_region_rows`]). Merge-cost
    /// models should price merges at this count, not
    /// [`HybridDatabase::row_count`].
    pub fn merge_region_rows(&self, table: &str) -> Result<usize> {
        Ok(self.table_data(table)?.merge_region_rows())
    }

    /// Whether an incremental delta merge is in flight on a table (always
    /// `false` for row-store-only layouts).
    pub fn merge_in_progress(&self, table: &str) -> Result<bool> {
        Ok(self.table_data(table)?.merge_in_progress())
    }

    /// A table's merge epoch: increases at every completed dictionary
    /// handoff (incremental shadow swap or one-shot rebuild), so observers
    /// — the online advisor, the maintenance worker — can detect that
    /// merge work completed between two looks without watching every
    /// slice. The epoch is **column-granular** (a multi-column merge bumps
    /// it once per column handoff), so "the whole job finished" is the
    /// conjunction of a moved epoch and
    /// [`HybridDatabase::merge_in_progress`] being `false`. 0 for
    /// row-store-only layouts.
    pub fn merge_epoch(&self, table: &str) -> Result<u64> {
        Ok(self.table_data(table)?.merge_epoch())
    }

    /// Execute a query against the current layout.
    pub fn execute(&mut self, query: &Query) -> Result<executor::QueryOutput> {
        executor::execute(self, query)
    }

    /// Recompute and store basic statistics for a table.
    pub fn refresh_stats(&mut self, table: &str) -> Result<()> {
        let id = self.catalog.id_of(table)?;
        self.refresh_stats_id(id)
    }

    fn refresh_stats_id(&mut self, id: TableId) -> Result<()> {
        let data = self
            .tables
            .get(&id)
            .ok_or_else(|| Error::UnknownTable(id.to_string()))?;
        let stats = collect_stats(data);
        self.catalog.set_stats(id, stats)
    }

    /// Recompute statistics for every table.
    pub fn refresh_all_stats(&mut self) -> Result<()> {
        let ids: Vec<TableId> = self.tables.keys().copied().collect();
        for id in ids {
            self.refresh_stats_id(id)?;
        }
        Ok(())
    }

    /// Create a row-store secondary index on a column of a single-store
    /// row table (and annotate the catalog for the cost model).
    pub fn create_index(&mut self, table: &str, col: usize) -> Result<()> {
        self.check_writable(table)?;
        let id = self.catalog.id_of(table)?;
        let data = self
            .tables
            .get_mut(&id)
            .ok_or_else(|| Error::UnknownTable(table.into()))?;
        match data {
            TableData::Single(Table::Row(rt)) => rt.create_index(col)?,
            TableData::Single(Table::Column(_)) => {
                // The column store's sorted dictionary already acts as an
                // implicit index; nothing to build.
            }
            TableData::Partitioned { hot, cold, .. } => {
                if let Some(Table::Row(rt)) = hot.as_mut() {
                    rt.create_index(col)?;
                }
                match cold {
                    crate::partition::ColdPart::Single(Table::Row(rt)) => rt.create_index(col)?,
                    crate::partition::ColdPart::Single(Table::Column(_)) => {}
                    crate::partition::ColdPart::Vertical(p) => p.create_row_index(col)?,
                }
            }
        }
        let entry = self.catalog.entry_mut(id)?;
        if !entry.indexed_columns.contains(&col) {
            entry.indexed_columns.push(col);
        }
        self.log_record(&WalRecord::CreateIndex {
            table: table.to_string(),
            column: col,
        })?;
        Ok(())
    }

    /// Current layout snapshot.
    pub fn current_layout(&self) -> StorageLayout {
        self.catalog.current_layout()
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.catalog
            .entries()
            .iter()
            .map(|e| e.schema.name.clone())
            .collect()
    }

    /// Total heap bytes across all tables.
    pub fn memory_bytes(&self) -> usize {
        self.tables.values().map(TableData::memory_bytes).sum()
    }

    /// Enable durability: every mutating operation from here on is appended
    /// to `wal` (after its in-memory apply succeeds — the durable append is
    /// the commit point; see [`crate::durability`]).
    pub fn attach_wal(&mut self, wal: WalWriter) {
        self.wal = Some(wal);
    }

    /// Disable durability, returning the writer (e.g. to inspect or sync
    /// it). Subsequent mutations are no longer logged.
    pub fn detach_wal(&mut self) -> Option<WalWriter> {
        self.wal.take()
    }

    /// Whether a WAL is attached.
    pub fn wal_active(&self) -> bool {
        self.wal.is_some()
    }

    /// Counters of the attached WAL writer, if any.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.wal.as_ref().map(|w| *w.stats())
    }

    /// Bytes appended to the attached WAL so far (0 without a WAL).
    pub fn wal_len(&self) -> u64 {
        self.wal.as_ref().map_or(0, |w| w.len())
    }

    /// Force the attached WAL to stable storage regardless of the batching
    /// policy (no-op without a WAL).
    pub fn sync_wal(&mut self) -> Result<()> {
        match &mut self.wal {
            Some(w) => w.sync().map_err(|e| Error::Io(e.to_string())),
            None => Ok(()),
        }
    }

    /// Tables quarantined read-only by crash recovery: name → reason.
    pub fn degraded_tables(&self) -> &BTreeMap<String, String> {
        &self.degraded
    }

    /// Whether a table is quarantined read-only.
    pub fn is_degraded(&self, table: &str) -> bool {
        self.degraded.contains_key(table)
    }

    /// Operator override: lift a recovery quarantine, restoring
    /// writability. Returns whether the table was quarantined.
    pub fn clear_degraded(&mut self, table: &str) -> bool {
        self.degraded.remove(table).is_some()
    }

    /// Quarantine a table read-only (recovery's degraded mode).
    pub(crate) fn mark_degraded(&mut self, table: &str, reason: &str) {
        self.degraded.insert(table.to_string(), reason.to_string());
    }

    /// Reject mutations on quarantined tables.
    pub(crate) fn check_writable(&self, table: &str) -> Result<()> {
        match self.degraded.get(table) {
            Some(reason) => Err(Error::Degraded(format!("{table}: {reason}"))),
            None => Ok(()),
        }
    }

    /// Append one record to the WAL, if durability is enabled. Called
    /// *after* the in-memory apply succeeded; an append failure is
    /// surfaced as [`Error::Io`] (the statement is applied in memory but
    /// not durable — callers treating the WAL as authoritative should
    /// discard the instance and recover).
    pub(crate) fn log_record(&mut self, rec: &WalRecord) -> Result<()> {
        let Some(wal) = &mut self.wal else {
            return Ok(());
        };
        wal.append(rec.table_tag(), &rec.to_payload())
            .map(|_| ())
            .map_err(|e| Error::Io(e.to_string()))
    }
}

/// Collect stats over whatever layout the table currently has, by observing
/// the logical table (partition-transparent).
fn collect_stats(data: &TableData) -> TableStats {
    match data {
        TableData::Single(t) => TableStats::collect(t),
        partitioned => {
            // Partition-aware collection: rebuild logical stats from parts.
            // Cheap approach: materialize nothing; scan via the executor's
            // logical visitors.
            executor::collect_logical_stats(partitioned)
        }
    }
}

fn compact_tables(data: &mut TableData) {
    data.compact_deltas();
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsd_types::{ColumnDef, ColumnType};

    fn schema(name: &str) -> TableSchema {
        TableSchema::new(
            name,
            vec![
                ColumnDef::new("id", ColumnType::BigInt),
                ColumnDef::new("v", ColumnType::Double),
            ],
            vec![0],
        )
        .unwrap()
    }

    #[test]
    fn create_and_load() {
        let mut db = HybridDatabase::new();
        db.create_single(schema("t"), StoreKind::Column).unwrap();
        let n = db
            .bulk_load(
                "t",
                (0..50).map(|i| vec![Value::BigInt(i), Value::Double(i as f64)]),
            )
            .unwrap();
        assert_eq!(n, 50);
        assert_eq!(db.row_count("t").unwrap(), 50);
        let stats = &db.catalog().entry_by_name("t").unwrap().stats;
        assert_eq!(stats.row_count, 50);
        assert_eq!(stats.columns[0].distinct, 50);
    }

    #[test]
    fn unknown_table_errors() {
        let db = HybridDatabase::new();
        assert!(db.table_data("nope").is_err());
    }

    #[test]
    fn index_creation_annotates_catalog() {
        let mut db = HybridDatabase::new();
        db.create_single(schema("r"), StoreKind::Row).unwrap();
        db.create_index("r", 1).unwrap();
        let entry = db.catalog().entry_by_name("r").unwrap();
        assert_eq!(entry.indexed_columns, vec![1]);
        // column-store index creation is a no-op but records the intent
        db.create_single(schema("c"), StoreKind::Column).unwrap();
        db.create_index("c", 1).unwrap();
        assert_eq!(
            db.catalog().entry_by_name("c").unwrap().indexed_columns,
            vec![1]
        );
    }

    #[test]
    fn memory_accounting() {
        let mut db = HybridDatabase::new();
        db.create_single(schema("t"), StoreKind::Row).unwrap();
        db.bulk_load(
            "t",
            (0..10).map(|i| vec![Value::BigInt(i), Value::Double(0.0)]),
        )
        .unwrap();
        assert!(db.memory_bytes() > 0);
    }
}
