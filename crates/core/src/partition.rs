//! Store-aware partitioning heuristic (Section 3.2 / 4 of the paper).
//!
//! Exhaustively searching partitionings is "prohibitive expensive", so the
//! paper proposes a heuristic with (up to) two horizontal and (up to) two
//! vertical partitions per table:
//!
//! * **horizontal** — if the insert fraction is "sufficiently high", a
//!   row-store partition for newly arriving tuples; if some tuples are
//!   "frequently updated as a whole", a row-store partition covering them
//!   (located via the recorded update-predicate envelopes);
//! * **vertical** — attributes "mainly and often used for updates or point
//!   queries rather than analyses" go to a row-store fragment.

use hsd_catalog::{HorizontalSpec, PartitionSpec, TableActivity, TableStats, VerticalSpec};
use hsd_types::{ColumnIdx, TableSchema, Value};

/// Thresholds of the partitioning heuristic.
#[derive(Debug, Clone)]
pub struct PartitionAdvisorConfig {
    /// Minimum insert fraction for a hot insert partition ("if it is
    /// sufficiently high a row-store partition ... will be recommended").
    pub min_insert_fraction: f64,
    /// Minimum number of updates before the update envelope is trusted.
    pub min_updates: u64,
    /// The hot region must cover at most this fraction of the table.
    pub max_hot_fraction: f64,
    /// Minimum OLAP queries on the table before partitioning is considered
    /// (a pure-OLTP table is better served by a plain row-store table).
    pub min_aggregations: u64,
    /// A column is an "OLTP attribute" when its OLTP uses exceed
    /// `oltp_dominance ×` its OLAP uses. The default is deliberately high:
    /// one aggregation or grouping reads *every* row while one update
    /// touches ~one, so a column with any regular analytical use belongs to
    /// the column fragment (the paper: "mainly and often used for updates
    /// or point queries *rather than analyses*").
    pub oltp_dominance: f64,
    /// Minimum OLTP statements before vertical partitioning is considered.
    pub min_oltp_statements: u64,
}

impl Default for PartitionAdvisorConfig {
    fn default() -> Self {
        PartitionAdvisorConfig {
            min_insert_fraction: 0.05,
            min_updates: 8,
            max_hot_fraction: 0.5,
            min_aggregations: 1,
            oltp_dominance: 64.0,
            min_oltp_statements: 8,
        }
    }
}

/// Estimated fraction of a table's rows that live in the **hot** row-store
/// partition of `spec`'s horizontal split (`split_column >= split_value`),
/// from basic statistics — the selectivity split both the layout estimator
/// and fragment-level maintenance costing use, so the same candidate is
/// priced with the same hot/cold masses everywhere.
///
/// Missing information degrades to **no horizontal split** (`0.0`, i.e.
/// everything cold): no horizontal spec, no statistics for the split
/// column, or a split column whose max is unknown. (Feeding a `Null` max
/// into the selectivity estimate would return the whole-domain fallback of
/// 1.0 and price the partition as 100 % hot row store — garbage in the
/// direction that hides the cold column fragment entirely.)
pub fn horizontal_hot_fraction(stats: &TableStats, spec: &PartitionSpec) -> f64 {
    let Some(h) = &spec.horizontal else {
        return 0.0;
    };
    let Some(col) = stats.columns.get(h.split_column) else {
        return 0.0;
    };
    let Some(max) = col.max.clone() else {
        return 0.0;
    };
    stats
        .estimate_range_selectivity(h.split_column, &h.split_value, &max)
        .clamp(0.0, 1.0)
}

/// Recommend a partitioning for one table, or `None` when the heuristic
/// finds nothing beneficial.
pub fn recommend_partition(
    schema: &TableSchema,
    stats: &TableStats,
    activity: &TableActivity,
    cfg: &PartitionAdvisorConfig,
) -> Option<PartitionSpec> {
    // Partitioning only pays off for mixed workloads: a table never
    // aggregated belongs wholly to the row store (table-level decision).
    if activity.aggregations < cfg.min_aggregations {
        return None;
    }
    let horizontal = recommend_horizontal(schema, stats, activity, cfg);
    let vertical = recommend_vertical(schema, activity, cfg);
    if horizontal.is_none() && vertical.is_none() {
        return None;
    }
    Some(PartitionSpec {
        horizontal,
        vertical,
        ..Default::default()
    })
}

/// Horizontal split: prefer the update-envelope hot region; fall back to an
/// insert-only partition boundary above the current maximum.
fn recommend_horizontal(
    schema: &TableSchema,
    stats: &TableStats,
    activity: &TableActivity,
    cfg: &PartitionAdvisorConfig,
) -> Option<HorizontalSpec> {
    // "Get tuples that are frequently updated as a whole."
    if activity.updates >= cfg.min_updates {
        if let Some((col, env)) = activity
            .update_envelopes
            .iter()
            .filter(|(_, e)| e.count >= cfg.min_updates)
            .max_by_key(|(_, e)| e.count)
        {
            if let Some(lo) = &env.lo {
                if let Some(max) = stats.columns.get(*col).and_then(|c| c.max.as_ref()) {
                    let fraction = stats.estimate_range_selectivity(*col, lo, max);
                    if fraction <= cfg.max_hot_fraction && fraction > 0.0 {
                        return Some(HorizontalSpec {
                            split_column: *col,
                            split_value: lo.clone(),
                        });
                    }
                }
            }
        }
    }
    // "Get fraction of insert queries to determine if a partition for
    // inserts is meaningful."
    if activity.insert_fraction() >= cfg.min_insert_fraction {
        let pk_col = schema.primary_key[0];
        if let Some(split) = stats
            .columns
            .get(pk_col)
            .and_then(|c| c.max.as_ref())
            .and_then(next_value)
        {
            return Some(HorizontalSpec {
                split_column: pk_col,
                split_value: split,
            });
        }
    }
    None
}

/// Vertical split: collect the OLTP attributes.
fn recommend_vertical(
    schema: &TableSchema,
    activity: &TableActivity,
    cfg: &PartitionAdvisorConfig,
) -> Option<VerticalSpec> {
    let oltp_statements = activity.updates + activity.selects;
    if oltp_statements < cfg.min_oltp_statements {
        return None;
    }
    let mut row_cols: Vec<ColumnIdx> = Vec::new();
    let mut olap_cols = 0usize;
    for (col, a) in activity.columns.iter().enumerate() {
        if schema.is_pk_column(col) {
            continue;
        }
        let oltp = a.oltp_score() as f64;
        let olap = a.olap_score() as f64;
        if olap > 0.0 && oltp <= olap {
            olap_cols += 1;
        }
        if oltp > 0.0 && oltp > cfg.oltp_dominance * olap {
            row_cols.push(col);
        }
    }
    let non_key = schema.arity() - schema.primary_key.len();
    // No OLTP attributes, or nothing analytical left for the column
    // fragment: vertical partitioning is pointless.
    if row_cols.is_empty() || row_cols.len() >= non_key || olap_cols == 0 {
        return None;
    }
    Some(VerticalSpec { row_cols })
}

/// The smallest value strictly greater than `v` (for placing an empty hot
/// partition above the current domain).
fn next_value(v: &Value) -> Option<Value> {
    match v {
        Value::Int(x) => Some(Value::Int(x.checked_add(1)?)),
        Value::BigInt(x) => Some(Value::BigInt(x.checked_add(1)?)),
        Value::Date(x) => Some(Value::Date(x.checked_add(1)?)),
        Value::Decimal(x) => Some(Value::Decimal(x.checked_add(1)?)),
        Value::Double(x) => Some(Value::Double(x + f64::EPSILON * x.abs().max(1.0))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsd_catalog::ColumnStats;
    use hsd_types::{ColumnDef, ColumnType};

    fn schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", ColumnType::BigInt),
                ColumnDef::new("kf", ColumnType::Double),
                ColumnDef::new("grp", ColumnType::Integer),
                ColumnDef::new("st", ColumnType::Integer),
            ],
            vec![0],
        )
        .unwrap()
    }

    fn stats(rows: usize) -> TableStats {
        TableStats {
            row_count: rows,
            columns: (0..4)
                .map(|c| ColumnStats {
                    distinct: if c == 0 { rows } else { 100 },
                    min: Some(Value::BigInt(0)),
                    max: Some(Value::BigInt(rows as i64 - 1)),
                    compression_rate: 0.5,
                })
                .collect(),
        }
    }

    fn base_activity() -> TableActivity {
        let mut a = TableActivity::new(4);
        a.aggregations = 20;
        a.columns[1].aggregates = 20;
        a.columns[2].group_bys = 10;
        a
    }

    #[test]
    fn no_partition_without_olap() {
        let mut a = TableActivity::new(4);
        a.updates = 100;
        a.columns[3].update_sets = 100;
        let spec = recommend_partition(&schema(), &stats(1000), &a, &Default::default());
        assert!(spec.is_none(), "pure OLTP tables are not partitioned");
    }

    #[test]
    fn hot_update_region_becomes_horizontal_partition() {
        let mut a = base_activity();
        a.updates = 50;
        a.columns[3].update_sets = 50;
        // updates concentrate on ids >= 900 of 1000
        a.update_envelopes
            .entry(0)
            .or_default()
            .observe(&Value::BigInt(900), &Value::BigInt(999));
        a.update_envelopes.get_mut(&0).unwrap().count = 50;
        let spec = recommend_partition(&schema(), &stats(1000), &a, &Default::default()).unwrap();
        let h = spec.horizontal.expect("horizontal split expected");
        assert_eq!(h.split_column, 0);
        assert_eq!(h.split_value, Value::BigInt(900));
    }

    #[test]
    fn wide_update_envelope_rejected() {
        let mut a = base_activity();
        a.updates = 50;
        // updates touch everything: no meaningful hot region
        a.update_envelopes
            .entry(0)
            .or_default()
            .observe(&Value::BigInt(0), &Value::BigInt(999));
        a.update_envelopes.get_mut(&0).unwrap().count = 50;
        let spec = recommend_partition(&schema(), &stats(1000), &a, &Default::default());
        assert!(spec.is_none_or(|s| s.horizontal.is_none()));
    }

    #[test]
    fn insert_heavy_workload_gets_empty_hot_partition() {
        let mut a = base_activity();
        a.inserts = 50;
        a.selects = 10;
        let spec = recommend_partition(&schema(), &stats(1000), &a, &Default::default()).unwrap();
        let h = spec.horizontal.expect("insert partition expected");
        assert_eq!(h.split_column, 0);
        // boundary sits just above the current max id (999)
        assert_eq!(h.split_value, Value::BigInt(1000));
    }

    #[test]
    fn oltp_attributes_go_to_row_fragment() {
        let mut a = base_activity();
        a.updates = 30;
        a.selects = 10;
        a.columns[3].update_sets = 30;
        a.columns[3].select_projs = 10;
        let spec = recommend_partition(&schema(), &stats(1000), &a, &Default::default()).unwrap();
        let v = spec.vertical.expect("vertical split expected");
        assert_eq!(v.row_cols, vec![3]);
    }

    #[test]
    fn no_vertical_when_everything_is_oltp() {
        let mut a = base_activity();
        a.updates = 30;
        a.selects = 10;
        // every non-key column is OLTP-dominant
        for c in 1..4 {
            a.columns[c].update_sets = 100;
            a.columns[c].aggregates = 0;
            a.columns[c].group_bys = 0;
        }
        a.columns[1].aggregates = 0;
        a.columns[2].group_bys = 0;
        let spec = recommend_partition(&schema(), &stats(1000), &a, &Default::default());
        assert!(spec.is_none_or(|s| s.vertical.is_none()));
    }

    #[test]
    fn hot_fraction_from_split_selectivity() {
        let spec = PartitionSpec {
            horizontal: Some(HorizontalSpec {
                split_column: 0,
                split_value: Value::BigInt(900),
            }),
            vertical: None,
            ..Default::default()
        };
        let f = horizontal_hot_fraction(&stats(1000), &spec);
        assert!((f - 99.0 / 999.0).abs() < 1e-9, "got {f}");
        // No horizontal split -> nothing hot.
        assert_eq!(
            horizontal_hot_fraction(&stats(1000), &PartitionSpec::default()),
            0.0
        );
    }

    /// Regression: a split column with missing statistics must mean "no
    /// horizontal split information" (hot fraction 0), not the selectivity
    /// estimator's whole-domain fallback of 1.0 that priced the partition
    /// as 100 % hot row store.
    #[test]
    fn missing_split_stats_mean_no_hot_fraction() {
        let spec = PartitionSpec {
            horizontal: Some(HorizontalSpec {
                split_column: 0,
                split_value: Value::BigInt(900),
            }),
            vertical: None,
            ..Default::default()
        };
        // Empty stats: the split column exists but min/max are unknown.
        assert_eq!(horizontal_hot_fraction(&TableStats::empty(4), &spec), 0.0);
        // Split column out of range of the stats vector.
        assert_eq!(horizontal_hot_fraction(&TableStats::empty(0), &spec), 0.0);
    }

    #[test]
    fn next_value_variants() {
        assert_eq!(next_value(&Value::Int(5)), Some(Value::Int(6)));
        assert_eq!(next_value(&Value::BigInt(5)), Some(Value::BigInt(6)));
        assert_eq!(next_value(&Value::Date(5)), Some(Value::Date(6)));
        assert!(next_value(&Value::text("x")).is_none());
        let d = next_value(&Value::Double(1.0)).unwrap();
        assert!(matches!(d, Value::Double(x) if x > 1.0));
    }
}
