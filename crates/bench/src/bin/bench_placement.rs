//! Maintenance-aware placement + incremental-merge ablation, recorded as
//! `BENCH_placement.json`.
//!
//! Two experiments back the maintenance-aware-placement PR:
//!
//! 1. **Placement ablation** — a write-heavy workload (fresh-value point
//!    updates with a thin stream of aggregations) is given to two advisors:
//!    *maintenance-blind* (query cost only — the pre-PR comparison) and
//!    *maintenance-aware* (column candidates are charged their modeled
//!    merge amortization and inter-merge tail penalty). The workload is
//!    then **executed** under each recommended placement; the claim is that
//!    the blind advisor keeps the table columnar for its scan savings while
//!    the aware advisor sees the delta upkeep, recommends the row store,
//!    and its placement measures faster.
//! 2. **Merge-pause ablation** — the same delta tail is merged once with
//!    the one-shot full merge (a single stop-the-world remap) and once
//!    through the incremental path (`merge_delta_step`, bounded remap
//!    budget per slice). The claim is that the incremental path bounds the
//!    maximum single pause well below the full-merge pause while doing the
//!    same logical work.
//!
//! Run with `cargo run --release -p hsd-bench --bin bench_placement`
//! (`-- --smoke` for the small CI configuration). A committed
//! `cost_model.json` supplies the advisor's model when present; otherwise a
//! quick calibration runs first.

use std::time::Instant;

use hsd_bench::ratio_json;
use hsd_core::StorageAdvisor;
use hsd_engine::{mover, HybridDatabase, WorkloadRunner};
use hsd_query::{
    AggFunc, Aggregate, AggregateQuery, InsertQuery, Query, TableSpec, UpdateQuery, Workload,
};
use hsd_storage::{ColRange, StoreKind};
use hsd_types::{Json, Value};

struct Scale {
    /// Rows of the placement-ablation table.
    rows: usize,
    /// Statements of the write-heavy workload.
    statements: usize,
    /// One scan per this many statements (the rest are updates). The mix
    /// sits in the wedge where scan savings still win the *query-cost-only*
    /// comparison but delta upkeep dominates the real bill.
    scan_every: usize,
    /// Rows of the merge-pause table.
    merge_rows: usize,
    /// Fresh-value updates growing the merge-pause table's tail.
    merge_tail: usize,
    /// Remap budget (rows per slice) of the incremental merge.
    merge_budget: usize,
    smoke: bool,
}

impl Scale {
    fn from_args() -> Self {
        let smoke = std::env::args().any(|a| a == "--smoke");
        if smoke {
            Scale {
                rows: 12_000,
                statements: 1_500,
                scan_every: 20,
                merge_rows: 60_000,
                merge_tail: 2_000,
                merge_budget: 4_096,
                smoke: true,
            }
        } else {
            Scale {
                rows: 40_000,
                statements: 4_000,
                scan_every: 30,
                merge_rows: 200_000,
                merge_tail: 6_000,
                merge_budget: 16_384,
                smoke: false,
            }
        }
    }
}

fn spec(rows: usize) -> TableSpec {
    TableSpec::paper_wide("p", rows, 0x91AC)
}

/// Write-heavy stream: single-row inserts (every column-store insert
/// consults all 30 dictionaries and grows several tails — the fresh key
/// plus ten fresh keyfigure values each) against a thin stream of
/// *selective* range-filtered aggregations, the scan shape whose predicate
/// evaluation pays the dictionary-tail penalty. The mix keeps enough
/// analytical pressure that a query-cost-only comparison still prefers the
/// column store, while the delta upkeep (tail-degraded scans plus the
/// engine's watermark merges) says otherwise.
fn write_heavy_workload(s: &TableSpec, statements: usize, scan_every: usize) -> Workload {
    let kf = s.kf_col(0);
    let scan = Query::Aggregate(AggregateQuery {
        table: s.name.clone(),
        aggregates: vec![Aggregate {
            func: AggFunc::Sum,
            column: kf,
        }],
        group_by: None,
        // Selective: inserted keyfigures stay below 1e9, so the predicate
        // matches nothing and the scan is pure predicate evaluation — the
        // term the tail degrades.
        filter: vec![ColRange::ge(kf, Value::Double(1e9))],
        join: None,
    });
    let arity = s.schema().expect("schema").arity();
    let queries = (0..statements)
        .map(|i| {
            if i % scan_every == scan_every - 1 {
                scan.clone()
            } else {
                // Fresh key beyond the loaded range; fresh keyfigure values
                // (each interns a new tail entry); small-domain group /
                // status values that already exist in the dictionaries.
                let row: Vec<Value> = (0..arity)
                    .map(|c| {
                        if c == 0 {
                            Value::BigInt((s.rows + i) as i64)
                        } else if (s.kf_col(0)..s.kf_col(0) + s.keyfigures).contains(&c) {
                            Value::Double(7.7e8 + (i * s.keyfigures + c) as f64 * 0.017)
                        } else {
                            Value::Int((i % 7) as i32)
                        }
                    })
                    .collect();
                Query::Insert(InsertQuery {
                    table: s.name.clone(),
                    rows: vec![row],
                })
            }
        })
        .collect();
    Workload::from_queries(queries)
}

fn build_db(s: &TableSpec, store: StoreKind) -> HybridDatabase {
    let db = HybridDatabase::new();
    db.create_single(s.schema().expect("schema"), store)
        .expect("create");
    db.bulk_load(&s.name, s.rows()).expect("load");
    db
}

/// Execute the workload under one placement (engine default merge fallback
/// active — the realistic upkeep a placement actually pays) and return the
/// measured wall-clock total.
fn measure_placement(s: &TableSpec, workload: &Workload, store: StoreKind) -> f64 {
    let db = build_db(s, store);
    let report = WorkloadRunner::new().run(&db, workload).expect("run");
    report.total_ms()
}

fn store_str(store: StoreKind) -> &'static str {
    match store {
        StoreKind::Row => "row",
        StoreKind::Column => "column",
    }
}

fn main() {
    let scale = Scale::from_args();
    let model = hsd_bench::advisor_model_or_calibrate("bench_placement", scale.smoke);

    // --- 1. placement ablation -------------------------------------------
    let s = spec(scale.rows);
    let workload = write_heavy_workload(&s, scale.statements, scale.scan_every);
    let db = build_db(&s, StoreKind::Column);
    let schemas = vec![db.catalog().entries()[0].schema.clone()];
    let stats = db
        .catalog()
        .entries()
        .iter()
        .map(|e| (e.schema.name.clone(), e.stats.clone()))
        .collect();
    drop(db);

    let blind = StorageAdvisor::maintenance_blind(model.clone());
    let aware = StorageAdvisor::new(model);
    let rec_blind = blind
        .recommend_offline(&schemas, &stats, &workload, false)
        .expect("blind recommendation");
    let rec_aware = aware
        .recommend_offline(&schemas, &stats, &workload, false)
        .expect("aware recommendation");
    let pick = |rec: &hsd_core::Recommendation| -> StoreKind {
        match rec.layout.placement("p") {
            hsd_catalog::TablePlacement::Single(store) => store,
            other => panic!("partitioning disabled, got {other:?}"),
        }
    };
    let blind_store = pick(&rec_blind);
    let aware_store = pick(&rec_aware);
    eprintln!(
        "[bench_placement] blind picks {} (rs {:.1} ms vs cs {:.1} ms), \
         aware picks {} (rs {:.1} ms vs cs {:.1} ms)",
        store_str(blind_store),
        rec_blind.tables[0].cost_row_ms,
        rec_blind.tables[0].cost_column_ms,
        store_str(aware_store),
        rec_aware.tables[0].cost_row_ms,
        rec_aware.tables[0].cost_column_ms,
    );
    let row_ms = measure_placement(&s, &workload, StoreKind::Row);
    let column_ms = measure_placement(&s, &workload, StoreKind::Column);
    let measured = |store: StoreKind| match store {
        StoreKind::Row => row_ms,
        StoreKind::Column => column_ms,
    };
    let blind_ms = measured(blind_store);
    let aware_ms = measured(aware_store);
    let placement_pass = blind_store != aware_store && aware_ms < blind_ms;
    eprintln!(
        "[bench_placement] measured: row {row_ms:.1} ms, column {column_ms:.1} ms; \
         aware choice {:.1} ms vs blind choice {:.1} ms ({:.2}x) -> {}",
        aware_ms,
        blind_ms,
        blind_ms / aware_ms,
        if placement_pass { "PASS" } else { "FAIL" }
    );

    // --- 2. merge-pause ablation -----------------------------------------
    // The tail grows on a low-cardinality group column (fresh Int values):
    // the dictionary rebuild then sorts a few thousand entries while the
    // code-vector remap covers every row — the remap is the pause the
    // incremental path bounds, so it must dominate.
    let ms = spec(scale.merge_rows);
    let grow_tail = |db: &HybridDatabase| {
        let grp = ms.grp_col(0);
        for i in 0..scale.merge_tail {
            db.execute(&Query::Update(UpdateQuery {
                table: ms.name.clone(),
                sets: vec![(grp, Value::Int(1_000 + i as i32))],
                filter: vec![ColRange::eq(0, Value::BigInt(((i * 29) % ms.rows) as i64))],
            }))
            .expect("update");
        }
    };
    let db_full = build_db(&ms, StoreKind::Column);
    db_full.set_merge_config(hsd_engine::MergeConfig::disabled());
    grow_tail(&db_full);
    let tail = db_full.delta_tail(&ms.name).expect("tail");
    let start = Instant::now();
    let merged_full = mover::merge_delta(&db_full, &ms.name).expect("full merge");
    let full_pause_ms = start.elapsed().as_secs_f64() * 1e3;

    let db_incr = build_db(&ms, StoreKind::Column);
    db_incr.set_merge_config(hsd_engine::MergeConfig::disabled());
    grow_tail(&db_incr);
    let mut max_pause_ms = 0.0f64;
    let mut incr_total_ms = 0.0f64;
    let mut slices = 0usize;
    let mut merged_incr = 0usize;
    loop {
        let start = Instant::now();
        let p =
            mover::merge_delta_step(&db_incr, &ms.name, scale.merge_budget).expect("merge slice");
        let pause = start.elapsed().as_secs_f64() * 1e3;
        max_pause_ms = max_pause_ms.max(pause);
        incr_total_ms += pause;
        merged_incr += p.entries_folded;
        slices += 1;
        if p.done {
            break;
        }
        assert!(slices < 100_000, "incremental merge must terminate");
    }
    assert_eq!(merged_full, merged_incr, "both paths fold the same tail");
    assert_eq!(db_incr.delta_tail(&ms.name).expect("tail"), 0);
    let merge_pass = max_pause_ms < full_pause_ms / 2.0;
    eprintln!(
        "[bench_placement] merge of {tail} tail entries over {} rows: full pause \
         {full_pause_ms:.1} ms; incremental {slices} slices, max pause {max_pause_ms:.2} ms, \
         total {incr_total_ms:.1} ms ({:.1}x pause reduction) -> {}",
        scale.merge_rows,
        full_pause_ms / max_pause_ms,
        if merge_pass { "PASS" } else { "FAIL" }
    );

    let pass = placement_pass && merge_pass;
    let doc = Json::obj([
        ("benchmark", Json::Str("maintenance_aware_placement".into())),
        ("smoke", Json::Bool(scale.smoke)),
        (
            "placement",
            Json::obj([
                ("rows", Json::Int(scale.rows as i64)),
                ("statements", Json::Int(scale.statements as i64)),
                ("blind_choice", Json::Str(store_str(blind_store).into())),
                ("aware_choice", Json::Str(store_str(aware_store).into())),
                (
                    "blind_est_row_ms",
                    Json::Num(rec_blind.tables[0].cost_row_ms),
                ),
                (
                    "blind_est_column_ms",
                    Json::Num(rec_blind.tables[0].cost_column_ms),
                ),
                (
                    "aware_est_row_ms",
                    Json::Num(rec_aware.tables[0].cost_row_ms),
                ),
                (
                    "aware_est_column_ms",
                    Json::Num(rec_aware.tables[0].cost_column_ms),
                ),
                ("measured_row_ms", Json::Num(row_ms)),
                ("measured_column_ms", Json::Num(column_ms)),
                ("blind_choice_ms", Json::Num(blind_ms)),
                ("aware_choice_ms", Json::Num(aware_ms)),
                ("aware_speedup", ratio_json(blind_ms, aware_ms)),
                ("pass", Json::Bool(placement_pass)),
            ]),
        ),
        (
            "incremental_merge",
            Json::obj([
                ("rows", Json::Int(scale.merge_rows as i64)),
                ("tail_entries", Json::Int(tail as i64)),
                ("budget_rows", Json::Int(scale.merge_budget as i64)),
                ("full_pause_ms", Json::Num(full_pause_ms)),
                ("incremental_slices", Json::Int(slices as i64)),
                ("incremental_max_pause_ms", Json::Num(max_pause_ms)),
                ("incremental_total_ms", Json::Num(incr_total_ms)),
                ("pause_reduction", ratio_json(full_pause_ms, max_pause_ms)),
                ("pass", Json::Bool(merge_pass)),
            ]),
        ),
        ("pass", Json::Bool(pass)),
    ]);
    std::fs::write("BENCH_placement.json", doc.to_string_pretty() + "\n")
        .expect("write BENCH_placement.json");
    eprintln!("[bench_placement] wrote BENCH_placement.json");
    if !pass {
        std::process::exit(1);
    }
}
