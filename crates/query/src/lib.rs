//! Query representation and workload generation.
//!
//! The advisor consumes query *characteristics* — query type, number of
//! aggregates and their functions, grouping, selectivity, number of selected
//! or affected columns and rows — so the AST here carries exactly those,
//! already resolved to column indexes.
//!
//! [`generator`] builds the synthetic tables and mixed OLAP/OLTP workloads
//! of the paper's evaluation ("we carefully generated different data sets
//! and workloads to analyze the impact of different data and query
//! characteristics"), fully deterministic under a seed.

#![warn(missing_docs)]

pub mod ast;
pub mod generator;
pub mod workload;

pub use ast::{
    AggFunc, Aggregate, AggregateQuery, InsertQuery, JoinSpec, Query, QueryKind, SelectQuery,
    UpdateQuery,
};
pub use generator::{MixedWorkloadConfig, TableSpec, WorkloadGenerator};
pub use workload::{Workload, WorkloadSummary};
