//! The paper's final scenario (Figure 10) as an application: generate a
//! TPC-H-like database, run the mixed workload on single-store baselines,
//! then let the advisor pick a table-level and a partitioned layout.
//!
//! ```sh
//! cargo run --release --example tpch_advisor
//! ```

use std::sync::Arc;

use hybrid_store_advisor::advisor::report;
use hybrid_store_advisor::prelude::*;
use hybrid_store_advisor::tpch::{generate_workload, schema, TpchGenerator, TpchWorkloadConfig};

fn main() -> hybrid_store_advisor::types::Result<()> {
    let g = TpchGenerator::new(0.01, 1);
    let workload = generate_workload(
        &g,
        &TpchWorkloadConfig {
            queries: 2_000,
            olap_fraction: 0.01,
            ..Default::default()
        },
    );
    println!(
        "TPC-H-like database: {} orders, {} lineitems; workload: {} queries ({:.1}% OLAP)",
        g.orders(),
        g.lineitems(),
        workload.len(),
        workload.olap_fraction() * 100.0
    );
    let runner = WorkloadRunner::new();

    // Baselines.
    let mut baseline_stats = None;
    for store in [StoreKind::Row, StoreKind::Column] {
        let db = HybridDatabase::new();
        g.load_uniform(&db, store)?;
        if baseline_stats.is_none() {
            baseline_stats = Some(
                db.catalog()
                    .entries()
                    .iter()
                    .map(|e| (e.schema.name.clone(), e.stats.clone()))
                    .collect::<std::collections::BTreeMap<_, _>>(),
            );
        }
        let t = runner.run(&db, &workload)?;
        println!("all tables in {store}: {:.1} ms", t.total_ms());
    }

    // The advisor.
    println!("\ncalibrating cost model ...");
    let model = calibrate(&CalibrationConfig::quick())?;
    let advisor = StorageAdvisor::new(model);
    let schemas: Vec<_> = schema::all()?.into_iter().map(Arc::new).collect();
    let stats = baseline_stats.expect("stats captured");
    let rec = advisor.recommend_offline(&schemas, &stats, &workload, true)?;
    println!("{}", report::render(&rec));

    // Apply and measure the recommended layout.
    let db = HybridDatabase::new();
    g.load_uniform(&db, StoreKind::Row)?;
    mover::apply_layout(&db, &rec.layout)?;
    let t = runner.run(&db, &workload)?;
    println!("recommended layout: {:.1} ms", t.total_ms());
    Ok(())
}
