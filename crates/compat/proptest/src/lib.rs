//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`proptest!`] macro (with
//! optional `#![proptest_config(...)]`), range / tuple / collection / mapped
//! strategies, [`prop_oneof!`], `any::<T>()`, and the `prop_assert*` macros.
//!
//! Unlike real proptest there is **no shrinking**: failures report the seed
//! and case index so they can be replayed deterministically (all seeds are
//! fixed, so a plain `cargo test` rerun reproduces any failure).

use std::fmt;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub mod strategy;

pub use strategy::Strategy;

/// Failure raised by `prop_assert*` inside a property body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test configuration (subset: number of cases).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 48 }
    }
}

/// Deterministic per-case RNG handed to strategies.
#[derive(Debug)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// RNG for one (test, case) pair. Deterministic across runs.
    pub fn for_case(test_seed: u64, case: u32) -> Self {
        TestRng(SmallRng::seed_from_u64(
            test_seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    /// Uniform draw from a range.
    pub fn range_u64(&mut self, lo: u64, hi_excl: u64) -> u64 {
        debug_assert!(lo < hi_excl);
        lo + self.0.gen_range(0..hi_excl - lo)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.0.gen::<f64>()
    }

    /// One random 64-bit word.
    pub fn word(&mut self) -> u64 {
        self.0.gen::<u64>()
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.word() & 1 == 1
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.word() as u32
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.word() as i32
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.word() as u8
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.word()
    }
}

/// Strategy over `T`'s full domain.
pub fn any<T: Arbitrary>() -> strategy::AnyStrategy<T> {
    strategy::AnyStrategy(std::marker::PhantomData)
}

/// Namespaced strategy constructors (mirrors `proptest::prop`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
}

/// The common import set.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, ProptestConfig,
        TestCaseError,
    };
}

/// Define property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_prop(x in 0i32..10, v in prop::collection::vec(0u32..5, 0..20)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                // Stable per-test seed derived from the test's name.
                let test_seed: u64 = {
                    let name = stringify!($name);
                    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                    for b in name.bytes() {
                        h ^= b as u64;
                        h = h.wrapping_mul(0x1000_0000_01b3);
                    }
                    h
                };
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(test_seed, case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name), case, config.cases, e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert inside a property body (early-returns a [`TestCaseError`]).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), left, right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::TestCaseError(format!($($fmt)+)));
        }
    }};
}

/// Choose uniformly among several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn ranges_and_vecs(x in 3i32..9, v in prop::collection::vec(0u32..5, 0..10)) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(v.len() < 10);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn tuples_and_maps(
            (a, b) in (0u32..10, -1.0f64..1.0),
            flag in any::<bool>(),
            y in (0i64..5).prop_map(|v| v * 2),
        ) {
            prop_assert!(a < 10);
            prop_assert!((-1.0..1.0).contains(&b));
            let _unused: bool = flag;
            prop_assert_eq!(y % 2, 0);
        }

        #[test]
        fn oneof_mixes(v in prop_oneof![0i32..10, 100i32..110]) {
            prop_assert!((0..10).contains(&v) || (100..110).contains(&v));
        }
    }

    #[test]
    fn deterministic_generation() {
        let strat = crate::strategy::vec(0u32..1000, 5..20);
        let mut r1 = crate::TestRng::for_case(1, 2);
        let mut r2 = crate::TestRng::for_case(1, 2);
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }
}
