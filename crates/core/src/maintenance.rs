//! Workload-aware delta-merge scheduling: the decision model behind the
//! online advisor's `MaintenanceAction::Merge` recommendations.
//!
//! The column store's delta tail is a *deferred cost*: every scan between
//! merges pays the `f_tail` degradation, and the merge itself costs
//! `merge_ms`. A size-only trigger ignores the workload — it merges a
//! write-only table (pure cost, no scans ever collect the benefit) exactly
//! as eagerly as a scan-heavy one. The scheduler here instead compares the
//! *modeled* quantities the calibrated cost model already knows: schedule a
//! merge when the scan savings expected over the next observation interval
//! exceed the modeled merge cost.

use hsd_engine::{mover, HybridDatabase};
use hsd_types::Result;

use crate::cost::CostModel;
use crate::estimator::MaintenanceDrivers;

pub use hsd_engine::MergePartition;

/// A maintenance operation the online advisor recommends, alongside (and
/// independently of) its placement adaptations.
#[derive(Debug, Clone, PartialEq)]
pub enum MaintenanceAction {
    /// Fold the dictionary tails of `table`'s column-store partition back
    /// into the sorted region (the delta merge).
    Merge {
        /// Table to merge.
        table: String,
        /// Which physical region holds the delta.
        partition: MergePartition,
    },
    /// Withdraw a previously emitted [`MaintenanceAction::Merge`] whose
    /// justification evaporated before the work started (the table's scan
    /// pressure collapsed while the job sat in a worker's queue). A worker
    /// holding the job should drop it and cancel any in-flight shadow
    /// rebuild ([`hsd_engine::MaintenanceWorker::retract`]); applying the
    /// action directly does the cancellation half.
    Retract {
        /// Table whose scheduled merge is withdrawn.
        table: String,
    },
}

impl MaintenanceAction {
    /// The table this action targets.
    pub fn table(&self) -> &str {
        match self {
            MaintenanceAction::Merge { table, .. } => table,
            MaintenanceAction::Retract { table } => table,
        }
    }

    /// The physical region a [`MaintenanceAction::Merge`] targets (`None`
    /// for retractions, which are table-level).
    pub fn partition(&self) -> Option<MergePartition> {
        match self {
            MaintenanceAction::Merge { partition, .. } => Some(*partition),
            MaintenanceAction::Retract { .. } => None,
        }
    }

    /// Apply the action to the database via the engine's explicit
    /// maintenance entry point; returns how many tail entries were merged.
    ///
    /// The `partition` field routes the work
    /// ([`mover::merge_delta_partition`]): [`MergePartition::Whole`]
    /// compacts every column-store region of the table,
    /// [`MergePartition::Cold`] only the cold partition's column-store
    /// fragment (the hot partition is row-store resident and carries no
    /// delta).
    pub fn apply(&self, db: &HybridDatabase) -> Result<usize> {
        match self {
            MaintenanceAction::Merge { table, partition } => {
                mover::merge_delta_partition(db, table, *partition)
            }
            MaintenanceAction::Retract { table } => {
                mover::cancel_merge(db, table)?;
                Ok(0)
            }
        }
    }

    /// Apply one bounded slice of the action through the engine's
    /// incremental merge ([`mover::merge_delta_step`]): at most
    /// `budget_rows` code-vector entries are remapped before control
    /// returns. Call repeatedly — interleaved with regular statements —
    /// until the returned progress reports `done`; queries between slices
    /// see a fully consistent table. This is how large tables take their
    /// scheduled merges without a full-table stop-the-world pause.
    pub fn apply_chunked(
        &self,
        db: &HybridDatabase,
        budget_rows: usize,
    ) -> Result<hsd_storage::MergeProgress> {
        match self {
            MaintenanceAction::Merge { table, partition } => {
                mover::merge_delta_step_partition(db, table, *partition, budget_rows)
            }
            MaintenanceAction::Retract { table } => {
                mover::cancel_merge(db, table)?;
                Ok(hsd_storage::MergeProgress {
                    done: true,
                    ..Default::default()
                })
            }
        }
    }
}

/// The two sides of a merge-scheduling decision, in modeled milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MergeDecision {
    /// Scan cost the accumulated tail is expected to add over the next
    /// `expected_scans` scans if left unmerged.
    pub scan_savings_ms: f64,
    /// Modeled cost of running the merge now.
    pub merge_cost_ms: f64,
}

impl MergeDecision {
    /// Whether the merge pays for itself: modeled savings must exceed the
    /// modeled cost by `safety_factor` (1.0 = break-even scheduling; larger
    /// values demand a margin before interrupting the workload).
    pub fn beneficial(&self, safety_factor: f64) -> bool {
        self.scan_savings_ms > self.merge_cost_ms * safety_factor
    }
}

/// Evaluate the merge trade-off for a column-store region of `rows` rows
/// carrying `tail` accumulated dictionary-tail entries, over
/// `expected_scans` scan-type statements (aggregations, range selects).
///
/// Savings per scan are the calibrated scan base cost — reference
/// aggregation plus predicate evaluation over the table, the two terms
/// `f_tail` multiplies in the estimator — times the `f_tail` degradation
/// in excess of 1; the merge cost is the calibrated `merge_ms` at the
/// current row count.
///
/// The online advisor does not compare one interval's savings against the
/// full merge cost (that would starve merges under steady moderate scan
/// rates); it *accrues* each interval's modeled penalty and schedules the
/// merge once the total paid since the last merge exceeds the merge cost —
/// the classic rent-or-buy rule, within a constant factor of the optimal
/// offline schedule regardless of how the scan rate fluctuates.
pub fn evaluate_merge(
    model: &CostModel,
    rows: usize,
    tail: usize,
    expected_scans: f64,
) -> MergeDecision {
    let m = &model.column;
    let n = rows as f64;
    let frac = tail as f64 / n.max(1.0);
    let per_scan = m.scan_base_ms(n);
    let penalty_per_scan = per_scan * (m.f_tail.eval(frac).max(1.0) - 1.0);
    MergeDecision {
        scan_savings_ms: penalty_per_scan * expected_scans.max(0.0),
        merge_cost_ms: m.merge_ms.eval(n).max(0.0),
    }
}

// ---------------------------------------------------------------------------
// Maintenance-aware placement: amortized delta upkeep of a column placement

/// The modeled delta-upkeep bill of keeping one table in the column store
/// over a workload window, in model milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MaintenanceEstimate {
    /// Tail penalty the window's scans pay between merges.
    pub scan_penalty_ms: f64,
    /// Merge cost of the merges the rent-or-buy schedule runs.
    pub merge_cost_ms: f64,
    /// Modeled merge count (fractional: an amortized rate, not a tally).
    pub merges: f64,
}

impl MaintenanceEstimate {
    /// Total upkeep: scan penalty plus merge cost.
    pub fn total_ms(&self) -> f64 {
        self.scan_penalty_ms + self.merge_cost_ms
    }
}

/// Estimate the amortized delta-upkeep cost of a column-store placement for
/// a table of `rows` rows over a window with the given
/// [`MaintenanceDrivers`] — the term maintenance-aware placement adds to
/// every column-store candidate before comparing stores.
///
/// The model assumes writes and scans interleave uniformly and that the
/// advisor's own rent-or-buy schedule runs the merges: the tail grows by
/// one entry per modeled write, each scan at tail size `t` pays
/// `scan_base_ms · (f_tail(t/rows) − 1)`, and a merge fires once the
/// penalty accrued since the last merge reaches the modeled merge cost.
/// Under that schedule each merge cycle pays the merge cost twice — once as
/// accrued scan penalty ("rent"), once as the merge itself ("buy") — so the
/// window's upkeep is `2 · merges · merge_ms`, with the cycle length found
/// by solving the accrual equation. When the window's total accrual never
/// reaches one merge cost, no merge fires and only the accrued penalty is
/// charged. Write-only windows (no scans) and scan-only windows (no tail
/// growth) cost nothing, exactly like the scheduler that never merges them.
pub fn estimate_maintenance(
    model: &CostModel,
    rows: usize,
    drivers: MaintenanceDrivers,
) -> MaintenanceEstimate {
    let m = &model.column;
    let n = (rows as f64).max(1.0);
    let growth = drivers.tail_growth;
    let scans = drivers.scans;
    if growth < 1.0 || scans <= 0.0 {
        return MaintenanceEstimate::default();
    }
    let merge_cost = m.merge_ms.eval(n).max(0.0);
    let per_scan = m.scan_base_ms(n);
    // Scans arriving per unit of tail growth (uniform interleave).
    let rate = scans / growth;
    // Accrued penalty while the tail grows from 0 to `t` entries: each of
    // the `rate · t` scans pays the penalty of the then-current tail;
    // approximated by the midpoint tail (exact for linear `f_tail`).
    let accrued =
        |t: f64| -> f64 { rate * t * per_scan * (m.f_tail.eval(t / (2.0 * n)).max(1.0) - 1.0) };
    let window_accrual = accrued(growth);
    if merge_cost <= 0.0 {
        // Free merges: the scheduler merges eagerly and the tail never
        // accumulates a noticeable penalty.
        return MaintenanceEstimate::default();
    }
    if window_accrual <= merge_cost {
        // The whole window never pays for one merge: rent only.
        return MaintenanceEstimate {
            scan_penalty_ms: window_accrual,
            merge_cost_ms: 0.0,
            merges: 0.0,
        };
    }
    // Solve accrued(T*) = merge_cost for the cycle length T* (entries of
    // tail growth per merge cycle); `accrued` is monotone for any
    // non-decreasing f_tail, so bisection converges.
    let (mut lo, mut hi) = (1.0f64, growth);
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if accrued(mid) < merge_cost {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo) < 1e-6 * growth {
            break;
        }
    }
    let cycle = 0.5 * (lo + hi);
    let merges = growth / cycle;
    MaintenanceEstimate {
        scan_penalty_ms: merges * merge_cost,
        merge_cost_ms: merges * merge_cost,
        merges,
    }
}

/// Price the delta upkeep of one placement's column-store region: the
/// [`FragmentDrivers`](crate::estimator::FragmentDrivers) are amortized by
/// the same rent-or-buy rule as [`estimate_maintenance`], at the
/// **fragment's own row count** (merge cost scales with the rows the remap
/// covers, and a cold-fragment merge never remaps the hot partition).
///
/// Together with [`crate::estimator::placement_fragment_drivers`] this is
/// fragment-level upkeep charging: the hot row-store partition of a
/// hot/cold split pays zero by construction (its writes intern nothing),
/// the cold column fragment pays its scaled bill, and vertical fragments
/// pay only for their column-subset assignments.
pub fn estimate_placement_maintenance(
    model: &CostModel,
    fragment: crate::estimator::FragmentDrivers,
) -> MaintenanceEstimate {
    estimate_maintenance(model, fragment.rows, fragment.drivers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::AdjustmentFn;

    /// Model with hand-set maintenance terms: reference scan 1 ms, tail
    /// factor `1 + 10·frac`, merge cost flat 10 ms.
    fn model() -> CostModel {
        let mut m = CostModel::neutral();
        m.column.f_rows = AdjustmentFn::Constant(1.0);
        m.column.f_tail = AdjustmentFn::Linear {
            slope: 10.0,
            intercept: 1.0,
        };
        m.column.merge_ms = AdjustmentFn::Constant(10.0);
        m
    }

    #[test]
    fn decision_boundary_scales_with_expected_scans() {
        let m = model();
        // tail fraction 0.1 -> factor 2.0 -> 1 ms penalty per scan.
        let few = evaluate_merge(&m, 1000, 100, 5.0);
        assert!((few.scan_savings_ms - 5.0).abs() < 1e-9);
        assert!((few.merge_cost_ms - 10.0).abs() < 1e-9);
        assert!(!few.beneficial(1.0), "5 ms savings < 10 ms merge");
        let many = evaluate_merge(&m, 1000, 100, 20.0);
        assert!(many.beneficial(1.0), "20 ms savings > 10 ms merge");
        // exactly break-even is NOT beneficial (strict inequality)
        let even = evaluate_merge(&m, 1000, 100, 10.0);
        assert!(!even.beneficial(1.0));
        // a safety factor demands margin
        assert!(!many.beneficial(2.5), "20 < 10 * 2.5");
    }

    #[test]
    fn decision_boundary_scales_with_tail() {
        let m = model();
        // No tail -> no savings, never beneficial.
        let clean = evaluate_merge(&m, 1000, 0, 1000.0);
        assert_eq!(clean.scan_savings_ms, 0.0);
        assert!(!clean.beneficial(1.0));
        // Bigger tail -> bigger per-scan penalty.
        let small = evaluate_merge(&m, 1000, 50, 10.0);
        let large = evaluate_merge(&m, 1000, 500, 10.0);
        assert!(large.scan_savings_ms > small.scan_savings_ms);
    }

    #[test]
    fn write_only_workloads_never_schedule() {
        let m = model();
        let d = evaluate_merge(&m, 1000, 900, 0.0);
        assert_eq!(d.scan_savings_ms, 0.0);
        assert!(!d.beneficial(0.0), "zero scans -> zero benefit");
    }

    #[test]
    fn maintenance_estimate_zero_without_writes_or_scans() {
        let m = model();
        let no_writes = estimate_maintenance(
            &m,
            1000,
            MaintenanceDrivers {
                tail_growth: 0.0,
                scans: 500.0,
            },
        );
        assert_eq!(no_writes.total_ms(), 0.0);
        let no_scans = estimate_maintenance(
            &m,
            1000,
            MaintenanceDrivers {
                tail_growth: 500.0,
                scans: 0.0,
            },
        );
        assert_eq!(no_scans.total_ms(), 0.0, "no scans -> no rent, no merges");
        let neutral = estimate_maintenance(
            &CostModel::neutral(),
            1000,
            MaintenanceDrivers {
                tail_growth: 500.0,
                scans: 500.0,
            },
        );
        assert_eq!(neutral.total_ms(), 0.0, "neutral model charges nothing");
    }

    #[test]
    fn maintenance_estimate_rent_only_below_one_merge() {
        let m = model();
        // Tiny window: accrual can't reach the 10 ms merge cost, so only
        // the rent is charged and no merges are modeled.
        let e = estimate_maintenance(
            &m,
            1000,
            MaintenanceDrivers {
                tail_growth: 10.0,
                scans: 10.0,
            },
        );
        assert_eq!(e.merges, 0.0);
        assert_eq!(e.merge_cost_ms, 0.0);
        assert!(e.scan_penalty_ms > 0.0 && e.scan_penalty_ms < 10.0);
    }

    #[test]
    fn maintenance_estimate_rent_or_buy_cycles() {
        let m = model();
        // Big window: per-scan penalty at tail T is 10·T/1000 ms (f_tail
        // slope 10, base 1 ms); with one scan per write the accrual over a
        // cycle of length T is T²/200 ms, so a 10 ms merge fires every
        // T* ≈ √2000 ≈ 44.7 entries.
        let e = estimate_maintenance(
            &m,
            1000,
            MaintenanceDrivers {
                tail_growth: 1000.0,
                scans: 1000.0,
            },
        );
        let expected_cycle = 2000.0f64.sqrt();
        let expected_merges = 1000.0 / expected_cycle;
        assert!(
            (e.merges - expected_merges).abs() / expected_merges < 0.05,
            "merges {} vs analytic {}",
            e.merges,
            expected_merges
        );
        // Each cycle pays the merge cost twice: as accrued rent and as the
        // merge itself.
        assert!((e.total_ms() - 2.0 * e.merges * 10.0).abs() < 1e-6);
        // More scans per write -> shorter cycles -> more upkeep.
        let heavier = estimate_maintenance(
            &m,
            1000,
            MaintenanceDrivers {
                tail_growth: 1000.0,
                scans: 4000.0,
            },
        );
        assert!(heavier.total_ms() > e.total_ms());
        assert!(heavier.merges > e.merges);
    }
}
