//! Fragment-level vs full-table maintenance charging for partitioned
//! placements, recorded as `BENCH_partition.json`.
//!
//! The ablation behind partition-aware maintenance costing: a hot/cold
//! skewed **insert + scan** workload (fresh-id single-row inserts against a
//! thin stream of selective aggregations) is given to two advisors with
//! partitioning enabled:
//!
//! * **fragment-charged** (the default, `StorageAdvisor::new`): a
//!   partitioned candidate pays delta upkeep only for its cold column
//!   fragment. The inserts are absorbed by the hot row-store partition and
//!   intern nothing in the cold fragment, so the candidate's upkeep is ~0
//!   and the hybrid layout — row-store inserts, column-store scans — wins
//!   the placement comparison.
//! * **full-table-charged** (`StorageAdvisor::fragment_blind`): the same
//!   candidate is billed as if the whole table were one column table, so
//!   the insert stream's modeled tail growth lands on the partition's bill,
//!   the candidate loses to the single row store, and the advisor rejects
//!   exactly the hybrid layout the paper exists to find.
//!
//! Both recommended layouts are then **executed** (engine merge fallback
//! active — the upkeep a layout actually pays); the claim is that the
//! fragment-charged advisor's partitioned placement also measures faster
//! (`aware_speedup >= 1`).
//!
//! Run with `cargo run --release -p hsd-bench --bin bench_partition_upkeep`
//! (`-- --smoke` for the small CI configuration). A committed
//! `cost_model.json` supplies the advisor's model when present; otherwise a
//! quick calibration runs first.

use hsd_bench::ratio_json;
use hsd_core::{Recommendation, StorageAdvisor};
use hsd_engine::{mover, HybridDatabase, WorkloadRunner};
use hsd_query::{AggFunc, Aggregate, AggregateQuery, InsertQuery, Query, TableSpec, Workload};
use hsd_storage::{ColRange, StoreKind};
use hsd_types::{Json, Value};

struct Scale {
    /// Rows of the table.
    rows: usize,
    /// Statements of the insert + scan workload.
    statements: usize,
    /// One selective aggregation per this many statements (the rest are
    /// fresh-id inserts). The mix sits in the wedge where the *full-table*
    /// upkeep bill exceeds the scan savings of a column region while the
    /// *fragment* bill is ~0 (the hot partition absorbs every insert).
    scan_every: usize,
    smoke: bool,
}

impl Scale {
    fn from_args() -> Self {
        let smoke = std::env::args().any(|a| a == "--smoke");
        if smoke {
            Scale {
                rows: 12_000,
                statements: 1_500,
                scan_every: 20,
                smoke: true,
            }
        } else {
            Scale {
                rows: 40_000,
                statements: 4_000,
                scan_every: 30,
                smoke: false,
            }
        }
    }
}

fn spec(rows: usize) -> TableSpec {
    TableSpec::paper_wide("p", rows, 0x7A31)
}

/// Hot/cold skewed stream: fresh-id single-row inserts (every one grows
/// several dictionary tails of a column-store resident table, but interns
/// *nothing* when routed to a hot row-store partition) against a thin
/// stream of selective range aggregations — the scan shape whose predicate
/// evaluation pays the dictionary-tail penalty, and the analytical pressure
/// that makes a cold column fragment worth keeping.
fn insert_scan_workload(s: &TableSpec, statements: usize, scan_every: usize) -> Workload {
    let kf = s.kf_col(0);
    let scan = Query::Aggregate(AggregateQuery {
        table: s.name.clone(),
        aggregates: vec![Aggregate {
            func: AggFunc::Sum,
            column: kf,
        }],
        group_by: None,
        // Selective: inserted keyfigures stay below 1e9, so the scan is
        // pure predicate evaluation — the term a delta tail degrades.
        filter: vec![ColRange::ge(kf, Value::Double(1e9))],
        join: None,
    });
    let arity = s.schema().expect("schema").arity();
    let queries = (0..statements)
        .map(|i| {
            if i % scan_every == scan_every - 1 {
                scan.clone()
            } else {
                let row: Vec<Value> = (0..arity)
                    .map(|c| {
                        if c == 0 {
                            Value::BigInt((s.rows + i) as i64)
                        } else if (s.kf_col(0)..s.kf_col(0) + s.keyfigures).contains(&c) {
                            Value::Double(7.7e8 + (i * s.keyfigures + c) as f64 * 0.017)
                        } else {
                            Value::Int((i % 7) as i32)
                        }
                    })
                    .collect();
                Query::Insert(InsertQuery {
                    table: s.name.clone(),
                    rows: vec![row],
                })
            }
        })
        .collect();
    Workload::from_queries(queries)
}

/// Execute the workload under one recommended layout (starting from a
/// row-store load, moved by the data mover — so partitioned layouts get
/// their proper hot/cold row split) and return the measured wall-clock
/// total.
fn measure_layout(s: &TableSpec, workload: &Workload, rec: &Recommendation) -> f64 {
    let db = HybridDatabase::new();
    db.create_single(s.schema().expect("schema"), StoreKind::Row)
        .expect("create");
    db.bulk_load(&s.name, s.rows()).expect("load");
    mover::apply_layout(&db, &rec.layout).expect("apply layout");
    let report = WorkloadRunner::new().run(&db, workload).expect("run");
    report.total_ms()
}

fn describe(rec: &Recommendation, table: &str) -> String {
    rec.layout.placement(table).describe()
}

fn main() {
    let scale = Scale::from_args();
    let model = hsd_bench::advisor_model_or_calibrate("bench_partition_upkeep", scale.smoke);

    let s = spec(scale.rows);
    let workload = insert_scan_workload(&s, scale.statements, scale.scan_every);
    // Statistics snapshot of the loaded table (max id feeds the insert
    // partition's split boundary).
    let db = HybridDatabase::new();
    db.create_single(s.schema().expect("schema"), StoreKind::Column)
        .expect("create");
    db.bulk_load(&s.name, s.rows()).expect("load");
    let schemas = vec![db.catalog().entries()[0].schema.clone()];
    let stats = db
        .catalog()
        .entries()
        .iter()
        .map(|e| (e.schema.name.clone(), e.stats.clone()))
        .collect();
    drop(db);

    let aware = StorageAdvisor::new(model.clone());
    let blind = StorageAdvisor::fragment_blind(model);
    let rec_aware = aware
        .recommend_offline(&schemas, &stats, &workload, true)
        .expect("fragment-charged recommendation");
    let rec_blind = blind
        .recommend_offline(&schemas, &stats, &workload, true)
        .expect("full-table-charged recommendation");
    let aware_partitioned = matches!(
        rec_aware.layout.placement(&s.name),
        hsd_catalog::TablePlacement::Partitioned(_)
    );
    let blind_partitioned = matches!(
        rec_blind.layout.placement(&s.name),
        hsd_catalog::TablePlacement::Partitioned(_)
    );
    eprintln!(
        "[bench_partition_upkeep] fragment-charged picks {} (est {:.1} ms), \
         full-table-charged picks {} (est {:.1} ms)",
        describe(&rec_aware, &s.name),
        rec_aware.estimated_ms,
        describe(&rec_blind, &s.name),
        rec_blind.estimated_ms,
    );

    let aware_ms = measure_layout(&s, &workload, &rec_aware);
    let blind_ms = measure_layout(&s, &workload, &rec_blind);
    let choice_pass = aware_partitioned && !blind_partitioned;
    let speedup_pass = aware_ms <= blind_ms;
    let pass = choice_pass && speedup_pass;
    eprintln!(
        "[bench_partition_upkeep] measured: fragment-charged choice {aware_ms:.1} ms, \
         full-table-charged choice {blind_ms:.1} ms ({:.2}x) -> {}",
        blind_ms / aware_ms,
        if pass { "PASS" } else { "FAIL" }
    );

    let doc = Json::obj([
        ("benchmark", Json::Str("partition_fragment_upkeep".into())),
        ("smoke", Json::Bool(scale.smoke)),
        ("rows", Json::Int(scale.rows as i64)),
        ("statements", Json::Int(scale.statements as i64)),
        ("scan_every", Json::Int(scale.scan_every as i64)),
        (
            "fragment_charged",
            Json::obj([
                ("placement", Json::Str(describe(&rec_aware, &s.name))),
                ("partitioned", Json::Bool(aware_partitioned)),
                ("estimated_ms", Json::Num(rec_aware.estimated_ms)),
                ("measured_ms", Json::Num(aware_ms)),
            ]),
        ),
        (
            "full_table_charged",
            Json::obj([
                ("placement", Json::Str(describe(&rec_blind, &s.name))),
                ("partitioned", Json::Bool(blind_partitioned)),
                ("estimated_ms", Json::Num(rec_blind.estimated_ms)),
                ("measured_ms", Json::Num(blind_ms)),
            ]),
        ),
        (
            "modeled_speedup",
            ratio_json(rec_blind.estimated_ms, rec_aware.estimated_ms),
        ),
        ("aware_speedup", ratio_json(blind_ms, aware_ms)),
        ("choice_pass", Json::Bool(choice_pass)),
        ("pass", Json::Bool(pass)),
    ]);
    std::fs::write("BENCH_partition.json", doc.to_string_pretty() + "\n")
        .expect("write BENCH_partition.json");
    eprintln!("[bench_partition_upkeep] wrote BENCH_partition.json");
    if !pass {
        std::process::exit(1);
    }
}
