//! In-memory hybrid storage: a row store and a dictionary-compressed column
//! store.
//!
//! This crate is the physical substrate the storage advisor reasons about.
//! It deliberately reproduces the asymmetries the paper's cost model is built
//! on (Section 2 of the paper):
//!
//! * **Row store** ([`row_store::RowTable`]): rows live contiguously in a
//!   fixed-width arena. Retrieving or updating a whole tuple touches one
//!   small memory region; appending is cheap. Scanning a *single attribute*
//!   strides across full tuples, so analytical scans are slow. A hash index
//!   on the primary key serves point queries; optional ordered secondary
//!   indexes accelerate range predicates ("if an index is available" in the
//!   paper's `f_selectivity`).
//! * **Column store** ([`column_store::ColumnTable`]): every column is
//!   dictionary-encoded — an order-preserving *sorted* dictionary plus an
//!   unsorted *tail* that absorbs newly arriving values (the delta of
//!   HANA-style stores), and a bit-packed code vector. Scans over one
//!   attribute read only that column's tightly packed codes, so aggregation
//!   is fast; the sorted dictionary acts as the "implicit index" the paper
//!   mentions for selections. Inserts must consult every column's dictionary
//!   and tuple reconstruction must gather one code per column, which is what
//!   makes OLTP work comparatively expensive.
//!
//! The [`table::Table`] enum gives the engine a store-agnostic interface, so
//! the same query executor runs against either store — exactly the situation
//! in which "where should this table live?" becomes the advisor's question.
//!
//! # The batched scan pipeline
//!
//! Column-store scans never decode element-at-a-time. The pipeline has
//! three layers:
//!
//! 1. **Word-level bit-packing** ([`bitpack::BitPackedVec`]): codes live in
//!    delimiter-aligned fields (`width + 1` bits, never straddling a word),
//!    so [`bitpack::BitPackedVec::decode_into`] unpacks whole words through
//!    per-width monomorphized kernels, and
//!    [`bitpack::BitPackedVec::match_interval_into`] range-tests every code
//!    in a word with three ALU ops — word-parallel SWAR over the packed
//!    data, no decode at all.
//! 2. **Selection vectors** ([`selvec::SelVec`]): predicates produce one
//!    match bit per row instead of materialized `Vec<u32>` id lists.
//!    Conjunctions combine with word-wise `AND`s, empty intermediate
//!    selections short-circuit the remaining conjuncts, and an all-zero
//!    word lets later predicates skip 64 rows (or a whole 1024-row block)
//!    at a time. Row-store filters convert into the same representation
//!    ([`row_store::RowTable::filter_selvec`]), which is what makes
//!    mixed-fragment conjunctions in vertically split tables cheap.
//! 3. **Block-decoded consumers**: aggregation visits codes in
//!    [`bitpack::BLOCK`]-sized decoded runs
//!    ([`column_store::ColumnData::for_each_numeric_sel`]), and the engine's
//!    group-by/join loops decode group and aggregate columns block-at-a-time
//!    rather than calling `code_at` per row.
//!
//! The element-at-a-time path is retained as the ablation baseline
//! ([`column_store::ColumnTable::filter_rows_scalar`], plus the
//! `CodeVec::Plain` encoding toggle); `hsd-bench`'s `bench_scan` binary
//! records the batched-vs-scalar throughput in `BENCH_scan.json`.

#![deny(missing_docs)]

pub mod bitpack;
pub mod column_store;
pub mod dictionary;
pub mod predicate;
pub mod row_store;
pub mod segment;
pub mod selvec;
pub mod table;
pub mod wal;

pub use bitpack::{BitPackedVec, BLOCK};
pub use column_store::{ColumnData, ColumnTable, MergePlan, MergeProgress};
pub use dictionary::Dictionary;
pub use predicate::{ColRange, RowSel};
pub use row_store::RowTable;
pub use segment::{decode_segment, encode_segment, SegmentStore};
pub use selvec::SelVec;
pub use table::{PkKey, StoreKind, Table};
pub use wal::{
    crc32, scan_frames, FaultFile, FaultPlan, FileBackend, Frame, MemBackend, RetryPolicy,
    ScanReport, SyncPolicy, WalBackend, WalStats, WalWriter,
};
