//! Workloads: ordered sequences of queries with summary statistics.

use std::collections::BTreeMap;

use crate::ast::{Query, QueryKind};

/// An ordered workload, as recorded or generated.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Workload {
    /// The queries, in execution order.
    pub queries: Vec<Query>,
}

/// Aggregate facts about a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSummary {
    /// Total number of queries.
    pub total: usize,
    /// Queries per kind.
    pub by_kind: BTreeMap<&'static str, usize>,
    /// Fraction of OLAP (aggregation) queries.
    pub olap_fraction: f64,
}

impl Workload {
    /// Empty workload.
    pub fn new() -> Self {
        Self::default()
    }

    /// Workload from a query list.
    pub fn from_queries(queries: Vec<Query>) -> Self {
        Workload { queries }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the workload has no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Append a query.
    pub fn push(&mut self, q: Query) {
        self.queries.push(q);
    }

    /// Fraction of OLAP queries.
    pub fn olap_fraction(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        let olap = self.queries.iter().filter(|q| q.is_olap()).count();
        olap as f64 / self.queries.len() as f64
    }

    /// Names of all tables the workload touches, sorted and deduplicated.
    pub fn tables(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self.queries.iter().flat_map(|q| q.tables()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Summarize the workload.
    pub fn summary(&self) -> WorkloadSummary {
        let mut by_kind: BTreeMap<&'static str, usize> = BTreeMap::new();
        for q in &self.queries {
            let key = match q.kind() {
                QueryKind::Aggregation => "aggregation",
                QueryKind::AggregationJoin => "aggregation+join",
                QueryKind::Select => "select",
                QueryKind::Insert => "insert",
                QueryKind::Update => "update",
            };
            *by_kind.entry(key).or_insert(0) += 1;
        }
        WorkloadSummary {
            total: self.queries.len(),
            by_kind,
            olap_fraction: self.olap_fraction(),
        }
    }
}

impl FromIterator<Query> for Workload {
    fn from_iter<I: IntoIterator<Item = Query>>(iter: I) -> Self {
        Workload {
            queries: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AggFunc, AggregateQuery, InsertQuery, SelectQuery};
    use hsd_types::Value;

    fn mixed() -> Workload {
        let mut w = Workload::new();
        w.push(Query::Aggregate(AggregateQuery::simple(
            "t",
            AggFunc::Sum,
            1,
        )));
        w.push(Query::Select(SelectQuery::point("t", 0, Value::Int(1))));
        w.push(Query::Insert(InsertQuery {
            table: "u".into(),
            rows: vec![],
        }));
        w.push(Query::Insert(InsertQuery {
            table: "u".into(),
            rows: vec![],
        }));
        w
    }

    #[test]
    fn olap_fraction_counts_aggregates() {
        let w = mixed();
        assert!((w.olap_fraction() - 0.25).abs() < 1e-9);
        assert_eq!(Workload::new().olap_fraction(), 0.0);
    }

    #[test]
    fn summary_by_kind() {
        let s = mixed().summary();
        assert_eq!(s.total, 4);
        assert_eq!(s.by_kind["aggregation"], 1);
        assert_eq!(s.by_kind["insert"], 2);
        assert_eq!(s.by_kind["select"], 1);
    }

    #[test]
    fn tables_deduplicated() {
        assert_eq!(mixed().tables(), vec!["t", "u"]);
    }

    #[test]
    fn from_iterator() {
        let w: Workload = vec![Query::Insert(InsertQuery {
            table: "x".into(),
            rows: vec![],
        })]
        .into_iter()
        .collect();
        assert_eq!(w.len(), 1);
    }
}
