//! Storage-level predicates.
//!
//! The query layer compiles its predicates down to conjunctions of
//! per-column range constraints ([`ColRange`]); point predicates are
//! degenerate ranges. Keeping the storage interface this narrow lets both
//! stores pick their own evaluation strategy (code-interval matching for the
//! column store, index probes or tuple scans for the row store).

use std::ops::Bound;

use hsd_types::{ColumnIdx, Value};

use crate::dictionary::value_in_range;

/// A range constraint on a single column: `lo <= col <= hi` with
/// configurable bound openness.
///
/// Equality is stored as its own variant holding the value **once**
/// (`ColRange::eq` used to clone the value into both bounds); range readers
/// see it as the degenerate interval `[v, v]` through
/// [`ColRange::lo_ref`] / [`ColRange::hi_ref`].
#[derive(Debug, Clone, PartialEq)]
pub struct ColRange {
    /// Column the constraint applies to.
    pub column: ColumnIdx,
    kind: RangeKind,
}

#[derive(Debug, Clone, PartialEq)]
enum RangeKind {
    /// `col = v`, the value stored once.
    Eq(Value),
    /// `lo <= col <= hi` with explicit bound openness.
    Range { lo: Bound<Value>, hi: Bound<Value> },
}

impl ColRange {
    /// Equality constraint `col = v`.
    pub fn eq(column: ColumnIdx, v: Value) -> Self {
        ColRange {
            column,
            kind: RangeKind::Eq(v),
        }
    }

    /// Closed range `lo <= col <= hi`.
    pub fn between(column: ColumnIdx, lo: Value, hi: Value) -> Self {
        ColRange {
            column,
            kind: RangeKind::Range {
                lo: Bound::Included(lo),
                hi: Bound::Included(hi),
            },
        }
    }

    /// Constraint `col < v`.
    pub fn lt(column: ColumnIdx, v: Value) -> Self {
        ColRange {
            column,
            kind: RangeKind::Range {
                lo: Bound::Unbounded,
                hi: Bound::Excluded(v),
            },
        }
    }

    /// Constraint `col >= v`.
    pub fn ge(column: ColumnIdx, v: Value) -> Self {
        ColRange {
            column,
            kind: RangeKind::Range {
                lo: Bound::Included(v),
                hi: Bound::Unbounded,
            },
        }
    }

    /// General range with explicit bound openness — the constructor that
    /// round-trips whatever [`ColRange::lo_ref`] / [`ColRange::hi_ref`]
    /// report (used by the WAL record codec).
    pub fn range(column: ColumnIdx, lo: Bound<Value>, hi: Bound<Value>) -> Self {
        ColRange {
            column,
            kind: RangeKind::Range { lo, hi },
        }
    }

    /// The same constraint applied to a different column (used when
    /// translating logical columns to fragment positions).
    pub fn with_column(&self, column: ColumnIdx) -> Self {
        ColRange {
            column,
            kind: self.kind.clone(),
        }
    }

    /// Borrowed lower bound.
    pub fn lo_ref(&self) -> Bound<&Value> {
        match &self.kind {
            RangeKind::Eq(v) => Bound::Included(v),
            RangeKind::Range { lo, .. } => bound_ref(lo),
        }
    }

    /// Borrowed upper bound.
    pub fn hi_ref(&self) -> Bound<&Value> {
        match &self.kind {
            RangeKind::Eq(v) => Bound::Included(v),
            RangeKind::Range { hi, .. } => bound_ref(hi),
        }
    }

    /// Whether `v` satisfies this constraint.
    pub fn matches(&self, v: &Value) -> bool {
        value_in_range(v, self.lo_ref(), self.hi_ref())
    }

    /// Whether this is an equality constraint, and on which value.
    /// `between(c, v, v)` counts: it denotes the same predicate.
    pub fn as_eq(&self) -> Option<&Value> {
        match &self.kind {
            RangeKind::Eq(v) => Some(v),
            RangeKind::Range {
                lo: Bound::Included(a),
                hi: Bound::Included(b),
            } if a == b => Some(a),
            _ => None,
        }
    }
}

fn bound_ref(b: &Bound<Value>) -> Bound<&Value> {
    match b {
        Bound::Unbounded => Bound::Unbounded,
        Bound::Included(v) => Bound::Included(v),
        Bound::Excluded(v) => Bound::Excluded(v),
    }
}

/// Row selection passed to scan-style operations: either every row or an
/// explicit, sorted list of row indexes.
#[derive(Debug, Clone, Copy)]
pub enum RowSel<'a> {
    /// Visit every row.
    All,
    /// Visit exactly these row indexes.
    Subset(&'a [u32]),
}

impl RowSel<'_> {
    /// Number of selected rows given the table's total row count.
    pub fn count(&self, total: usize) -> usize {
        match self {
            RowSel::All => total,
            RowSel::Subset(s) => s.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_matches_only_value() {
        let r = ColRange::eq(0, Value::Int(5));
        assert!(r.matches(&Value::Int(5)));
        assert!(!r.matches(&Value::Int(6)));
        assert_eq!(r.as_eq(), Some(&Value::Int(5)));
    }

    #[test]
    fn between_is_inclusive() {
        let r = ColRange::between(1, Value::Int(2), Value::Int(4));
        assert!(r.matches(&Value::Int(2)));
        assert!(r.matches(&Value::Int(4)));
        assert!(!r.matches(&Value::Int(5)));
        assert!(r.as_eq().is_none());
    }

    #[test]
    fn open_ranges() {
        assert!(ColRange::lt(0, Value::Int(3)).matches(&Value::Int(2)));
        assert!(!ColRange::lt(0, Value::Int(3)).matches(&Value::Int(3)));
        assert!(ColRange::ge(0, Value::Int(3)).matches(&Value::Int(3)));
    }

    #[test]
    fn null_never_matches_ordinary_ranges() {
        assert!(!ColRange::between(0, Value::Int(0), Value::Int(10)).matches(&Value::Null));
        assert!(!ColRange::lt(0, Value::Int(3)).matches(&Value::Null));
        // but an explicit NULL equality does match
        assert!(ColRange::eq(0, Value::Null).matches(&Value::Null));
    }

    #[test]
    fn rowsel_count() {
        assert_eq!(RowSel::All.count(10), 10);
        assert_eq!(RowSel::Subset(&[1, 2, 3]).count(10), 3);
    }
}
