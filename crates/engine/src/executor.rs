//! Query execution over arbitrary storage layouts.
//!
//! Partitioned tables are processed by *rewriting* (Section 4 of the paper):
//! horizontal partitions are unioned with partial-aggregate merging,
//! vertical fragments are recombined positionally over the shared primary
//! key. Store-specific fast paths mirror what real engines do: the column
//! store groups and joins on dictionary codes; the row store works
//! tuple-at-a-time.
//!
//! Column-store inner loops are *batched*: filters produce bitmap selection
//! vectors ([`SelVec`]), aggregation and join loops block-decode dictionary
//! codes ([`hsd_storage::ColumnData::decode_codes_into`]) instead of calling
//! `code_at`/`value_at` per row, and independent partitions of a horizontal
//! union are scanned on separate threads before their partial aggregates
//! merge.

use std::collections::HashMap;

use hsd_catalog::TableStats;
use hsd_query::{
    AggFunc, Aggregate, AggregateQuery, InsertQuery, JoinSpec, Query, SelectQuery, UpdateQuery,
};
use hsd_storage::{ColRange, ColumnTable, RowSel, RowTable, SegmentStore, SelVec, Table, BLOCK};
use hsd_types::{ColumnIdx, Error, Result, Value};

use crate::database::HybridDatabase;
use crate::partition::{ColdPart, Loc, TableData, VerticalPair};

/// Minimum total rows before a multi-partition scan fans out to threads;
/// below this the spawn overhead dominates the scan itself.
const PARALLEL_SCAN_MIN_ROWS: usize = 1 << 14;

/// Whether a horizontal-union scan over `parts` should run partitions on
/// separate threads.
fn parallelize(parts: &[Part<'_>]) -> bool {
    parts.len() > 1
        && parts.iter().map(Part::row_count).sum::<usize>() >= PARALLEL_SCAN_MIN_ROWS
        && parts.iter().filter(|p| p.row_count() > 0).count() > 1
}

/// Run `scan` over every partition of a horizontal union, fanning out to
/// scoped threads when the union is big enough to pay for them
/// ([`parallelize`]). Results come back in partition order (cold before
/// hot — the order the sequential path produces), so callers merge or
/// concatenate without reordering. This is the single place the
/// parallelization policy lives; selects, aggregates, and join aggregates
/// all go through it.
fn scan_parts<'a, T: Send>(
    parts: &'a [Part<'a>],
    scan: impl Fn(&'a Part<'a>) -> T + Sync,
) -> Vec<T> {
    if parallelize(parts) {
        let scan = &scan;
        std::thread::scope(|s| {
            let handles: Vec<_> = parts
                .iter()
                .map(|part| s.spawn(move || scan(part)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("partition scan thread"))
                .collect()
        })
    } else {
        parts.iter().map(scan).collect()
    }
}

/// One output row of an aggregation: optional group key plus one numeric
/// result per aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupRow {
    /// Group key (`None` for ungrouped queries).
    pub key: Option<Value>,
    /// Finalized aggregate values, in query order.
    pub values: Vec<f64>,
}

/// Result of executing a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    /// Aggregation results, sorted by group key.
    Aggregates(Vec<GroupRow>),
    /// Selected rows.
    Rows(Vec<Vec<Value>>),
    /// Rows affected by an insert or update.
    Affected(usize),
}

impl QueryOutput {
    /// Convenience accessor for aggregation results.
    pub fn aggregates(&self) -> Option<&[GroupRow]> {
        match self {
            QueryOutput::Aggregates(g) => Some(g),
            _ => None,
        }
    }

    /// Convenience accessor for selected rows.
    pub fn rows(&self) -> Option<&[Vec<Value>]> {
        match self {
            QueryOutput::Rows(r) => Some(r),
            _ => None,
        }
    }
}

/// Execute any query against the database's current layout.
///
/// Reads pin an epoch snapshot of the target table's shard and scan
/// without blocking other tables; writes serialize on the table's write
/// latch and log to the WAL before the latch is released (see
/// [`crate::database`] for the locking protocol).
pub fn execute(db: &HybridDatabase, query: &Query) -> Result<QueryOutput> {
    match query {
        Query::Insert(q) => exec_insert(db, q),
        Query::Update(q) => exec_update(db, q),
        Query::Select(q) => exec_select(db, q),
        Query::Aggregate(q) => match &q.join {
            None => exec_aggregate(db, q),
            Some(join) => exec_join_aggregate(db, q, join),
        },
    }
}

// ---------------------------------------------------------------------------
// Aggregation accumulators

#[derive(Debug, Clone, Copy)]
struct Acc {
    sum: f64,
    count: u64,
    min: f64,
    max: f64,
}

impl Acc {
    fn new() -> Self {
        Acc {
            sum: 0.0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    #[inline]
    fn add(&mut self, v: f64) {
        self.sum += v;
        self.count += 1;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Count a non-null, non-numeric value (only COUNT observes it).
    #[inline]
    fn add_non_numeric(&mut self) {
        self.count += 1;
    }

    fn finalize(&self, func: AggFunc) -> f64 {
        match func {
            AggFunc::Sum => self.sum,
            AggFunc::Count => self.count as f64,
            AggFunc::Avg => {
                if self.count == 0 {
                    0.0
                } else {
                    self.sum / self.count as f64
                }
            }
            AggFunc::Min => {
                if self.count == 0 {
                    0.0
                } else {
                    self.min
                }
            }
            AggFunc::Max => {
                if self.count == 0 {
                    0.0
                } else {
                    self.max
                }
            }
        }
    }
}

type Groups = HashMap<Option<Value>, Vec<Acc>>;

/// Merge per-partition partial aggregates into the union's groups.
fn merge_groups(into: &mut Groups, from: Groups, width: usize) {
    for (key, accs) in from {
        merge_accs(
            into.entry(key).or_insert_with(|| vec![Acc::new(); width]),
            &accs,
        );
    }
}

fn finalize_groups(groups: Groups, aggregates: &[Aggregate]) -> Vec<GroupRow> {
    let mut out: Vec<GroupRow> = groups
        .into_iter()
        .map(|(key, accs)| GroupRow {
            key,
            values: accs
                .iter()
                .zip(aggregates)
                .map(|(a, agg)| a.finalize(agg.func))
                .collect(),
        })
        .collect();
    out.sort_by(|a, b| a.key.cmp(&b.key));
    out
}

// ---------------------------------------------------------------------------
// Parts

/// A read view over one physical partition.
enum Part<'a> {
    Whole(&'a Table),
    Pair(&'a VerticalPair),
    /// A disk-resident cold partition decoded into memory for the duration
    /// of one query — the per-query load is the read-path price of the
    /// disk tier (what the cost model's `TierModel` charges scans with).
    Loaded(Table),
}

fn parts_of<'a>(data: &'a TableData, store: &SegmentStore) -> Result<Vec<Part<'a>>> {
    parts_of_pruned(data, store, &[])
}

/// Partition elimination: when the filter constrains the horizontal split
/// column, partitions whose domain cannot overlap are skipped. The cold
/// partition holds only rows below the split value by construction; the hot
/// partition is prunable only while it stays "pure" (see
/// [`TableData::hot_is_pure`]).
fn parts_of_pruned<'a>(
    data: &'a TableData,
    store: &SegmentStore,
    filter: &[ColRange],
) -> Result<Vec<Part<'a>>> {
    Ok(match data {
        TableData::Single(t) => vec![Part::Whole(t)],
        TableData::Partitioned { hot, cold, .. } => {
            let (use_cold, use_hot) = pruning(data, filter);
            let mut parts = Vec::with_capacity(2);
            if use_cold {
                match cold {
                    ColdPart::Single(t) => parts.push(Part::Whole(t)),
                    ColdPart::Vertical(p) => parts.push(Part::Pair(p)),
                    // Pruned-away disk partitions never touch the store —
                    // partition elimination saves the segment read itself.
                    ColdPart::DiskColumn(f) => parts.push(Part::Loaded(f.load(store)?)),
                }
            }
            if use_hot {
                if let Some(h) = hot {
                    parts.push(Part::Whole(h));
                }
            }
            parts
        }
    })
}

fn range_overlaps_hot(r: &ColRange, split: &Value) -> bool {
    match r.hi_ref() {
        std::ops::Bound::Unbounded => true,
        std::ops::Bound::Included(v) => v >= split,
        std::ops::Bound::Excluded(v) => v > split,
    }
}

fn range_overlaps_cold(r: &ColRange, split: &Value) -> bool {
    match r.lo_ref() {
        std::ops::Bound::Unbounded => true,
        // Conservative for Excluded: only prune when provably disjoint.
        std::ops::Bound::Included(v) | std::ops::Bound::Excluded(v) => v < split,
    }
}

fn pruning(data: &TableData, filter: &[ColRange]) -> (bool, bool) {
    let Some(h) = data.horizontal_spec() else {
        return (true, true);
    };
    let mut use_cold = true;
    let mut use_hot = true;
    for r in filter.iter().filter(|r| r.column == h.split_column) {
        if !range_overlaps_cold(r, &h.split_value) {
            use_cold = false;
        }
        if data.hot_is_pure() && !range_overlaps_hot(r, &h.split_value) {
            use_hot = false;
        }
    }
    (use_cold, use_hot)
}

impl Part<'_> {
    fn row_count(&self) -> usize {
        match self {
            Part::Whole(t) => t.row_count(),
            Part::Pair(p) => p.row_count(),
            Part::Loaded(t) => t.row_count(),
        }
    }

    fn filter_rows(&self, ranges: &[ColRange]) -> Vec<u32> {
        match self {
            Part::Whole(t) => t.filter_rows(ranges),
            Part::Pair(p) => p.filter_rows(ranges),
            Part::Loaded(t) => t.filter_rows(ranges),
        }
    }

    fn filter_selvec(&self, ranges: &[ColRange]) -> SelVec {
        match self {
            Part::Whole(t) => t.filter_selvec(ranges),
            Part::Pair(p) => p.filter_selvec(ranges),
            Part::Loaded(t) => t.filter_selvec(ranges),
        }
    }

    fn for_each_numeric_sel(&self, col: ColumnIdx, sel: Option<&SelVec>, f: impl FnMut(f64)) {
        match self {
            Part::Whole(t) => t.for_each_numeric_sel(col, sel, f),
            Part::Pair(p) => p.for_each_numeric_sel(col, sel, f),
            Part::Loaded(t) => t.for_each_numeric_sel(col, sel, f),
        }
    }

    /// Visit decoded values of `col` for the selected rows (`None` = all).
    fn for_each_value_sel(&self, col: ColumnIdx, sel: Option<&SelVec>, mut f: impl FnMut(&Value)) {
        match sel {
            None => self.for_each_value(col, RowSel::All, f),
            Some(sv) => {
                for idx in sv.iter() {
                    f(self.value_at(idx, col));
                }
            }
        }
    }

    fn point_lookup(&self, key: &[Value]) -> Option<u32> {
        match self {
            Part::Whole(t) => t.point_lookup(key),
            Part::Pair(p) => p.point_lookup(key),
            Part::Loaded(t) => t.point_lookup(key),
        }
    }

    fn value_at(&self, idx: u32, col: ColumnIdx) -> &Value {
        match self {
            Part::Whole(t) => t.value_at(idx, col),
            Part::Pair(p) => p.value_at(idx, col),
            Part::Loaded(t) => t.value_at(idx, col),
        }
    }

    fn collect_rows(&self, rows: &[u32], cols: Option<&[ColumnIdx]>) -> Vec<Vec<Value>> {
        match self {
            Part::Whole(t) => t.collect_rows(RowSel::Subset(rows), cols),
            Part::Pair(p) => p.collect_rows(rows, cols),
            Part::Loaded(t) => t.collect_rows(RowSel::Subset(rows), cols),
        }
    }

    fn for_each_value(&self, col: ColumnIdx, sel: RowSel<'_>, f: impl FnMut(&Value)) {
        match self {
            Part::Whole(t) => t.for_each_value(col, sel, f),
            Part::Pair(p) => p.for_each_value(col, sel, f),
            Part::Loaded(t) => t.for_each_value(col, sel, f),
        }
    }
}

// ---------------------------------------------------------------------------
// Inserts

fn exec_insert(db: &HybridDatabase, q: &InsertQuery) -> Result<QueryOutput> {
    db.check_writable(&q.table)?;
    let cfg = db.merge_config();
    let wal_on = db.wal_active();
    let shard = db.shard(&q.table)?;
    let applied: usize;
    let mut failure = None;
    {
        let mut data = shard.latch();
        // Inserts land in the hot partition when one exists; only a
        // hot-less layout with a disk-resident cold partition needs the
        // write-through load.
        let needs_cold_load =
            cold_is_disk(&data) && matches!(&*data, TableData::Partitioned { hot: None, .. });
        let mut apply_rows = |data: &mut TableData| {
            let mut applied = 0usize;
            for row in &q.rows {
                match data.insert(row) {
                    Ok(_) => applied += 1,
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
            applied
        };
        applied = if needs_cold_load {
            data.with_cold_loaded(db.segment_store(), |d| Ok(apply_rows(d)))?
        } else {
            apply_rows(&mut data)
        };
        let merged = failure.is_none() && crate::maintenance::after_write(&mut data, &cfg);
        // Log after the in-memory apply but before the latch releases, so
        // the table's WAL order matches its apply order; the applied
        // prefix of a failing multi-row statement is still logged (there
        // is no rollback), so recovery reproduces the same state.
        if wal_on && applied > 0 {
            db.log_record(&crate::durability::WalRecord::Insert {
                table: q.table.clone(),
                rows: q.rows[..applied].to_vec(),
                load: false,
            })?;
        }
        if wal_on && merged {
            db.log_record(&crate::durability::WalRecord::MergeComplete {
                table: q.table.clone(),
                partition: crate::partition::MergePartition::Whole,
                merge_epoch: data.merge_epoch(),
            })?;
        }
    }
    match failure {
        Some(e) => Err(e),
        None => Ok(QueryOutput::Affected(q.rows.len())),
    }
}

// ---------------------------------------------------------------------------
// Updates

fn exec_update(db: &HybridDatabase, q: &UpdateQuery) -> Result<QueryOutput> {
    db.check_writable(&q.table)?;
    let cfg = db.merge_config();
    let wal_on = db.wal_active();
    let shard = db.shard(&q.table)?;
    let affected = {
        let mut guard = shard.latch();
        let data = &mut *guard;
        let point = pk_point_key(data, &q.filter);
        // An update that can touch a disk-resident cold partition goes
        // through write-through: load the segment, apply the normal path,
        // re-encode and republish. The rewrite is the upkeep cost the
        // advisor's `TierModel::rewrite_mib_ms` prices.
        let needs_cold_load = cold_is_disk(data)
            && match &point {
                Some(key) => !hot_point_hit(data, key),
                None => pruning(data, &q.filter).0,
            };
        let affected = if needs_cold_load {
            data.with_cold_loaded(db.segment_store(), |data| {
                apply_update(data, q, point.as_deref())
            })?
        } else {
            apply_update(data, q, point.as_deref())?
        };
        let merged = crate::maintenance::after_write(data, &cfg);
        // WAL appends stay under the latch: per-table log order == apply
        // order.
        if wal_on && affected > 0 {
            db.log_record(&crate::durability::WalRecord::Update {
                table: q.table.clone(),
                sets: q.sets.clone(),
                filter: q.filter.clone(),
            })?;
        }
        if wal_on && merged {
            db.log_record(&crate::durability::WalRecord::MergeComplete {
                table: q.table.clone(),
                partition: crate::partition::MergePartition::Whole,
                merge_epoch: data.merge_epoch(),
            })?;
        }
        affected
    };
    Ok(QueryOutput::Affected(affected))
}

/// Whether the table's cold partition is disk-resident.
fn cold_is_disk(data: &TableData) -> bool {
    matches!(
        data,
        TableData::Partitioned {
            cold: ColdPart::DiskColumn(_),
            ..
        }
    )
}

/// Whether a point key resolves in the hot partition (no cold access
/// needed).
fn hot_point_hit(data: &TableData, key: &[Value]) -> bool {
    matches!(
        data,
        TableData::Partitioned { hot: Some(h), .. } if h.point_lookup(key).is_some()
    )
}

/// The layout-dispatched body of an update statement (assumes any disk
/// cold partition that the statement can touch has been loaded).
fn apply_update(data: &mut TableData, q: &UpdateQuery, point: Option<&[Value]>) -> Result<usize> {
    // Point-update fast path over the PK index.
    if let Some(key) = point {
        return update_point(data, key, &q.sets);
    }
    let mut affected = 0;
    let (use_cold, use_hot) = pruning(data, &q.filter);
    match data {
        TableData::Single(t) => {
            let rows = t.filter_rows(&q.filter);
            affected += t.update_rows(&rows, &q.sets)?;
        }
        TableData::Partitioned { hot, cold, .. } => {
            if use_cold {
                match cold {
                    ColdPart::Single(t) => {
                        let rows = t.filter_rows(&q.filter);
                        affected += t.update_rows(&rows, &q.sets)?;
                    }
                    ColdPart::Vertical(p) => {
                        let rows = p.filter_rows(&q.filter);
                        affected += p.update_rows(&rows, &q.sets)?;
                    }
                    ColdPart::DiskColumn(f) => {
                        return Err(Error::InvalidOperation(format!(
                            "update reached disk-resident cold partition of {} \
                             without write-through load",
                            f.schema.name
                        )));
                    }
                }
            }
            if use_hot {
                if let Some(h) = hot {
                    let rows = h.filter_rows(&q.filter);
                    affected += h.update_rows(&rows, &q.sets)?;
                }
            }
        }
    }
    Ok(affected)
}

/// If the filter is exactly an equality on every primary-key column (and
/// nothing else), return the key in PK order.
fn pk_point_key(data: &TableData, filter: &[ColRange]) -> Option<Vec<Value>> {
    let schema = data.schema();
    let pk = &schema.primary_key;
    if filter.len() != pk.len() {
        return None;
    }
    let mut key = Vec::with_capacity(pk.len());
    for col in pk {
        let range = filter.iter().find(|r| r.column == *col)?;
        key.push(range.as_eq()?.clone());
    }
    Some(key)
}

fn update_point(data: &mut TableData, key: &[Value], sets: &[(ColumnIdx, Value)]) -> Result<usize> {
    match data {
        TableData::Single(t) => match t.point_lookup(key) {
            Some(idx) => t.update_rows(&[idx], sets),
            None => Ok(0),
        },
        TableData::Partitioned { hot, cold, .. } => {
            if let Some(h) = hot {
                if let Some(idx) = h.point_lookup(key) {
                    return h.update_rows(&[idx], sets);
                }
            }
            match cold {
                ColdPart::Single(t) => match t.point_lookup(key) {
                    Some(idx) => t.update_rows(&[idx], sets),
                    None => Ok(0),
                },
                ColdPart::Vertical(p) => match p.point_lookup(key) {
                    Some(idx) => p.update_rows(&[idx], sets),
                    None => Ok(0),
                },
                ColdPart::DiskColumn(f) => Err(Error::InvalidOperation(format!(
                    "point update reached disk-resident cold partition of {} \
                     without write-through load",
                    f.schema.name
                ))),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Selects

fn exec_select(db: &HybridDatabase, q: &SelectQuery) -> Result<QueryOutput> {
    let shard = db.shard(&q.table)?;
    let pin = shard.pin();
    let data = &*pin;
    let cols = q.columns.as_deref();
    // Point-select fast path. The hot partition is probed before any part
    // list is built: the primary key is unique, so a hot hit both answers
    // the query and — for a disk-resident cold partition — avoids decoding
    // a segment the row cannot be in.
    if let Some(key) = pk_point_key(data, &q.filter) {
        if let TableData::Partitioned { hot: Some(h), .. } = data {
            if let Some(idx) = h.point_lookup(&key) {
                return Ok(QueryOutput::Rows(
                    h.collect_rows(RowSel::Subset(&[idx]), cols),
                ));
            }
        }
        // Hot miss: fall through to the (pruned) partition list, so an
        // equality on the split column still skips a provably disjoint
        // cold side without loading it.
        for part in parts_of_pruned(data, db.segment_store(), &q.filter)? {
            if let Some(idx) = part.point_lookup(&key) {
                return Ok(QueryOutput::Rows(part.collect_rows(&[idx], cols)));
            }
        }
        return Ok(QueryOutput::Rows(Vec::new()));
    }
    let parts = parts_of_pruned(data, db.segment_store(), &q.filter)?;
    let per_part = scan_parts(&parts, |part| {
        let rows = part.filter_rows(&q.filter);
        part.collect_rows(&rows, cols)
    });
    let mut out = Vec::new();
    for rows in per_part {
        out.extend(rows);
    }
    Ok(QueryOutput::Rows(out))
}

// ---------------------------------------------------------------------------
// Aggregation (single table)

fn exec_aggregate(db: &HybridDatabase, q: &AggregateQuery) -> Result<QueryOutput> {
    let shard = db.shard(&q.table)?;
    let pin = shard.pin();
    let data = &*pin;
    validate_agg_columns(data, q)?;
    let parts = parts_of_pruned(data, db.segment_store(), &q.filter)?;
    let scan_part = |part: &Part<'_>| -> Groups {
        let selection = if q.filter.is_empty() {
            None
        } else {
            Some(part.filter_selvec(&q.filter))
        };
        let mut groups = Groups::new();
        aggregate_part(
            part,
            selection.as_ref(),
            &q.aggregates,
            q.group_by,
            &mut groups,
        );
        groups
    };
    // Horizontal union: scan each partition (on its own thread when large
    // enough), then merge the partial aggregates (the paper's union
    // rewrite).
    let mut groups: Groups = HashMap::new();
    for partial in scan_parts(&parts, scan_part) {
        merge_groups(&mut groups, partial, q.aggregates.len());
    }
    Ok(QueryOutput::Aggregates(finalize_groups(
        groups,
        &q.aggregates,
    )))
}

fn validate_agg_columns(data: &TableData, q: &AggregateQuery) -> Result<()> {
    let arity = data.schema().arity();
    for a in &q.aggregates {
        if a.column >= arity {
            return Err(Error::UnknownColumn(format!("{}[{}]", q.table, a.column)));
        }
    }
    if let Some(g) = q.group_by {
        if g >= arity {
            return Err(Error::UnknownColumn(format!("{}[{}]", q.table, g)));
        }
    }
    Ok(())
}

fn aggregate_part(
    part: &Part<'_>,
    selection: Option<&SelVec>,
    aggregates: &[Aggregate],
    group_by: Option<ColumnIdx>,
    groups: &mut Groups,
) {
    match group_by {
        None => aggregate_part_ungrouped(part, selection, aggregates, groups),
        Some(g) => match part {
            Part::Whole(Table::Column(ct)) | Part::Loaded(Table::Column(ct)) => {
                aggregate_column_grouped(ct, selection, aggregates, g, groups)
            }
            Part::Whole(Table::Row(rt)) | Part::Loaded(Table::Row(rt)) => {
                aggregate_row_grouped(rt, selection, aggregates, g, groups)
            }
            Part::Pair(p) => aggregate_pair_grouped(p, selection, aggregates, g, groups),
        },
    }
}

fn aggregate_part_ungrouped(
    part: &Part<'_>,
    selection: Option<&SelVec>,
    aggregates: &[Aggregate],
    groups: &mut Groups,
) {
    let accs = groups
        .entry(None)
        .or_insert_with(|| vec![Acc::new(); aggregates.len()]);
    for (k, agg) in aggregates.iter().enumerate() {
        let acc = &mut accs[k];
        let numeric = is_numeric_col(part, agg.column);
        if numeric || agg.func != AggFunc::Count {
            part.for_each_numeric_sel(agg.column, selection, |v| acc.add(v));
        } else {
            // COUNT over a non-numeric column counts non-null values.
            part.for_each_value_sel(agg.column, selection, |v| {
                if !v.is_null() {
                    acc.add_non_numeric();
                }
            });
        }
    }
}

fn is_numeric_col(part: &Part<'_>, col: ColumnIdx) -> bool {
    let schema = match part {
        Part::Whole(t) => t.schema().clone(),
        Part::Loaded(t) => t.schema().clone(),
        Part::Pair(p) => {
            return match p.loc(col) {
                Loc::Row(i) => p.row_fragment().schema().columns[i].ty.is_numeric(),
                Loc::Col(i) => p.col_fragment().schema().columns[i].ty.is_numeric(),
            }
        }
    };
    schema.columns[col].ty.is_numeric()
}

/// Largest group dictionary the dense per-code accumulator path handles;
/// beyond this the hash-map path bounds memory to the groups actually seen.
const DENSE_GROUPBY_MAX_DICT: usize = 1 << 16;

/// Ablation switch for the dense group-by path (`bench_merge` compares the
/// dense per-code array against the hash-map baseline on identical data).
static DENSE_GROUP_BY: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(true);

/// Enable or disable the dense group-by fast path (enabled by default;
/// benchmarking hook, not a tuning knob).
pub fn set_dense_group_by(enabled: bool) {
    DENSE_GROUP_BY.store(enabled, std::sync::atomic::Ordering::Relaxed);
}

/// Fold one selected row into its group's accumulators (shared by the
/// dense and hash-map grouped-aggregation paths).
#[inline]
fn accumulate_row(
    accs: &mut [Acc],
    aggregates: &[Aggregate],
    agg_cols: &[&hsd_storage::ColumnData],
    luts: &[Vec<Option<f64>>],
    bufs: &[Vec<u32>],
    start: usize,
    i: usize,
) {
    for (k, col) in agg_cols.iter().enumerate() {
        if let Some(v) = luts[k][bufs[k + 1][i] as usize] {
            accs[k].add(v);
        } else if aggregates[k].func == AggFunc::Count && !col.value_at(start + i).is_null() {
            accs[k].add_non_numeric();
        }
    }
}

/// Column-store grouped aggregation: group on dictionary codes, decode keys
/// once at the end.
///
/// The hot loop is batched: the group column and every aggregate column are
/// block-decoded together (word-level unpacking), and the selection vector
/// is consumed word-at-a-time — an all-zero word skips 64 rows, a block
/// with no surviving candidate skips the decode entirely.
///
/// When the group dictionary is small (the common low-cardinality grouping
/// case), accumulators live in a dense array indexed by group code — the
/// per-row group lookup is one bounds-checked index instead of a hash-map
/// probe. Large (near-unique) group dictionaries fall back to the hash map.
fn aggregate_column_grouped(
    ct: &ColumnTable,
    selection: Option<&SelVec>,
    aggregates: &[Aggregate],
    group_col: ColumnIdx,
    groups: &mut Groups,
) {
    let gcol = ct.column(group_col);
    let luts: Vec<Vec<Option<f64>>> = aggregates
        .iter()
        .map(|a| ct.column(a.column).numeric_lut())
        .collect();
    let agg_cols: Vec<&hsd_storage::ColumnData> =
        aggregates.iter().map(|a| ct.column(a.column)).collect();
    // bufs[0] holds the group codes, bufs[1..] the aggregate columns'.
    let mut cols: Vec<&hsd_storage::ColumnData> = Vec::with_capacity(agg_cols.len() + 1);
    cols.push(gcol);
    cols.extend(agg_cols.iter().copied());
    let n_aggs = aggregates.len();
    let dict_len = gcol.dictionary().len();
    let dense = dict_len <= DENSE_GROUPBY_MAX_DICT
        && DENSE_GROUP_BY.load(std::sync::atomic::Ordering::Relaxed);
    if dense {
        // Dense path: one flat Acc row per group code, plus a seen-bitmap so
        // groups whose every aggregate input is NULL still appear.
        let mut accs: Vec<Acc> = vec![Acc::new(); dict_len * n_aggs];
        let mut seen = vec![false; dict_len];
        for_each_selected_block(ct.row_count(), selection, &cols, |start, i, bufs| {
            let code = bufs[0][i] as usize;
            seen[code] = true;
            accumulate_row(
                &mut accs[code * n_aggs..(code + 1) * n_aggs],
                aggregates,
                &agg_cols,
                &luts,
                bufs,
                start,
                i,
            );
        });
        for (code, seen) in seen.iter().enumerate() {
            if !seen {
                continue;
            }
            let key = Some(gcol.dictionary().decode(code as u32).clone());
            merge_accs(
                groups
                    .entry(key)
                    .or_insert_with(|| vec![Acc::new(); n_aggs]),
                &accs[code * n_aggs..(code + 1) * n_aggs],
            );
        }
    } else {
        let mut code_groups: HashMap<u32, Vec<Acc>> = HashMap::new();
        for_each_selected_block(ct.row_count(), selection, &cols, |start, i, bufs| {
            let accs = code_groups
                .entry(bufs[0][i])
                .or_insert_with(|| vec![Acc::new(); n_aggs]);
            accumulate_row(accs, aggregates, &agg_cols, &luts, bufs, start, i);
        });
        for (code, accs) in code_groups {
            let key = Some(gcol.dictionary().decode(code).clone());
            merge_accs(
                groups
                    .entry(key)
                    .or_insert_with(|| vec![Acc::new(); n_aggs]),
                &accs,
            );
        }
    }
}

/// Block-scan driver shared by the column-store grouped-aggregation and
/// join hot loops: decodes each of `cols` into a per-column [`BLOCK`]
/// buffer and calls `visit(block_start, i, bufs)` for every selected row
/// (`i` block-local, `bufs` in `cols` order), skipping blocks — and 64-row
/// words within them — that have no selected candidate.
fn for_each_selected_block(
    n: usize,
    selection: Option<&SelVec>,
    cols: &[&hsd_storage::ColumnData],
    mut visit: impl FnMut(usize, usize, &[Vec<u32>]),
) {
    let mut bufs: Vec<Vec<u32>> = vec![vec![0u32; BLOCK]; cols.len()];
    let mut start = 0;
    while start < n {
        let len = BLOCK.min(n - start);
        let word_base = start / 64; // exact: BLOCK is a multiple of 64
        let word_end = (start + len).div_ceil(64);
        if let Some(sv) = selection {
            if sv.words()[word_base..word_end].iter().all(|&w| w == 0) {
                start += len;
                continue;
            }
        }
        for (col, buf) in cols.iter().zip(&mut bufs) {
            col.decode_codes_into(start, &mut buf[..len]);
        }
        match selection {
            None => {
                for i in 0..len {
                    visit(start, i, &bufs);
                }
            }
            Some(sv) => {
                for wi in word_base..word_end {
                    let mut bits = sv.words()[wi];
                    while bits != 0 {
                        let b = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        visit(start, wi * 64 + b - start, &bufs);
                    }
                }
            }
        }
        start += len;
    }
}

/// Row-store grouped aggregation: tuple-at-a-time over row slices.
fn aggregate_row_grouped(
    rt: &RowTable,
    selection: Option<&SelVec>,
    aggregates: &[Aggregate],
    group_col: ColumnIdx,
    groups: &mut Groups,
) {
    let mut visit = |idx: u32| {
        let row = rt.row(idx);
        let key = Some(row[group_col].clone());
        let accs = groups
            .entry(key)
            .or_insert_with(|| vec![Acc::new(); aggregates.len()]);
        for (k, agg) in aggregates.iter().enumerate() {
            match row[agg.column].as_f64() {
                Some(v) => accs[k].add(v),
                None => {
                    if agg.func == AggFunc::Count && !row[agg.column].is_null() {
                        accs[k].add_non_numeric();
                    }
                }
            }
        }
    };
    match selection {
        None => {
            for idx in 0..rt.row_count() as u32 {
                visit(idx);
            }
        }
        Some(sv) => {
            for idx in sv.iter() {
                visit(idx);
            }
        }
    }
}

/// Vertical pair grouped aggregation. When every referenced column lives in
/// one fragment, delegate to that fragment's fast path; otherwise stitch
/// row-at-a-time.
fn aggregate_pair_grouped(
    p: &VerticalPair,
    selection: Option<&SelVec>,
    aggregates: &[Aggregate],
    group_col: ColumnIdx,
    groups: &mut Groups,
) {
    let all_in_col = std::iter::once(group_col)
        .chain(aggregates.iter().map(|a| a.column))
        .all(|c| matches!(p.loc(c), Loc::Col(_)));
    let all_in_row = std::iter::once(group_col)
        .chain(aggregates.iter().map(|a| a.column))
        .all(|c| matches!(p.loc(c), Loc::Row(_)));
    if all_in_col || all_in_row {
        let translate = |c: ColumnIdx| match p.loc(c) {
            Loc::Row(i) | Loc::Col(i) => i,
        };
        let t_aggs: Vec<Aggregate> = aggregates
            .iter()
            .map(|a| Aggregate {
                func: a.func,
                column: translate(a.column),
            })
            .collect();
        let frag = if all_in_col {
            p.col_fragment()
        } else {
            p.row_fragment()
        };
        aggregate_part(
            &Part::Whole(frag),
            selection,
            &t_aggs,
            Some(translate(group_col)),
            groups,
        );
        return;
    }
    // Mixed fragments: generic stitched path.
    let mut visit = |idx: u32| {
        let key = Some(p.value_at(idx, group_col).clone());
        let accs = groups
            .entry(key)
            .or_insert_with(|| vec![Acc::new(); aggregates.len()]);
        for (k, agg) in aggregates.iter().enumerate() {
            let v = p.value_at(idx, agg.column);
            match v.as_f64() {
                Some(x) => accs[k].add(x),
                None => {
                    if agg.func == AggFunc::Count && !v.is_null() {
                        accs[k].add_non_numeric();
                    }
                }
            }
        }
    };
    match selection {
        None => {
            for idx in 0..p.row_count() as u32 {
                visit(idx);
            }
        }
        Some(sv) => {
            for idx in sv.iter() {
                visit(idx);
            }
        }
    }
}

fn merge_accs(into: &mut [Acc], from: &[Acc]) {
    for (a, b) in into.iter_mut().zip(from) {
        a.sum += b.sum;
        a.count += b.count;
        if b.min < a.min {
            a.min = b.min;
        }
        if b.max > a.max {
            a.max = b.max;
        }
    }
}

// ---------------------------------------------------------------------------
// Join aggregation (fact ⋈ dim)

fn exec_join_aggregate(
    db: &HybridDatabase,
    q: &AggregateQuery,
    join: &JoinSpec,
) -> Result<QueryOutput> {
    // Two-table read: pin both shards, in lexicographic table-name order
    // so concurrent joins can never deadlock against queued writers
    // (self-joins share one pin).
    let fact_shard = db.shard(&q.table)?;
    let dim_shard = db.shard(&join.dim_table)?;
    let (fact_pin, dim_pin);
    if std::sync::Arc::ptr_eq(&fact_shard, &dim_shard) {
        fact_pin = fact_shard.pin();
        dim_pin = None;
    } else if q.table <= join.dim_table {
        fact_pin = fact_shard.pin();
        dim_pin = Some(dim_shard.pin());
    } else {
        let d = dim_shard.pin();
        fact_pin = fact_shard.pin();
        dim_pin = Some(d);
    }
    let dim: &TableData = dim_pin.as_deref().unwrap_or(&fact_pin);
    // Build the dim-side hash table: join key -> dense group index. The
    // table is keyed by *borrowed* values (no per-row key clone), group
    // keys are interned once per distinct group (not once per row), and
    // column-store dim parts intern groups through their dictionary — one
    // clone per distinct dictionary entry, and the per-row group lookup is
    // a code-indexed array read instead of a `Value` hash.
    let mut group_keys: Vec<Option<Value>> = Vec::new();
    let mut dim_map: HashMap<&Value, u32> = HashMap::new();
    let dim_parts = parts_of(dim, db.segment_store())?;
    match join.group_by_dim {
        None => {
            group_keys.push(None);
            for part in &dim_parts {
                for idx in 0..part.row_count() as u32 {
                    dim_map.insert(part.value_at(idx, join.dim_pk), 0);
                }
            }
        }
        Some(g) => {
            let mut group_index: HashMap<&Value, u32> = HashMap::new();
            for part in &dim_parts {
                if let Part::Whole(Table::Column(ct)) | Part::Loaded(Table::Column(ct)) = part {
                    // Dictionary path: group index per group *code*; the
                    // per-row loop never hashes a `Value`.
                    let gcol = ct.column(g);
                    let code_gi: Vec<u32> = gcol
                        .dictionary()
                        .values()
                        .map(|v| match group_index.get(v) {
                            Some(&gi) => gi,
                            None => {
                                let gi = group_keys.len() as u32;
                                group_keys.push(Some(v.clone()));
                                group_index.insert(v, gi);
                                gi
                            }
                        })
                        .collect();
                    let pk_col = ct.column(join.dim_pk);
                    for idx in 0..ct.row_count() {
                        dim_map.insert(pk_col.value_at(idx), code_gi[gcol.code_at(idx) as usize]);
                    }
                } else {
                    for idx in 0..part.row_count() as u32 {
                        let gv = part.value_at(idx, g);
                        let gi = match group_index.get(gv) {
                            Some(&gi) => gi,
                            None => {
                                let gi = group_keys.len() as u32;
                                group_keys.push(Some(gv.clone()));
                                group_index.insert(gv, gi);
                                gi
                            }
                        };
                        dim_map.insert(part.value_at(idx, join.dim_pk), gi);
                    }
                }
            }
        }
    }
    let fact: &TableData = &fact_pin;
    validate_agg_columns(fact, q)?;
    // Dense accumulators per group index, merged into value-keyed groups at
    // the end: the per-row hot loop never hashes a `Value`.
    let parts = parts_of_pruned(fact, db.segment_store(), &q.filter)?;
    let scan_part = |part: &Part<'_>| -> Vec<Vec<Acc>> {
        let mut accs: Vec<Vec<Acc>> = vec![vec![Acc::new(); q.aggregates.len()]; group_keys.len()];
        let selection = if q.filter.is_empty() {
            None
        } else {
            Some(part.filter_selvec(&q.filter))
        };
        match part {
            Part::Whole(Table::Column(ct)) | Part::Loaded(Table::Column(ct)) => {
                join_aggregate_column(ct, selection.as_ref(), q, join, &dim_map, &mut accs)
            }
            Part::Pair(p) => {
                // When the join key and every aggregate resolve in the
                // column fragment (PKs live in both fragments), run the
                // dictionary-join fast path against the fragment; row
                // indexes are positionally aligned across fragments.
                let fk = p.col_fragment_position(join.fact_fk);
                let agg_pos: Option<Vec<usize>> = q
                    .aggregates
                    .iter()
                    .map(|a| p.col_fragment_position(a.column))
                    .collect();
                match (fk, agg_pos, p.col_fragment()) {
                    (Some(fk), Some(agg_cols), Table::Column(ct)) => {
                        let tq = AggregateQuery {
                            aggregates: q
                                .aggregates
                                .iter()
                                .zip(&agg_cols)
                                .map(|(a, &c)| hsd_query::Aggregate {
                                    func: a.func,
                                    column: c,
                                })
                                .collect(),
                            ..q.clone()
                        };
                        let tjoin = JoinSpec {
                            fact_fk: fk,
                            ..join.clone()
                        };
                        join_aggregate_column(
                            ct,
                            selection.as_ref(),
                            &tq,
                            &tjoin,
                            &dim_map,
                            &mut accs,
                        )
                    }
                    _ => join_aggregate_generic(
                        &Part::Pair(p),
                        selection.as_ref(),
                        q,
                        join,
                        &dim_map,
                        &mut accs,
                    ),
                }
            }
            other => {
                join_aggregate_generic(other, selection.as_ref(), q, join, &dim_map, &mut accs)
            }
        }
        accs
    };
    let mut accs: Vec<Vec<Acc>> = vec![vec![Acc::new(); q.aggregates.len()]; group_keys.len()];
    for partial in scan_parts(&parts, scan_part) {
        for (into, from) in accs.iter_mut().zip(partial) {
            merge_accs(into, &from);
        }
    }
    let mut groups: Groups = HashMap::new();
    for (key, acc) in group_keys.into_iter().zip(accs) {
        // Inner join: groups no fact row matched stay absent.
        if acc.iter().any(|a| a.count > 0) {
            groups.insert(key, acc);
        }
    }
    Ok(QueryOutput::Aggregates(finalize_groups(
        groups,
        &q.aggregates,
    )))
}

/// Column-store fact side: translate the foreign-key dictionary to group
/// indexes once (dictionary join), then the hot loop is code lookups only —
/// block-decoded, like the grouped aggregation path.
fn join_aggregate_column(
    ct: &ColumnTable,
    selection: Option<&SelVec>,
    q: &AggregateQuery,
    join: &JoinSpec,
    dim_map: &HashMap<&Value, u32>,
    accs: &mut [Vec<Acc>],
) {
    const UNMATCHED: u32 = u32::MAX;
    let fk = ct.column(join.fact_fk);
    // fk code -> group index (UNMATCHED for dangling foreign keys).
    let fk_lut: Vec<u32> = fk
        .dictionary()
        .values()
        .map(|v| dim_map.get(v).copied().unwrap_or(UNMATCHED))
        .collect();
    let luts: Vec<Vec<Option<f64>>> = q
        .aggregates
        .iter()
        .map(|a| ct.column(a.column).numeric_lut())
        .collect();
    let agg_cols: Vec<&hsd_storage::ColumnData> =
        q.aggregates.iter().map(|a| ct.column(a.column)).collect();
    // bufs[0] holds the foreign-key codes, bufs[1..] the aggregate columns'.
    let mut cols: Vec<&hsd_storage::ColumnData> = Vec::with_capacity(agg_cols.len() + 1);
    cols.push(fk);
    cols.extend(agg_cols.iter().copied());
    for_each_selected_block(ct.row_count(), selection, &cols, |start, i, bufs| {
        let gi = fk_lut[bufs[0][i] as usize];
        if gi == UNMATCHED {
            return; // inner join: dangling foreign keys drop out
        }
        let acc = &mut accs[gi as usize];
        for (k, col) in agg_cols.iter().enumerate() {
            if let Some(v) = luts[k][bufs[k + 1][i] as usize] {
                acc[k].add(v);
            } else if q.aggregates[k].func == AggFunc::Count && !col.value_at(start + i).is_null() {
                acc[k].add_non_numeric();
            }
        }
    });
}

/// Generic fact side (row store or vertical pair): hash probe per tuple.
fn join_aggregate_generic(
    part: &Part<'_>,
    selection: Option<&SelVec>,
    q: &AggregateQuery,
    join: &JoinSpec,
    dim_map: &HashMap<&Value, u32>,
    accs: &mut [Vec<Acc>],
) {
    let mut visit = |idx: u32| {
        let fk_value = part.value_at(idx, join.fact_fk);
        let Some(&gi) = dim_map.get(fk_value) else {
            return; // inner join: dangling foreign keys drop out
        };
        let acc = &mut accs[gi as usize];
        for (k, agg) in q.aggregates.iter().enumerate() {
            let v = part.value_at(idx, agg.column);
            match v.as_f64() {
                Some(x) => acc[k].add(x),
                None => {
                    if agg.func == AggFunc::Count && !v.is_null() {
                        acc[k].add_non_numeric();
                    }
                }
            }
        }
    };
    match selection {
        None => {
            for idx in 0..part.row_count() as u32 {
                visit(idx);
            }
        }
        Some(sv) => {
            for idx in sv.iter() {
                visit(idx);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Partition-aware maintenance helpers used by the database facade

/// Collect logical statistics over a partitioned table. Distinct counts are
/// approximated by the per-part maximum (exact union counting would require
/// materializing cross-part value sets).
pub(crate) fn collect_logical_stats(data: &TableData, store: &SegmentStore) -> Result<TableStats> {
    let arity = data.schema().arity();
    let rows = data.row_count();
    let mut stats = TableStats::empty(arity);
    stats.row_count = rows;
    for part in parts_of(data, store)? {
        let (part_stats, map): (TableStats, Vec<Option<(usize, usize)>>) = match &part {
            Part::Whole(t) => (
                TableStats::collect(t),
                (0..arity).map(|c| Some((0, c))).collect(),
            ),
            Part::Loaded(t) => (
                TableStats::collect(t),
                (0..arity).map(|c| Some((0, c))).collect(),
            ),
            Part::Pair(p) => {
                let row_stats = TableStats::collect(p.row_fragment());
                let col_stats = TableStats::collect(p.col_fragment());
                let map: Vec<Option<(usize, usize)>> = (0..arity)
                    .map(|c| match p.loc(c) {
                        Loc::Row(i) => Some((1usize, i)),
                        Loc::Col(i) => Some((2usize, i)),
                    })
                    .collect();
                // stash both fragment stats: encode via a merged vec below
                let mut merged = TableStats::empty(0);
                merged.row_count = row_stats.row_count;
                merged.columns = row_stats.columns;
                merged.columns.extend(col_stats.columns);
                // map indexes: frag 1 -> offset 0, frag 2 -> offset row_arity
                let row_arity = p.row_fragment().schema().arity();
                let map: Vec<Option<(usize, usize)>> = map
                    .into_iter()
                    .map(|m| {
                        m.map(|(frag, i)| {
                            if frag == 1 {
                                (0, i)
                            } else {
                                (0, row_arity + i)
                            }
                        })
                    })
                    .collect();
                (merged, map)
            }
        };
        for (c, m) in map.iter().enumerate() {
            if let Some((_, i)) = m {
                let src = &part_stats.columns[*i];
                let dst = &mut stats.columns[c];
                dst.distinct = dst.distinct.max(src.distinct);
                match (&dst.min, &src.min) {
                    (None, Some(v)) => dst.min = Some(v.clone()),
                    (Some(a), Some(v)) if v < a => dst.min = Some(v.clone()),
                    _ => {}
                }
                match (&dst.max, &src.max) {
                    (None, Some(v)) => dst.max = Some(v.clone()),
                    (Some(a), Some(v)) if v > a => dst.max = Some(v.clone()),
                    _ => {}
                }
            }
        }
    }
    for col in &mut stats.columns {
        col.compression_rate = if rows == 0 {
            0.0
        } else {
            (1.0 - col.distinct as f64 / rows as f64).max(0.0)
        };
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsd_catalog::{HorizontalSpec, PartitionSpec, TablePlacement, VerticalSpec};
    use hsd_query::{AggregateQuery, SelectQuery};
    use hsd_storage::StoreKind;
    use hsd_types::{ColumnDef, ColumnType, TableSchema};

    fn schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", ColumnType::BigInt),
                ColumnDef::new("kf", ColumnType::Double),
                ColumnDef::new("grp", ColumnType::Integer),
                ColumnDef::new("st", ColumnType::Integer),
            ],
            vec![0],
        )
        .unwrap()
    }

    fn rows(n: i64) -> Vec<Vec<Value>> {
        (0..n)
            .map(|i| {
                vec![
                    Value::BigInt(i),
                    Value::Double(i as f64),
                    Value::Int((i % 3) as i32),
                    Value::Int((i % 2) as i32),
                ]
            })
            .collect()
    }

    fn db_with(placement: TablePlacement) -> HybridDatabase {
        let db = HybridDatabase::new();
        db.create_table(schema(), placement).unwrap();
        db.bulk_load("t", rows(30)).unwrap();
        db
    }

    fn partitioned_placement() -> TablePlacement {
        TablePlacement::Partitioned(PartitionSpec {
            horizontal: Some(HorizontalSpec {
                split_column: 0,
                split_value: Value::BigInt(1000),
            }),
            vertical: Some(VerticalSpec { row_cols: vec![3] }),
            ..Default::default()
        })
    }

    fn all_placements() -> Vec<TablePlacement> {
        vec![
            TablePlacement::Single(StoreKind::Row),
            TablePlacement::Single(StoreKind::Column),
            TablePlacement::Partitioned(PartitionSpec {
                horizontal: Some(HorizontalSpec {
                    split_column: 0,
                    split_value: Value::BigInt(20),
                }),
                vertical: None,
                ..Default::default()
            }),
            TablePlacement::Partitioned(PartitionSpec {
                horizontal: None,
                vertical: Some(VerticalSpec { row_cols: vec![3] }),
                ..Default::default()
            }),
            partitioned_placement(),
        ]
    }

    #[test]
    fn sum_agrees_across_all_layouts() {
        let q = Query::Aggregate(AggregateQuery::simple("t", AggFunc::Sum, 1));
        let expect: f64 = (0..30).map(|i| i as f64).sum();
        for placement in all_placements() {
            let db = db_with(placement.clone());
            let out = db.execute(&q).unwrap();
            let aggs = out.aggregates().unwrap();
            assert_eq!(aggs.len(), 1, "{placement:?}");
            assert!((aggs[0].values[0] - expect).abs() < 1e-9, "{placement:?}");
        }
    }

    #[test]
    fn grouped_aggregates_agree_across_layouts() {
        let q = Query::Aggregate(AggregateQuery {
            table: "t".into(),
            aggregates: vec![
                Aggregate {
                    func: AggFunc::Sum,
                    column: 1,
                },
                Aggregate {
                    func: AggFunc::Count,
                    column: 1,
                },
                Aggregate {
                    func: AggFunc::Max,
                    column: 1,
                },
            ],
            group_by: Some(2),
            filter: vec![],
            join: None,
        });
        let reference = {
            let db = db_with(TablePlacement::Single(StoreKind::Row));
            db.execute(&q).unwrap()
        };
        for placement in all_placements() {
            let db = db_with(placement.clone());
            let out = db.execute(&q).unwrap();
            assert_eq!(out, reference, "{placement:?}");
        }
    }

    #[test]
    fn dense_and_hash_group_by_agree() {
        let q = Query::Aggregate(AggregateQuery {
            table: "t".into(),
            aggregates: vec![
                Aggregate {
                    func: AggFunc::Sum,
                    column: 1,
                },
                Aggregate {
                    func: AggFunc::Count,
                    column: 3,
                },
            ],
            group_by: Some(2),
            filter: vec![ColRange::ge(0, Value::BigInt(5))],
            join: None,
        });
        let db = db_with(TablePlacement::Single(StoreKind::Column));
        let dense = db.execute(&q).unwrap();
        set_dense_group_by(false);
        let hashed = db.execute(&q).unwrap();
        set_dense_group_by(true);
        assert_eq!(dense, hashed);
        assert_eq!(dense.aggregates().unwrap().len(), 3);
    }

    #[test]
    fn filtered_aggregation() {
        let q = Query::Aggregate(AggregateQuery {
            table: "t".into(),
            aggregates: vec![Aggregate {
                func: AggFunc::Count,
                column: 0,
            }],
            group_by: None,
            filter: vec![ColRange::ge(1, Value::Double(20.0))],
            join: None,
        });
        for placement in all_placements() {
            let db = db_with(placement.clone());
            let out = db.execute(&q).unwrap();
            assert_eq!(
                out.aggregates().unwrap()[0].values[0],
                10.0,
                "{placement:?}"
            );
        }
    }

    #[test]
    fn avg_and_min_finalize() {
        let q = Query::Aggregate(AggregateQuery {
            table: "t".into(),
            aggregates: vec![
                Aggregate {
                    func: AggFunc::Avg,
                    column: 1,
                },
                Aggregate {
                    func: AggFunc::Min,
                    column: 1,
                },
            ],
            group_by: None,
            filter: vec![],
            join: None,
        });
        let db = db_with(TablePlacement::Single(StoreKind::Column));
        let out = db.execute(&q).unwrap();
        let row = &out.aggregates().unwrap()[0];
        assert!((row.values[0] - 14.5).abs() < 1e-9);
        assert_eq!(row.values[1], 0.0);
    }

    #[test]
    fn point_select_finds_row_in_any_partition() {
        for placement in all_placements() {
            let db = db_with(placement.clone());
            // insert lands in hot partition when horizontal split exists
            db.execute(&Query::Insert(InsertQuery {
                table: "t".into(),
                rows: vec![vec![
                    Value::BigInt(5000),
                    Value::Double(1.0),
                    Value::Int(0),
                    Value::Int(0),
                ]],
            }))
            .unwrap();
            let out = db
                .execute(&Query::Select(SelectQuery::point(
                    "t",
                    0,
                    Value::BigInt(5000),
                )))
                .unwrap();
            assert_eq!(out.rows().unwrap().len(), 1, "{placement:?}");
            let out = db
                .execute(&Query::Select(SelectQuery::point("t", 0, Value::BigInt(7))))
                .unwrap();
            assert_eq!(
                out.rows().unwrap()[0][1],
                Value::Double(7.0),
                "{placement:?}"
            );
            let out = db
                .execute(&Query::Select(SelectQuery::point(
                    "t",
                    0,
                    Value::BigInt(99999),
                )))
                .unwrap();
            assert!(out.rows().unwrap().is_empty(), "{placement:?}");
        }
    }

    #[test]
    fn range_select_unions_partitions() {
        for placement in all_placements() {
            let db = db_with(placement.clone());
            let out = db
                .execute(&Query::Select(SelectQuery {
                    table: "t".into(),
                    columns: Some(vec![0]),
                    filter: vec![ColRange::between(
                        1,
                        Value::Double(10.0),
                        Value::Double(12.0),
                    )],
                }))
                .unwrap();
            let mut ids: Vec<i64> = out
                .rows()
                .unwrap()
                .iter()
                .map(|r| r[0].as_i64().unwrap())
                .collect();
            ids.sort_unstable();
            assert_eq!(ids, vec![10, 11, 12], "{placement:?}");
        }
    }

    #[test]
    fn updates_apply_across_layouts() {
        let upd = Query::Update(UpdateQuery {
            table: "t".into(),
            sets: vec![(3, Value::Int(9))],
            filter: vec![ColRange::eq(0, Value::BigInt(4))],
        });
        let check = Query::Select(SelectQuery::point("t", 0, Value::BigInt(4)));
        for placement in all_placements() {
            let db = db_with(placement.clone());
            let out = db.execute(&upd).unwrap();
            assert_eq!(out, QueryOutput::Affected(1), "{placement:?}");
            let rows = db.execute(&check).unwrap();
            assert_eq!(rows.rows().unwrap()[0][3], Value::Int(9), "{placement:?}");
        }
    }

    #[test]
    fn range_update_affects_all_partitions() {
        let upd = Query::Update(UpdateQuery {
            table: "t".into(),
            sets: vec![(1, Value::Double(-1.0))],
            filter: vec![ColRange::ge(0, Value::BigInt(25))],
        });
        for placement in all_placements() {
            let db = db_with(placement.clone());
            let out = db.execute(&upd).unwrap();
            assert_eq!(out, QueryOutput::Affected(5), "{placement:?}");
        }
    }

    #[test]
    fn join_aggregation_matches_reference() {
        // dk shares the fact fk column's type (Integer): cross-type values
        // never join.
        let dim_schema = TableSchema::new(
            "dim",
            vec![
                ColumnDef::new("dk", ColumnType::Integer),
                ColumnDef::new("region", ColumnType::Integer),
            ],
            vec![0],
        )
        .unwrap();
        let fact_fk_rows: Vec<Vec<Value>> = (0..40)
            .map(|i| {
                vec![
                    Value::BigInt(i),
                    Value::Double(i as f64),
                    Value::Int((i % 4) as i32), // fk into dim (grp column doubles as fk)
                    Value::Int(0),
                ]
            })
            .collect();
        let q = Query::Aggregate(AggregateQuery {
            table: "t".into(),
            aggregates: vec![Aggregate {
                func: AggFunc::Sum,
                column: 1,
            }],
            group_by: None,
            filter: vec![],
            join: Some(JoinSpec {
                dim_table: "dim".into(),
                fact_fk: 2,
                dim_pk: 0,
                group_by_dim: Some(1),
            }),
        });
        let mut reference: Option<QueryOutput> = None;
        for fact_store in StoreKind::BOTH {
            for dim_store in StoreKind::BOTH {
                let db = HybridDatabase::new();
                db.create_single(schema(), fact_store).unwrap();
                db.create_single(dim_schema.clone(), dim_store).unwrap();
                db.bulk_load("t", fact_fk_rows.clone()).unwrap();
                db.bulk_load(
                    "dim",
                    // fk domain is 0..4 but dim holds only 0..3: one dangling key
                    (0..3).map(|i| vec![Value::Int(i), Value::Int(i % 2)]),
                )
                .unwrap();
                let out = db.execute(&q).unwrap();
                match &reference {
                    None => reference = Some(out),
                    Some(r) => assert_eq!(&out, r, "{fact_store:?} x {dim_store:?}"),
                }
            }
        }
        // sanity: two region groups, and dangling fk==3 rows are dropped
        let r = reference.unwrap();
        let groups = r.aggregates().unwrap().to_vec();
        assert_eq!(groups.len(), 2);
        let total: f64 = groups.iter().map(|g| g.values[0]).sum();
        let expect: f64 = (0..40).filter(|i| i % 4 != 3).map(|i| i as f64).sum();
        assert!((total - expect).abs() < 1e-9);
    }

    #[test]
    fn aggregate_on_unknown_column_errors() {
        let db = db_with(TablePlacement::Single(StoreKind::Row));
        let q = Query::Aggregate(AggregateQuery::simple("t", AggFunc::Sum, 99));
        assert!(db.execute(&q).is_err());
    }

    #[test]
    fn logical_stats_cover_partitions() {
        let db = db_with(partitioned_placement());
        // put rows into the hot partition too
        db.execute(&Query::Insert(InsertQuery {
            table: "t".into(),
            rows: vec![vec![
                Value::BigInt(2000),
                Value::Double(123.0),
                Value::Int(7),
                Value::Int(1),
            ]],
        }))
        .unwrap();
        db.refresh_stats("t").unwrap();
        let catalog = db.catalog();
        let stats = &catalog.entry_by_name("t").unwrap().stats;
        assert_eq!(stats.row_count, 31);
        assert_eq!(stats.columns[0].max, Some(Value::BigInt(2000)));
        assert_eq!(stats.columns[1].max, Some(Value::Double(123.0)));
    }
}
