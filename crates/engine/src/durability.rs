//! Crash consistency: WAL record semantics, logging, and recovery.
//!
//! The storage layer ([`hsd_storage::wal`]) owns the byte format — frames,
//! checksums, fsync batching, fault classification. This module owns the
//! *meaning*: which mutating operations are logged ([`WalRecord`]), how they
//! serialize, and how [`HybridDatabase::recover`] replays a log image back
//! into the exact committed pre-crash state.
//!
//! # Commit semantics
//!
//! A record is appended **after** its in-memory apply succeeds and before
//! the statement returns: the durable append *is* the commit point. A
//! statement that fails validation never reaches the log (so replay never
//! re-fails it), and a crash between apply and append simply loses an
//! uncommitted statement — exactly what the caller was told by never seeing
//! the statement return. Multi-row inserts that fail midway log the applied
//! prefix (the engine has no statement rollback; recovery reproduces the
//! same prefix).
//!
//! Under the concurrent engine, every record is appended **while the
//! writer still holds the mutated table's write latch** (see
//! [`crate::database`]): the per-table record order in the log equals the
//! apply order on the table, so single-threaded replay reconstructs
//! exactly the state any latch-ordered concurrent execution committed.
//! Cross-table record order is whatever order the (brief) WAL-writer
//! mutex serialized — immaterial, since records of different tables
//! commute under replay.
//!
//! # Merge records and in-flight merges
//!
//! Completed delta merges are logged as [`WalRecord::MergeComplete`] keyed
//! by `(table, partition, merge_epoch)`; replay re-runs the region merge at
//! the same point in the statement stream, reconstructing the compacted
//! physical shape. An **in-flight** incremental merge at crash time has, by
//! construction, no completion record — its shadow state was never
//! authoritative (see [`crate::mover::cancel_merge`]), so recovery discards
//! it losslessly by simply never replaying it: recovered tables always come
//! up with `merge_in_progress() == false` and identical logical contents.
//! Replay runs with the auto-merge fallback disabled so the only physical
//! reorganizations are the logged ones; by the merge-transparency invariant
//! (see `tests/merge_transparency.rs`) merge timing can never change query
//! answers, so logical state is exact either way.
//!
//! # Graceful degradation
//!
//! Recovery never panics on a damaged log. A torn tail (the normal crash
//! artifact) is truncated to the last valid record. A corrupt **interior**
//! record — a sound frame boundary whose payload fails its checksum —
//! quarantines the affected table (attributed via the frame header's table
//! tag): records for that table from the corruption onward are skipped, the
//! table comes up **read-only** ([`hsd_types::Error::Degraded`] on any
//! mutation), and the [`RecoveryReport`] carries the reason for surfacing
//! (rendered by `hsd-core`'s health report). Other tables replay normally.

use std::collections::HashMap;
use std::ops::Bound;
use std::path::Path;

use hsd_catalog::{placement_from_json, placement_to_json, TablePlacement};
use hsd_query::{InsertQuery, Query, UpdateQuery};
use hsd_storage::wal::{self, FileBackend, RetryPolicy, SyncPolicy, WalWriter};
use hsd_storage::ColRange;
use hsd_types::{
    ColumnDef, ColumnType, Error, Json, JsonError, JsonResult, Result, TableSchema, Value,
};

use crate::database::HybridDatabase;
use crate::maintenance::MergeConfig;
use crate::mover;
use crate::partition::MergePartition;

/// Settings of the durable write path.
#[derive(Debug, Clone, Copy)]
pub struct DurabilityConfig {
    /// Fsync batching policy (default: group commit every 32 records).
    pub sync: SyncPolicy,
    /// Bounded retry/backoff for transient append faults.
    pub retry: RetryPolicy,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            sync: SyncPolicy::EveryN(32),
            retry: RetryPolicy::default(),
        }
    }
}

/// One logged mutating operation (see the module docs for semantics).
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A table was created.
    CreateTable {
        /// The table's schema.
        schema: TableSchema,
        /// Its initial placement.
        placement: TablePlacement,
    },
    /// Rows were inserted. `load` marks a bulk load (replay re-compacts
    /// afterwards, as the original load did).
    Insert {
        /// Target table.
        table: String,
        /// The inserted rows (for a failed multi-row statement: the applied
        /// prefix).
        rows: Vec<Vec<Value>>,
        /// Whether this was a bulk load (ends with a delta merge).
        load: bool,
    },
    /// An update statement was applied.
    Update {
        /// Target table.
        table: String,
        /// Column assignments.
        sets: Vec<(usize, Value)>,
        /// Row predicate.
        filter: Vec<ColRange>,
    },
    /// A secondary index was created.
    CreateIndex {
        /// Target table.
        table: String,
        /// Indexed column.
        column: usize,
    },
    /// The table was physically moved to a new placement.
    Move {
        /// Target table.
        table: String,
        /// The placement it was rebuilt under.
        placement: TablePlacement,
    },
    /// The hot/cold boundary of a horizontal split was rebalanced.
    Rebalance {
        /// Target table.
        table: String,
        /// The new split value.
        split_value: Value,
    },
    /// A delta merge (one-shot or the final slice of an incremental merge)
    /// completed on a region of the table.
    MergeComplete {
        /// Target table.
        table: String,
        /// Physical region that was folded.
        partition: MergePartition,
        /// The table's merge epoch after the completion (diagnostic:
        /// replay re-merges by region, it does not need to match epochs).
        merge_epoch: u64,
    },
    /// The table's cold partition was demoted to an on-disk segment. The
    /// segment itself is a derived cache: replay re-runs the demotion,
    /// re-encoding it from the replayed logical state.
    Demote {
        /// Target table.
        table: String,
    },
    /// The table's cold partition was promoted back to memory residency
    /// (and its segment deleted).
    Promote {
        /// Target table.
        table: String,
    },
}

impl WalRecord {
    /// The table this record belongs to.
    pub fn table_name(&self) -> &str {
        match self {
            WalRecord::CreateTable { schema, .. } => &schema.name,
            WalRecord::Insert { table, .. }
            | WalRecord::Update { table, .. }
            | WalRecord::CreateIndex { table, .. }
            | WalRecord::Move { table, .. }
            | WalRecord::Rebalance { table, .. }
            | WalRecord::MergeComplete { table, .. }
            | WalRecord::Demote { table }
            | WalRecord::Promote { table } => table,
        }
    }

    /// The frame-header routing tag: CRC-32 of the table name, so interior
    /// corruption can be attributed even when the payload is unreadable.
    pub fn table_tag(&self) -> u32 {
        table_tag(self.table_name())
    }

    /// Serialize to the frame payload (compact JSON).
    pub fn to_payload(&self) -> Vec<u8> {
        self.to_json().to_string().into_bytes()
    }

    /// Decode a payload written by [`WalRecord::to_payload`].
    pub fn from_payload(bytes: &[u8]) -> JsonResult<WalRecord> {
        let s =
            std::str::from_utf8(bytes).map_err(|_| JsonError("wal payload is not utf-8".into()))?;
        Self::from_json(&Json::parse(s)?)
    }

    fn to_json(&self) -> Json {
        match self {
            WalRecord::CreateTable { schema, placement } => Json::obj([
                ("op", Json::Str("create_table".into())),
                ("schema", schema_to_json(schema)),
                ("placement", placement_to_json(placement)),
            ]),
            WalRecord::Insert { table, rows, load } => Json::obj([
                ("op", Json::Str("insert".into())),
                ("table", Json::Str(table.clone())),
                (
                    "rows",
                    Json::Arr(
                        rows.iter()
                            .map(|r| Json::Arr(r.iter().map(Json::from_value).collect()))
                            .collect(),
                    ),
                ),
                ("load", Json::Bool(*load)),
            ]),
            WalRecord::Update {
                table,
                sets,
                filter,
            } => Json::obj([
                ("op", Json::Str("update".into())),
                ("table", Json::Str(table.clone())),
                (
                    "sets",
                    Json::Arr(
                        sets.iter()
                            .map(|(c, v)| {
                                Json::obj([
                                    ("col", Json::Int(*c as i64)),
                                    ("value", Json::from_value(v)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "filter",
                    Json::Arr(filter.iter().map(range_to_json).collect()),
                ),
            ]),
            WalRecord::CreateIndex { table, column } => Json::obj([
                ("op", Json::Str("create_index".into())),
                ("table", Json::Str(table.clone())),
                ("column", Json::Int(*column as i64)),
            ]),
            WalRecord::Move { table, placement } => Json::obj([
                ("op", Json::Str("move".into())),
                ("table", Json::Str(table.clone())),
                ("placement", placement_to_json(placement)),
            ]),
            WalRecord::Rebalance { table, split_value } => Json::obj([
                ("op", Json::Str("rebalance".into())),
                ("table", Json::Str(table.clone())),
                ("split_value", Json::from_value(split_value)),
            ]),
            WalRecord::MergeComplete {
                table,
                partition,
                merge_epoch,
            } => Json::obj([
                ("op", Json::Str("merge_complete".into())),
                ("table", Json::Str(table.clone())),
                (
                    "partition",
                    Json::Str(
                        match partition {
                            MergePartition::Whole => "whole",
                            MergePartition::Cold => "cold",
                        }
                        .into(),
                    ),
                ),
                ("merge_epoch", Json::Int(*merge_epoch as i64)),
            ]),
            WalRecord::Demote { table } => Json::obj([
                ("op", Json::Str("demote".into())),
                ("table", Json::Str(table.clone())),
            ]),
            WalRecord::Promote { table } => Json::obj([
                ("op", Json::Str("promote".into())),
                ("table", Json::Str(table.clone())),
            ]),
        }
    }

    fn from_json(j: &Json) -> JsonResult<WalRecord> {
        let op = j.get("op")?.as_str()?;
        match op {
            "create_table" => Ok(WalRecord::CreateTable {
                schema: schema_from_json(j.get("schema")?)?,
                placement: placement_from_json(j.get("placement")?)?,
            }),
            "insert" => Ok(WalRecord::Insert {
                table: j.get("table")?.as_str()?.to_string(),
                rows: j
                    .get("rows")?
                    .as_arr()?
                    .iter()
                    .map(|r| {
                        r.as_arr()?
                            .iter()
                            .map(Json::to_value)
                            .collect::<JsonResult<Vec<_>>>()
                    })
                    .collect::<JsonResult<Vec<_>>>()?,
                load: j.get("load")?.as_bool()?,
            }),
            "update" => Ok(WalRecord::Update {
                table: j.get("table")?.as_str()?.to_string(),
                sets: j
                    .get("sets")?
                    .as_arr()?
                    .iter()
                    .map(|s| Ok((s.get("col")?.as_usize()?, s.get("value")?.to_value()?)))
                    .collect::<JsonResult<Vec<_>>>()?,
                filter: j
                    .get("filter")?
                    .as_arr()?
                    .iter()
                    .map(range_from_json)
                    .collect::<JsonResult<Vec<_>>>()?,
            }),
            "create_index" => Ok(WalRecord::CreateIndex {
                table: j.get("table")?.as_str()?.to_string(),
                column: j.get("column")?.as_usize()?,
            }),
            "move" => Ok(WalRecord::Move {
                table: j.get("table")?.as_str()?.to_string(),
                placement: placement_from_json(j.get("placement")?)?,
            }),
            "rebalance" => Ok(WalRecord::Rebalance {
                table: j.get("table")?.as_str()?.to_string(),
                split_value: j.get("split_value")?.to_value()?,
            }),
            "demote" => Ok(WalRecord::Demote {
                table: j.get("table")?.as_str()?.to_string(),
            }),
            "promote" => Ok(WalRecord::Promote {
                table: j.get("table")?.as_str()?.to_string(),
            }),
            "merge_complete" => Ok(WalRecord::MergeComplete {
                table: j.get("table")?.as_str()?.to_string(),
                partition: match j.get("partition")?.as_str()? {
                    "whole" => MergePartition::Whole,
                    "cold" => MergePartition::Cold,
                    other => return Err(JsonError(format!("unknown merge partition `{other}`"))),
                },
                merge_epoch: j.get("merge_epoch")?.as_i64()? as u64,
            }),
            other => Err(JsonError(format!("unknown wal op `{other}`"))),
        }
    }
}

/// The WAL routing tag of a table name (CRC-32 of its bytes).
pub fn table_tag(table: &str) -> u32 {
    wal::crc32(table.as_bytes())
}

pub(crate) fn schema_to_json(s: &TableSchema) -> Json {
    Json::obj([
        ("name", Json::Str(s.name.clone())),
        (
            "columns",
            Json::Arr(
                s.columns
                    .iter()
                    .map(|c| {
                        Json::obj([
                            ("name", Json::Str(c.name.clone())),
                            ("ty", Json::Str(c.ty.name().into())),
                            ("nullable", Json::Bool(c.nullable)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "primary_key",
            Json::Arr(s.primary_key.iter().map(|&i| Json::Int(i as i64)).collect()),
        ),
    ])
}

pub(crate) fn schema_from_json(j: &Json) -> JsonResult<TableSchema> {
    let columns = j
        .get("columns")?
        .as_arr()?
        .iter()
        .map(|c| {
            let name = c.get("name")?.as_str()?.to_string();
            let ty = column_type_from_name(c.get("ty")?.as_str()?)?;
            Ok(if c.get("nullable")?.as_bool()? {
                ColumnDef::nullable(name, ty)
            } else {
                ColumnDef::new(name, ty)
            })
        })
        .collect::<JsonResult<Vec<_>>>()?;
    let primary_key = j
        .get("primary_key")?
        .as_arr()?
        .iter()
        .map(Json::as_usize)
        .collect::<JsonResult<Vec<_>>>()?;
    TableSchema::new(j.get("name")?.as_str()?, columns, primary_key)
        .map_err(|e| JsonError(e.to_string()))
}

fn column_type_from_name(s: &str) -> JsonResult<ColumnType> {
    ColumnType::ALL
        .iter()
        .copied()
        .find(|t| t.name() == s)
        .ok_or_else(|| JsonError(format!("unknown column type `{s}`")))
}

fn bound_to_json(b: Bound<&Value>) -> Json {
    match b {
        Bound::Unbounded => Json::Null,
        Bound::Included(v) => Json::obj([("in", Json::from_value(v))]),
        Bound::Excluded(v) => Json::obj([("ex", Json::from_value(v))]),
    }
}

fn bound_from_json(j: Option<&Json>) -> JsonResult<Bound<Value>> {
    match j {
        None => Ok(Bound::Unbounded),
        Some(o) => {
            if let Some(v) = o.get_opt("in") {
                Ok(Bound::Included(v.to_value()?))
            } else {
                Ok(Bound::Excluded(o.get("ex")?.to_value()?))
            }
        }
    }
}

fn range_to_json(r: &ColRange) -> Json {
    Json::obj([
        ("column", Json::Int(r.column as i64)),
        ("lo", bound_to_json(r.lo_ref())),
        ("hi", bound_to_json(r.hi_ref())),
    ])
}

fn range_from_json(j: &Json) -> JsonResult<ColRange> {
    let column = j.get("column")?.as_usize()?;
    let lo = bound_from_json(j.get_opt("lo"))?;
    let hi = bound_from_json(j.get_opt("hi"))?;
    // An equality predicate serializes as the degenerate closed range
    // `[v, v]`; fold it back so records round-trip exactly.
    if let (Bound::Included(a), Bound::Included(b)) = (&lo, &hi) {
        if a == b {
            return Ok(ColRange::eq(column, a.clone()));
        }
    }
    Ok(ColRange::range(column, lo, hi))
}

/// A table quarantined read-only by recovery, with the reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradedTable {
    /// Table name (or `<unresolved tag 0x...>` when the corruption hit the
    /// table's own create record and the name never replayed).
    pub table: String,
    /// Human-readable cause.
    pub reason: String,
}

/// What recovery found and did (surfaced as a health report by
/// `hsd_core::health::render_health`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// Records successfully replayed.
    pub records_replayed: usize,
    /// Records skipped (corrupt, undecodable, quarantined table, or replay
    /// failure).
    pub records_skipped: usize,
    /// [`WalRecord::MergeComplete`] records re-applied.
    pub merges_replayed: usize,
    /// Offset at which a torn/garbage tail was truncated, if one was found.
    pub torn_tail: Option<u64>,
    /// End of the structurally sound log prefix (the length appends resume
    /// from).
    pub recovered_len: u64,
    /// Total log bytes scanned.
    pub scanned_len: u64,
    /// Tables quarantined read-only, with reasons.
    pub degraded: Vec<DegradedTable>,
    /// Sequence number of the checkpoint recovery restored from (`None`
    /// when recovery fell all the way back to full-log replay).
    pub checkpoint_seq: Option<u64>,
    /// WAL frontier of the restored checkpoint: replay started at this
    /// byte offset (0 for full-log replay).
    pub checkpoint_wal_len: u64,
    /// Newer checkpoint files passed over as unreadable or invalid before
    /// one restored (or before falling back to full replay).
    pub checkpoints_skipped: usize,
}

impl RecoveryReport {
    /// Whether recovery was entirely clean: no torn tail, no skipped
    /// records, no degraded tables.
    pub fn is_clean(&self) -> bool {
        self.torn_tail.is_none() && self.records_skipped == 0 && self.degraded.is_empty()
    }
}

/// Replay a WAL image into a fresh database (the pure core of recovery —
/// no file handling, no writer attachment). Never panics on damaged input.
pub fn replay(bytes: &[u8]) -> (HybridDatabase, RecoveryReport) {
    let db = HybridDatabase::new();
    let report = replay_into(&db, bytes, 0);
    (db, report)
}

/// Replay the WAL suffix at byte offset `start` into `db` (which already
/// holds the state the prefix produced — an empty database for `start == 0`,
/// a restored checkpoint otherwise). All reported offsets are absolute.
pub(crate) fn replay_into(db: &HybridDatabase, bytes: &[u8], start: u64) -> RecoveryReport {
    // `start` is a frame boundary recorded by a checkpoint; clamp defends
    // against a log that is somehow shorter than the checkpoint said.
    let start = start.min(bytes.len() as u64);
    let scan = wal::scan_frames(&bytes[start as usize..]);
    let mut report = RecoveryReport {
        torn_tail: scan.torn_tail.map(|off| start + off),
        recovered_len: start + scan.recovered_len,
        scanned_len: start + scan.scanned_len,
        ..RecoveryReport::default()
    };
    // Replay with the auto-merge fallback off: the only physical
    // reorganizations during replay are the logged ones. (Merge timing is
    // logically transparent, so this only affects physical shape.)
    db.set_merge_config(MergeConfig::disabled());

    // Interleave valid and corrupt frames in log order, so a quarantine
    // takes effect exactly from its corruption point onward: records of the
    // damaged table *before* the corruption are its committed prefix and
    // replay normally.
    enum Ev<'a> {
        Frame(&'a wal::Frame),
        Corrupt(&'a wal::CorruptFrame),
    }
    let mut events: Vec<(u64, Ev<'_>)> = scan
        .frames
        .iter()
        .map(|f| (f.offset, Ev::Frame(f)))
        .chain(scan.corrupt.iter().map(|c| (c.offset, Ev::Corrupt(c))))
        .collect();
    events.sort_by_key(|(off, _)| *off);

    let mut quarantined: HashMap<u32, String> = HashMap::new();
    for (_, ev) in events {
        match ev {
            Ev::Corrupt(c) => {
                quarantined
                    .entry(c.table_tag)
                    .or_insert_with(|| format!("corrupt WAL record at byte {}", start + c.offset));
            }
            Ev::Frame(f) => {
                if quarantined.contains_key(&f.table_tag) {
                    report.records_skipped += 1;
                    continue;
                }
                let rec = match WalRecord::from_payload(&f.payload) {
                    Ok(r) => r,
                    Err(e) => {
                        // CRC-valid but undecodable: defensive — same
                        // quarantine as corruption.
                        quarantined.insert(
                            f.table_tag,
                            format!("undecodable WAL record at byte {}: {e}", start + f.offset),
                        );
                        report.records_skipped += 1;
                        continue;
                    }
                };
                let is_merge = matches!(rec, WalRecord::MergeComplete { .. });
                match apply_record(db, &rec) {
                    Ok(()) => {
                        report.records_replayed += 1;
                        if is_merge {
                            report.merges_replayed += 1;
                        }
                    }
                    Err(e) => {
                        quarantined.insert(
                            f.table_tag,
                            format!("replay failed at byte {}: {e}", start + f.offset),
                        );
                        report.records_skipped += 1;
                    }
                }
            }
        }
    }

    // Resolve quarantine tags back to table names and mark the database.
    for (tag, reason) in quarantined {
        match db.table_names().into_iter().find(|n| table_tag(n) == tag) {
            Some(name) => {
                db.mark_degraded(&name, &reason);
                report.degraded.push(DegradedTable {
                    table: name,
                    reason,
                });
            }
            None => report.degraded.push(DegradedTable {
                table: format!("<unresolved tag {tag:#010x}>"),
                reason,
            }),
        }
    }
    report.degraded.sort_by(|a, b| a.table.cmp(&b.table));
    // Hand the database back under the default policy; callers that ran a
    // custom merge config before the crash reconfigure after recovery.
    db.set_merge_config(MergeConfig::default());
    report
}

fn apply_record(db: &HybridDatabase, rec: &WalRecord) -> Result<()> {
    match rec {
        WalRecord::CreateTable { schema, placement } => {
            db.create_table(schema.clone(), placement.clone())?;
            Ok(())
        }
        WalRecord::Insert { table, rows, load } => {
            if *load {
                db.bulk_load(table, rows.iter().cloned())?;
            } else {
                db.execute(&Query::Insert(InsertQuery {
                    table: table.clone(),
                    rows: rows.clone(),
                }))?;
            }
            Ok(())
        }
        WalRecord::Update {
            table,
            sets,
            filter,
        } => {
            db.execute(&Query::Update(UpdateQuery {
                table: table.clone(),
                sets: sets.clone(),
                filter: filter.clone(),
            }))?;
            Ok(())
        }
        WalRecord::CreateIndex { table, column } => db.create_index(table, *column),
        WalRecord::Move { table, placement } => mover::move_table(db, table, placement),
        WalRecord::Rebalance { table, split_value } => {
            mover::rebalance_horizontal(db, table, split_value)?;
            Ok(())
        }
        WalRecord::MergeComplete {
            table, partition, ..
        } => {
            mover::merge_delta_partition(db, table, *partition)?;
            Ok(())
        }
        WalRecord::Demote { table } => {
            mover::demote_cold(db, table)?;
            Ok(())
        }
        WalRecord::Promote { table } => mover::promote_cold(db, table),
    }
}

impl HybridDatabase {
    /// Recover a database from the WAL at `path` with default durability
    /// settings: scan, truncate any torn tail, replay the committed prefix,
    /// and reattach a writer so the instance keeps logging. A missing file
    /// yields an empty database with a fresh log.
    pub fn recover(path: impl AsRef<Path>) -> Result<(Self, RecoveryReport)> {
        Self::open(path, DurabilityConfig::default())
    }

    /// [`HybridDatabase::recover`] with explicit durability settings.
    pub fn open(path: impl AsRef<Path>, cfg: DurabilityConfig) -> Result<(Self, RecoveryReport)> {
        let path = path.as_ref();
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(Error::Io(e.to_string())),
        };
        let (db, report) = replay(&bytes);
        let backend = FileBackend::open_truncated(path, report.recovered_len)
            .map_err(|e| Error::Io(e.to_string()))?;
        db.attach_wal(WalWriter::with_retry(
            Box::new(backend),
            cfg.sync,
            cfg.retry,
        ));
        Ok((db, report))
    }

    /// Replay a WAL image without attaching a writer — the entry point the
    /// fault-injection harness uses to simulate "the process died, this is
    /// what was on disk".
    pub fn recover_bytes(bytes: &[u8]) -> (Self, RecoveryReport) {
        replay(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsd_storage::wal::MemBackend;
    use hsd_storage::StoreKind;
    use hsd_types::ColumnType;

    fn schema(name: &str) -> TableSchema {
        TableSchema::new(
            name,
            vec![
                ColumnDef::new("id", ColumnType::BigInt),
                ColumnDef::new("v", ColumnType::Double),
                ColumnDef::nullable("note", ColumnType::Varchar),
            ],
            vec![0],
        )
        .unwrap()
    }

    fn round_trip(rec: WalRecord) {
        let payload = rec.to_payload();
        let back = WalRecord::from_payload(&payload).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn records_round_trip_through_payloads() {
        round_trip(WalRecord::CreateTable {
            schema: schema("t"),
            placement: TablePlacement::Single(StoreKind::Column),
        });
        round_trip(WalRecord::CreateTable {
            schema: schema("t"),
            placement: TablePlacement::Partitioned(hsd_catalog::PartitionSpec {
                horizontal: Some(hsd_catalog::HorizontalSpec {
                    split_column: 0,
                    split_value: Value::BigInt(7),
                }),
                vertical: Some(hsd_catalog::VerticalSpec { row_cols: vec![2] }),
                ..Default::default()
            }),
        });
        round_trip(WalRecord::Insert {
            table: "t".into(),
            rows: vec![
                vec![Value::BigInt(1), Value::Double(0.5), Value::Null],
                vec![Value::BigInt(2), Value::Double(-1.0), Value::text("x")],
            ],
            load: true,
        });
        round_trip(WalRecord::Update {
            table: "t".into(),
            sets: vec![(1, Value::Double(9.0)), (2, Value::text("y"))],
            filter: vec![
                ColRange::eq(0, Value::BigInt(3)),
                ColRange::between(1, Value::Double(0.0), Value::Double(1.0)),
                ColRange::lt(0, Value::BigInt(100)),
                ColRange::ge(0, Value::BigInt(-5)),
            ],
        });
        round_trip(WalRecord::CreateIndex {
            table: "t".into(),
            column: 1,
        });
        round_trip(WalRecord::Move {
            table: "t".into(),
            placement: TablePlacement::Single(StoreKind::Row),
        });
        round_trip(WalRecord::Rebalance {
            table: "t".into(),
            split_value: Value::BigInt(42),
        });
        round_trip(WalRecord::MergeComplete {
            table: "t".into(),
            partition: MergePartition::Cold,
            merge_epoch: 9,
        });
        round_trip(WalRecord::Demote { table: "t".into() });
        round_trip(WalRecord::Promote { table: "t".into() });
    }

    #[test]
    fn update_filters_round_trip_semantically() {
        // The codec collapses `eq` into the degenerate closed range; the
        // predicate must keep matching identically.
        let rec = WalRecord::Update {
            table: "t".into(),
            sets: vec![(1, Value::Double(1.0))],
            filter: vec![ColRange::eq(0, Value::BigInt(5))],
        };
        let back = WalRecord::from_payload(&rec.to_payload()).unwrap();
        let WalRecord::Update { filter, .. } = back else {
            panic!("wrong variant");
        };
        assert_eq!(filter[0].as_eq(), Some(&Value::BigInt(5)));
        assert!(filter[0].matches(&Value::BigInt(5)));
        assert!(!filter[0].matches(&Value::BigInt(6)));
    }

    #[test]
    fn logged_statements_replay_to_identical_state() {
        let mem = MemBackend::new();
        let db = HybridDatabase::new();
        db.attach_wal(WalWriter::new(Box::new(mem.share()), SyncPolicy::Always));
        db.create_single(schema("t"), StoreKind::Column).unwrap();
        db.bulk_load(
            "t",
            (0..40i64).map(|i| vec![Value::BigInt(i), Value::Double(i as f64), Value::Null]),
        )
        .unwrap();
        db.execute(&Query::Update(UpdateQuery {
            table: "t".into(),
            sets: vec![(1, Value::Double(777.0))],
            filter: vec![ColRange::eq(0, Value::BigInt(3))],
        }))
        .unwrap();
        db.execute(&Query::Insert(InsertQuery {
            table: "t".into(),
            rows: vec![vec![Value::BigInt(100), Value::Double(0.25), Value::Null]],
        }))
        .unwrap();
        mover::merge_delta(&db, "t").unwrap();
        db.create_index("t", 1).unwrap();

        let (rec, report) = HybridDatabase::recover_bytes(&mem.snapshot());
        assert!(report.is_clean(), "{report:?}");
        assert!(report.records_replayed >= 5);
        assert_eq!(rec.row_count("t").unwrap(), 41);
        assert_eq!(rec.delta_tail("t").unwrap(), db.delta_tail("t").unwrap());
        let probe = Query::Select(hsd_query::SelectQuery {
            table: "t".into(),
            columns: None,
            filter: vec![ColRange::eq(0, Value::BigInt(3))],
        });
        assert_eq!(
            rec.execute(&probe).unwrap(),
            db.execute(&probe).unwrap(),
            "recovered row must carry the update"
        );
        assert_eq!(
            rec.catalog().entry_by_name("t").unwrap().indexed_columns,
            vec![1]
        );
    }

    #[test]
    fn degraded_table_rejects_writes_but_serves_reads() {
        let mem = MemBackend::new();
        let db = HybridDatabase::new();
        db.attach_wal(WalWriter::new(Box::new(mem.share()), SyncPolicy::Always));
        db.create_single(schema("t"), StoreKind::Column).unwrap();
        db.bulk_load(
            "t",
            (0..10i64).map(|i| vec![Value::BigInt(i), Value::Double(i as f64), Value::Null]),
        )
        .unwrap();
        db.execute(&Query::Insert(InsertQuery {
            table: "t".into(),
            rows: vec![vec![Value::BigInt(50), Value::Double(1.0), Value::Null]],
        }))
        .unwrap();
        let mut image = mem.snapshot();
        // Corrupt the *last* frame's payload (the insert).
        let scan = wal::scan_frames(&image);
        let last = scan.frames.last().unwrap().offset as usize;
        image[last + wal::HEADER_LEN] ^= 0xFF;

        let (rec, report) = HybridDatabase::recover_bytes(&image);
        assert_eq!(report.degraded.len(), 1);
        assert_eq!(report.degraded[0].table, "t");
        assert!(rec.is_degraded("t"));
        assert_eq!(rec.row_count("t").unwrap(), 10, "pre-corruption prefix");
        // Reads still work; writes are rejected with Degraded.
        assert!(rec
            .execute(&Query::Select(hsd_query::SelectQuery {
                table: "t".into(),
                columns: None,
                filter: vec![],
            }))
            .is_ok());
        let err = rec
            .execute(&Query::Insert(InsertQuery {
                table: "t".into(),
                rows: vec![vec![Value::BigInt(60), Value::Double(1.0), Value::Null]],
            }))
            .unwrap_err();
        assert!(matches!(err, Error::Degraded(_)), "{err}");
        assert!(matches!(
            rec.bulk_load("t", std::iter::empty()).unwrap_err(),
            Error::Degraded(_)
        ));
        // Lifting the quarantine restores writability (operator override).
        assert!(rec.clear_degraded("t"));
        assert!(rec
            .execute(&Query::Insert(InsertQuery {
                table: "t".into(),
                rows: vec![vec![Value::BigInt(60), Value::Double(1.0), Value::Null]],
            }))
            .is_ok());
    }

    #[test]
    fn recover_from_file_truncates_torn_tail_and_resumes_logging() {
        let dir = std::env::temp_dir().join(format!("hsd_durability_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resume.wal");
        let _ = std::fs::remove_file(&path);
        {
            let (db, report) = HybridDatabase::recover(&path).unwrap();
            assert!(report.is_clean());
            db.create_single(schema("t"), StoreKind::Column).unwrap();
            db.bulk_load(
                "t",
                (0..8i64).map(|i| vec![Value::BigInt(i), Value::Double(i as f64), Value::Null]),
            )
            .unwrap();
            db.sync_wal().unwrap();
        }
        // Tear the tail: append garbage, as a crashed half-write would.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(&[0xAB; 7]).unwrap();
        }
        let torn_len = std::fs::metadata(&path).unwrap().len();
        let (db, report) = HybridDatabase::recover(&path).unwrap();
        assert_eq!(report.torn_tail, Some(torn_len - 7));
        assert_eq!(db.row_count("t").unwrap(), 8);
        assert!(
            std::fs::metadata(&path).unwrap().len() < torn_len,
            "the torn tail must be truncated on disk"
        );
        // The recovered instance keeps logging: a new statement survives
        // the next recovery.
        db.execute(&Query::Insert(InsertQuery {
            table: "t".into(),
            rows: vec![vec![Value::BigInt(99), Value::Double(9.9), Value::Null]],
        }))
        .unwrap();
        db.sync_wal().unwrap();
        drop(db);
        let (db, report) = HybridDatabase::recover(&path).unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(db.row_count("t").unwrap(), 9);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corruption_quarantines_only_the_affected_table() {
        let mem = MemBackend::new();
        let db = HybridDatabase::new();
        db.attach_wal(WalWriter::new(Box::new(mem.share()), SyncPolicy::Always));
        db.create_single(schema("a"), StoreKind::Column).unwrap();
        db.create_single(schema("b"), StoreKind::Row).unwrap();
        db.bulk_load(
            "a",
            (0..5i64).map(|i| vec![Value::BigInt(i), Value::Double(0.0), Value::Null]),
        )
        .unwrap();
        db.bulk_load(
            "b",
            (0..5i64).map(|i| vec![Value::BigInt(i), Value::Double(0.0), Value::Null]),
        )
        .unwrap();
        let mut image = mem.snapshot();
        // Corrupt b's bulk-load record (the last frame).
        let scan = wal::scan_frames(&image);
        let last = scan.frames.last().unwrap();
        assert_eq!(last.table_tag, table_tag("b"));
        let off = last.offset as usize;
        image[off + wal::HEADER_LEN + 1] ^= 0x10;

        let (rec, report) = HybridDatabase::recover_bytes(&image);
        assert_eq!(report.degraded.len(), 1);
        assert_eq!(report.degraded[0].table, "b");
        assert!(rec.is_degraded("b"));
        assert!(!rec.is_degraded("a"));
        assert_eq!(rec.row_count("a").unwrap(), 5);
        assert_eq!(rec.row_count("b").unwrap(), 0, "b's load was lost");
        // `a` stays fully writable.
        assert!(rec
            .execute(&Query::Insert(InsertQuery {
                table: "a".into(),
                rows: vec![vec![Value::BigInt(10), Value::Double(1.0), Value::Null]],
            }))
            .is_ok());
    }
}
