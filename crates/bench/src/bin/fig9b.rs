//! Figure 9(b): vertical partitioning, **OLTP setting** — 18 attributes
//! used for selections and updates, only 1 keyfigure and 1 group-by
//! attribute.

use hsd_bench::{fig9, scaled_rows};
use hsd_query::TableSpec;

fn main() -> hsd_types::Result<()> {
    let rows = scaled_rows(10_000_000);
    let spec = TableSpec {
        name: "t".into(),
        rows,
        fk_attrs: 0,
        fk_cardinality: 1,
        keyfigures: 1,
        group_attrs: 1,
        filter_attrs: 0,
        status_attrs: 18,
        group_cardinality: 100,
        status_cardinality: 1000,
        kf_distinct: (rows / 20).max(64) as u32,
        seed: 0xF19B,
    };
    fig9::run_setting(
        &format!("Figure 9(b): vertical partitioning, OLTP setting ({rows} tuples)"),
        &spec,
    )
}
