//! The eight TPC-H table schemas.

use hsd_types::{ColumnDef, ColumnType, Result, TableSchema};

/// Names of all TPC-H tables, load order (referenced tables first).
pub const TABLE_NAMES: [&str; 8] = [
    "region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem",
];

/// Tables receiving OLTP traffic in the paper's final experiment
/// ("inserts and updates for all tables but nation and region").
pub const OLTP_TABLES: [&str; 6] = [
    "supplier", "customer", "part", "partsupp", "orders", "lineitem",
];

fn col(name: &str, ty: ColumnType) -> ColumnDef {
    ColumnDef::new(name, ty)
}

/// `region` schema.
pub fn region() -> Result<TableSchema> {
    TableSchema::new(
        "region",
        vec![
            col("r_regionkey", ColumnType::BigInt),
            col("r_name", ColumnType::Varchar),
            col("r_comment", ColumnType::Varchar),
        ],
        vec![0],
    )
}

/// `nation` schema.
pub fn nation() -> Result<TableSchema> {
    TableSchema::new(
        "nation",
        vec![
            col("n_nationkey", ColumnType::BigInt),
            col("n_name", ColumnType::Varchar),
            col("n_regionkey", ColumnType::BigInt),
            col("n_comment", ColumnType::Varchar),
        ],
        vec![0],
    )
}

/// `supplier` schema.
pub fn supplier() -> Result<TableSchema> {
    TableSchema::new(
        "supplier",
        vec![
            col("s_suppkey", ColumnType::BigInt),
            col("s_name", ColumnType::Varchar),
            col("s_address", ColumnType::Varchar),
            col("s_nationkey", ColumnType::BigInt),
            col("s_phone", ColumnType::Varchar),
            col("s_acctbal", ColumnType::Decimal),
            col("s_comment", ColumnType::Varchar),
        ],
        vec![0],
    )
}

/// `customer` schema.
pub fn customer() -> Result<TableSchema> {
    TableSchema::new(
        "customer",
        vec![
            col("c_custkey", ColumnType::BigInt),
            col("c_name", ColumnType::Varchar),
            col("c_address", ColumnType::Varchar),
            col("c_nationkey", ColumnType::BigInt),
            col("c_phone", ColumnType::Varchar),
            col("c_acctbal", ColumnType::Decimal),
            col("c_mktsegment", ColumnType::Varchar),
            col("c_comment", ColumnType::Varchar),
        ],
        vec![0],
    )
}

/// `part` schema.
pub fn part() -> Result<TableSchema> {
    TableSchema::new(
        "part",
        vec![
            col("p_partkey", ColumnType::BigInt),
            col("p_name", ColumnType::Varchar),
            col("p_mfgr", ColumnType::Varchar),
            col("p_brand", ColumnType::Varchar),
            col("p_type", ColumnType::Varchar),
            col("p_size", ColumnType::Integer),
            col("p_container", ColumnType::Varchar),
            col("p_retailprice", ColumnType::Decimal),
            col("p_comment", ColumnType::Varchar),
        ],
        vec![0],
    )
}

/// `partsupp` schema (composite primary key).
pub fn partsupp() -> Result<TableSchema> {
    TableSchema::new(
        "partsupp",
        vec![
            col("ps_partkey", ColumnType::BigInt),
            col("ps_suppkey", ColumnType::BigInt),
            col("ps_availqty", ColumnType::Integer),
            col("ps_supplycost", ColumnType::Decimal),
            col("ps_comment", ColumnType::Varchar),
        ],
        vec![0, 1],
    )
}

/// `orders` schema.
pub fn orders() -> Result<TableSchema> {
    TableSchema::new(
        "orders",
        vec![
            col("o_orderkey", ColumnType::BigInt),
            col("o_custkey", ColumnType::BigInt),
            col("o_orderstatus", ColumnType::Varchar),
            col("o_totalprice", ColumnType::Decimal),
            col("o_orderdate", ColumnType::Date),
            col("o_orderpriority", ColumnType::Varchar),
            col("o_clerk", ColumnType::Varchar),
            col("o_shippriority", ColumnType::Integer),
            col("o_comment", ColumnType::Varchar),
        ],
        vec![0],
    )
}

/// `lineitem` schema (composite primary key).
pub fn lineitem() -> Result<TableSchema> {
    TableSchema::new(
        "lineitem",
        vec![
            col("l_orderkey", ColumnType::BigInt),
            col("l_linenumber", ColumnType::Integer),
            col("l_partkey", ColumnType::BigInt),
            col("l_suppkey", ColumnType::BigInt),
            col("l_quantity", ColumnType::Decimal),
            col("l_extendedprice", ColumnType::Decimal),
            col("l_discount", ColumnType::Decimal),
            col("l_tax", ColumnType::Decimal),
            col("l_returnflag", ColumnType::Varchar),
            col("l_linestatus", ColumnType::Varchar),
            col("l_shipdate", ColumnType::Date),
            col("l_commitdate", ColumnType::Date),
            col("l_receiptdate", ColumnType::Date),
            col("l_shipinstruct", ColumnType::Varchar),
            col("l_shipmode", ColumnType::Varchar),
            col("l_comment", ColumnType::Varchar),
        ],
        vec![0, 1],
    )
}

/// All schemas, load order.
pub fn all() -> Result<Vec<TableSchema>> {
    Ok(vec![
        region()?,
        nation()?,
        supplier()?,
        customer()?,
        part()?,
        partsupp()?,
        orders()?,
        lineitem()?,
    ])
}

/// Column indexes used by the generator and workload (kept adjacent to the
/// schemas so they cannot drift).
pub mod cols {
    /// `lineitem` column positions.
    pub mod lineitem {
        /// l_orderkey
        pub const ORDERKEY: usize = 0;
        /// l_linenumber
        pub const LINENUMBER: usize = 1;
        /// l_partkey
        pub const PARTKEY: usize = 2;
        /// l_suppkey
        pub const SUPPKEY: usize = 3;
        /// l_quantity
        pub const QUANTITY: usize = 4;
        /// l_extendedprice
        pub const EXTENDEDPRICE: usize = 5;
        /// l_discount
        pub const DISCOUNT: usize = 6;
        /// l_tax
        pub const TAX: usize = 7;
        /// l_returnflag
        pub const RETURNFLAG: usize = 8;
        /// l_linestatus
        pub const LINESTATUS: usize = 9;
        /// l_shipdate
        pub const SHIPDATE: usize = 10;
        /// l_shipinstruct
        pub const SHIPINSTRUCT: usize = 13;
        /// l_shipmode
        pub const SHIPMODE: usize = 14;
    }

    /// `orders` column positions.
    pub mod orders {
        /// o_orderkey
        pub const ORDERKEY: usize = 0;
        /// o_custkey
        pub const CUSTKEY: usize = 1;
        /// o_orderstatus
        pub const ORDERSTATUS: usize = 2;
        /// o_totalprice
        pub const TOTALPRICE: usize = 3;
        /// o_orderdate
        pub const ORDERDATE: usize = 4;
        /// o_orderpriority
        pub const ORDERPRIORITY: usize = 5;
        /// o_shippriority
        pub const SHIPPRIORITY: usize = 7;
    }

    /// `customer` column positions.
    pub mod customer {
        /// c_custkey
        pub const CUSTKEY: usize = 0;
        /// c_nationkey
        pub const NATIONKEY: usize = 3;
        /// c_acctbal
        pub const ACCTBAL: usize = 5;
        /// c_mktsegment
        pub const MKTSEGMENT: usize = 6;
    }

    /// `part` column positions.
    pub mod part {
        /// p_partkey
        pub const PARTKEY: usize = 0;
        /// p_brand
        pub const BRAND: usize = 3;
        /// p_size
        pub const SIZE: usize = 5;
        /// p_retailprice
        pub const RETAILPRICE: usize = 7;
    }

    /// `partsupp` column positions.
    pub mod partsupp {
        /// ps_partkey
        pub const PARTKEY: usize = 0;
        /// ps_suppkey
        pub const SUPPKEY: usize = 1;
        /// ps_availqty
        pub const AVAILQTY: usize = 2;
        /// ps_supplycost
        pub const SUPPLYCOST: usize = 3;
    }

    /// `supplier` column positions.
    pub mod supplier {
        /// s_suppkey
        pub const SUPPKEY: usize = 0;
        /// s_acctbal
        pub const ACCTBAL: usize = 5;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_schemas_valid() {
        let schemas = all().unwrap();
        assert_eq!(schemas.len(), 8);
        let names: Vec<&str> = schemas.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, TABLE_NAMES);
    }

    #[test]
    fn lineitem_matches_spec() {
        let l = lineitem().unwrap();
        assert_eq!(l.arity(), 16);
        assert_eq!(l.primary_key, vec![0, 1]);
        assert_eq!(
            l.columns[cols::lineitem::EXTENDEDPRICE].name,
            "l_extendedprice"
        );
        assert_eq!(l.columns[cols::lineitem::SHIPMODE].name, "l_shipmode");
    }

    #[test]
    fn orders_matches_spec() {
        let o = orders().unwrap();
        assert_eq!(o.arity(), 9);
        assert_eq!(o.columns[cols::orders::ORDERDATE].name, "o_orderdate");
        assert_eq!(o.columns[cols::orders::ORDERDATE].ty, ColumnType::Date);
    }

    #[test]
    fn composite_keys() {
        assert_eq!(partsupp().unwrap().primary_key, vec![0, 1]);
        assert_eq!(lineitem().unwrap().primary_key, vec![0, 1]);
    }
}
