//! Cross-crate invariant: a workload produces *identical logical results
//! and identical final table contents* no matter which storage layout the
//! data lives in. This is the transparency property the paper's rewriter
//! promises ("the query rewriting must be realized automatically and
//! transparently to the user").

use hybrid_store_advisor::engine::{GroupRow, QueryOutput};
use hybrid_store_advisor::prelude::*;

/// Aggregation results accumulate in store-specific orders, so floating
/// sums may differ in the last ulps; everything else must match exactly.
fn assert_outputs_close(a: &QueryOutput, b: &QueryOutput, ctx: &str) {
    match (a, b) {
        (QueryOutput::Aggregates(x), QueryOutput::Aggregates(y)) => {
            assert_eq!(x.len(), y.len(), "group count diverges: {ctx}");
            for (
                GroupRow {
                    key: ka,
                    values: va,
                },
                GroupRow {
                    key: kb,
                    values: vb,
                },
            ) in x.iter().zip(y)
            {
                assert_eq!(ka, kb, "group keys diverge: {ctx}");
                assert_eq!(va.len(), vb.len(), "aggregate count diverges: {ctx}");
                for (p, q) in va.iter().zip(vb) {
                    let tol = 1e-9 * p.abs().max(q.abs()).max(1.0);
                    assert!((p - q).abs() <= tol, "{p} vs {q} diverges: {ctx}");
                }
            }
        }
        _ => assert_eq!(a, b, "outputs diverge: {ctx}"),
    }
}

fn assert_all_close(a: &[QueryOutput], b: &[QueryOutput], ctx: &str) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_outputs_close(x, y, &format!("{ctx}, query #{i}"));
    }
}

fn placements(spec: &TableSpec) -> Vec<(&'static str, TablePlacement)> {
    let n = spec.rows as i64;
    vec![
        ("rs", TablePlacement::Single(StoreKind::Row)),
        ("cs", TablePlacement::Single(StoreKind::Column)),
        (
            "horizontal",
            TablePlacement::Partitioned(PartitionSpec {
                horizontal: Some(HorizontalSpec {
                    split_column: 0,
                    split_value: Value::BigInt(n * 9 / 10),
                }),
                vertical: None,
                ..Default::default()
            }),
        ),
        (
            "vertical",
            TablePlacement::Partitioned(PartitionSpec {
                horizontal: None,
                vertical: Some(VerticalSpec {
                    row_cols: spec.st_cols(),
                }),
                ..Default::default()
            }),
        ),
        (
            "both",
            TablePlacement::Partitioned(PartitionSpec {
                horizontal: Some(HorizontalSpec {
                    split_column: 0,
                    split_value: Value::BigInt(n * 9 / 10),
                }),
                vertical: Some(VerticalSpec {
                    row_cols: spec.st_cols(),
                }),
                ..Default::default()
            }),
        ),
    ]
}

fn build(spec: &TableSpec, placement: &TablePlacement) -> HybridDatabase {
    let db = HybridDatabase::new();
    db.create_single(spec.schema().unwrap(), StoreKind::Row)
        .unwrap();
    db.bulk_load(&spec.name, spec.rows()).unwrap();
    mover::move_table(&db, &spec.name, placement).unwrap();
    db
}

/// Execute the workload and return (per-query outputs, final table rows).
fn run_and_snapshot(
    spec: &TableSpec,
    placement: &TablePlacement,
    workload: &Workload,
) -> (Vec<QueryOutput>, Vec<Vec<Value>>) {
    let db = build(spec, placement);
    let mut outputs = Vec::with_capacity(workload.len());
    for q in &workload.queries {
        outputs.push(db.execute(q).unwrap());
    }
    // Move to a single row store to extract rows in a canonical way.
    mover::move_table(&db, &spec.name, &TablePlacement::Single(StoreKind::Row)).unwrap();
    let shard = db.shard(&spec.name).unwrap();
    let pin = shard.pin();
    let mut rows = match &*pin {
        hybrid_store_advisor::engine::TableData::Single(t) => {
            t.collect_rows(hybrid_store_advisor::storage::RowSel::All, None)
        }
        other => panic!("expected single table after move, got {other:?}"),
    };
    rows.sort_by(|a, b| a[0].cmp(&b[0]));
    drop(pin);
    (outputs, rows)
}

#[test]
fn all_layouts_agree_on_results_and_final_state() {
    let spec = TableSpec::paper_wide("t", 2_000, 11);
    let workload = WorkloadGenerator::single_table(
        &spec,
        &MixedWorkloadConfig {
            queries: 120,
            olap_fraction: 0.15,
            oltp_insert_share: 0.3,
            oltp_update_share: 0.4,
            hot_fraction: Some(0.2),
            whole_tuple_update_prob: 0.3,
            seed: 99,
            ..Default::default()
        },
    );
    let mut reference: Option<(Vec<QueryOutput>, Vec<Vec<Value>>)> = None;
    for (label, placement) in placements(&spec) {
        let snapshot = run_and_snapshot(&spec, &placement, &workload);
        match &reference {
            None => reference = Some(snapshot),
            Some(r) => {
                assert_all_close(&r.0, &snapshot.0, label);
                assert_eq!(r.1, snapshot.1, "final rows diverge under layout {label}");
            }
        }
    }
}

#[test]
fn range_updates_agree_across_layouts() {
    let spec = TableSpec::paper_wide("t", 1_500, 13);
    let workload = WorkloadGenerator::single_table(
        &spec,
        &MixedWorkloadConfig {
            queries: 60,
            olap_fraction: 0.1,
            oltp_insert_share: 0.0,
            oltp_update_share: 1.0,
            hot_fraction: Some(0.1),
            update_range_rows: Some(40),
            whole_tuple_update_prob: 0.5,
            seed: 7,
            ..Default::default()
        },
    );
    let mut reference: Option<(Vec<QueryOutput>, Vec<Vec<Value>>)> = None;
    for (label, placement) in placements(&spec) {
        let snapshot = run_and_snapshot(&spec, &placement, &workload);
        match &reference {
            None => reference = Some(snapshot),
            Some(r) => {
                assert_all_close(&r.0, &snapshot.0, label);
                assert_eq!(r.1, snapshot.1, "range-update rows diverge under {label}");
            }
        }
    }
}

#[test]
fn star_join_agrees_across_fact_layouts() {
    let fact = TableSpec {
        name: "fact".into(),
        rows: 2_000,
        fk_attrs: 1,
        fk_cardinality: 50,
        keyfigures: 3,
        group_attrs: 0,
        filter_attrs: 1,
        status_attrs: 2,
        group_cardinality: 1,
        status_cardinality: 5,
        kf_distinct: 100,
        seed: 5,
    };
    let dim = TableSpec {
        name: "dim".into(),
        rows: 50,
        fk_attrs: 0,
        fk_cardinality: 1,
        keyfigures: 0,
        group_attrs: 2,
        filter_attrs: 1,
        status_attrs: 0,
        group_cardinality: 8,
        status_cardinality: 1,
        kf_distinct: 64,
        seed: 6,
    };
    let workload = WorkloadGenerator::star(
        &fact,
        &dim,
        fact.fk_col(0),
        &MixedWorkloadConfig {
            queries: 60,
            olap_fraction: 0.3,
            seed: 21,
            ..Default::default()
        },
    );
    let mut reference: Option<Vec<QueryOutput>> = None;
    for placement in [
        TablePlacement::Single(StoreKind::Row),
        TablePlacement::Single(StoreKind::Column),
        TablePlacement::Partitioned(PartitionSpec {
            horizontal: Some(HorizontalSpec {
                split_column: 0,
                split_value: Value::BigInt(1_800),
            }),
            vertical: Some(VerticalSpec {
                row_cols: fact.st_cols(),
            }),
            ..Default::default()
        }),
    ] {
        let db = HybridDatabase::new();
        db.create_single(fact.schema().unwrap(), StoreKind::Row)
            .unwrap();
        db.create_single(dim.schema().unwrap(), StoreKind::Row)
            .unwrap();
        db.bulk_load("fact", fact.rows()).unwrap();
        db.bulk_load("dim", dim.rows()).unwrap();
        mover::move_table(&db, "fact", &placement).unwrap();
        let outputs: Vec<QueryOutput> = workload
            .queries
            .iter()
            .map(|q| db.execute(q).unwrap())
            .collect();
        match &reference {
            None => reference = Some(outputs),
            Some(r) => assert_all_close(r, &outputs, &format!("{placement:?}")),
        }
    }
}
