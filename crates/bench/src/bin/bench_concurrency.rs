//! Concurrent-engine throughput scaling: mixed read/write serving threads
//! against one shared database — no global lock, epoch-pinned scans,
//! per-table write latches, WAL fsyncs, and the background maintenance
//! worker merging throughout — recorded as `BENCH_concurrency.json`.
//!
//! Each serving thread homes on its own column table and interleaves
//! epoch-pinned aggregate scans (CPU-bound) with durably synced updates
//! (I/O-bound) at a write fraction balanced so the two cost about the same
//! wall-clock per thread. On a machine with even a single core the
//! concurrent engine then overlaps one thread's sync wait with another
//! thread's scan CPU, and group commit coalesces syncs that pile up behind
//! one in flight — concurrent writers pay ~one device sync per batch, not
//! one each; with more cores the scans themselves parallelize too. The old
//! engine's `Arc<Mutex<HybridDatabase>>` could do none of this — every
//! sync held the one lock the scans needed — which is what the
//! `serialized` ablation (same threads, every statement under one global
//! mutex) replays.
//!
//! Headline: `throughput_4t_scaling` — mixed-stream throughput at 4
//! threads over 1 thread, background worker merging in both — must reach
//! **1.5x** for the run to pass.
//!
//! Run with `cargo run --release -p hsd-bench --bin bench_concurrency`
//! (`-- --smoke` for the small CI configuration).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use hsd_engine::{
    BackgroundWorker, HybridDatabase, MergeConfig, MergePartition, PacerConfig, SharedDatabase,
    WorkerConfig,
};
use hsd_query::{AggFunc, AggregateQuery, Query, TableSpec, UpdateQuery};
use hsd_storage::{ColRange, FileBackend, StoreKind, SyncPolicy, WalWriter};
use hsd_types::{Json, Value};

/// Thread counts swept (1 is the scaling baseline).
const THREADS: &[usize] = &[1, 2, 4, 8];

/// Simulated per-sync durable-write latency. A container's real fsync is
/// wildly bimodal — the page cache absorbs one sync in microseconds and
/// stalls the next for milliseconds — which makes run-to-run scaling
/// ratios meaningless. The benchmark therefore appends every WAL record
/// for real but *simulates* the device sync with a fixed sleep (the
/// latency class of an NVMe fsync), so the overlap being measured — one
/// thread's sync wait hiding under other threads' scan CPU — is
/// reproducible. Real-device durability costs are bench_recovery's job.
const SYNC_LATENCY: std::time::Duration = std::time::Duration::from_micros(600);

/// [`FileBackend`] whose `sync` is a deterministic [`SYNC_LATENCY`] stall
/// (appends are real; the device sync is simulated).
#[derive(Debug)]
struct SimulatedSyncBackend(FileBackend);

impl hsd_storage::WalBackend for SimulatedSyncBackend {
    fn append(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.append(buf)
    }
    fn sync(&mut self) -> std::io::Result<()> {
        std::thread::sleep(SYNC_LATENCY);
        Ok(())
    }
    fn len(&self) -> u64 {
        self.0.len()
    }
    fn sync_handle(&self) -> Option<Box<dyn hsd_storage::wal::WalSyncHandle>> {
        // Detachable like the real file backend's handle, so the engine's
        // group commit can sync concurrently with appends (that overlap is
        // what forms commit batches).
        Some(Box::new(SimulatedSyncHandle))
    }
}

#[derive(Debug)]
struct SimulatedSyncHandle;

impl hsd_storage::wal::WalSyncHandle for SimulatedSyncHandle {
    fn sync(&mut self) -> std::io::Result<()> {
        std::thread::sleep(SYNC_LATENCY);
        Ok(())
    }
}

struct Scale {
    /// Rows per home table.
    rows: usize,
    /// Statements each serving thread executes per run.
    statements_per_thread: usize,
    smoke: bool,
}

impl Scale {
    fn from_args() -> Self {
        if std::env::args().any(|a| a == "--smoke") {
            Scale {
                rows: 10_000,
                statements_per_thread: 150,
                smoke: true,
            }
        } else {
            // Tables stay small on purpose: a serving thread's scan set
            // must fit the (single-vCPU container's) cache, or the sweep
            // measures cache refills after every context switch instead of
            // the engine's concurrency.
            Scale {
                rows: 12_000,
                statements_per_thread: 800,
                smoke: false,
            }
        }
    }
}

fn spec(i: usize, rows: usize) -> TableSpec {
    TableSpec::paper_wide(format!("t{i}"), rows, 0xC0DE + i as u64)
}

/// One shared database holding every thread's home table, with a
/// truncate-on-open file WAL (`SyncPolicy::Always`: every write statement
/// waits for a durable sync — the [`SYNC_LATENCY`] stall the concurrent
/// engine gets to overlap with scans and coalesce via group commit).
/// Appends go to a real file under `target/`.
fn build_shared(scale: &Scale, tables: usize) -> SharedDatabase {
    let db = HybridDatabase::new();
    let wal_path = std::path::Path::new("target").join("bench_concurrency.wal");
    let backend = FileBackend::open_truncated(&wal_path, 0).expect("open WAL under target/");
    db.attach_wal(WalWriter::new(
        Box::new(SimulatedSyncBackend(backend)),
        SyncPolicy::Always,
    ));
    for i in 0..tables {
        let s = spec(i, scale.rows);
        db.create_single(s.schema().expect("schema"), StoreKind::Column)
            .expect("create");
        db.bulk_load(&s.name, s.rows()).expect("load");
    }
    // The background worker is the only merge scheduler during the runs.
    db.set_merge_config(MergeConfig::disabled());
    Arc::new(db)
}

/// The thread's read statement: an epoch-pinned full scan of a group
/// column on its home table (CPU-bound, no latch).
fn read_stmt(s: &TableSpec) -> Query {
    Query::Aggregate(AggregateQuery::simple(
        &s.name,
        AggFunc::Count,
        s.grp_col(0),
    ))
}

/// The thread's write statement: a point update interning a fresh
/// keyfigure value — grows the home table's dictionary tail (feeding the
/// worker) and waits for a durable WAL sync under the table's write latch.
fn write_stmt(s: &TableSpec, j: usize) -> Query {
    Query::Update(UpdateQuery {
        table: s.name.clone(),
        sets: vec![(s.kf_col(0), Value::Double(5e6 + j as f64 * 0.017))],
        filter: vec![ColRange::eq(0, Value::BigInt(((j * 31) % s.rows) as i64))],
    })
}

/// Balance the statement mix: pick the write fraction `f = r / (r + w)`
/// (clamped to [0.05, 0.40]) from measured single-statement costs, so one
/// thread spends comparable wall-clock in scan CPU and in sync wait —
/// the regime where concurrency can actually overlap the two.
fn calibrate_write_fraction(db: &SharedDatabase, s: &TableSpec) -> f64 {
    let reps = 20;
    let t0 = Instant::now();
    for _ in 0..reps {
        db.execute(&read_stmt(s)).expect("read");
    }
    let read_ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;
    let t0 = Instant::now();
    for j in 0..reps {
        db.execute(&write_stmt(s, 900_000 + j)).expect("write");
    }
    let write_ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;
    (read_ms / (read_ms + write_ms)).clamp(0.05, 0.40)
}

struct RunReport {
    threads: usize,
    statements: usize,
    elapsed_ms: f64,
    throughput_sps: f64,
    entries_folded: u64,
    slices: u64,
}

/// Serve `statements_per_thread` statements from each of `threads`
/// threads, the background worker slicing merges throughout. With
/// `serialize` every statement additionally takes one process-wide mutex —
/// the old global-lock engine replayed on the new storage layer.
fn run(scale: &Scale, threads: usize, write_pct: usize, serialize: bool) -> RunReport {
    let shared = build_shared(scale, threads);
    let worker = Arc::new(BackgroundWorker::spawn(
        shared.clone(),
        WorkerConfig {
            pacer: PacerConfig::default(),
            ..WorkerConfig::default()
        },
        std::time::Duration::from_micros(600),
    ));
    let global = Arc::new(Mutex::new(()));
    let executed = Arc::new(AtomicUsize::new(0));
    let started = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let db = shared.clone();
            let worker_q = worker.clone();
            let global = global.clone();
            let executed = executed.clone();
            let s = spec(t, scale.rows);
            let per_thread = scale.statements_per_thread;
            std::thread::spawn(move || {
                let mut writes = 0usize;
                // Per-thread deterministic LCG placing writes at the
                // calibrated fraction. A shared regular pattern would
                // phase-lock the threads — everyone fsyncs at once (the
                // WAL serializes them while the CPU idles), then everyone
                // scans at once (the disk idles). Decorrelated streams
                // keep the WAL queue and the CPU busy simultaneously,
                // which is the overlap being measured.
                let mut lcg: u64 = 0x9E37_79B9 ^ (t as u64).wrapping_mul(0x2545_F491_4F6C_DD1D);
                for j in 0..per_thread {
                    lcg = lcg
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let is_write = ((lcg >> 33) % 100) < write_pct as u64;
                    let q = if is_write {
                        write_stmt(&s, j)
                    } else {
                        read_stmt(&s)
                    };
                    if serialize {
                        let _g = global.lock().expect("global lock");
                        db.execute(&q).expect("execute");
                    } else {
                        db.execute(&q).expect("execute");
                    }
                    if is_write {
                        writes += 1;
                        // Refresh the merge job every few fresh-value
                        // interns, so slices overlap the serving stream.
                        if writes % 8 == 1 {
                            worker_q.enqueue(&s.name, MergePartition::Whole);
                        }
                    }
                    executed.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("serving thread");
    }
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
    let worker = Arc::try_unwrap(worker).expect("serving threads dropped their handles");
    let stats = worker.stop(true);
    let statements = executed.load(Ordering::Relaxed);
    RunReport {
        threads,
        statements,
        elapsed_ms,
        throughput_sps: statements as f64 / (elapsed_ms / 1e3),
        entries_folded: stats.entries_folded,
        slices: stats.slices,
    }
}

fn run_json(r: &RunReport) -> Json {
    Json::obj([
        ("threads", Json::Int(r.threads as i64)),
        ("statements", Json::Int(r.statements as i64)),
        ("elapsed_ms", Json::Num(r.elapsed_ms)),
        ("throughput_sps", Json::Num(r.throughput_sps)),
        ("entries_folded", Json::Int(r.entries_folded as i64)),
        ("slices", Json::Int(r.slices as i64)),
    ])
}

fn main() {
    let scale = Scale::from_args();
    // Calibrate the mix on a throwaway single-table database.
    let f = {
        let db = build_shared(&scale, 1);
        calibrate_write_fraction(&db, &spec(0, scale.rows))
    };
    let write_pct = (f * 100.0).round() as usize;
    eprintln!(
        "[bench_concurrency] calibrated write fraction {:.2} ({} writes per 100 statements)",
        f, write_pct
    );

    // Median-of-N per configuration, with the reps *interleaved* across
    // configurations: scheduler phases (slow timer wakeups, noisy
    // neighbours) then hit every configuration equally instead of skewing
    // one side of the scaling ratio, and the median discards the outlier
    // reps entirely.
    let reps = if scale.smoke { 3 } else { 7 };
    // (threads, serialize): the scaling ladder plus the ablation.
    let configs: Vec<(usize, bool)> = THREADS
        .iter()
        .map(|&t| (t, false))
        .chain([(4, true)])
        .collect();
    let mut samples: Vec<Vec<RunReport>> = configs.iter().map(|_| Vec::new()).collect();
    for _ in 0..reps {
        for (i, &(threads, serialize)) in configs.iter().enumerate() {
            samples[i].push(run(&scale, threads, write_pct, serialize));
        }
    }
    let median = |mut reps: Vec<RunReport>| -> RunReport {
        reps.sort_by(|a, b| {
            a.throughput_sps
                .partial_cmp(&b.throughput_sps)
                .expect("finite")
        });
        reps.swap_remove(reps.len() / 2)
    };
    let mut picked = samples.into_iter().map(median);
    let runs: Vec<RunReport> = THREADS
        .iter()
        .map(|_| {
            let r = picked.next().expect("one pick per config");
            eprintln!(
                "[bench_concurrency] {:>2} threads  {:6} stmts  {:9.1} ms  {:8.1} stmt/s  \
                 folded {:6}  slices {:4}",
                r.threads, r.statements, r.elapsed_ms, r.throughput_sps, r.entries_folded, r.slices,
            );
            r
        })
        .collect();
    let serialized = picked.next().expect("serialized ablation pick");
    eprintln!(
        "[bench_concurrency] {:>2} threads (serialized ablation)  {:9.1} ms  {:8.1} stmt/s",
        serialized.threads, serialized.elapsed_ms, serialized.throughput_sps,
    );

    let base = runs[0].throughput_sps;
    let at = |t: usize| {
        runs.iter()
            .find(|r| r.threads == t)
            .map(|r| r.throughput_sps)
            .unwrap_or(0.0)
    };
    let scaling_4t = at(4) / base;
    // The merge-concurrency claim rides along: every run folded tail
    // entries while serving, so the scans above overlapped live merges.
    assert!(
        runs.iter().all(|r| r.entries_folded > 0),
        "worker folded nothing — the scans never overlapped a merge"
    );
    let pass = scaling_4t >= 1.5;
    eprintln!(
        "[bench_concurrency] throughput scaling at 4 threads: {scaling_4t:.2}x \
         (serialized ablation {:.2}x) -> {}",
        serialized.throughput_sps / base,
        if pass { "PASS" } else { "FAIL" }
    );

    let doc = Json::obj([
        ("benchmark", Json::Str("concurrent_engine_scaling".into())),
        ("smoke", Json::Bool(scale.smoke)),
        ("rows_per_table", Json::Int(scale.rows as i64)),
        ("write_fraction", Json::Num(f)),
        ("runs", Json::Arr(runs.iter().map(run_json).collect())),
        ("serialized_ablation", run_json(&serialized)),
        ("throughput_2t_scaling", hsd_bench::ratio_json(at(2), base)),
        ("throughput_4t_scaling", hsd_bench::ratio_json(at(4), base)),
        ("throughput_8t_scaling", hsd_bench::ratio_json(at(8), base)),
        (
            "serialized_4t_scaling",
            hsd_bench::ratio_json(serialized.throughput_sps, base),
        ),
        ("pass", Json::Bool(pass)),
    ]);
    std::fs::write("BENCH_concurrency.json", doc.to_string_pretty() + "\n")
        .expect("write BENCH_concurrency.json");
    eprintln!("[bench_concurrency] wrote BENCH_concurrency.json");
    if !pass {
        std::process::exit(1);
    }
}
