//! HTAP scenario matrix: budget-constrained advisor quality and runtime on
//! the deterministic multi-tenant mixed-workload driver — recorded as
//! `BENCH_htap.json`.
//!
//! Two claims are measured:
//!
//! 1. **Decision quality.** On the Zipf-skewed mixed scenario the layout
//!    chosen by the *budget-constrained* advisor (memory budget below the
//!    all-row footprint, so the knapsack actually binds) beats both static
//!    baselines — every table in the row store, every table in the column
//!    store — by ≥ **1.2×**, both on the cost model's estimates and on
//!    wall-clock measured through the shared-nothing engine with live
//!    serving threads and the background maintenance worker merging
//!    throughout.
//! 2. **Advisor runtime at scale.** The global selection stays cheap at
//!    hundreds of tables: the scale section times `recommend_offline` over
//!    a 200+-table multi-tenant catalog, with and without a binding
//!    budget, and records both runtimes.
//!
//! The scenario stream is replayed from a fixed seed and its FNV digest is
//! recorded, so any run of this benchmark is reproducible statement for
//! statement.
//!
//! Run with `cargo run --release -p hsd-bench --bin bench_htap`
//! (`-- --smoke` for the small CI configuration).

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use hsd_bench::{advisor_model_or_calibrate, ratio_json};
use hsd_catalog::{StorageLayout, TableStats};
use hsd_core::StorageAdvisor;
use hsd_engine::{
    mover, BackgroundWorker, HybridDatabase, MergeConfig, MergePartition, PacerConfig,
    SharedDatabase, WorkerConfig,
};
use hsd_storage::StoreKind;
use hsd_tpch::scenario::{
    generate_scenario, load_tenants, MixedWorkload, Scenario, ScenarioConfig,
};
use hsd_tpch::TpchGenerator;
use hsd_types::{Json, TableSchema};

struct Scale {
    sf: f64,
    statements: usize,
    reps: usize,
    scale_tenants: usize,
    scale_statements: usize,
    smoke: bool,
}

impl Scale {
    fn from_args() -> Self {
        if std::env::args().any(|a| a == "--smoke") {
            Scale {
                sf: 0.002,
                statements: 600,
                reps: 3,
                scale_tenants: 26, // 26 × 8 = 208 tables
                scale_statements: 400,
                smoke: true,
            }
        } else {
            Scale {
                sf: 0.01,
                statements: 6_000,
                reps: 5,
                scale_tenants: 26,
                scale_statements: 1_000,
                smoke: false,
            }
        }
    }
}

const TENANTS: usize = 3;
const SEED: u64 = 0x47A9_0008;

fn scenario_cfg(scale: &Scale) -> ScenarioConfig {
    ScenarioConfig {
        scenario: Scenario::ZipfSkew,
        tenants: TENANTS,
        statements: scale.statements,
        olap_fraction: 0.02,
        zipf_theta: 1.0,
        seed: SEED,
    }
}

/// Schemas and statistics of the multi-tenant catalog, snapshotted from a
/// throwaway row-store load (bulk load refreshes stats).
fn catalog_snapshot(
    g: &TpchGenerator,
    tenants: usize,
) -> (
    HybridDatabase,
    Vec<Arc<TableSchema>>,
    BTreeMap<String, TableStats>,
) {
    let db = HybridDatabase::new();
    load_tenants(g, &db, tenants, |_| {
        hsd_catalog::TablePlacement::Single(StoreKind::Row)
    })
    .expect("load tenants");
    let schemas: Vec<Arc<TableSchema>> = db
        .catalog()
        .entries()
        .iter()
        .map(|e| e.schema.clone())
        .collect();
    let stats: BTreeMap<String, TableStats> = db
        .catalog()
        .entries()
        .iter()
        .map(|e| (e.schema.name.clone(), e.stats.clone()))
        .collect();
    (db, schemas, stats)
}

/// Execute the scenario stream against a fresh database under `layout`,
/// through the shared engine: one serving thread per tenant, the
/// background worker merging throughout. The timed window covers serving
/// *and* draining the remaining delta tails back to steady state —
/// deferred column-store maintenance is a real cost of a layout, and
/// without the drain it would hide on the worker's core and the
/// comparison would credit write-heavy column placements with free
/// writes. The load and layout application are excluded from the window.
fn run_measured(g: &TpchGenerator, wl: &MixedWorkload, layout: Option<&StorageLayout>) -> f64 {
    let db = HybridDatabase::new();
    load_tenants(g, &db, wl.tenants, |_| {
        hsd_catalog::TablePlacement::Single(StoreKind::Row)
    })
    .expect("load tenants");
    if let Some(layout) = layout {
        // Row-load then move, so horizontal partitions split correctly.
        mover::apply_layout(&db, layout).expect("apply layout");
    }
    // Lower merge watermarks so maintenance actually happens at bench
    // scale (the default rows/32, floor-4096 trigger would let every tail
    // of this run ride for free); the same config applies to every layout.
    db.set_merge_config(MergeConfig {
        min_tail: 512,
        min_col_tail: 16,
        high_fraction: 1.0 / 64.0,
        ..MergeConfig::default()
    });
    let shared: SharedDatabase = Arc::new(db);
    let worker = Arc::new(BackgroundWorker::spawn(
        shared.clone(),
        WorkerConfig {
            pacer: PacerConfig::default(),
            ..WorkerConfig::default()
        },
        std::time::Duration::from_micros(600),
    ));
    // Per-tenant serving threads preserve each tenant's statement order
    // (inserts land before the updates that target them).
    let streams: Vec<Vec<hsd_query::Query>> = (0..wl.tenants)
        .map(|t| {
            wl.statements
                .iter()
                .filter(|s| s.tenant == t)
                .map(|s| s.query.clone())
                .collect()
        })
        .collect();
    let started = Instant::now();
    let handles: Vec<_> = streams
        .into_iter()
        .map(|queries| {
            let db = shared.clone();
            let worker_q = worker.clone();
            std::thread::spawn(move || {
                let mut writes = 0usize;
                for q in &queries {
                    db.execute(q).expect("execute");
                    if matches!(q, hsd_query::Query::Insert(_) | hsd_query::Query::Update(_)) {
                        writes += 1;
                        if writes % 8 == 1 {
                            worker_q.enqueue(q.table(), MergePartition::Whole);
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("serving thread");
    }
    // Drain to steady state inside the timed window: whatever tails the
    // layout accumulated are merged now, on the clock.
    let worker = Arc::try_unwrap(worker).expect("threads dropped their handles");
    for name in shared.table_names() {
        worker.enqueue(&name, MergePartition::Whole);
    }
    worker.stop(true);

    started.elapsed().as_secs_f64() * 1e3
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn main() {
    let scale = Scale::from_args();
    let model = advisor_model_or_calibrate("bench_htap", scale.smoke);
    let g = TpchGenerator::new(scale.sf, 0x7C);
    let cfg = scenario_cfg(&scale);

    // --- scenario stream (replayable: same config → same bytes) ----------
    let wl = generate_scenario(&g, &cfg);
    assert_eq!(
        wl.render(),
        generate_scenario(&g, &cfg).render(),
        "scenario stream must be deterministic"
    );
    eprintln!(
        "[bench_htap] scenario {} seed {} digest {:016x}: {} statements, {} tenants",
        wl.scenario.name(),
        wl.seed,
        wl.digest(),
        wl.statements.len(),
        wl.tenants,
    );

    // --- budget-constrained recommendation --------------------------------
    let (stats_db, schemas, stats) = catalog_snapshot(&g, TENANTS);
    let ctx = hsd_bench::ctx_of(&stats_db);
    let row_layout =
        StorageLayout::uniform(schemas.iter().map(|s| s.name.as_str()), StoreKind::Row);
    let row_footprint = hsd_core::layout_footprint_bytes(&ctx, &row_layout);
    let budget = 0.85 * row_footprint;
    let workload = wl.workload();
    let advisor = StorageAdvisor::new(model).with_budget(budget);
    let t0 = Instant::now();
    let rec = advisor
        .recommend_offline(&schemas, &stats, &workload, true)
        .expect("recommend");
    let advisor_ms = t0.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "[bench_htap] advisor: est {:.1} ms (RS {:.1}, CS {:.1}), footprint {:.0} of budget {:.0} \
         (feasible: {}), {:.1} ms to decide",
        rec.estimated_ms,
        rec.rs_only_ms,
        rec.cs_only_ms,
        rec.footprint_bytes,
        budget,
        rec.budget_feasible,
        advisor_ms,
    );
    assert!(
        rec.footprint_bytes <= budget,
        "budgeted layout must fit the budget"
    );
    eprint!("{}", hsd_core::report::render(&rec));

    // --- measured: advisor layout vs static baselines, interleaved reps ---
    let mut adv_ms = Vec::new();
    let mut row_ms = Vec::new();
    let mut col_ms = Vec::new();
    let col_layout =
        StorageLayout::uniform(schemas.iter().map(|s| s.name.as_str()), StoreKind::Column);
    run_measured(&g, &wl, None); // warmup: page in the generator and allocator
    for rep in 0..scale.reps {
        adv_ms.push(run_measured(&g, &wl, Some(&rec.layout)));
        row_ms.push(run_measured(&g, &wl, None));
        col_ms.push(run_measured(&g, &wl, Some(&col_layout)));
        eprintln!(
            "[bench_htap] rep {rep}: advisor {:.1} ms, all-row {:.1} ms, all-col {:.1} ms",
            adv_ms[rep], row_ms[rep], col_ms[rep]
        );
    }
    let (adv, row, col) = (median(adv_ms), median(row_ms), median(col_ms));

    // --- advisor runtime at 100s-of-tables scale ---------------------------
    let scale_g = TpchGenerator::new(0.0002, 0x7D);
    let scale_cfg = ScenarioConfig {
        tenants: scale.scale_tenants,
        statements: scale.scale_statements,
        seed: SEED ^ 1,
        ..scenario_cfg(&scale)
    };
    let scale_wl = generate_scenario(&scale_g, &scale_cfg).workload();
    let (scale_db, scale_schemas, scale_stats) = catalog_snapshot(&scale_g, scale.scale_tenants);
    let scale_ctx = hsd_bench::ctx_of(&scale_db);
    let scale_row_fp = hsd_core::layout_footprint_bytes(
        &scale_ctx,
        &StorageLayout::uniform(
            scale_schemas.iter().map(|s| s.name.as_str()),
            StoreKind::Row,
        ),
    );
    let advisor_unbudgeted = StorageAdvisor::with_handle(advisor.model.clone());
    let t0 = Instant::now();
    let rec_free = advisor_unbudgeted
        .recommend_offline(&scale_schemas, &scale_stats, &scale_wl, true)
        .expect("scale recommend");
    let scale_free_ms = t0.elapsed().as_secs_f64() * 1e3;
    let advisor_budgeted =
        StorageAdvisor::with_handle(advisor.model.clone()).with_budget(0.85 * scale_row_fp);
    let t0 = Instant::now();
    let rec_scale = advisor_budgeted
        .recommend_offline(&scale_schemas, &scale_stats, &scale_wl, true)
        .expect("scale recommend");
    let scale_budget_ms = t0.elapsed().as_secs_f64() * 1e3;
    let n_tables = scale_schemas.len();
    eprintln!(
        "[bench_htap] scale: {} tables, advisor {:.1} ms unbudgeted / {:.1} ms budgeted \
         (footprint {:.0}, feasible {})",
        n_tables,
        scale_free_ms,
        scale_budget_ms,
        rec_scale.footprint_bytes,
        rec_scale.budget_feasible,
    );
    assert!(n_tables >= 200, "scale section must cover ≥200 tables");
    drop(rec_free);

    // --- verdict -----------------------------------------------------------
    let modeled_vs_row = rec.rs_only_ms / rec.estimated_ms;
    let modeled_vs_col = rec.cs_only_ms / rec.estimated_ms;
    let measured_vs_row = row / adv;
    let measured_vs_col = col / adv;
    let pass = modeled_vs_row >= 1.2
        && modeled_vs_col >= 1.2
        && measured_vs_row >= 1.2
        && measured_vs_col >= 1.2;
    eprintln!(
        "[bench_htap] modeled {modeled_vs_row:.2}x/{modeled_vs_col:.2}x vs row/col, \
         measured {measured_vs_row:.2}x/{measured_vs_col:.2}x -> {}",
        if pass { "PASS" } else { "FAIL" }
    );

    let doc = Json::obj([
        ("benchmark", Json::Str("htap_scenarios".into())),
        ("smoke", Json::Bool(scale.smoke)),
        ("scenario", Json::Str(wl.scenario.name().into())),
        ("seed", Json::Int(wl.seed as i64)),
        ("digest", Json::Str(format!("{:016x}", wl.digest()))),
        ("statements", Json::Int(wl.statements.len() as i64)),
        ("tenants", Json::Int(wl.tenants as i64)),
        ("budget_bytes", Json::Num(budget)),
        ("footprint_bytes", Json::Num(rec.footprint_bytes)),
        ("budget_feasible", Json::Bool(rec.budget_feasible)),
        ("advisor_decision_ms", Json::Num(advisor_ms)),
        (
            "modeled",
            Json::obj([
                ("advisor_ms", Json::Num(rec.estimated_ms)),
                ("all_row_ms", Json::Num(rec.rs_only_ms)),
                ("all_col_ms", Json::Num(rec.cs_only_ms)),
                (
                    "vs_row_speedup",
                    ratio_json(rec.rs_only_ms, rec.estimated_ms),
                ),
                (
                    "vs_col_speedup",
                    ratio_json(rec.cs_only_ms, rec.estimated_ms),
                ),
            ]),
        ),
        (
            "measured",
            Json::obj([
                ("advisor_ms", Json::Num(adv)),
                ("all_row_ms", Json::Num(row)),
                ("all_col_ms", Json::Num(col)),
                ("vs_row_speedup", ratio_json(row, adv)),
                ("vs_col_speedup", ratio_json(col, adv)),
            ]),
        ),
        (
            "advisor_at_scale",
            Json::obj([
                ("tables", Json::Int(n_tables as i64)),
                ("runtime_unbudgeted_ms", Json::Num(scale_free_ms)),
                ("runtime_budgeted_ms", Json::Num(scale_budget_ms)),
                ("budget_feasible", Json::Bool(rec_scale.budget_feasible)),
            ]),
        ),
        ("pass", Json::Bool(pass)),
    ]);
    std::fs::write("BENCH_htap.json", doc.to_string_pretty() + "\n")
        .expect("write BENCH_htap.json");
    eprintln!("[bench_htap] wrote BENCH_htap.json");
    if !pass {
        std::process::exit(1);
    }
}
