//! The online working mode: record, re-evaluate, adapt.
//!
//! Figure 5 of the paper: after the offline mode produced the initial
//! layout, the system "records extended workload and table statistics and,
//! in certain time intervals, ... re-evaluates the storage layout based on
//! the current workload statistics and recommends adaptations if required".
//!
//! Beyond placement adaptations, the advisor also schedules **delta-merge
//! maintenance**: using the recorded per-table scan activity and the live
//! dictionary-tail sizes, it emits [`MaintenanceAction::Merge`]
//! recommendations whenever the modeled scan savings of merging now exceed
//! the modeled merge cost (see [`crate::maintenance::evaluate_merge`]).
//! Running the engine with its auto-merge fallback disabled
//! ([`hsd_engine::MergeConfig::disabled`]) makes the advisor the sole merge
//! scheduler.

use std::collections::BTreeMap;

use hsd_engine::{mover, HybridDatabase, StatisticsRecorder};
use hsd_query::{Query, Workload};
use hsd_types::Result;

use crate::advisor::{Recommendation, StorageAdvisor};
use crate::calibration::online::{
    DriftGauge, OnlineCalibrator, OnlineCalibratorConfig, RefitReport,
};
use crate::maintenance::{evaluate_merge, MaintenanceAction, MergePartition};

/// Settings of the online advisor.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Re-evaluate after this many recorded statements.
    pub evaluation_interval: usize,
    /// Required relative improvement before an adaptation is recommended
    /// (changing a layout costs downtime, so small wins are ignored).
    pub min_improvement: f64,
    /// Maximum number of recent queries kept as the estimation window.
    pub window_capacity: usize,
    /// Whether partitioning recommendations are enabled.
    pub enable_partitioning: bool,
    /// Whether the advisor schedules delta merges from workload statistics
    /// ([`MaintenanceAction::Merge`]). Independent of the engine's own
    /// fallback policy — disable that via
    /// [`hsd_engine::MergeConfig::disabled`] to make the advisor the only
    /// merge scheduler.
    pub enable_maintenance: bool,
    /// Re-check the merge trade-off after this many recorded statements.
    /// The check is cheap (live tail sizes + recorded scan counts), so it
    /// runs far more often than the full layout re-evaluation.
    pub maintenance_interval: usize,
    /// Required accrued-penalty / modeled-merge-cost ratio before a merge
    /// is scheduled (the rent-or-buy threshold). `1.0` merges once the
    /// modeled scan penalty paid since the last merge equals one merge;
    /// larger values defer longer before interrupting the workload.
    pub merge_safety_factor: f64,
    /// Tails smaller than this many entries are never worth a scheduling
    /// decision (the scan penalty is below measurement noise).
    pub merge_min_tail: usize,
    /// Weight of the newest interval in the exponentially decayed
    /// scan-pressure estimate (`rate ← decay · interval + (1 − decay) ·
    /// rate`). The decayed rate replaces the last-interval-only predictor:
    /// on bursty workloads a single quiet interval no longer zeroes the
    /// expected scan pressure, and phase changes blend in over
    /// `~1/decay` intervals instead of whipsawing the accrual. `1.0`
    /// reproduces the old last-interval-only behavior.
    pub scan_rate_decay: f64,
    /// Retraction trigger for scheduled-but-unstarted merges: once a
    /// [`MaintenanceAction::Merge`] has been emitted, the advisor watches
    /// the table's decayed scan rate, and if it collapses below this
    /// fraction of the rate at scheduling time *before any merge work
    /// started* (no slice in flight, merge epoch unchanged), it emits a
    /// [`MaintenanceAction::Retract`] — the scans that justified paying
    /// the merge cost are gone, so a queued job should be dropped rather
    /// than interrupt a now-write-only stream. `0.0` disables retraction.
    pub retract_rate_fraction: f64,
    /// Whether the advisor re-fits its cost model online from observed
    /// predicted-vs-measured residuals ([`OnlineAdvisor::observe_timed`])
    /// and re-plans on drift or workload phase changes. When `false` the
    /// calibrator still ingests samples — the drift gauge stays readable,
    /// the static-model ablation the paper-style comparisons need — but
    /// the model is never amended and drift never forces a re-plan.
    pub self_calibrating: bool,
    /// Run the calibration tick (drain samples, maybe re-fit, check the
    /// phase detector) after this many recorded statements.
    pub calibration_interval: usize,
    /// Overall drift-gauge level (mean absolute log residual) at which a
    /// completed re-fit also forces an immediate layout re-evaluation
    /// instead of waiting for the evaluation interval: the model the
    /// current layout was planned with has been shown this wrong, so the
    /// plan itself is suspect. `0.35` ≈ predictions typically off 1.4x.
    pub drift_replan_threshold: f64,
    /// Settings of the online calibrator.
    pub calibrator: OnlineCalibratorConfig,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            evaluation_interval: 500,
            min_improvement: 0.10,
            window_capacity: 2_000,
            enable_partitioning: true,
            enable_maintenance: true,
            maintenance_interval: 64,
            merge_safety_factor: 1.0,
            merge_min_tail: 128,
            scan_rate_decay: 0.5,
            retract_rate_fraction: 0.1,
            self_calibrating: true,
            calibration_interval: 64,
            drift_replan_threshold: 0.35,
            calibrator: OnlineCalibratorConfig::default(),
        }
    }
}

/// Book-keeping for an emitted-but-not-yet-completed merge recommendation:
/// what the world looked like when the advisor handed the job out.
#[derive(Debug, Clone, Copy)]
struct ScheduledMerge {
    /// Decayed scan rate at scheduling time (the retraction reference).
    rate_at_schedule: f64,
    /// The table's merge epoch at scheduling time; a changed epoch means a
    /// merge completed (or the table was rebuilt) since, so the
    /// recommendation is settled.
    epoch_at_schedule: u64,
}

/// An adaptation the online advisor wants to apply.
#[derive(Debug, Clone)]
pub struct AdaptationRecommendation {
    /// The full recommendation (layout, estimates, statements).
    pub recommendation: Recommendation,
    /// Estimated runtime of the window under the *current* layout (ms).
    pub current_ms: f64,
    /// Estimated relative improvement (`0.25` = 25 % faster).
    pub improvement: f64,
    /// Tables whose placement changes.
    pub changed_tables: Vec<String>,
}

/// Online advisor: wraps a [`StorageAdvisor`] with statistics recording,
/// interval-based re-evaluation, and workload-aware merge scheduling.
///
/// # Example
///
/// ```
/// use hsd_core::{CostModel, OnlineAdvisor, OnlineConfig, StorageAdvisor};
/// use hsd_engine::{HybridDatabase, MergeConfig};
/// use hsd_query::{AggFunc, AggregateQuery, Query, TableSpec};
/// use hsd_storage::StoreKind;
///
/// let spec = TableSpec::paper_wide("w", 1_000, 42);
/// let db = HybridDatabase::new();
/// db.create_single(spec.schema()?, StoreKind::Column)?;
/// db.bulk_load("w", spec.rows())?;
/// // Let the advisor be the only merge scheduler.
/// db.set_merge_config(MergeConfig::disabled());
///
/// let advisor = StorageAdvisor::new(CostModel::neutral());
/// let mut online = OnlineAdvisor::new(advisor, OnlineConfig::default());
///
/// // Feed every executed statement to the advisor; at interval
/// // boundaries it re-evaluates the layout and schedules merges.
/// let q = Query::Aggregate(AggregateQuery::simple("w", AggFunc::Sum, spec.kf_col(0)));
/// db.execute(&q)?;
/// let adaptation = online.observe(&db, &q)?;
/// assert!(adaptation.is_none(), "one statement is below every interval");
/// assert_eq!(online.recorded_statements(), 1);
/// for action in online.take_maintenance() {
///     action.apply(&db)?; // or apply_chunked(.., budget) for bounded pauses
/// }
/// # Ok::<(), hsd_types::Error>(())
/// ```
#[derive(Debug)]
pub struct OnlineAdvisor {
    advisor: StorageAdvisor,
    cfg: OnlineConfig,
    recorder: StatisticsRecorder,
    window: Vec<Query>,
    since_last_eval: usize,
    since_last_maintenance: usize,
    /// Per-table scan counts (aggregations + selects) at the last
    /// maintenance check; the delta since then is the interval's scan load.
    scan_snapshot: BTreeMap<String, u64>,
    /// Per-table exponentially decayed per-interval scan rate — the
    /// scan-pressure predictor the merge accrual uses
    /// ([`OnlineConfig::scan_rate_decay`]).
    scan_rate: BTreeMap<String, f64>,
    /// Per-table modeled tail penalty (ms) accrued since the table's last
    /// merge — the "rent" side of the rent-or-buy merge rule.
    merge_penalty_accrued: BTreeMap<String, f64>,
    /// Merge recommendations emitted but not yet drained by the caller.
    pending_maintenance: Vec<MaintenanceAction>,
    /// Merge recommendations handed out (drained or not) whose work has not
    /// completed yet, keyed by `(table, partition)` — the same identity the
    /// worker queue dedupes on, so a cold-fragment job and a whole-table
    /// job for the same table are tracked independently. While an entry is
    /// listed the advisor freezes the table's accrual and never
    /// double-schedules that region; the entry clears when the fragment's
    /// merge epoch moves (work completed — for partitioned tables the
    /// epoch reads the cold fragment's dictionary handoffs) or when the
    /// advisor retracts the recommendation.
    scheduled_merges: BTreeMap<(String, MergePartition), ScheduledMerge>,
    /// The self-calibration loop: residual fits per coefficient family,
    /// drift gauge, phase detector. Always fed (the gauge must be readable
    /// in the static ablation); only re-fits when
    /// [`OnlineConfig::self_calibrating`] is set.
    calibrator: OnlineCalibrator,
    since_last_calibration: usize,
}

impl OnlineAdvisor {
    /// New online advisor around a calibrated storage advisor.
    pub fn new(advisor: StorageAdvisor, cfg: OnlineConfig) -> Self {
        let calibrator = OnlineCalibrator::new(cfg.calibrator.clone());
        OnlineAdvisor {
            advisor,
            cfg,
            recorder: StatisticsRecorder::new(),
            window: Vec::new(),
            since_last_eval: 0,
            since_last_maintenance: 0,
            scan_snapshot: BTreeMap::new(),
            scan_rate: BTreeMap::new(),
            merge_penalty_accrued: BTreeMap::new(),
            pending_maintenance: Vec::new(),
            scheduled_merges: BTreeMap::new(),
            calibrator,
            since_last_calibration: 0,
        }
    }

    /// Observe one query (recording statistics and the estimation window)
    /// and — at interval boundaries — re-evaluate the layout. Returns an
    /// adaptation recommendation when a sufficiently better layout exists.
    ///
    /// Maintenance scheduling runs on its own (shorter) interval; drain its
    /// recommendations with [`OnlineAdvisor::take_maintenance`].
    pub fn observe(
        &mut self,
        db: &HybridDatabase,
        query: &Query,
    ) -> Result<Option<AdaptationRecommendation>> {
        self.recorder.record(db, query);
        self.after_record(db, query)
    }

    /// Observe one *timed* query: everything [`OnlineAdvisor::observe`]
    /// does, plus a predicted-vs-measured residual sample for the
    /// self-calibration loop. The prediction is computed here — against the
    /// database's **current** layout and live per-table state (row counts,
    /// dictionary tails, observed tail rates) — so the residual isolates
    /// coefficient error from context error as far as the live catalog
    /// allows.
    ///
    /// At calibration-interval boundaries the buffered samples are drained
    /// into the calibrator; with [`OnlineConfig::self_calibrating`] set,
    /// drifted coefficient families are re-fit through the shared
    /// [`crate::cost::ModelHandle`], and a re-fit that corrected
    /// above-threshold drift — or a detected workload phase change —
    /// forces an immediate layout re-evaluation instead of waiting out the
    /// evaluation interval.
    pub fn observe_timed(
        &mut self,
        db: &HybridDatabase,
        query: &Query,
        measured_ms: f64,
    ) -> Result<Option<AdaptationRecommendation>> {
        let predicted_ms = self.predict_ms(db, query);
        self.recorder
            .record_timed(db, query, predicted_ms, measured_ms);
        self.after_record(db, query)
    }

    /// The model's prediction (ms) for `query` under the database's current
    /// layout and live table state. This is the "predicted" half of the
    /// residual channel; it deliberately prices the *live* dictionary tail
    /// (unlike the placement search, which zeroes it) because the measured
    /// execution paid that tail.
    pub fn predict_ms(&self, db: &HybridDatabase, query: &Query) -> f64 {
        let schemas: Vec<_> = db
            .catalog()
            .entries()
            .iter()
            .map(|e| e.schema.clone())
            .collect();
        let stats = db
            .catalog()
            .entries()
            .iter()
            .map(|e| (e.schema.name.clone(), e.stats.clone()))
            .collect();
        let mut ctx = crate::advisor::build_ctx(&schemas, &stats);
        crate::advisor::apply_observed_tail_rates(&mut ctx, self.recorder.stats());
        for entry in db.catalog().entries() {
            if let Some(t) = ctx.tables.get_mut(&entry.schema.name) {
                t.indexed = entry.indexed_columns.clone();
                t.delta_tail = db.delta_tail(&entry.schema.name).unwrap_or(0);
            }
        }
        crate::estimator::estimate_query_layout(
            &self.advisor.model.snapshot(),
            &ctx,
            &db.current_layout(),
            query,
        )
    }

    /// Forward one background merge slice's measured cost into the residual
    /// channel (the `merge_ms` coefficient family). Callers driving an
    /// `hsd_engine::MaintenanceWorker` feed its per-slice reports here.
    pub fn observe_merge_slice(&mut self, table: &str, rows_remapped: usize, elapsed_ns: u64) {
        self.recorder
            .observe_merge_slice(table, rows_remapped, elapsed_ns);
    }

    /// The live modeled-vs-measured drift gauge.
    pub fn drift_gauge(&self) -> DriftGauge {
        self.calibrator.gauge()
    }

    /// Version of the shared cost model (bumped by every online re-fit).
    pub fn model_version(&self) -> u64 {
        self.advisor.model.version()
    }

    /// Zero the drift gauge: discard every accumulated residual (family
    /// fits, merge bootstrap, phase baselines) without touching the model.
    /// For operator interventions the old evidence would misattribute —
    /// e.g. right after swapping in a freshly calibrated model, or after
    /// a known hardware/noise episode ends.
    pub fn reset_drift_gauge(&mut self) {
        self.calibrator.reset();
    }

    /// Shared post-record bookkeeping: the estimation window, the
    /// maintenance tick, the calibration tick, and the evaluation tick (in
    /// that order — a drift re-fit or phase shift may force the evaluation
    /// early).
    fn after_record(
        &mut self,
        db: &HybridDatabase,
        query: &Query,
    ) -> Result<Option<AdaptationRecommendation>> {
        if self.window.len() == self.cfg.window_capacity {
            self.window.remove(0);
        }
        self.window.push(query.clone());
        self.since_last_maintenance += 1;
        if self.cfg.enable_maintenance
            && self.since_last_maintenance >= self.cfg.maintenance_interval
        {
            self.since_last_maintenance = 0;
            self.schedule_maintenance(db);
        }
        self.since_last_calibration += 1;
        let mut force_replan = false;
        if self.since_last_calibration >= self.cfg.calibration_interval {
            self.since_last_calibration = 0;
            force_replan = self.calibration_tick();
        }
        self.since_last_eval += 1;
        if !force_replan && self.since_last_eval < self.cfg.evaluation_interval {
            return Ok(None);
        }
        self.since_last_eval = 0;
        self.evaluate(db)
    }

    /// Drain the recorder's buffered residual samples into the calibrator
    /// and — when self-calibration is enabled — re-fit drifted coefficient
    /// families. Returns whether an immediate re-plan is warranted: a
    /// re-fit that corrected above-threshold drift (the current layout was
    /// planned with a model this wrong) or a workload phase change.
    fn calibration_tick(&mut self) -> bool {
        let merge_model = self.advisor.model.snapshot();
        for s in self.recorder.take_timing_samples() {
            self.calibrator.ingest(&s);
        }
        for s in self.recorder.take_merge_slice_samples() {
            let predicted = merge_model.column.merge_ms.eval(s.rows_remapped as f64);
            self.calibrator.ingest_merge(&s, predicted);
        }
        if !self.cfg.self_calibrating {
            // Static ablation: gauge stays readable, model stays frozen,
            // and a phase shift is observed but never acted on.
            return false;
        }
        let refit: Option<RefitReport> = self.calibrator.refit_into(&self.advisor.model);
        let drifted = refit
            .as_ref()
            .is_some_and(|r| r.drift_before >= self.cfg.drift_replan_threshold);
        let phase_shift = self.calibrator.take_phase_shift();
        drifted || phase_shift
    }

    /// Evaluate the merge trade-off for every table carrying a delta tail,
    /// queueing a [`MaintenanceAction::Merge`] once the modeled scan
    /// penalty accrued since the table's last merge exceeds the modeled
    /// merge cost (rent-or-buy; see [`evaluate_merge`]).
    ///
    /// An emitted merge stays *scheduled* until its work completes — the
    /// table's merge epoch moves when a one-shot merge or the final slice
    /// of a background incremental merge lands. While scheduled (or while
    /// any merge is observably in flight), the accrual is frozen so the
    /// advisor never double-schedules a table whose queued job simply has
    /// not reached the front of the worker's queue yet; and if the scan
    /// pressure that justified the merge collapses before any work started,
    /// the recommendation is withdrawn with [`MaintenanceAction::Retract`].
    fn schedule_maintenance(&mut self, db: &HybridDatabase) {
        for entry in db.catalog().entries() {
            let name = entry.schema.name.as_str();
            // The region a merge scheduled now would target, from the
            // table's current placement: the cold column fragment for
            // partitioned layouts (the hot partition is row-store resident
            // and carries no delta), the whole table otherwise.
            let partition = match entry.placement {
                hsd_catalog::TablePlacement::Single(_) => MergePartition::Whole,
                hsd_catalog::TablePlacement::Partitioned(_) => MergePartition::Cold,
            };
            if self.pending_maintenance.iter().any(|a| a.table() == name) {
                // Still in the undrained queue; nothing to re-decide. The
                // scan snapshot keeps advancing through the scheduled-state
                // handling below once the caller drains the action.
                continue;
            }
            // Scan statements observed since the last check: the interval's
            // scan load on this table, each paying the current tail penalty.
            let scans_now = self
                .recorder
                .stats()
                .table(name)
                .map_or(0, |t| t.aggregations + t.selects);
            let prior = self
                .scan_snapshot
                .insert(name.to_string(), scans_now)
                .unwrap_or(0);
            let interval_scans = scans_now.saturating_sub(prior) as f64;
            // Decayed-rate scan-pressure estimate: blend the newest interval
            // into the running rate instead of trusting it alone, so bursty
            // phases keep accruing through quiet intervals and phase changes
            // adjust the rate smoothly. Seeded with the first observation.
            let decay = self.cfg.scan_rate_decay.clamp(0.0, 1.0);
            let rate = match self.scan_rate.get(name) {
                Some(prev) => decay * interval_scans + (1.0 - decay) * prev,
                None => interval_scans,
            };
            self.scan_rate.insert(name.to_string(), rate);
            // One atomic read of (epoch, in-progress): sampling them
            // separately under the concurrent engine could pair a
            // pre-handoff epoch with a post-handoff "idle" and mistake a
            // just-finished job for a stalled one (or vice versa).
            let (epoch, merging) = db.merge_status(name).unwrap_or((0, false));
            let key = (name.to_string(), partition);
            // A table has exactly one placement, so a tracking entry for
            // the *other* region is left over from a layout that no longer
            // exists (a data move outside `OnlineAdvisor::apply`, which
            // clears all tracking). Purge it now — left in place it could
            // be resurrected as a stale freeze when the placement later
            // flips back and the rebuilt table's epoch coincidentally
            // matches the recorded one, parking the region forever.
            let other = match partition {
                MergePartition::Whole => MergePartition::Cold,
                MergePartition::Cold => MergePartition::Whole,
            };
            self.scheduled_merges.remove(&(name.to_string(), other));
            if let Some(scheduled) = self.scheduled_merges.get(&key) {
                // Order matters: the in-flight check comes first because
                // the table-level epoch is column-granular — on a
                // multi-column table it moves at every per-column handoff,
                // i.e. possibly several times *during* one scheduled job.
                if merging {
                    // The worker is slicing away; progress is being made.
                    continue;
                } else if epoch != scheduled.epoch_at_schedule {
                    // No slice in flight and at least one handoff landed
                    // since scheduling: the recommendation is settled (or
                    // the table was rebuilt by a data move). Start a fresh
                    // rent-or-buy cycle. (A job paused exactly on a column
                    // boundary can re-arm early here; the resulting
                    // duplicate Merge is deduplicated by the worker's
                    // queue, or just merges the residual tails.)
                    self.scheduled_merges.remove(&key);
                    self.merge_penalty_accrued.remove(name);
                } else if self.cfg.retract_rate_fraction > 0.0
                    && rate < scheduled.rate_at_schedule * self.cfg.retract_rate_fraction
                {
                    // No work started and the scans that justified the
                    // merge are gone: withdraw the recommendation. The
                    // accrual restarts from zero, so a returning scan phase
                    // must pay fresh rent before the merge is re-scheduled.
                    self.scheduled_merges.remove(&key);
                    self.pending_maintenance.push(MaintenanceAction::Retract {
                        table: name.to_string(),
                    });
                    continue;
                } else {
                    // Queued, waiting for the worker; don't double-count.
                    continue;
                }
            } else if merging {
                // Someone else (the caller, driving slices directly) is
                // already merging; accruing rent against it would schedule
                // a redundant merge the moment it completes.
                continue;
            }
            let Ok(tail) = db.delta_tail(name) else {
                continue;
            };
            if tail < self.cfg.merge_min_tail {
                // Tail gone (merged by us, the engine fallback, or a data
                // move) or still negligible: restart the accrual.
                self.merge_penalty_accrued.remove(name);
                continue;
            }
            // The merge trade-off is priced at the region the merge would
            // actually remap — the cold partition's rows for partitioned
            // layouts, not the full table (a full-table row count would
            // over-state the merge cost and starve cold-fragment merges).
            let rows = db.merge_region_rows(name).unwrap_or(0);
            let decision = evaluate_merge(&self.advisor.model.snapshot(), rows, tail, rate);
            let accrued = self
                .merge_penalty_accrued
                .entry(name.to_string())
                .or_insert(0.0);
            *accrued += decision.scan_savings_ms;
            if *accrued > decision.merge_cost_ms * self.cfg.merge_safety_factor {
                *accrued = 0.0;
                self.scheduled_merges.insert(
                    key,
                    ScheduledMerge {
                        rate_at_schedule: rate,
                        epoch_at_schedule: epoch,
                    },
                );
                self.pending_maintenance.push(MaintenanceAction::Merge {
                    table: name.to_string(),
                    partition,
                });
            }
        }
    }

    /// Drain the maintenance recommendations queued since the last call.
    ///
    /// A drained [`MaintenanceAction::Merge`] is **owned by the caller**:
    /// apply it ([`MaintenanceAction::apply`] /
    /// [`MaintenanceAction::apply_chunked`]) or hand it to a background
    /// worker (`hsd_engine::MaintenanceWorker::enqueue`). The advisor
    /// considers the table scheduled until the merge's work completes (the
    /// table's merge epoch moves) or the recommendation is retracted, and
    /// will not emit another `Merge` for it in the meantime — so silently
    /// dropping an action parks the table until some other merge path
    /// (e.g. the engine's fallback policy, if enabled, or a data move)
    /// bumps its epoch and re-arms the cycle.
    pub fn take_maintenance(&mut self) -> Vec<MaintenanceAction> {
        std::mem::take(&mut self.pending_maintenance)
    }

    /// Force a re-evaluation of the current layout.
    pub fn evaluate(&self, db: &HybridDatabase) -> Result<Option<AdaptationRecommendation>> {
        if self.window.is_empty() {
            return Ok(None);
        }
        let window = Workload::from_queries(self.window.clone());
        let rec = self.advisor.recommend_online(
            db,
            self.recorder.stats(),
            &window,
            self.cfg.enable_partitioning,
        )?;
        // Cost of the window under the database's *current* layout.
        let schemas: Vec<_> = db
            .catalog()
            .entries()
            .iter()
            .map(|e| e.schema.clone())
            .collect();
        let stats = db
            .catalog()
            .entries()
            .iter()
            .map(|e| (e.schema.name.clone(), e.stats.clone()))
            .collect();
        let mut ctx = crate::advisor::build_ctx(&schemas, &stats);
        // Same live tail-rate feedback the candidate layouts were priced
        // with, so the current layout's upkeep compares like with like.
        crate::advisor::apply_observed_tail_rates(&mut ctx, self.recorder.stats());
        let current_layout = db.current_layout();
        // Charge the current layout the same delta upkeep the candidate
        // layouts were charged — fragment-level for partitioned placements
        // — so improvements compare like with like.
        let current_ms = crate::estimator::estimate_workload_layout(
            &self.advisor.model.snapshot(),
            &ctx,
            &current_layout,
            &window,
        ) + self
            .advisor
            .layout_upkeep_ms(&ctx, &window, &current_layout);
        if current_ms <= 0.0 {
            return Ok(None);
        }
        let improvement = (current_ms - rec.estimated_ms) / current_ms;
        if improvement < self.cfg.min_improvement {
            return Ok(None);
        }
        let changed: Vec<String> = rec
            .layout
            .diff(&current_layout)
            .into_iter()
            .map(str::to_string)
            .collect();
        if changed.is_empty() {
            return Ok(None);
        }
        Ok(Some(AdaptationRecommendation {
            recommendation: rec,
            current_ms,
            improvement,
            changed_tables: changed,
        }))
    }

    /// Apply an adaptation (the "directly applied to the database system"
    /// path; the paper notes this "should be applied with care").
    pub fn apply(
        &mut self,
        db: &HybridDatabase,
        adaptation: &AdaptationRecommendation,
    ) -> Result<Vec<String>> {
        let moved = mover::apply_layout(db, &adaptation.recommendation.layout)?;
        // A layout change invalidates the recorded interval.
        self.recorder.reset();
        self.window.clear();
        self.since_last_eval = 0;
        self.since_last_maintenance = 0;
        self.since_last_calibration = 0;
        self.scan_snapshot.clear();
        self.scan_rate.clear();
        self.merge_penalty_accrued.clear();
        self.pending_maintenance.clear();
        self.scheduled_merges.clear();
        Ok(moved)
    }

    /// Recorded statements since the last reset.
    pub fn recorded_statements(&self) -> u64 {
        self.recorder.stats().total_statements
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{AdjustmentFn, CostModel};
    use hsd_catalog::TablePlacement;
    use hsd_query::{
        AggFunc, AggregateQuery, MixedWorkloadConfig, TableSpec, UpdateQuery, WorkloadGenerator,
    };
    use hsd_storage::{ColRange, StoreKind};
    use hsd_types::Value;

    fn model() -> CostModel {
        let mut m = CostModel::neutral();
        m.row.f_rows = AdjustmentFn::Linear {
            slope: 1e-3,
            intercept: 0.05,
        };
        m.column.f_rows = AdjustmentFn::Linear {
            slope: 1e-4,
            intercept: 0.05,
        };
        m.row.ins_row = AdjustmentFn::Constant(0.002);
        m.column.ins_row = AdjustmentFn::Constant(0.01);
        m.row.sel_point_ms = 0.002;
        m.column.sel_point_ms = 0.01;
        m.row.upd_row_ms = 0.002;
        m.column.upd_row_ms = 0.01;
        m
    }

    /// `model()` plus maintenance terms: tails degrade scans linearly
    /// (factor `1 + 10·frac`), a merge costs a flat 0.5 ms.
    fn maintenance_model() -> CostModel {
        let mut m = model();
        m.column.f_tail = AdjustmentFn::Linear {
            slope: 10.0,
            intercept: 1.0,
        };
        m.column.merge_ms = AdjustmentFn::Constant(0.5);
        m
    }

    fn spec() -> TableSpec {
        TableSpec::paper_wide("w", 2_000, 9)
    }

    /// Column-store db under advisor-scheduled maintenance: engine fallback
    /// merges disabled, layout re-evaluation pushed out of the way.
    fn maintenance_setup() -> (hsd_engine::HybridDatabase, OnlineAdvisor, TableSpec) {
        let s = spec();
        let db = HybridDatabase::new();
        db.create_single(s.schema().unwrap(), StoreKind::Column)
            .unwrap();
        db.bulk_load("w", s.rows()).unwrap();
        db.set_merge_config(hsd_engine::MergeConfig::disabled());
        let cfg = OnlineConfig {
            evaluation_interval: usize::MAX,
            maintenance_interval: 8,
            merge_min_tail: 16,
            merge_safety_factor: 1.0,
            ..Default::default()
        };
        let online = OnlineAdvisor::new(StorageAdvisor::new(maintenance_model()), cfg);
        (db, online, s)
    }

    fn fresh_update(s: &TableSpec, i: usize) -> Query {
        Query::Update(UpdateQuery {
            table: "w".into(),
            sets: vec![(s.kf_col(0), Value::Double(9e8 + i as f64 * 0.011))],
            filter: vec![ColRange::eq(0, Value::BigInt((i % s.rows) as i64))],
        })
    }

    #[test]
    fn maintenance_scheduled_when_scans_collect_the_benefit() {
        let (db, mut online, s) = maintenance_setup();
        let scan = Query::Aggregate(AggregateQuery::simple("w", AggFunc::Sum, s.kf_col(0)));
        let mut scheduled = Vec::new();
        for i in 0..600 {
            let q = if i % 2 == 0 {
                fresh_update(&s, i)
            } else {
                scan.clone()
            };
            db.execute(&q).unwrap();
            online.observe(&db, &q).unwrap();
            scheduled = online.take_maintenance();
            if !scheduled.is_empty() {
                break;
            }
        }
        assert_eq!(
            scheduled,
            vec![MaintenanceAction::Merge {
                table: "w".into(),
                partition: MergePartition::Whole,
            }],
            "a scan-heavy stream over a growing tail must schedule a merge"
        );
        assert!(db.delta_tail("w").unwrap() > 0);
        let merged = scheduled[0].apply(&db).unwrap();
        assert!(merged > 0);
        assert_eq!(db.delta_tail("w").unwrap(), 0);
    }

    #[test]
    fn maintenance_not_scheduled_for_write_only_stream() {
        let (db, mut online, s) = maintenance_setup();
        for i in 0..300 {
            let q = fresh_update(&s, i);
            db.execute(&q).unwrap();
            online.observe(&db, &q).unwrap();
        }
        assert!(
            db.delta_tail("w").unwrap() > 100,
            "tail must have accumulated"
        );
        assert!(
            online.take_maintenance().is_empty(),
            "no scans -> merging now buys nothing; defer"
        );
    }

    /// A scan burst while the tail is still small, followed by a long
    /// write-only phase that grows the tail. The last-interval-only
    /// predictor freezes the accrual the moment scans pause (each quiet
    /// interval contributes zero), while the decayed rate keeps predicting
    /// scan pressure from the burst and accrues against the now-large tail
    /// — so only the decayed predictor schedules the merge.
    #[test]
    fn decayed_rate_reacts_to_phase_change_where_last_interval_freezes() {
        fn merges_scheduled(decay: f64) -> bool {
            let s = spec();
            let db = HybridDatabase::new();
            db.create_single(s.schema().unwrap(), StoreKind::Column)
                .unwrap();
            db.bulk_load("w", s.rows()).unwrap();
            db.set_merge_config(hsd_engine::MergeConfig::disabled());
            let mut m = maintenance_model();
            m.column.f_tail = AdjustmentFn::Linear {
                slope: 50.0,
                intercept: 1.0,
            };
            m.column.merge_ms = AdjustmentFn::Constant(3.0);
            let cfg = OnlineConfig {
                evaluation_interval: usize::MAX,
                maintenance_interval: 8,
                merge_min_tail: 16,
                merge_safety_factor: 1.0,
                scan_rate_decay: decay,
                ..Default::default()
            };
            let mut online = OnlineAdvisor::new(StorageAdvisor::new(m), cfg);
            let scan = Query::Aggregate(AggregateQuery::simple("w", AggFunc::Sum, s.kf_col(0)));
            for i in 0..400 {
                // Statements 0..60: updates and scans alternate (the
                // burst); statements 60..400: writes only.
                let q = if i < 60 && i % 2 == 1 {
                    scan.clone()
                } else {
                    fresh_update(&s, i)
                };
                db.execute(&q).unwrap();
                online.observe(&db, &q).unwrap();
                if !online.take_maintenance().is_empty() {
                    return true;
                }
            }
            false
        }
        assert!(
            merges_scheduled(0.5),
            "decayed predictor must keep accruing through the write phase"
        );
        assert!(
            !merges_scheduled(1.0),
            "last-interval-only predictor stalls once the burst ends"
        );
    }

    /// A handed-out merge freezes the table's accrual: no second Merge is
    /// emitted while the job sits unapplied (a worker queue) or is mid-
    /// flight, and the advisor re-arms once the epoch handoff lands.
    #[test]
    fn scheduled_merge_is_not_double_scheduled_until_the_handoff() {
        let (db, mut online, s) = maintenance_setup();
        let scan = Query::Aggregate(AggregateQuery::simple("w", AggFunc::Sum, s.kf_col(0)));
        let mut first = None;
        for i in 0..600 {
            let q = if i % 2 == 0 {
                fresh_update(&s, i)
            } else {
                scan.clone()
            };
            db.execute(&q).unwrap();
            online.observe(&db, &q).unwrap();
            let actions = online.take_maintenance();
            if let Some(a) = actions.into_iter().next() {
                first = Some(a);
                break;
            }
        }
        let action = first.expect("scan-heavy stream must schedule a merge");
        // The job is "queued on a worker": keep streaming without applying.
        for i in 600..900 {
            let q = if i % 2 == 0 {
                fresh_update(&s, i)
            } else {
                scan.clone()
            };
            db.execute(&q).unwrap();
            online.observe(&db, &q).unwrap();
            assert!(
                online.take_maintenance().is_empty(),
                "no double-schedule while the job is outstanding"
            );
        }
        // Drive the merge through bounded slices; mid-flight checks must
        // still stay quiet.
        while !action.apply_chunked(&db, 64).unwrap().done {
            db.execute(&scan).unwrap();
            online.observe(&db, &scan).unwrap();
            assert!(
                online.take_maintenance().is_empty(),
                "no double-schedule while slices are in flight"
            );
        }
        assert_eq!(db.delta_tail("w").unwrap(), 0);
        // The handoff landed: the advisor re-arms and a fresh scan-heavy
        // stream over a regrown tail schedules again.
        let mut rescheduled = false;
        for i in 900..1500 {
            let q = if i % 2 == 0 {
                fresh_update(&s, i)
            } else {
                scan.clone()
            };
            db.execute(&q).unwrap();
            online.observe(&db, &q).unwrap();
            if !online.take_maintenance().is_empty() {
                rescheduled = true;
                break;
            }
        }
        assert!(rescheduled, "a completed merge must re-arm the scheduler");
    }

    /// Scan pressure collapsing after a merge was scheduled — but before
    /// any slice ran — withdraws the recommendation with a Retract action.
    #[test]
    fn collapsed_scan_pressure_retracts_an_unstarted_merge() {
        let (db, mut online, s) = maintenance_setup();
        let scan = Query::Aggregate(AggregateQuery::simple("w", AggFunc::Sum, s.kf_col(0)));
        let mut scheduled = false;
        for i in 0..600 {
            let q = if i % 2 == 0 {
                fresh_update(&s, i)
            } else {
                scan.clone()
            };
            db.execute(&q).unwrap();
            online.observe(&db, &q).unwrap();
            if !online.take_maintenance().is_empty() {
                scheduled = true;
                break;
            }
        }
        assert!(scheduled, "the burst must schedule a merge first");
        // The workload turns write-only: the decayed rate collapses and the
        // queued (never-started) job is withdrawn.
        let mut retract = None;
        for i in 600..1000 {
            let q = fresh_update(&s, i);
            db.execute(&q).unwrap();
            online.observe(&db, &q).unwrap();
            let actions = online.take_maintenance();
            if !actions.is_empty() {
                retract = Some(actions);
                break;
            }
        }
        assert_eq!(
            retract.expect("collapsed rate must retract"),
            vec![MaintenanceAction::Retract { table: "w".into() }],
        );
        assert!(
            db.delta_tail("w").unwrap() > 0,
            "the tail is still there — the merge was withdrawn, not run"
        );
        // Still write-only: the retracted table is not re-scheduled.
        for i in 1000..1200 {
            let q = fresh_update(&s, i);
            db.execute(&q).unwrap();
            online.observe(&db, &q).unwrap();
            assert!(online.take_maintenance().is_empty());
        }
    }

    /// A model 8x too optimistic about row scans, corrected online from
    /// observed residuals — but only when the `self_calibrating` toggle is
    /// on. The static ablation must keep the model frozen while still
    /// exposing the (large) drift gauge.
    #[test]
    fn observe_timed_refits_a_stale_model_only_when_self_calibrating() {
        fn run(self_calibrating: bool) -> (u64, f64, f64) {
            let s = spec();
            let db = HybridDatabase::new();
            db.create_single(s.schema().unwrap(), StoreKind::Row)
                .unwrap();
            db.bulk_load("w", s.rows()).unwrap();
            let stale = model(); // predicts ~2 ms for the 2k-row scan
            let cfg = OnlineConfig {
                evaluation_interval: usize::MAX,
                enable_maintenance: false,
                calibration_interval: 32,
                self_calibrating,
                ..Default::default()
            };
            let mut online = OnlineAdvisor::new(StorageAdvisor::new(stale), cfg);
            let scan = Query::Aggregate(AggregateQuery::simple("w", AggFunc::Sum, s.kf_col(0)));
            let truth_ms = 8.0 * online.predict_ms(&db, &scan);
            for _ in 0..256 {
                online.observe_timed(&db, &scan, truth_ms).unwrap();
            }
            (
                online.model_version(),
                online.drift_gauge().overall,
                online.predict_ms(&db, &scan),
            )
        }
        let (versions, drift, predicted) = run(true);
        assert!(
            versions >= 3,
            "an 8x gap needs (and gets) several clamped re-fits, saw {versions}"
        );
        assert!(
            drift < 0.3,
            "post-convergence residuals are small, gauge {drift}"
        );
        let (static_versions, static_drift, static_predicted) = run(false);
        assert_eq!(static_versions, 0, "static ablation never amends the model");
        assert!(
            static_drift > 1.5,
            "static gauge must expose the ~ln 8 ≈ 2.1 misprediction, saw {static_drift}"
        );
        assert!(
            predicted > 3.0 * static_predicted,
            "calibrated predictions moved toward the measured truth \
             ({predicted} vs frozen {static_predicted})"
        );
    }

    #[test]
    fn online_advisor_detects_workload_shift() {
        let s = spec();
        let db = HybridDatabase::new();
        db.create_single(s.schema().unwrap(), StoreKind::Row)
            .unwrap();
        db.bulk_load("w", s.rows()).unwrap();

        let cfg = OnlineConfig {
            evaluation_interval: 100,
            min_improvement: 0.05,
            enable_partitioning: false,
            ..Default::default()
        };
        let mut online = OnlineAdvisor::new(StorageAdvisor::new(model()), cfg);

        // Phase 1: OLTP-only — the current row-store layout should hold.
        let oltp = WorkloadGenerator::single_table(
            &s,
            &MixedWorkloadConfig {
                queries: 100,
                olap_fraction: 0.0,
                ..Default::default()
            },
        );
        let mut adaptations = 0;
        for q in &oltp.queries {
            db.execute(q).unwrap();
            if online.observe(&db, q).unwrap().is_some() {
                adaptations += 1;
            }
        }
        assert_eq!(adaptations, 0, "row store is already optimal for OLTP");

        // Phase 2: the workload turns analytical — an adaptation to the
        // column store must be recommended. The phase-2 generator allocates
        // insert ids beyond everything phase 1 could have inserted.
        let s2 = TableSpec {
            rows: 10_000,
            ..spec()
        };
        let olap = WorkloadGenerator::single_table(
            &s2,
            &MixedWorkloadConfig {
                queries: 100,
                olap_fraction: 0.8,
                ..Default::default()
            },
        );
        let mut adaptation = None;
        for q in &olap.queries {
            db.execute(q).unwrap();
            if let Some(a) = online.observe(&db, q).unwrap() {
                adaptation = Some(a);
                break;
            }
        }
        let adaptation = adaptation.expect("workload shift must trigger adaptation");
        assert!(adaptation.improvement >= 0.05);
        assert_eq!(adaptation.changed_tables, vec!["w".to_string()]);
        assert_eq!(
            adaptation.recommendation.layout.placement("w"),
            TablePlacement::Single(StoreKind::Column)
        );

        // Apply it and verify the database moved.
        let moved = online.apply(&db, &adaptation).unwrap();
        assert_eq!(moved, vec!["w".to_string()]);
        assert_eq!(
            db.catalog().single_store_of("w").unwrap(),
            StoreKind::Column
        );
        assert_eq!(
            online.recorded_statements(),
            0,
            "interval resets after adaptation"
        );
    }
}
