//! The storage advisor: table-level store recommendation plus store-aware
//! partitioning, bundled into offline/online entry points.

use std::collections::BTreeMap;
use std::sync::Arc;

use hsd_catalog::{ExtendedStats, StorageLayout, TablePlacement, TableStats};
use hsd_engine::{HybridDatabase, StatisticsRecorder};
use hsd_query::{Query, Workload};
use hsd_storage::StoreKind;
use hsd_types::{Result, TableSchema};

use crate::cost::{CostModel, ModelHandle};
use crate::estimator::{
    estimate_query, estimate_workload, estimate_workload_layout, EstimationCtx, TableCtx,
};
use crate::partition::{recommend_partition, PartitionAdvisorConfig};

/// Per-table outcome of a recommendation.
#[derive(Debug, Clone)]
pub struct TableRecommendation {
    /// Table name.
    pub table: String,
    /// Estimated workload share on the row store (ms).
    pub cost_row_ms: f64,
    /// Estimated workload share on the column store (ms).
    pub cost_column_ms: f64,
    /// Recommended placement.
    pub placement: TablePlacement,
}

/// A complete recommendation.
#[derive(Debug, Clone)]
pub struct Recommendation {
    /// The recommended layout.
    pub layout: StorageLayout,
    /// Estimated workload runtime under the recommended layout (ms).
    pub estimated_ms: f64,
    /// Estimated runtime with every table in the row store (ms).
    pub rs_only_ms: f64,
    /// Estimated runtime with every table in the column store (ms).
    pub cs_only_ms: f64,
    /// Modeled in-memory footprint of the recommended layout (bytes).
    pub footprint_bytes: f64,
    /// Modeled on-disk bytes of the recommended layout (cold fragments
    /// demoted to the disk tier; zero for all-memory layouts).
    pub disk_bytes: f64,
    /// The memory budget the recommendation was selected under, if any
    /// ([`StorageAdvisor::memory_budget`]).
    pub budget_bytes: Option<f64>,
    /// Whether the budget was satisfiable: `false` only when even the
    /// smallest-footprint placement set exceeds it (the layout then is
    /// that smallest set).
    pub budget_feasible: bool,
    /// Per-table details.
    pub tables: Vec<TableRecommendation>,
    /// Data-movement statements implementing the layout.
    pub statements: Vec<String>,
}

/// The advisor: a calibrated cost model plus heuristic thresholds.
#[derive(Debug, Clone)]
pub struct StorageAdvisor {
    /// Calibrated cost model, behind a versioned refittable handle: every
    /// pricing pass takes one [`ModelHandle::snapshot`] at entry, so an
    /// online re-fit ([`crate::calibration::online::OnlineCalibrator`])
    /// published mid-pass can never mix coefficient versions within a
    /// single estimate. Cloning the advisor shares the handle — a re-fit
    /// reaches every clone's next pass.
    pub model: ModelHandle,
    /// Partitioning thresholds.
    pub partition_cfg: PartitionAdvisorConfig,
    /// Maximum table count for exhaustive store-combination search; larger
    /// schemas fall back to greedy local search.
    pub exact_search_limit: usize,
    /// Whether store comparisons charge column-store candidates their
    /// modeled delta upkeep (merge amortization plus inter-merge tail
    /// penalty, [`crate::maintenance::estimate_maintenance`]). On by
    /// default; disable for the maintenance-blind ablation, which compares
    /// stores by query cost alone and therefore keeps write-heavy tables in
    /// the column store even when their merges eat the scan savings.
    pub maintenance_aware: bool,
    /// Whether partitioned placements are charged maintenance at the
    /// **fragment** level
    /// ([`crate::estimator::placement_fragment_drivers`]): only the cold
    /// column fragment's share of tail growth, scan pressure, and rows. On
    /// by default; disable for the full-table-charged ablation, which
    /// bills a partitioned candidate as if the whole table were one column
    /// table — over-charging exactly the hybrid layouts whose hot
    /// row-store partition absorbs the writes, and therefore
    /// under-recommending them. Irrelevant when `maintenance_aware` is
    /// off.
    pub fragment_upkeep: bool,
    /// Optional global memory budget (bytes). `None` keeps the
    /// unconstrained per-table choice (the greedy path, retained as the
    /// ablation baseline). `Some(b)` scales the advisor to the paper's
    /// *global* problem: when the unconstrained layout's modeled footprint
    /// exceeds `b`, the placement set is re-selected by knapsack-style
    /// search over every table's `(cost, footprint)` candidates
    /// ([`crate::budget::select_under_budget`]) so total workload cost is
    /// minimized *within* the budget. A budget the unconstrained layout
    /// already satisfies changes nothing — the greedy choice is the
    /// special case, not a separate mode.
    pub memory_budget: Option<f64>,
}

impl StorageAdvisor {
    /// Advisor with default heuristics. The model is wrapped in a fresh
    /// [`ModelHandle`]; use [`StorageAdvisor::with_handle`] to share an
    /// existing one (so online re-fits reach this advisor too).
    pub fn new(model: CostModel) -> Self {
        Self::with_handle(ModelHandle::new(model))
    }

    /// Advisor sharing an existing versioned model handle.
    pub fn with_handle(model: ModelHandle) -> Self {
        StorageAdvisor {
            model,
            partition_cfg: PartitionAdvisorConfig::default(),
            exact_search_limit: 12,
            maintenance_aware: true,
            fragment_upkeep: true,
            memory_budget: None,
        }
    }

    /// The same advisor constrained to a global memory budget (bytes).
    pub fn with_budget(self, budget_bytes: f64) -> Self {
        StorageAdvisor {
            memory_budget: Some(budget_bytes),
            ..self
        }
    }

    /// The same advisor with maintenance-aware placement disabled (the
    /// query-cost-only ablation baseline).
    pub fn maintenance_blind(model: CostModel) -> Self {
        StorageAdvisor {
            maintenance_aware: false,
            ..StorageAdvisor::new(model)
        }
    }

    /// The same advisor with fragment-level upkeep charging disabled: still
    /// maintenance-aware, but partitioned placements are billed the
    /// full-table upkeep (the pre-fragment-costing ablation baseline for
    /// `bench_partition_upkeep`).
    pub fn fragment_blind(model: CostModel) -> Self {
        StorageAdvisor {
            fragment_upkeep: false,
            ..StorageAdvisor::new(model)
        }
    }

    /// **Offline mode**: recommend a layout from schema, basic statistics,
    /// and a recorded or expected workload. Workload characteristics are
    /// derived by static analysis (no execution).
    pub fn recommend_offline(
        &self,
        schemas: &[Arc<TableSchema>],
        stats: &BTreeMap<String, TableStats>,
        workload: &Workload,
        enable_partitioning: bool,
    ) -> Result<Recommendation> {
        let ctx = build_ctx(schemas, stats);
        let activity = analyze_workload(schemas, workload)?;
        self.recommend_inner(schemas, &ctx, &activity, workload, enable_partitioning)
    }

    /// **Online mode** evaluation step: recommend from live catalog
    /// statistics plus the recorded extended workload statistics and the
    /// recent query window.
    pub fn recommend_online(
        &self,
        db: &HybridDatabase,
        recorded: &ExtendedStats,
        window: &Workload,
        enable_partitioning: bool,
    ) -> Result<Recommendation> {
        let schemas: Vec<Arc<TableSchema>> = db
            .catalog()
            .entries()
            .iter()
            .map(|e| e.schema.clone())
            .collect();
        let stats: BTreeMap<String, TableStats> = db
            .catalog()
            .entries()
            .iter()
            .map(|e| (e.schema.name.clone(), e.stats.clone()))
            .collect();
        let mut ctx = build_ctx(&schemas, &stats);
        apply_observed_tail_rates(&mut ctx, recorded);
        for entry in db.catalog().entries() {
            if let Some(t) = ctx.tables.get_mut(&entry.schema.name) {
                t.indexed = entry.indexed_columns.clone();
                // The live delta tail is deliberately NOT fed into the
                // placement search: placement is a steady-state decision,
                // and a tail-inflated column-store estimate could tip it
                // into recommending a full migration whose cheaper remedy
                // is the maintenance scheduler's own merge (`merge_ms` ≪
                // move cost). Tail costs are charged where they are
                // actionable — in [`crate::maintenance::evaluate_merge`].
            }
        }
        self.recommend_inner(&schemas, &ctx, recorded, window, enable_partitioning)
    }

    /// Modeled per-table delta-upkeep cost (ms) of a column-store placement
    /// over `workload` — empty when maintenance-aware placement is off.
    pub(crate) fn upkeep_costs(
        &self,
        ctx: &EstimationCtx,
        workload: &Workload,
    ) -> BTreeMap<String, f64> {
        if !self.maintenance_aware {
            return BTreeMap::new();
        }
        let model = self.model.snapshot();
        crate::estimator::workload_maintenance_drivers(ctx, workload)
            .into_iter()
            .map(|(table, drivers)| {
                let rows = ctx.tables.get(&table).map_or(0, |t| t.stats.row_count);
                let cost =
                    crate::maintenance::estimate_maintenance(&model, rows, drivers).total_ms();
                (table, cost)
            })
            .collect()
    }

    /// Modeled delta-upkeep cost (ms) `table` pays under `placement` over
    /// `workload`: zero when maintenance-aware placement is off or the
    /// placement keeps no column-store region; the fragment-level bill for
    /// partitioned placements — or the full-table bill when the
    /// [`StorageAdvisor::fragment_upkeep`] ablation toggle is off.
    pub(crate) fn placement_upkeep_ms(
        &self,
        ctx: &EstimationCtx,
        workload: &Workload,
        table: &str,
        placement: &TablePlacement,
    ) -> f64 {
        if !self.maintenance_aware {
            return 0.0;
        }
        // The ablation bills a partitioned placement like a full column
        // table (the pre-fragment-costing behavior).
        let full_table = TablePlacement::Single(StoreKind::Column);
        let effective = match placement {
            TablePlacement::Partitioned(_) if !self.fragment_upkeep => &full_table,
            other => other,
        };
        let model = self.model.snapshot();
        crate::estimator::placement_fragment_drivers(ctx, workload, table, effective).map_or(
            0.0,
            |fragment| {
                crate::maintenance::estimate_placement_maintenance(&model, fragment).total_ms()
            },
        )
    }

    /// Total delta-upkeep charge of a layout: every table pays the modeled
    /// upkeep of its own placement's column-store region (fragment-level
    /// for partitioned placements).
    pub(crate) fn layout_upkeep_ms(
        &self,
        ctx: &EstimationCtx,
        workload: &Workload,
        layout: &StorageLayout,
    ) -> f64 {
        ctx.tables
            .keys()
            .map(|table| self.placement_upkeep_ms(ctx, workload, table, &layout.placement(table)))
            .sum()
    }

    fn recommend_inner(
        &self,
        schemas: &[Arc<TableSchema>],
        ctx: &EstimationCtx,
        activity: &ExtendedStats,
        workload: &Workload,
        enable_partitioning: bool,
    ) -> Result<Recommendation> {
        // --- table level -------------------------------------------------
        // One snapshot for the whole recommendation pass: a concurrent
        // re-fit can land mid-pass without mixing coefficient versions.
        let model = self.model.snapshot();
        let upkeep = self.upkeep_costs(ctx, workload);
        let search = TableLevelSearch::new(&model, ctx, workload, &upkeep);
        let assignment = search.solve(self.exact_search_limit);
        // --- baselines ---------------------------------------------------
        let names: Vec<&str> = ctx.tables.keys().map(String::as_str).collect();
        let rs_only: BTreeMap<String, StoreKind> = names
            .iter()
            .map(|n| (n.to_string(), StoreKind::Row))
            .collect();
        let cs_only: BTreeMap<String, StoreKind> = names
            .iter()
            .map(|n| (n.to_string(), StoreKind::Column))
            .collect();
        let rs_only_ms = estimate_workload(&model, ctx, &rs_only, workload);
        let cs_only_ms =
            estimate_workload(&model, ctx, &cs_only, workload) + upkeep.values().sum::<f64>();
        // --- partitioning ------------------------------------------------
        // The heuristic proposes a partition spec; the spec is then priced
        // as a first-class placement candidate — the table's workload share
        // under the partitioned layout plus its *fragment-level* delta
        // upkeep, against the chosen single store's share plus its upkeep —
        // and adopted only when it models faster. (The full-table-charged
        // ablation, `fragment_upkeep = false`, over-bills the candidate's
        // upkeep and therefore rejects hybrid layouts a fragment-charged
        // comparison accepts.)
        let single_layout = {
            let mut l = StorageLayout::new();
            for (t, s) in &assignment {
                l.set(t.clone(), TablePlacement::Single(*s));
            }
            l
        };
        let mut layout = StorageLayout::new();
        let mut tables = Vec::new();
        for schema in schemas {
            let name = schema.name.clone();
            let store = assignment.get(&name).copied().unwrap_or(StoreKind::Row);
            let mut placement = TablePlacement::Single(store);
            if enable_partitioning {
                if let (Some(tctx), Some(act)) = (ctx.tables.get(&name), activity.tables.get(&name))
                {
                    if let Some(spec) =
                        recommend_partition(schema, &tctx.stats, act, &self.partition_cfg)
                    {
                        let candidate = TablePlacement::Partitioned(spec);
                        let mut cand_layout = single_layout.clone();
                        cand_layout.set(name.clone(), candidate.clone());
                        // The candidate's workload share: every query whose
                        // primary table is this one, plus joins that use it
                        // as the dimension — a dimension kept columnar for
                        // join performance must not flip to a partitioned
                        // layout with the joins left unpriced. (The layout
                        // estimator approximates a *partitioned* join
                        // dimension by the row store — its point-access
                        // fragment — so the candidate side is priced
                        // conservatively rather than ignored.)
                        let share = |layout: &StorageLayout| -> f64 {
                            workload
                                .queries
                                .iter()
                                .filter(|q| touches(q, &name))
                                .map(|q| {
                                    crate::estimator::estimate_query_layout(&model, ctx, layout, q)
                                })
                                .sum()
                        };
                        let single_ms = share(&single_layout)
                            + self.placement_upkeep_ms(ctx, workload, &name, &placement);
                        let cand_ms = share(&cand_layout)
                            + self.placement_upkeep_ms(ctx, workload, &name, &candidate);
                        if cand_ms < single_ms {
                            placement = candidate;
                        }
                    }
                }
            }
            let (cost_row_ms, cost_column_ms) = search.per_table_costs(&name);
            layout.set(name.clone(), placement.clone());
            tables.push(TableRecommendation {
                table: name,
                cost_row_ms,
                cost_column_ms,
                placement,
            });
        }
        // --- global memory budget ---------------------------------------
        // When a budget is set and the unconstrained choice exceeds it,
        // re-select the placement set by knapsack over every table's
        // (cost, footprint) candidates. A budget the unconstrained layout
        // already satisfies leaves it untouched, so the greedy path is the
        // exact unconstrained special case.
        let mut budget_feasible = true;
        let mut footprint_bytes = crate::budget::layout_footprint_bytes(ctx, &layout);
        if let Some(budget) = self.memory_budget {
            if footprint_bytes > budget {
                let selection = self.select_under_budget(ctx, workload, &layout, budget);
                budget_feasible = selection.feasible;
                footprint_bytes = selection.layout_footprint;
                layout = selection.layout;
                for t in &mut tables {
                    t.placement = layout.placement(&t.table);
                }
            }
        }
        // Query cost of the recommended layout plus the delta upkeep of
        // every placement that keeps a column-store region, charged at the
        // fragment level for partitioned placements.
        let estimated_ms = estimate_workload_layout(&model, ctx, &layout, workload)
            + self.layout_upkeep_ms(ctx, workload, &layout);
        let statements = migration_statements(schemas, &layout);
        let disk_bytes = crate::budget::layout_disk_bytes(ctx, &layout);
        Ok(Recommendation {
            layout,
            estimated_ms,
            rs_only_ms,
            cs_only_ms,
            footprint_bytes,
            disk_bytes,
            budget_bytes: self.memory_budget,
            budget_feasible,
            tables,
            statements,
        })
    }

    /// Re-select every table's placement under a binding memory budget.
    ///
    /// Candidates per table: the two single stores plus — when the
    /// unconstrained pass adopted one — its partitioned placement. Each
    /// candidate's cost is the table's workload share (its own queries
    /// plus joins using it as the dimension) priced under the layout where
    /// only this table changes, plus the candidate's delta upkeep; its
    /// footprint comes from [`crate::budget::placement_footprint_bytes`].
    /// The knapsack walk ([`crate::budget::select_under_budget`]) then
    /// picks the cheapest set that fits.
    fn select_under_budget(
        &self,
        ctx: &EstimationCtx,
        workload: &Workload,
        chosen: &StorageLayout,
        budget: f64,
    ) -> BudgetedLayout {
        // Per-table query index, so candidate costing touches each query
        // once per table it involves rather than scanning the whole
        // workload per candidate (the difference between O(tables ×
        // queries) and O(join arity × queries) at 100s-of-tables scale).
        let mut queries_of: BTreeMap<&str, Vec<&Query>> = BTreeMap::new();
        for q in &workload.queries {
            for t in q.tables() {
                queries_of.entry(t).or_default().push(q);
            }
        }
        let empty: Vec<&Query> = Vec::new();
        let model = self.model.snapshot();
        let mut candidate_tables = Vec::new();
        for (name, tctx) in &ctx.tables {
            let mut placements = vec![
                TablePlacement::Single(StoreKind::Row),
                TablePlacement::Single(StoreKind::Column),
            ];
            if let TablePlacement::Partitioned(spec) = chosen.placement(name) {
                // The adopted split, plus its disk-demoted variant: same
                // hot/cold shape, cold fragment priced out of memory and
                // into tier surcharges. The knapsack sees demotion as one
                // more point on the cost/footprint frontier — the relief
                // valve when even the compressed column store won't fit.
                // (Vertical cold fragments cannot demote; the engine keeps
                // them memory-resident.)
                if spec.vertical.is_none() && spec.cold_tier == hsd_catalog::Tier::Memory {
                    let mut demoted = spec.clone();
                    demoted.cold_tier = hsd_catalog::Tier::Disk;
                    placements.push(TablePlacement::Partitioned(demoted));
                }
                placements.push(TablePlacement::Partitioned(spec));
            }
            let queries = queries_of.get(name.as_str()).unwrap_or(&empty);
            let candidates = placements
                .into_iter()
                .map(|placement| {
                    let mut cand_layout = chosen.clone();
                    cand_layout.set(name.clone(), placement.clone());
                    let share: f64 = queries
                        .iter()
                        .map(|q| {
                            crate::estimator::estimate_query_layout(&model, ctx, &cand_layout, q)
                        })
                        .sum();
                    crate::budget::PlacementCandidate {
                        cost_ms: share + self.placement_upkeep_ms(ctx, workload, name, &placement),
                        footprint_bytes: crate::budget::placement_footprint_bytes(tctx, &placement),
                        disk_bytes: crate::budget::placement_disk_bytes(tctx, &placement),
                        placement,
                    }
                })
                .collect();
            candidate_tables.push(crate::budget::TableCandidates {
                table: name.clone(),
                candidates,
            });
        }
        let selection = crate::budget::select_under_budget(&candidate_tables, Some(budget));
        let mut layout = chosen.clone();
        for tc in &candidate_tables {
            let idx = selection.choice[&tc.table];
            layout.set(tc.table.clone(), tc.candidates[idx].placement.clone());
        }
        BudgetedLayout {
            layout_footprint: selection.total_footprint_bytes,
            feasible: selection.feasible,
            layout,
        }
    }
}

/// Result of the budget re-selection step.
struct BudgetedLayout {
    layout: StorageLayout,
    layout_footprint: f64,
    feasible: bool,
}

/// Does `q` touch table `name` (as its primary table or join dimension)?
fn touches(q: &Query, name: &str) -> bool {
    q.table() == name
        || matches!(q, Query::Aggregate(a)
            if a.join.as_ref().is_some_and(|j| j.dim_table == name))
}

/// Build the estimation context from schemas + stats.
pub fn build_ctx(
    schemas: &[Arc<TableSchema>],
    stats: &BTreeMap<String, TableStats>,
) -> EstimationCtx {
    let mut ctx = EstimationCtx::new();
    for schema in schemas {
        let s = stats
            .get(&schema.name)
            .cloned()
            .unwrap_or_else(|| TableStats::empty(schema.arity()));
        ctx.insert(
            schema.name.clone(),
            TableCtx {
                stats: s,
                indexed: Vec::new(),
                column_types: schema.columns.iter().map(|c| c.ty).collect(),
                pk_columns: schema.primary_key.clone(),
                delta_tail: 0,
                observed_tail_rate: None,
            },
        );
    }
    ctx
}

/// Feed the recorder's observed per-write tail rates into an estimation
/// context, so [`crate::estimator::workload_maintenance_drivers`] tightens
/// its static upper bound with live evidence. Online-mode helper (offline
/// recommendations have no live dictionaries to observe).
pub(crate) fn apply_observed_tail_rates(ctx: &mut EstimationCtx, recorded: &ExtendedStats) {
    for (name, tctx) in &mut ctx.tables {
        if let Some(rate) = recorded.table(name).and_then(|a| a.observed_tail_rate()) {
            tctx.observed_tail_rate = Some(rate);
        }
    }
}

/// Statically derive extended workload statistics from a workload (the
/// offline mode's workload analysis — no queries are executed).
pub fn analyze_workload(
    schemas: &[Arc<TableSchema>],
    workload: &Workload,
) -> Result<ExtendedStats> {
    // A schema-only database gives the recorder its arity lookups.
    let db = HybridDatabase::new();
    for schema in schemas {
        db.create_single((**schema).clone(), StoreKind::Row)?;
    }
    let mut recorder = StatisticsRecorder::new();
    for q in &workload.queries {
        recorder.record(&db, q);
    }
    Ok(recorder.into_stats())
}

// ---------------------------------------------------------------------------
// Table-level search

/// Decomposed workload costs: per-table single-store sums plus per-join-pair
/// combination sums, enabling fast evaluation of any store assignment.
struct TableLevelSearch {
    tables: Vec<String>,
    /// `single[t][s]`: cost of all single-table queries on table `t` under
    /// store `s`.
    single: Vec<[f64; 2]>,
    /// Join query costs: `(fact_idx, dim_idx, cost[fact_store][dim_store])`.
    joins: Vec<(usize, usize, [[f64; 2]; 2])>,
}

impl TableLevelSearch {
    /// Decompose `workload` into per-table and per-join-pair store costs.
    /// `upkeep` charges each table's column-store side its modeled delta
    /// maintenance (empty for maintenance-blind comparisons) — the upkeep
    /// depends only on the table's own store, so it stays separable and the
    /// search machinery is unchanged.
    fn new(
        model: &CostModel,
        ctx: &EstimationCtx,
        workload: &Workload,
        upkeep: &BTreeMap<String, f64>,
    ) -> Self {
        let tables: Vec<String> = ctx.tables.keys().cloned().collect();
        let index: BTreeMap<&str, usize> = tables
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i))
            .collect();
        let mut single = vec![[0.0f64; 2]; tables.len()];
        let mut join_map: BTreeMap<(usize, usize), [[f64; 2]; 2]> = BTreeMap::new();
        for q in &workload.queries {
            match q {
                Query::Aggregate(a) if a.join.is_some() => {
                    let join = a.join.as_ref().expect("checked");
                    let (Some(&f), Some(&d)) = (
                        index.get(a.table.as_str()),
                        index.get(join.dim_table.as_str()),
                    ) else {
                        continue;
                    };
                    let entry = join_map.entry((f, d)).or_insert([[0.0; 2]; 2]);
                    for (fi, fs) in StoreKind::BOTH.iter().enumerate() {
                        for (di, ds) in StoreKind::BOTH.iter().enumerate() {
                            let mut assign = BTreeMap::new();
                            assign.insert(a.table.clone(), *fs);
                            assign.insert(join.dim_table.clone(), *ds);
                            entry[fi][di] += estimate_query(model, ctx, &assign, q);
                        }
                    }
                }
                other => {
                    let table = other.table();
                    let Some(&t) = index.get(table) else { continue };
                    for (si, s) in StoreKind::BOTH.iter().enumerate() {
                        let mut assign = BTreeMap::new();
                        assign.insert(table.to_string(), *s);
                        single[t][si] += estimate_query(model, ctx, &assign, other);
                    }
                }
            }
        }
        for (t, name) in tables.iter().enumerate() {
            if let Some(ms) = upkeep.get(name) {
                single[t][1] += ms;
            }
        }
        let joins = join_map.into_iter().map(|((f, d), c)| (f, d, c)).collect();
        TableLevelSearch {
            tables,
            single,
            joins,
        }
    }

    fn cost_of(&self, stores: &[usize]) -> f64 {
        let mut total = 0.0;
        for (t, s) in stores.iter().enumerate() {
            total += self.single[t][*s];
        }
        for (f, d, costs) in &self.joins {
            total += costs[stores[*f]][stores[*d]];
        }
        total
    }

    /// Exhaustive store-combination search for small schemas ("for the join
    /// of two tables this means four estimates ... a negligible overhead"),
    /// greedy local search beyond `exact_limit` tables.
    fn solve(&self, exact_limit: usize) -> BTreeMap<String, StoreKind> {
        let n = self.tables.len();
        let mut best: Vec<usize> = (0..n)
            .map(|t| {
                if self.single[t][0] <= self.single[t][1] {
                    0
                } else {
                    1
                }
            })
            .collect();
        if n == 0 {
            return BTreeMap::new();
        }
        if n <= exact_limit {
            let mut best_cost = f64::INFINITY;
            let mut best_assign = best.clone();
            for mask in 0u64..(1u64 << n) {
                let stores: Vec<usize> = (0..n).map(|t| ((mask >> t) & 1) as usize).collect();
                let cost = self.cost_of(&stores);
                if cost < best_cost {
                    best_cost = cost;
                    best_assign = stores;
                }
            }
            best = best_assign;
        } else {
            // Greedy local search: flip single tables while it helps.
            let mut cost = self.cost_of(&best);
            loop {
                let mut improved = false;
                for t in 0..n {
                    best[t] ^= 1;
                    let c = self.cost_of(&best);
                    if c + 1e-12 < cost {
                        cost = c;
                        improved = true;
                    } else {
                        best[t] ^= 1;
                    }
                }
                if !improved {
                    break;
                }
            }
        }
        self.tables
            .iter()
            .zip(&best)
            .map(|(name, &s)| {
                (
                    name.clone(),
                    if s == 0 {
                        StoreKind::Row
                    } else {
                        StoreKind::Column
                    },
                )
            })
            .collect()
    }

    /// Single-table cost split for reporting (join costs are attributed to
    /// the fact table, at the dimension's cheaper store).
    fn per_table_costs(&self, table: &str) -> (f64, f64) {
        let Some(t) = self.tables.iter().position(|n| n == table) else {
            return (0.0, 0.0);
        };
        let mut rs = self.single[t][0];
        let mut cs = self.single[t][1];
        for (f, _, costs) in &self.joins {
            if *f == t {
                rs += costs[0][0].min(costs[0][1]);
                cs += costs[1][0].min(costs[1][1]);
            }
        }
        (rs, cs)
    }
}

/// Render the data-movement statements for a layout (the "respective
/// statements to move the data into the recommended store").
fn migration_statements(schemas: &[Arc<TableSchema>], layout: &StorageLayout) -> Vec<String> {
    let mut out = Vec::new();
    for schema in schemas {
        let name = &schema.name;
        match layout.placement(name) {
            TablePlacement::Single(StoreKind::Row) => {
                out.push(format!("ALTER TABLE {name} MOVE TO ROW STORE;"));
            }
            TablePlacement::Single(StoreKind::Column) => {
                out.push(format!("ALTER TABLE {name} MOVE TO COLUMN STORE;"));
            }
            TablePlacement::Partitioned(spec) => {
                if let Some(h) = &spec.horizontal {
                    let col = &schema.columns[h.split_column].name;
                    out.push(format!(
                        "ALTER TABLE {name} PARTITION HORIZONTALLY WHERE {col} >= {} \
                         (HOT -> ROW STORE, HISTORIC -> COLUMN STORE);",
                        h.split_value
                    ));
                }
                if let Some(v) = &spec.vertical {
                    let cols: Vec<&str> = v
                        .row_cols
                        .iter()
                        .map(|&c| schema.columns[c].name.as_str())
                        .collect();
                    out.push(format!(
                        "ALTER TABLE {name} PARTITION VERTICALLY ({}) -> ROW STORE \
                         (REMAINING ATTRIBUTES -> COLUMN STORE, PRIMARY KEY IN BOTH);",
                        cols.join(", ")
                    ));
                }
                if spec.cold_tier == hsd_catalog::Tier::Disk {
                    out.push(format!("ALTER TABLE {name} DEMOTE COLD PARTITION TO DISK;"));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::AdjustmentFn;
    use hsd_catalog::ColumnStats;
    use hsd_query::{
        AggFunc, AggregateQuery, InsertQuery, MixedWorkloadConfig, TableSpec, WorkloadGenerator,
    };
    use hsd_types::{ColumnDef, ColumnType, Value};

    /// A hand-built model with the canonical asymmetries: CS 10× faster at
    /// aggregation, RS 5× faster at OLTP.
    fn model() -> CostModel {
        let mut m = CostModel::neutral();
        m.row.f_rows = AdjustmentFn::Linear {
            slope: 1e-3,
            intercept: 0.05,
        };
        m.column.f_rows = AdjustmentFn::Linear {
            slope: 1e-4,
            intercept: 0.05,
        };
        m.row.ins_row = AdjustmentFn::Constant(0.002);
        m.column.ins_row = AdjustmentFn::Constant(0.01);
        m.row.sel_point_ms = 0.002;
        m.column.sel_point_ms = 0.01;
        m.row.upd_row_ms = 0.002;
        m.column.upd_row_ms = 0.01;
        m.row.sel_per_row_scan = 1e-4;
        m.column.sel_per_row_scan = 1e-5;
        m
    }

    fn spec() -> TableSpec {
        TableSpec::paper_wide("w", 20_000, 3)
    }

    fn schema_stats() -> (Vec<Arc<TableSchema>>, BTreeMap<String, TableStats>) {
        let s = spec();
        let schema = Arc::new(s.schema().unwrap());
        let mut stats = TableStats::empty(schema.arity());
        stats.row_count = s.rows;
        stats.columns = (0..schema.arity())
            .map(|c| ColumnStats {
                distinct: if c == 0 { s.rows } else { 100 },
                min: Some(Value::BigInt(0)),
                max: Some(Value::BigInt(s.rows as i64 - 1)),
                compression_rate: 0.5,
            })
            .collect();
        let mut map = BTreeMap::new();
        map.insert("w".to_string(), stats);
        (vec![schema], map)
    }

    fn workload(olap_fraction: f64) -> Workload {
        WorkloadGenerator::single_table(
            &spec(),
            &MixedWorkloadConfig {
                queries: 200,
                olap_fraction,
                hot_fraction: Some(0.1),
                ..Default::default()
            },
        )
    }

    #[test]
    fn pure_oltp_prefers_row_store() {
        let advisor = StorageAdvisor::new(model());
        let (schemas, stats) = schema_stats();
        let rec = advisor
            .recommend_offline(&schemas, &stats, &workload(0.0), false)
            .unwrap();
        assert_eq!(
            rec.layout.placement("w"),
            TablePlacement::Single(StoreKind::Row)
        );
        assert!(rec.rs_only_ms <= rec.cs_only_ms);
        assert!(rec.estimated_ms <= rec.rs_only_ms + 1e-9);
    }

    #[test]
    fn olap_heavy_prefers_column_store() {
        let advisor = StorageAdvisor::new(model());
        let (schemas, stats) = schema_stats();
        let rec = advisor
            .recommend_offline(&schemas, &stats, &workload(0.3), false)
            .unwrap();
        assert_eq!(
            rec.layout.placement("w"),
            TablePlacement::Single(StoreKind::Column)
        );
        assert!(rec.cs_only_ms < rec.rs_only_ms);
    }

    #[test]
    fn advisor_picks_argmin_of_its_own_estimates() {
        let advisor = StorageAdvisor::new(model());
        let (schemas, stats) = schema_stats();
        for frac in [0.0, 0.01, 0.05, 0.2] {
            let rec = advisor
                .recommend_offline(&schemas, &stats, &workload(frac), false)
                .unwrap();
            let best = rec.rs_only_ms.min(rec.cs_only_ms);
            assert!(
                rec.estimated_ms <= best + 1e-9,
                "frac {frac}: estimated {} > best single {}",
                rec.estimated_ms,
                best
            );
        }
    }

    /// Insert-heavy mixed workload: the heuristic proposes an empty hot
    /// insert partition above the current max id, and the candidate prices
    /// *below* the single-store choice (the hot row-store partition absorbs
    /// the inserts at row cost and pays no modeled delta upkeep, while the
    /// cold column fragment keeps serving the scans) — so the advisor both
    /// proposes and *adopts* the partitioned placement.
    #[test]
    fn partitioning_recommended_for_mixed_workload() {
        let advisor = StorageAdvisor::new(model());
        let (schemas, stats) = schema_stats();
        let w = insert_scan_workload(&schemas[0], stats["w"].row_count, 160, 10);
        let rec = advisor
            .recommend_offline(&schemas, &stats, &w, true)
            .unwrap();
        match rec.layout.placement("w") {
            TablePlacement::Partitioned(spec) => {
                assert!(spec.horizontal.is_some() || spec.vertical.is_some());
            }
            other => panic!("expected partitioned placement, got {other:?}"),
        }
        assert!(!rec.statements.is_empty());
    }

    /// Fresh-id single-row inserts against a thin stream of full-table
    /// aggregations — the hot/cold shape partitioning exists for.
    fn insert_scan_workload(
        schema: &TableSchema,
        base_rows: usize,
        inserts: usize,
        scans: usize,
    ) -> Workload {
        let mut queries: Vec<Query> = (0..inserts)
            .map(|i| {
                let row: Vec<Value> = schema
                    .columns
                    .iter()
                    .enumerate()
                    .map(|(c, col)| match col.ty {
                        ColumnType::BigInt => Value::BigInt((base_rows + i) as i64),
                        ColumnType::Double => Value::Double(5e8 + (i * schema.arity() + c) as f64),
                        _ => Value::Int((i % 5) as i32),
                    })
                    .collect();
                Query::Insert(InsertQuery {
                    table: schema.name.clone(),
                    rows: vec![row],
                })
            })
            .collect();
        for _ in 0..scans {
            queries.push(Query::Aggregate(AggregateQuery::simple(
                &schema.name,
                AggFunc::Sum,
                1,
            )));
        }
        Workload::from_queries(queries)
    }

    /// The pricing gate is real: a partition spec whose modeled cost
    /// exceeds the single-store choice is proposed by the heuristic but
    /// *rejected* by the advisor. A scan-dominated stream with a thin
    /// trickle of hot-region updates makes the update-envelope split (10 %
    /// of the rows hot) a net loss — every aggregation would pay an extra
    /// row-store scan over the hot partition that dwarfs the update
    /// savings.
    #[test]
    fn unprofitable_partition_candidate_is_rejected() {
        use hsd_query::UpdateQuery;
        use hsd_storage::ColRange;
        let advisor = StorageAdvisor::new(model());
        let (schemas, stats) = schema_stats();
        let rows = stats["w"].row_count as i64;
        let mut queries: Vec<Query> = (0..20)
            .map(|i| {
                Query::Update(UpdateQuery {
                    table: "w".into(),
                    sets: vec![(2, Value::BigInt(8_000_000 + i))],
                    filter: vec![ColRange::eq(0, Value::BigInt(rows - 1 - (i % (rows / 10))))],
                })
            })
            .collect();
        for _ in 0..60 {
            queries.push(Query::Aggregate(AggregateQuery::simple(
                "w",
                AggFunc::Sum,
                1,
            )));
        }
        let w = Workload::from_queries(queries);
        let rec = advisor
            .recommend_offline(&schemas, &stats, &w, true)
            .unwrap();
        assert_eq!(
            rec.layout.placement("w"),
            TablePlacement::Single(StoreKind::Column),
            "a partition that models slower must not be adopted"
        );
    }

    #[test]
    fn join_coupling_can_move_dimension() {
        // Two tables; the workload only joins them. With a punitive
        // cross-store join factor the advisor must co-locate.
        let mut m = model();
        m.join_factor = [[1.0, 10.0], [10.0, 1.0]];
        let advisor = StorageAdvisor::new(m);
        let fact = Arc::new(
            TableSchema::new(
                "fact",
                vec![
                    ColumnDef::new("id", ColumnType::BigInt),
                    ColumnDef::new("fk", ColumnType::BigInt),
                    ColumnDef::new("kf", ColumnType::Double),
                ],
                vec![0],
            )
            .unwrap(),
        );
        let dim = Arc::new(
            TableSchema::new(
                "dim",
                vec![
                    ColumnDef::new("dk", ColumnType::BigInt),
                    ColumnDef::new("g", ColumnType::Integer),
                ],
                vec![0],
            )
            .unwrap(),
        );
        let mut stats = BTreeMap::new();
        let mut fs = TableStats::empty(3);
        fs.row_count = 100_000;
        stats.insert("fact".into(), fs);
        let mut ds = TableStats::empty(2);
        ds.row_count = 100;
        stats.insert("dim".into(), ds);
        let mut q = AggregateQuery::simple("fact", AggFunc::Sum, 2);
        q.join = Some(hsd_query::JoinSpec {
            dim_table: "dim".into(),
            fact_fk: 1,
            dim_pk: 0,
            group_by_dim: Some(1),
        });
        let w = Workload::from_queries(vec![Query::Aggregate(q); 10]);
        let rec = advisor
            .recommend_offline(&[fact, dim], &stats, &w, false)
            .unwrap();
        let f = rec.layout.placement("fact");
        let d = rec.layout.placement("dim");
        assert_eq!(
            f, d,
            "punitive cross-store joins must co-locate: {f:?} vs {d:?}"
        );
        assert_eq!(
            f,
            TablePlacement::Single(StoreKind::Column),
            "OLAP-only workload"
        );
    }

    #[test]
    fn statements_cover_all_tables() {
        let advisor = StorageAdvisor::new(model());
        let (schemas, stats) = schema_stats();
        let rec = advisor
            .recommend_offline(&schemas, &stats, &workload(0.02), false)
            .unwrap();
        assert_eq!(rec.statements.len(), 1);
        assert!(rec.statements[0].contains("ALTER TABLE w MOVE TO"));
    }

    #[test]
    fn analyze_workload_counts_statically() {
        let (schemas, _) = schema_stats();
        let w = Workload::from_queries(vec![
            Query::Insert(InsertQuery {
                table: "w".into(),
                rows: vec![],
            }),
            Query::Aggregate(AggregateQuery::simple("w", AggFunc::Sum, 1)),
        ]);
        let stats = analyze_workload(&schemas, &w).unwrap();
        let t = stats.table("w").unwrap();
        assert_eq!(t.inserts, 1);
        assert_eq!(t.aggregations, 1);
    }

    #[test]
    fn maintenance_aware_placement_flips_write_heavy_table_to_row_store() {
        use hsd_query::UpdateQuery;
        use hsd_storage::ColRange;
        // Model where scans strongly favor the column store but the column
        // store pays for its delta upkeep: tails degrade scans steeply and
        // a merge costs a flat 40 ms.
        let mut m = model();
        m.column.f_tail = AdjustmentFn::Linear {
            slope: 50.0,
            intercept: 1.0,
        };
        m.column.merge_ms = AdjustmentFn::Constant(60.0);
        let (schemas, stats) = schema_stats();
        let rows = stats["w"].row_count as i64;
        // Write-heavy stream: 4000 fresh-value point updates against 10
        // full-table aggregations.
        let mut queries: Vec<Query> = (0..4000)
            .map(|i| {
                Query::Update(UpdateQuery {
                    table: "w".into(),
                    sets: vec![(2, Value::BigInt(7_000_000 + i))],
                    filter: vec![ColRange::eq(0, Value::BigInt(i % rows))],
                })
            })
            .collect();
        for _ in 0..10 {
            queries.push(Query::Aggregate(AggregateQuery::simple(
                "w",
                AggFunc::Sum,
                2,
            )));
        }
        let w = Workload::from_queries(queries);
        // Maintenance-blind: query cost alone still favors the column store
        // (the scans save far more than the updates cost extra).
        let blind = StorageAdvisor::maintenance_blind(m.clone());
        assert!(!blind.maintenance_aware);
        let rec_blind = blind
            .recommend_offline(&schemas, &stats, &w, false)
            .unwrap();
        assert_eq!(
            rec_blind.layout.placement("w"),
            TablePlacement::Single(StoreKind::Column),
            "query-cost-only comparison keeps the write-heavy table columnar"
        );
        // Maintenance-aware: the modeled merge amortization of 4000 tail
        // entries dominates the scan savings and flips the placement.
        let aware = StorageAdvisor::new(m);
        let rec_aware = aware
            .recommend_offline(&schemas, &stats, &w, false)
            .unwrap();
        assert_eq!(
            rec_aware.layout.placement("w"),
            TablePlacement::Single(StoreKind::Row),
            "delta upkeep must flip the write-heavy table to the row store"
        );
        // The reported per-table column cost now carries the upkeep.
        let blind_cs = rec_blind.tables[0].cost_column_ms;
        let aware_cs = rec_aware.tables[0].cost_column_ms;
        assert!(
            aware_cs > blind_cs,
            "column-side cost must include upkeep: {aware_cs} vs {blind_cs}"
        );
        assert_eq!(
            rec_blind.tables[0].cost_row_ms,
            rec_aware.tables[0].cost_row_ms
        );
        // And the argmin invariant still holds under the charged estimates.
        assert!(rec_aware.estimated_ms <= rec_aware.rs_only_ms.min(rec_aware.cs_only_ms) + 1e-9);
    }

    /// A budget the unconstrained layout already satisfies changes
    /// nothing: same layout, same estimate, footprint recorded.
    #[test]
    fn loose_budget_is_the_unconstrained_special_case() {
        let (schemas, stats) = schema_stats();
        let w = workload(0.3);
        let unconstrained = StorageAdvisor::new(model())
            .recommend_offline(&schemas, &stats, &w, false)
            .unwrap();
        assert!(unconstrained.footprint_bytes > 0.0);
        assert_eq!(unconstrained.budget_bytes, None);
        let budgeted = StorageAdvisor::new(model())
            .with_budget(unconstrained.footprint_bytes * 2.0)
            .recommend_offline(&schemas, &stats, &w, false)
            .unwrap();
        assert_eq!(unconstrained.layout, budgeted.layout);
        assert_eq!(unconstrained.estimated_ms, budgeted.estimated_ms);
        assert!(budgeted.budget_feasible);
    }

    /// A binding budget flips the row-store choice (big uncompressed
    /// footprint) to the compressed column store even though it models
    /// slower — and the recommendation reports the degradation honestly.
    #[test]
    fn binding_budget_trades_cost_for_footprint() {
        let (schemas, stats) = schema_stats();
        let w = workload(0.0); // pure OLTP: greedy wants the row store
        let unconstrained = StorageAdvisor::new(model())
            .recommend_offline(&schemas, &stats, &w, false)
            .unwrap();
        assert_eq!(
            unconstrained.layout.placement("w"),
            TablePlacement::Single(StoreKind::Row)
        );
        let budget = unconstrained.footprint_bytes * 0.5;
        let budgeted = StorageAdvisor::new(model())
            .with_budget(budget)
            .recommend_offline(&schemas, &stats, &w, false)
            .unwrap();
        assert_eq!(
            budgeted.layout.placement("w"),
            TablePlacement::Single(StoreKind::Column),
            "the only placement fitting half the row footprint is columnar"
        );
        assert!(budgeted.budget_feasible);
        assert!(
            budgeted.footprint_bytes <= budget,
            "footprint {} exceeds budget {budget}",
            budgeted.footprint_bytes
        );
        assert!(
            budgeted.estimated_ms >= unconstrained.estimated_ms,
            "a constrained optimum cannot beat the unconstrained one"
        );
    }

    /// A memory budget below even the compressed column store forces the
    /// knapsack onto the *disk-demoted* variant of the adopted split: the
    /// cold fragment's bytes leave the memory account for the disk one,
    /// the selection becomes feasible, and the recommendation reports the
    /// disk residency and emits the demotion statement.
    #[test]
    fn binding_budget_demotes_cold_fragment_to_disk() {
        let mut m = model();
        m.tier = crate::cost::TierModel::default_disk();
        let (schemas, stats) = schema_stats();
        let w = insert_scan_workload(&schemas[0], stats["w"].row_count, 160, 10);
        let unconstrained = StorageAdvisor::new(m.clone())
            .recommend_offline(&schemas, &stats, &w, true)
            .unwrap();
        let spec = match unconstrained.layout.placement("w") {
            TablePlacement::Partitioned(spec) => spec,
            other => panic!("expected partitioned placement, got {other:?}"),
        };
        assert_eq!(spec.cold_tier, hsd_catalog::Tier::Memory);
        assert_eq!(unconstrained.disk_bytes, 0.0);
        // Budget far below every memory-resident placement of "w".
        let ctx = build_ctx(&schemas, &stats);
        let col_fp = crate::budget::placement_footprint_bytes(
            &ctx.tables["w"],
            &TablePlacement::Single(StoreKind::Column),
        );
        let budgeted = StorageAdvisor::new(m)
            .with_budget(col_fp * 0.01)
            .recommend_offline(&schemas, &stats, &w, true)
            .unwrap();
        match budgeted.layout.placement("w") {
            TablePlacement::Partitioned(spec) => {
                assert_eq!(spec.cold_tier, hsd_catalog::Tier::Disk);
            }
            other => panic!("expected disk-demoted split, got {other:?}"),
        }
        assert!(budgeted.budget_feasible);
        assert!(budgeted.footprint_bytes <= col_fp * 0.01);
        assert!(budgeted.disk_bytes > 0.0, "disk residency reported");
        assert!(
            budgeted
                .statements
                .iter()
                .any(|s| s.contains("DEMOTE COLD PARTITION TO DISK")),
            "statements: {:?}",
            budgeted.statements
        );
    }

    /// An unsatisfiable budget still returns the smallest-footprint
    /// layout, flagged infeasible rather than panicking or lying.
    #[test]
    fn infeasible_budget_reports_itself() {
        let (schemas, stats) = schema_stats();
        let rec = StorageAdvisor::new(model())
            .with_budget(1.0)
            .recommend_offline(&schemas, &stats, &workload(0.0), false)
            .unwrap();
        assert!(!rec.budget_feasible);
        assert_eq!(
            rec.layout.placement("w"),
            TablePlacement::Single(StoreKind::Column),
            "least-infeasible answer is the smallest-footprint placement"
        );
    }

    #[test]
    fn greedy_matches_exact_on_small_instance() {
        let advisor = StorageAdvisor::new(model());
        let (schemas, stats) = schema_stats();
        let w = workload(0.05);
        let exact = advisor
            .recommend_offline(&schemas, &stats, &w, false)
            .unwrap();
        let mut greedy_advisor = StorageAdvisor::new(model());
        greedy_advisor.exact_search_limit = 0; // force greedy
        let greedy = greedy_advisor
            .recommend_offline(&schemas, &stats, &w, false)
            .unwrap();
        assert_eq!(exact.layout, greedy.layout);
    }
}
