//! Strategies: value generators used by the [`proptest!`](crate::proptest)
//! macro. No shrinking — generation only.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::{Arbitrary, TestRng};

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Mapped strategy (see [`Strategy::prop_map`]).
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Full-domain strategy returned by [`any`](crate::any).
pub struct AnyStrategy<T>(pub(crate) PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Uniform choice among boxed strategies (see [`prop_oneof!`](crate::prop_oneof)).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Build from the strategies to choose among.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.range_u64(0, self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.range_u64(0, span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                let v = if span == u64::MAX { rng.word() } else { rng.range_u64(0, span + 1) };
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4)
);

/// Strategy for `Vec`s with element strategy `elem` and a length drawn from
/// `len` (mirrors `proptest::collection::vec`).
pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { elem, len }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    elem: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = if self.len.start < self.len.end {
            rng.range_u64(self.len.start as u64, self.len.end as u64) as usize
        } else {
            self.len.start
        };
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}
