//! Physical layout of one table: single store, or hot/cold partitions with
//! an optional vertical split of the cold region.

use std::sync::Arc;

use hsd_catalog::{HorizontalSpec, PartitionSpec, TablePlacement, Tier, VerticalSpec};
use hsd_storage::{
    decode_segment, encode_segment, ColRange, RowSel, SegmentStore, SelVec, StoreKind, Table,
};
use hsd_types::{ColumnIdx, Error, Result, TableSchema, Value};

/// Which physical region of a table a delta merge targets.
///
/// Maintenance jobs are keyed by `(table, partition)`: a cold-fragment
/// merge scheduled while the table was partitioned and a later full-table
/// merge scheduled after a move back to a single store are *distinct* jobs,
/// so a worker queue can hold (and dedupe) them independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MergePartition {
    /// Every column-store region of the table (the only region a
    /// single-store column table has).
    Whole,
    /// The cold partition (or its column-store fragment) of a partitioned
    /// table — the only region of a hot/cold layout that carries a delta
    /// tail, since the hot partition is row-store resident.
    Cold,
}

/// Where a logical column lives inside a [`VerticalPair`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// In the row-store fragment, at this physical index.
    Row(usize),
    /// In the column-store fragment, at this physical index.
    Col(usize),
}

/// A vertically split table (or cold partition): a row-store fragment
/// holding the OLTP attributes and a column-store fragment holding the
/// analytical attributes. Both fragments carry the primary key, and rows are
/// positionally aligned (the engine never deletes or reorders), so
/// recombination is a positional stitch verified against the shared key.
#[derive(Debug, Clone)]
pub struct VerticalPair {
    row_frag: Table,
    col_frag: Table,
    /// Logical column -> fragment location. Primary-key columns resolve to
    /// the row fragment (cheapest point access).
    locate: Vec<Loc>,
}

impl VerticalPair {
    /// Build an empty pair for `schema` with the given vertical spec.
    pub fn new(schema: &Arc<TableSchema>, spec: &VerticalSpec) -> Result<Self> {
        let row_cols: Vec<ColumnIdx> = spec
            .row_cols
            .iter()
            .copied()
            .filter(|c| !schema.is_pk_column(*c))
            .collect();
        let col_cols: Vec<ColumnIdx> = (0..schema.arity())
            .filter(|c| !schema.is_pk_column(*c) && !row_cols.contains(c))
            .collect();
        let (row_schema, row_map) = schema.project("rs", &row_cols)?;
        let (col_schema, col_map) = schema.project("cs", &col_cols)?;
        let mut locate = vec![Loc::Row(0); schema.arity()];
        for (logical, slot) in locate.iter_mut().enumerate() {
            if let Some(pos) = row_map.iter().position(|&o| o == logical) {
                *slot = Loc::Row(pos);
            } else if let Some(pos) = col_map.iter().position(|&o| o == logical) {
                *slot = Loc::Col(pos);
            } else {
                return Err(Error::InvalidSchema(format!(
                    "column {logical} of {} not covered by vertical split",
                    schema.name
                )));
            }
        }
        Ok(VerticalPair {
            row_frag: Table::new(Arc::new(row_schema), StoreKind::Row),
            col_frag: Table::new(Arc::new(col_schema), StoreKind::Column),
            locate,
        })
    }

    /// Location of a logical column.
    pub fn loc(&self, col: ColumnIdx) -> Loc {
        self.locate[col]
    }

    /// Position of a logical column within the *column-store* fragment, if
    /// it exists there. Primary-key columns live in both fragments (locate
    /// points them at the row fragment for point access), so scans and
    /// joins can still read them columnar via this resolver.
    pub fn col_fragment_position(&self, logical: ColumnIdx) -> Option<usize> {
        match self.locate[logical] {
            Loc::Col(p) => Some(p),
            Loc::Row(_) => {
                let logical_pks = self.logical_pk_columns();
                let pk_pos = logical_pks.iter().position(|&l| l == logical)?;
                Some(self.col_frag.schema().primary_key[pk_pos])
            }
        }
    }

    /// The row-store fragment.
    pub fn row_fragment(&self) -> &Table {
        &self.row_frag
    }

    /// The column-store fragment.
    pub fn col_fragment(&self) -> &Table {
        &self.col_frag
    }

    /// Mutable access to the column-store fragment (maintenance only; the
    /// positional-alignment invariant forbids structural mutation).
    pub fn col_fragment_mut(&mut self) -> &mut Table {
        &mut self.col_frag
    }

    /// Number of (logical) rows.
    pub fn row_count(&self) -> usize {
        self.row_frag.row_count()
    }

    /// Insert a logical row (appends to both fragments).
    pub fn insert(&mut self, row: &[Value]) -> Result<u32> {
        let split = self.split_row(row);
        let idx = self.row_frag.insert(&split.0)?;
        // A failure here would desynchronize the fragments; the only
        // possible cause is a duplicate key, which the first insert already
        // rejected, so propagate any residual error loudly.
        let idx2 = self.col_frag.insert(&split.1)?;
        debug_assert_eq!(idx, idx2, "vertical fragments must stay aligned");
        Ok(idx)
    }

    fn split_row(&self, row: &[Value]) -> (Vec<Value>, Vec<Value>) {
        let row_arity = self.row_frag.schema().arity();
        let col_arity = self.col_frag.schema().arity();
        let mut r = vec![Value::Null; row_arity];
        let mut c = vec![Value::Null; col_arity];
        // PK columns appear in both fragments; non-key columns in exactly one.
        for (logical, value) in row.iter().enumerate() {
            match self.locate[logical] {
                Loc::Row(p) => r[p] = value.clone(),
                Loc::Col(p) => c[p] = value.clone(),
            }
        }
        // Fill the column fragment's PK slots (locate points PKs at the row
        // fragment; mirror them here).
        let logical_pks = self.logical_pk_columns();
        for (pk_pos, &frag_pos) in self.col_frag.schema().primary_key.iter().enumerate() {
            c[frag_pos] = row[logical_pks[pk_pos]].clone();
        }
        (r, c)
    }

    fn logical_pk_columns(&self) -> Vec<ColumnIdx> {
        // The row fragment's PK order equals the logical PK order by
        // construction of `TableSchema::project`.
        self.locate
            .iter()
            .enumerate()
            .filter_map(|(logical, loc)| match loc {
                Loc::Row(p) if self.row_frag.schema().is_pk_column(*p) => Some((*p, logical)),
                _ => None,
            })
            .collect::<std::collections::BTreeMap<_, _>>()
            .into_values()
            .collect()
    }

    /// Borrow a logical attribute.
    #[inline]
    pub fn value_at(&self, idx: u32, col: ColumnIdx) -> &Value {
        match self.locate[col] {
            Loc::Row(p) => self.row_frag.value_at(idx, p),
            Loc::Col(p) => self.col_frag.value_at(idx, p),
        }
    }

    /// Find a row by primary key (probes the row fragment's PK index).
    pub fn point_lookup(&self, key: &[Value]) -> Option<u32> {
        self.row_frag.point_lookup(key)
    }

    /// Logical filter: split the conjunction by fragment, evaluate each
    /// side, and intersect positionally.
    pub fn filter_rows(&self, ranges: &[ColRange]) -> Vec<u32> {
        if ranges.is_empty() {
            return (0..self.row_count() as u32).collect();
        }
        self.filter_selvec(ranges).to_row_ids()
    }

    /// Logical filter as a selection vector: each fragment evaluates its
    /// side of the conjunction (batched in the column fragment), and the
    /// positional intersection is a word-wise bitmap `AND` — rows are
    /// aligned across fragments, so no id-list merge is needed.
    pub fn filter_selvec(&self, ranges: &[ColRange]) -> SelVec {
        let mut row_ranges = Vec::new();
        let mut col_ranges = Vec::new();
        for r in ranges {
            match self.locate[r.column] {
                Loc::Row(p) => row_ranges.push(r.with_column(p)),
                Loc::Col(p) => col_ranges.push(r.with_column(p)),
            }
        }
        match (row_ranges.is_empty(), col_ranges.is_empty()) {
            (true, true) => SelVec::all(self.row_count()),
            (false, true) => self.row_frag.filter_selvec(&row_ranges),
            (true, false) => self.col_frag.filter_selvec(&col_ranges),
            (false, false) => {
                let mut sel = self.col_frag.filter_selvec(&col_ranges);
                if !sel.is_none_selected() {
                    sel.and_assign(&self.row_frag.filter_selvec(&row_ranges));
                }
                sel
            }
        }
    }

    /// Update logical rows; assignments are routed to their fragments.
    pub fn update_rows(&mut self, rows: &[u32], sets: &[(ColumnIdx, Value)]) -> Result<usize> {
        let mut row_sets = Vec::new();
        let mut col_sets = Vec::new();
        for (col, v) in sets {
            match self.locate[*col] {
                Loc::Row(p) => row_sets.push((p, v.clone())),
                Loc::Col(p) => col_sets.push((p, v.clone())),
            }
        }
        if !row_sets.is_empty() {
            self.row_frag.update_rows(rows, &row_sets)?;
        }
        if !col_sets.is_empty() {
            self.col_frag.update_rows(rows, &col_sets)?;
        }
        Ok(rows.len())
    }

    /// Visit numeric values of a logical column.
    pub fn for_each_numeric(&self, col: ColumnIdx, sel: RowSel<'_>, f: impl FnMut(f64)) {
        match self.locate[col] {
            Loc::Row(p) => self.row_frag.for_each_numeric(p, sel, f),
            Loc::Col(p) => self.col_frag.for_each_numeric(p, sel, f),
        }
    }

    /// Visit numeric values of a logical column for the rows selected by
    /// `sel` (`None` = all rows). Fragments are positionally aligned, so the
    /// selection applies to either fragment unchanged.
    pub fn for_each_numeric_sel(&self, col: ColumnIdx, sel: Option<&SelVec>, f: impl FnMut(f64)) {
        match self.locate[col] {
            Loc::Row(p) => self.row_frag.for_each_numeric_sel(p, sel, f),
            Loc::Col(p) => self.col_frag.for_each_numeric_sel(p, sel, f),
        }
    }

    /// Visit values of a logical column.
    pub fn for_each_value(&self, col: ColumnIdx, sel: RowSel<'_>, f: impl FnMut(&Value)) {
        match self.locate[col] {
            Loc::Row(p) => self.row_frag.for_each_value(p, sel, f),
            Loc::Col(p) => self.col_frag.for_each_value(p, sel, f),
        }
    }

    /// Materialize logical rows (stitching both fragments back together —
    /// "for queries addressing all the data of the table, the partitions
    /// have to be joined").
    ///
    /// Batched: output tuples are filled column-at-a-time, so columns in
    /// the column-store fragment go through the block-decoded gather path
    /// instead of per-cell dictionary probes.
    pub fn collect_rows(&self, rows: &[u32], cols: Option<&[ColumnIdx]>) -> Vec<Vec<Value>> {
        let all_cols: Vec<ColumnIdx>;
        let proj: &[ColumnIdx] = match cols {
            Some(c) => c,
            None => {
                all_cols = (0..self.locate.len()).collect();
                &all_cols
            }
        };
        let mut out: Vec<Vec<Value>> = rows
            .iter()
            .map(|_| Vec::with_capacity(proj.len()))
            .collect();
        for &c in proj {
            match self.locate[c] {
                Loc::Row(p) => {
                    for (i, &r) in rows.iter().enumerate() {
                        out[i].push(self.row_frag.value_at(r, p).clone());
                    }
                }
                Loc::Col(p) => match &self.col_frag {
                    Table::Column(ct) => {
                        ct.column(p)
                            .gather_values(rows, |i, v| out[i].push(v.clone()));
                    }
                    other => {
                        for (i, &r) in rows.iter().enumerate() {
                            out[i].push(other.value_at(r, p).clone());
                        }
                    }
                },
            }
        }
        out
    }

    /// Drain into logical rows.
    pub fn into_rows(self) -> Vec<Vec<Value>> {
        let n = self.row_count() as u32;
        (0..n)
            .map(|r| {
                (0..self.locate.len())
                    .map(|c| self.value_at(r, c).clone())
                    .collect()
            })
            .collect()
    }

    /// Verify the positional-alignment invariant: both fragments agree on
    /// every primary key. O(n); used by tests and debug assertions.
    pub fn check_alignment(&self) -> Result<()> {
        if self.row_frag.row_count() != self.col_frag.row_count() {
            return Err(Error::InvalidOperation(format!(
                "fragment row counts diverge: {} vs {}",
                self.row_frag.row_count(),
                self.col_frag.row_count()
            )));
        }
        let row_pk = self.row_frag.schema().primary_key.clone();
        let col_pk = self.col_frag.schema().primary_key.clone();
        for idx in 0..self.row_frag.row_count() as u32 {
            for (a, b) in row_pk.iter().zip(&col_pk) {
                if self.row_frag.value_at(idx, *a) != self.col_frag.value_at(idx, *b) {
                    return Err(Error::InvalidOperation(format!(
                        "fragments disagree on key of row {idx}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Approximate heap bytes of both fragments.
    pub fn memory_bytes(&self) -> usize {
        self.row_frag.memory_bytes() + self.col_frag.memory_bytes()
    }

    /// Run the delta merge on the column-store fragment.
    pub fn compact_column_fragment(&mut self) {
        if let Table::Column(ct) = &mut self.col_frag {
            ct.compact();
        }
    }

    /// Create a secondary index on a logical column that lives in the
    /// row-store fragment. Columns in the column-store fragment rely on the
    /// dictionary's implicit index and are a no-op.
    pub fn create_row_index(&mut self, logical: ColumnIdx) -> Result<()> {
        match self.locate[logical] {
            Loc::Row(p) => match &mut self.row_frag {
                Table::Row(rt) => rt.create_index(p),
                Table::Column(_) => Ok(()),
            },
            Loc::Col(_) => Ok(()),
        }
    }
}

/// A cold partition that has been demoted to disk: the column-store data
/// lives in an immutable [`hsd_storage::segment`] file and only this stub
/// stays resident. Queries load the segment on demand; writes promote it
/// back to memory first (write-through, see the executor's
/// `with_cold_loaded`).
///
/// The segment is a *derived cache* of WAL + checkpoint state: recovery
/// re-creates it from the replayed table rather than trusting the file, so
/// a corrupt segment is an availability problem at query time, never a
/// recovery-correctness problem.
#[derive(Debug, Clone)]
pub struct DiskFragment {
    /// Schema of the demoted fragment (the full table schema — vertical
    /// cold fragments are never demoted).
    pub schema: Arc<TableSchema>,
    /// Segment name within the engine's [`SegmentStore`].
    pub segment: String,
    /// Row count of the demoted fragment (kept resident so planning and
    /// `row_count` never touch disk).
    pub rows: usize,
    /// Encoded segment size in bytes (the disk-footprint the advisor's
    /// budget accounting charges).
    pub disk_bytes: u64,
    /// Merge epoch of the encoded table at demotion time, preserved across
    /// demote/promote cycles so maintenance bookkeeping stays monotonic.
    pub merge_epoch: u64,
}

impl DiskFragment {
    /// Load the fragment back into an in-memory column table.
    ///
    /// Fails with [`Error::Io`] if the segment is
    /// missing or damaged — callers surface that as an unavailable cold
    /// partition, not as data loss (recovery can always rebuild it).
    pub fn load(&self, store: &SegmentStore) -> Result<Table> {
        let bytes = store.get(&self.segment)?;
        let table = decode_segment(self.schema.clone(), &bytes)?;
        Ok(Table::Column(table))
    }
}

/// The cold region of a partitioned table.
#[derive(Debug, Clone)]
pub enum ColdPart {
    /// Unsplit cold partition (typically column store).
    Single(Table),
    /// Vertically split cold partition.
    Vertical(VerticalPair),
    /// Cold partition demoted to an on-disk column segment.
    DiskColumn(DiskFragment),
}

impl ColdPart {
    /// Number of rows.
    pub fn row_count(&self) -> usize {
        match self {
            ColdPart::Single(t) => t.row_count(),
            ColdPart::Vertical(p) => p.row_count(),
            ColdPart::DiskColumn(f) => f.rows,
        }
    }

    /// Insert a logical row. Disk-resident cold partitions are immutable;
    /// the executor's write-through path loads them back to memory before
    /// any mutation reaches this method.
    pub fn insert(&mut self, row: &[Value]) -> Result<u32> {
        match self {
            ColdPart::Single(t) => t.insert(row),
            ColdPart::Vertical(p) => p.insert(row),
            ColdPart::DiskColumn(f) => Err(Error::InvalidOperation(format!(
                "insert into disk-resident cold partition of {} without write-through load",
                f.schema.name
            ))),
        }
    }
}

/// Physical data of one logical table.
///
/// The partitioned variant is much larger than the single-store one; the
/// enum lives behind a map entry per table, so the size gap is irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum TableData {
    /// Entire table in one store.
    Single(Table),
    /// Hot/cold layout: optional row-store hot partition receiving all
    /// inserts, and a cold partition (optionally vertically split).
    Partitioned {
        /// Logical schema of the table.
        schema: Arc<TableSchema>,
        /// The partition annotation that produced this layout.
        spec: PartitionSpec,
        /// Hot partition (present iff the spec has a horizontal split).
        hot: Option<Table>,
        /// Cold partition.
        cold: ColdPart,
        /// Whether every hot row still satisfies the split predicate
        /// (`split_column >= split_value`). Inserts of "old" rows clear
        /// this, disabling hot-partition pruning; the cold partition always
        /// satisfies the complement by construction.
        hot_pure: bool,
    },
}

impl TableData {
    /// Build an empty `TableData` for a placement.
    pub fn new(schema: Arc<TableSchema>, placement: &TablePlacement) -> Result<Self> {
        match placement {
            TablePlacement::Single(store) => Ok(TableData::Single(Table::new(schema, *store))),
            TablePlacement::Partitioned(spec) => {
                if spec.cold_tier == Tier::Disk && spec.vertical.is_some() {
                    return Err(Error::InvalidOperation(format!(
                        "table {}: a vertically split cold partition cannot be disk-resident",
                        schema.name
                    )));
                }
                let hot = spec
                    .horizontal
                    .as_ref()
                    .map(|_| Table::new(schema.clone(), StoreKind::Row));
                // A disk cold tier starts as an (empty) in-memory cold
                // partition; the mover demotes it to a segment once data
                // exists, and WAL replay re-applies that demotion.
                let cold = match &spec.vertical {
                    None => ColdPart::Single(Table::new(schema.clone(), StoreKind::Column)),
                    Some(v) => ColdPart::Vertical(VerticalPair::new(&schema, v)?),
                };
                Ok(TableData::Partitioned {
                    schema,
                    spec: spec.clone(),
                    hot,
                    cold,
                    hot_pure: true,
                })
            }
        }
    }

    /// Logical schema.
    pub fn schema(&self) -> &Arc<TableSchema> {
        match self {
            TableData::Single(t) => t.schema(),
            TableData::Partitioned { schema, .. } => schema,
        }
    }

    /// Total logical rows.
    pub fn row_count(&self) -> usize {
        match self {
            TableData::Single(t) => t.row_count(),
            TableData::Partitioned { hot, cold, .. } => {
                hot.as_ref().map_or(0, Table::row_count) + cold.row_count()
            }
        }
    }

    /// Insert a row. With a horizontal split, *all* inserts go to the hot
    /// row-store partition ("newly arriving tuples are stored in the
    /// row-store partition, which allows for faster inserts").
    pub fn insert(&mut self, row: &[Value]) -> Result<u32> {
        match self {
            TableData::Single(t) => t.insert(row),
            TableData::Partitioned {
                hot: Some(h),
                spec,
                hot_pure,
                ..
            } => {
                if let Some(hs) = &spec.horizontal {
                    if row[hs.split_column] < hs.split_value {
                        *hot_pure = false;
                    }
                }
                h.insert(row)
            }
            TableData::Partitioned { cold, .. } => cold.insert(row),
        }
    }

    /// Whether hot-partition pruning is allowed (every hot row satisfies the
    /// split predicate).
    pub fn hot_is_pure(&self) -> bool {
        match self {
            TableData::Single(_) => true,
            TableData::Partitioned { hot_pure, .. } => *hot_pure,
        }
    }

    /// The horizontal split spec, if any.
    pub fn horizontal_spec(&self) -> Option<&HorizontalSpec> {
        match self {
            TableData::Partitioned { spec, .. } => spec.horizontal.as_ref(),
            TableData::Single(_) => None,
        }
    }

    /// Collect every logical row (cold first, then hot) without draining —
    /// the checkpoint writer's snapshot path. A disk-resident cold
    /// partition is decoded from its segment (the checkpoint embeds the
    /// data itself; the segment file stays a rebuildable cache).
    pub fn snapshot_rows(&self, store: &SegmentStore) -> Result<Vec<Vec<Value>>> {
        fn table_rows(t: &Table, out: &mut Vec<Vec<Value>>) {
            let cols = t.schema().columns.len();
            out.extend(
                (0..t.row_count() as u32)
                    .map(|r| (0..cols).map(|c| t.value_at(r, c).clone()).collect()),
            );
        }
        let mut rows = Vec::with_capacity(self.row_count());
        match self {
            TableData::Single(t) => table_rows(t, &mut rows),
            TableData::Partitioned { hot, cold, .. } => {
                match cold {
                    ColdPart::Single(t) => table_rows(t, &mut rows),
                    ColdPart::Vertical(p) => {
                        let all: Vec<u32> = (0..p.row_count() as u32).collect();
                        rows.extend(p.collect_rows(&all, None));
                    }
                    ColdPart::DiskColumn(f) => table_rows(&f.load(store)?, &mut rows),
                }
                if let Some(h) = hot {
                    table_rows(h, &mut rows);
                }
            }
        }
        Ok(rows)
    }

    /// Collect every logical row (cold first, then hot), draining `self`.
    pub fn into_rows(self) -> Vec<Vec<Value>> {
        match self {
            TableData::Single(t) => t.into_rows(),
            TableData::Partitioned { hot, cold, .. } => {
                let mut rows = match cold {
                    ColdPart::Single(t) => t.into_rows(),
                    ColdPart::Vertical(p) => p.into_rows(),
                    // The mover promotes disk-resident cold partitions back
                    // to memory before any layout change drains the table.
                    ColdPart::DiskColumn(f) => panic!(
                        "draining {} with a disk-resident cold partition (promote first)",
                        f.schema.name
                    ),
                };
                if let Some(h) = hot {
                    rows.extend(h.into_rows());
                }
                rows
            }
        }
    }

    /// Approximate heap bytes across partitions.
    pub fn memory_bytes(&self) -> usize {
        match self {
            TableData::Single(t) => t.memory_bytes(),
            TableData::Partitioned { hot, cold, .. } => {
                let h = hot.as_ref().map_or(0, Table::memory_bytes);
                let c = match cold {
                    ColdPart::Single(t) => t.memory_bytes(),
                    ColdPart::Vertical(p) => p.memory_bytes(),
                    // Only the stub is resident; the data lives on disk.
                    ColdPart::DiskColumn(_) => std::mem::size_of::<DiskFragment>(),
                };
                h + c
            }
        }
    }

    /// Bytes of on-disk segment data owned by this table (0 unless the cold
    /// partition is disk-resident). The disk-footprint counterpart of
    /// [`TableData::memory_bytes`].
    pub fn disk_bytes(&self) -> u64 {
        match self {
            TableData::Partitioned {
                cold: ColdPart::DiskColumn(f),
                ..
            } => f.disk_bytes,
            _ => 0,
        }
    }

    /// Accumulated dictionary-tail entries across every column-store
    /// partition (the delta size the merge policy and the advisor's
    /// maintenance scheduling reason about).
    pub fn delta_tail(&self) -> usize {
        match self {
            TableData::Single(t) => t.delta_tail(),
            TableData::Partitioned { cold, .. } => match cold {
                ColdPart::Single(t) => t.delta_tail(),
                ColdPart::Vertical(p) => p.col_fragment().delta_tail(),
                // Segments are compacted at demotion and immutable after.
                ColdPart::DiskColumn(_) => 0,
            },
        }
    }

    /// Run the full delta merge on every column-store partition; returns
    /// how many tail entries were folded in.
    pub fn compact_deltas(&mut self) -> usize {
        match self {
            TableData::Single(t) => t.compact_delta(),
            TableData::Partitioned { cold, .. } => match cold {
                ColdPart::Single(t) => t.compact_delta(),
                ColdPart::Vertical(p) => p.col_fragment_mut().compact_delta(),
                ColdPart::DiskColumn(_) => 0,
            },
        }
    }

    /// Advance the incremental delta merge on the table's column-store
    /// region by at most `budget_rows` remapped code-vector entries
    /// (resumable; see [`hsd_storage::ColumnTable::compact_step`]).
    pub fn compact_deltas_step(&mut self, budget_rows: usize) -> hsd_storage::MergeProgress {
        match self {
            TableData::Single(t) => t.compact_delta_step(budget_rows),
            TableData::Partitioned { cold, .. } => match cold {
                ColdPart::Single(t) => t.compact_delta_step(budget_rows),
                ColdPart::Vertical(p) => p.col_fragment_mut().compact_delta_step(budget_rows),
                ColdPart::DiskColumn(_) => hsd_storage::MergeProgress {
                    rows_remapped: 0,
                    entries_folded: 0,
                    done: true,
                },
            },
        }
    }

    /// Run the full delta merge on the region `partition` names: the cold
    /// partition's column-store fragment for [`MergePartition::Cold`], every
    /// column-store region for [`MergePartition::Whole`]. A `Cold` job whose
    /// table has since moved back to a single store falls through to the
    /// whole-table path (the safe superset of the scheduled work).
    pub fn compact_deltas_partition(&mut self, partition: MergePartition) -> usize {
        match (partition, &mut *self) {
            (MergePartition::Cold, TableData::Partitioned { cold, .. }) => match cold {
                ColdPart::Single(t) => t.compact_delta(),
                ColdPart::Vertical(p) => p.col_fragment_mut().compact_delta(),
                ColdPart::DiskColumn(_) => 0,
            },
            _ => self.compact_deltas(),
        }
    }

    /// One bounded slice of the incremental merge, routed to the region
    /// `partition` names (see [`TableData::compact_deltas_partition`] for
    /// the routing rules).
    pub fn compact_deltas_step_partition(
        &mut self,
        partition: MergePartition,
        budget_rows: usize,
    ) -> hsd_storage::MergeProgress {
        match (partition, &mut *self) {
            (MergePartition::Cold, TableData::Partitioned { cold, .. }) => match cold {
                ColdPart::Single(t) => t.compact_delta_step(budget_rows),
                ColdPart::Vertical(p) => p.col_fragment_mut().compact_delta_step(budget_rows),
                ColdPart::DiskColumn(_) => hsd_storage::MergeProgress {
                    rows_remapped: 0,
                    entries_folded: 0,
                    done: true,
                },
            },
            _ => self.compact_deltas_step(budget_rows),
        }
    }

    /// Compute merge plans for the table's column-store region through
    /// `&self` — the concurrent-read phase of a two-phase merge slice.
    /// Every `partition` routes to the same region the step/compact
    /// entry points touch (the cold fragment for hot/cold layouts; the
    /// hot partition is row-store resident and never merged).
    pub fn plan_compact_partition(
        &self,
        _partition: MergePartition,
    ) -> Vec<(usize, hsd_storage::MergePlan)> {
        match self {
            TableData::Single(t) => t.plan_delta_merge(),
            TableData::Partitioned { cold, .. } => match cold {
                ColdPart::Single(t) => t.plan_delta_merge(),
                ColdPart::Vertical(p) => p.col_fragment().plan_delta_merge(),
                ColdPart::DiskColumn(_) => Vec::new(),
            },
        }
    }

    /// Adopt previously computed merge plans on the column-store region
    /// (call under the exclusive latch); stale plans are discarded. Returns
    /// how many installed.
    pub fn install_compact_plans(
        &mut self,
        _partition: MergePartition,
        plans: Vec<(usize, hsd_storage::MergePlan)>,
    ) -> usize {
        match self {
            TableData::Single(t) => t.install_delta_plans(plans),
            TableData::Partitioned { cold, .. } => match cold {
                ColdPart::Single(t) => t.install_delta_plans(plans),
                ColdPart::Vertical(p) => p.col_fragment_mut().install_delta_plans(plans),
                // Demotion between plan and install makes the plans stale.
                ColdPart::DiskColumn(_) => 0,
            },
        }
    }

    /// Rows resident in the region a delta merge actually remaps: the whole
    /// table for single-store layouts, the cold partition for hot/cold
    /// layouts (the hot partition is row-store resident and never merged).
    /// This is the row count merge-cost models should use — pricing a
    /// cold-fragment merge at the full table's row count over-charges
    /// partitioned placements.
    pub fn merge_region_rows(&self) -> usize {
        match self {
            TableData::Single(t) => t.row_count(),
            TableData::Partitioned { cold, .. } => cold.row_count(),
        }
    }

    /// Whether an incremental delta merge is in flight on the table's
    /// column-store region.
    pub fn merge_in_progress(&self) -> bool {
        match self {
            TableData::Single(t) => t.merge_in_progress(),
            TableData::Partitioned { cold, .. } => match cold {
                ColdPart::Single(t) => t.merge_in_progress(),
                ColdPart::Vertical(p) => p.col_fragment().merge_in_progress(),
                ColdPart::DiskColumn(_) => false,
            },
        }
    }

    /// The table's merge epoch (0 for row-store layouts): increases at
    /// every completed dictionary handoff of the column-store region.
    pub fn merge_epoch(&self) -> u64 {
        match self {
            TableData::Single(t) => t.merge_epoch(),
            TableData::Partitioned { cold, .. } => match cold {
                ColdPart::Single(t) => t.merge_epoch(),
                ColdPart::Vertical(p) => p.col_fragment().merge_epoch(),
                ColdPart::DiskColumn(f) => f.merge_epoch,
            },
        }
    }

    /// Run `f` with a disk-resident cold partition temporarily loaded back
    /// into memory, then re-encode and republish the segment afterwards
    /// (**write-through**). Tables whose cold partition is memory-resident
    /// just run `f` — the helper is transparent for them.
    ///
    /// The segment is republished even when `f` fails partway: the engine
    /// has no statement rollback, the WAL records the applied prefix, and
    /// the segment must reflect the same state replay would reproduce.
    /// This load → mutate → rewrite cycle is exactly the upkeep cost the
    /// advisor's tier model charges writes against disk-resident data.
    pub fn with_cold_loaded<R>(
        &mut self,
        store: &SegmentStore,
        f: impl FnOnce(&mut TableData) -> Result<R>,
    ) -> Result<R> {
        let frag = match self {
            TableData::Partitioned {
                cold: ColdPart::DiskColumn(fr),
                ..
            } => fr.clone(),
            _ => return f(self),
        };
        let loaded = frag.load(store)?;
        if let TableData::Partitioned { cold, .. } = self {
            *cold = ColdPart::Single(loaded);
        }
        let result = f(self);
        if let TableData::Partitioned { cold, .. } = self {
            if let ColdPart::Single(Table::Column(ct)) = cold {
                let bytes = encode_segment(ct);
                let stub = DiskFragment {
                    schema: frag.schema.clone(),
                    segment: frag.segment.clone(),
                    rows: ct.row_count(),
                    disk_bytes: bytes.len() as u64,
                    merge_epoch: ct.merge_epoch(),
                };
                store.put(&frag.segment, bytes)?;
                *cold = ColdPart::DiskColumn(stub);
            }
        }
        result
    }

    /// Abandon any in-flight incremental delta merge on the column-store
    /// region; returns how many columns had one.
    pub fn cancel_merge(&mut self) -> usize {
        match self {
            TableData::Single(t) => t.cancel_delta_merge(),
            TableData::Partitioned { cold, .. } => match cold {
                ColdPart::Single(t) => t.cancel_delta_merge(),
                ColdPart::Vertical(p) => p.col_fragment_mut().cancel_delta_merge(),
                ColdPart::DiskColumn(_) => 0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsd_types::{ColumnDef, ColumnType};

    fn schema() -> Arc<TableSchema> {
        Arc::new(
            TableSchema::new(
                "orders",
                vec![
                    ColumnDef::new("id", ColumnType::BigInt),
                    ColumnDef::new("amount", ColumnType::Double),
                    ColumnDef::new("qty", ColumnType::Integer),
                    ColumnDef::new("status", ColumnType::Integer),
                ],
                vec![0],
            )
            .unwrap(),
        )
    }

    fn pair() -> VerticalPair {
        // status -> row fragment; amount, qty -> column fragment
        let mut p = VerticalPair::new(&schema(), &VerticalSpec { row_cols: vec![3] }).unwrap();
        for i in 0..20 {
            p.insert(&[
                Value::BigInt(i),
                Value::Double(i as f64 * 2.0),
                Value::Int((i % 4) as i32),
                Value::Int((i % 3) as i32),
            ])
            .unwrap();
        }
        p
    }

    #[test]
    fn pair_locates_columns() {
        let p = pair();
        assert_eq!(p.loc(0), Loc::Row(0)); // pk reads from row fragment
        assert_eq!(p.loc(3), Loc::Row(1));
        assert_eq!(p.loc(1), Loc::Col(1));
        assert_eq!(p.loc(2), Loc::Col(2));
        assert_eq!(p.row_fragment().store_kind(), StoreKind::Row);
        assert_eq!(p.col_fragment().store_kind(), StoreKind::Column);
    }

    #[test]
    fn pair_round_trips_values() {
        let p = pair();
        assert_eq!(p.row_count(), 20);
        assert_eq!(p.value_at(5, 0), &Value::BigInt(5));
        assert_eq!(p.value_at(5, 1), &Value::Double(10.0));
        assert_eq!(p.value_at(5, 3), &Value::Int(2));
        p.check_alignment().unwrap();
    }

    #[test]
    fn pair_filters_across_fragments() {
        let p = pair();
        // status == 0 (row fragment) AND qty == 0 (column fragment)
        let hits = p.filter_rows(&[
            ColRange::eq(3, Value::Int(0)),
            ColRange::eq(2, Value::Int(0)),
        ]);
        let expect: Vec<u32> = (0..20u32).filter(|i| i % 3 == 0 && i % 4 == 0).collect();
        assert_eq!(hits, expect);
    }

    #[test]
    fn pair_filter_single_sides() {
        let p = pair();
        let row_side = p.filter_rows(&[ColRange::eq(3, Value::Int(1))]);
        let expect: Vec<u32> = (0..20u32).filter(|i| i % 3 == 1).collect();
        assert_eq!(row_side, expect);
        let col_side = p.filter_rows(&[ColRange::eq(2, Value::Int(1))]);
        let expect: Vec<u32> = (0..20u32).filter(|i| i % 4 == 1).collect();
        assert_eq!(col_side, expect);
        assert_eq!(p.filter_rows(&[]).len(), 20);
    }

    #[test]
    fn pair_updates_route_to_fragments() {
        let mut p = pair();
        p.update_rows(&[2, 4], &[(3, Value::Int(7)), (1, Value::Double(99.0))])
            .unwrap();
        assert_eq!(p.value_at(2, 3), &Value::Int(7));
        assert_eq!(p.value_at(4, 1), &Value::Double(99.0));
        p.check_alignment().unwrap();
    }

    #[test]
    fn pair_point_lookup_and_collect() {
        let p = pair();
        let idx = p.point_lookup(&[Value::BigInt(9)]).unwrap();
        assert_eq!(idx, 9);
        let rows = p.collect_rows(&[idx], None);
        assert_eq!(
            rows[0],
            vec![
                Value::BigInt(9),
                Value::Double(18.0),
                Value::Int(1),
                Value::Int(0)
            ]
        );
        let projected = p.collect_rows(&[idx], Some(&[3, 0]));
        assert_eq!(projected[0], vec![Value::Int(0), Value::BigInt(9)]);
    }

    #[test]
    fn pair_into_rows_preserves_logical_order() {
        let p = pair();
        let rows = p.into_rows();
        assert_eq!(rows.len(), 20);
        assert_eq!(rows[7][0], Value::BigInt(7));
        assert_eq!(rows[7][2], Value::Int(3));
    }

    #[test]
    fn table_data_partitioned_roundtrip() {
        let spec = PartitionSpec {
            horizontal: Some(HorizontalSpec {
                split_column: 0,
                split_value: Value::BigInt(100),
            }),
            vertical: Some(VerticalSpec { row_cols: vec![3] }),
            ..Default::default()
        };
        let mut td = TableData::new(schema(), &TablePlacement::Partitioned(spec)).unwrap();
        // cold rows loaded directly into the cold partition would need the
        // mover; inserts always land in the hot partition:
        for i in 0..10 {
            td.insert(&[
                Value::BigInt(i),
                Value::Double(1.0),
                Value::Int(0),
                Value::Int(0),
            ])
            .unwrap();
        }
        assert_eq!(td.row_count(), 10);
        match &td {
            TableData::Partitioned {
                hot: Some(h), cold, ..
            } => {
                assert_eq!(h.row_count(), 10);
                assert_eq!(cold.row_count(), 0);
            }
            other => panic!("unexpected layout {other:?}"),
        }
        let rows = td.into_rows();
        assert_eq!(rows.len(), 10);
    }

    #[test]
    fn table_data_single() {
        let td = TableData::new(schema(), &TablePlacement::Single(StoreKind::Column)).unwrap();
        assert_eq!(td.row_count(), 0);
        assert!(td.horizontal_spec().is_none());
        assert_eq!(td.schema().name, "orders");
    }

    #[test]
    fn filter_selvec_matches_filter_rows() {
        let p = pair();
        let ranges = [
            ColRange::eq(3, Value::Int(0)),
            ColRange::eq(2, Value::Int(0)),
        ];
        let ids = p.filter_rows(&ranges);
        let sel = p.filter_selvec(&ranges);
        assert_eq!(sel.to_row_ids(), ids);
        assert_eq!(sel.len(), p.row_count());
    }
}
