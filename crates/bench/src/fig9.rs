//! Shared harness for Figures 9(a)/9(b): the benefit of **vertical
//! partitioning** under growing OLAP fractions.
//!
//! The workload's OLTP part selects and updates only the status attributes;
//! the advisor's vertical split therefore places exactly those in the
//! row-store fragment and everything analytical in the column-store
//! fragment. Each setting is run on a row-store table, a column-store
//! table, and the vertically partitioned table.

use hsd_catalog::{PartitionSpec, TablePlacement, VerticalSpec};
use hsd_engine::{HybridDatabase, WorkloadRunner};
use hsd_query::{MixedWorkloadConfig, TableSpec, Workload, WorkloadGenerator};
use hsd_storage::StoreKind;
use hsd_types::Result;

use crate::{fmt_s, print_series};

/// One OLAP-fraction sweep of a vertical-partitioning setting.
pub fn run_setting(title: &str, spec: &TableSpec) -> Result<()> {
    let runner = WorkloadRunner::new();
    let queries = 500; // paper count; only the data scales
    let fractions = [0.0, 0.00625, 0.0125, 0.01875, 0.025];
    let vertical = TablePlacement::Partitioned(PartitionSpec {
        horizontal: None,
        vertical: Some(VerticalSpec {
            row_cols: spec.st_cols(),
        }),
        ..Default::default()
    });
    let mut rows_out = Vec::new();
    for frac in fractions {
        let cfg = MixedWorkloadConfig {
            queries,
            olap_fraction: frac,
            oltp_insert_share: 0.0,
            oltp_update_share: 0.5,
            update_status_only: true,
            whole_tuple_update_prob: 0.0,
            seed: 0xF19 + (frac * 1e5) as u64,
            ..Default::default()
        };
        let workload = WorkloadGenerator::single_table(spec, &cfg);
        let rs = run_once(
            spec,
            &TablePlacement::Single(StoreKind::Row),
            &workload,
            &runner,
        )?;
        let cs = run_once(
            spec,
            &TablePlacement::Single(StoreKind::Column),
            &workload,
            &runner,
        )?;
        let vp = run_once(spec, &vertical, &workload, &runner)?;
        rows_out.push(vec![
            format!("{:.3}%", frac * 100.0),
            fmt_s(rs),
            fmt_s(cs),
            fmt_s(vp),
        ]);
    }
    print_series(
        title,
        &["OLAP frac", "RS only (s)", "CS only (s)", "vertical (s)"],
        &rows_out,
    );
    Ok(())
}

fn run_once(
    spec: &TableSpec,
    placement: &TablePlacement,
    workload: &Workload,
    runner: &WorkloadRunner,
) -> Result<f64> {
    let db = HybridDatabase::new();
    db.create_table(spec.schema()?, placement.clone())?;
    db.bulk_load(&spec.name, spec.rows())?;
    // The selection attributes carry row-store secondary indexes (the
    // paper's `f_selectivity` "if an index is available" case); on the
    // column store the dictionary is the implicit index (no-op).
    for col in spec.st_cols() {
        db.create_index(&spec.name, col)?;
    }
    let report = runner.run(&db, workload)?;
    Ok(report.total.as_secs_f64())
}
