//! Produce (or schema-check) the reference `cost_model.json` artifact.
//!
//! The committed artifact pins the calibrated constants of one known
//! machine so later PRs can diff the cost model's shape after engine
//! changes (the ROADMAP's drift-tracking item); it also feeds `bench_merge`
//! a ready model so CI's smoke run skips recalibration.
//!
//! Run with `cargo run --release -p hsd-bench --bin calibrate_model`
//! (`-- --full` for the full-size calibration; default is the quick
//! configuration so regeneration stays cheap).
//!
//! `-- --check` does not calibrate: it compares the committed artifact's
//! key paths against the current [`hsd_core::CostModel`] schema and exits
//! non-zero on any difference. Back-compat defaults make *loading* an old
//! artifact legal, which is exactly why the committed reference needs this
//! loud check — a field added to the struct but absent from the artifact
//! would otherwise ride along as a silent default forever.

use hsd_core::{calibrate, CalibrationConfig, CostModel};

fn check() -> ! {
    let artifact = match std::fs::read_to_string("cost_model.json") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("[calibrate_model] cannot read cost_model.json: {e}");
            std::process::exit(1);
        }
    };
    let diff = match CostModel::schema_diff(&artifact) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("[calibrate_model] cost_model.json does not parse: {e:?}");
            std::process::exit(1);
        }
    };
    for path in &diff.missing {
        eprintln!("[calibrate_model] MISSING from artifact (would load as silent default): {path}");
    }
    for path in &diff.unknown {
        eprintln!("[calibrate_model] UNKNOWN to current schema (stale artifact field): {path}");
    }
    if diff.is_clean() {
        eprintln!("[calibrate_model] cost_model.json matches the current schema");
        std::process::exit(0);
    }
    eprintln!(
        "[calibrate_model] schema drift: {} missing, {} unknown — regenerate with \
         `cargo run --release -p hsd-bench --bin calibrate_model` (or patch neutral values)",
        diff.missing.len(),
        diff.unknown.len()
    );
    std::process::exit(1);
}

fn main() {
    if std::env::args().any(|a| a == "--check") {
        check();
    }
    let full = std::env::args().any(|a| a == "--full");
    let cfg = if full {
        CalibrationConfig::default()
    } else {
        CalibrationConfig::quick()
    };
    eprintln!(
        "[calibrate_model] calibrating ({} rows base, {} repeats) ...",
        cfg.base_rows, cfg.repeats
    );
    let model = calibrate(&cfg).expect("calibration");
    std::fs::write("cost_model.json", model.to_json() + "\n").expect("write cost_model.json");
    eprintln!("[calibrate_model] wrote cost_model.json");
}
