//! Property-based tests for the storage layer: the two stores must be
//! observationally equivalent, and compression must never change results.

use std::sync::Arc;

use proptest::prelude::*;

use hsd_storage::{
    BitPackedVec, ColRange, ColumnTable, Dictionary, RowSel, RowTable, SelVec, StoreKind, Table,
};
use hsd_types::{ColumnDef, ColumnType, TableSchema, Value};

fn schema() -> Arc<TableSchema> {
    Arc::new(
        TableSchema::new(
            "p",
            vec![
                ColumnDef::new("id", ColumnType::Integer),
                ColumnDef::new("a", ColumnType::Integer),
                ColumnDef::new("b", ColumnType::Double),
            ],
            vec![0],
        )
        .unwrap(),
    )
}

/// Rows with a unique id, small-domain `a` (compresses well), and doubles.
fn rows_strategy() -> impl Strategy<Value = Vec<(i32, f64)>> {
    prop::collection::vec((0i32..20, -100.0f64..100.0), 0..120)
}

fn build_both(rows: &[(i32, f64)]) -> (RowTable, ColumnTable) {
    let mut rt = RowTable::new(schema());
    let mut ct = ColumnTable::new(schema());
    for (i, &(a, b)) in rows.iter().enumerate() {
        let row = [Value::Int(i as i32), Value::Int(a), Value::Double(b)];
        rt.insert(&row).unwrap();
        ct.insert(&row).unwrap();
    }
    (rt, ct)
}

proptest! {
    #[test]
    fn bitpack_round_trip(vals in prop::collection::vec(0u32..1_000_000, 0..300)) {
        let v: BitPackedVec = vals.iter().copied().collect();
        prop_assert_eq!(v.len(), vals.len());
        for (i, &x) in vals.iter().enumerate() {
            prop_assert_eq!(v.get(i), x);
        }
    }

    #[test]
    fn bitpack_set_preserves_neighbours(
        vals in prop::collection::vec(0u32..10_000, 2..150),
        idx_frac in 0.0f64..1.0,
        new_val in 0u32..2_000_000,
    ) {
        let mut v: BitPackedVec = vals.iter().copied().collect();
        let idx = ((vals.len() - 1) as f64 * idx_frac) as usize;
        v.set(idx, new_val);
        for (i, &x) in vals.iter().enumerate() {
            let expect = if i == idx { new_val } else { x };
            prop_assert_eq!(v.get(i), expect);
        }
    }

    /// Word-level block decode must agree with scalar `get` for arbitrary
    /// widths and lengths, at arbitrary (also unaligned) starts.
    #[test]
    fn block_decode_matches_scalar_get(
        domain_bits in 0u32..32,
        vals_seed in prop::collection::vec(0u32..u32::MAX, 1..400),
        start_frac in 0.0f64..1.0,
        len_frac in 0.0f64..1.0,
    ) {
        let domain_mask = if domain_bits == 0 { 0 } else { u32::MAX >> (32 - domain_bits) };
        let vals: Vec<u32> = vals_seed.iter().map(|&v| v & domain_mask).collect();
        let v: BitPackedVec = vals.iter().copied().collect();
        // Whole-vector decode.
        let mut buf = vec![0u32; vals.len()];
        v.decode_into(0, &mut buf);
        for (i, &x) in vals.iter().enumerate() {
            prop_assert_eq!(x, v.get(i));
            prop_assert_eq!(buf[i], x);
        }
        // Arbitrary sub-run decode.
        let start = ((vals.len() - 1) as f64 * start_frac) as usize;
        let len = (((vals.len() - start) as f64) * len_frac) as usize;
        let mut run = vec![0u32; len];
        v.decode_into(start, &mut run);
        prop_assert_eq!(&run[..], &vals[start..start + len]);
    }

    /// The fused word-parallel interval kernel must agree with a scalar
    /// re-check on every code.
    #[test]
    fn match_interval_matches_scalar(
        domain in 1u32..100_000,
        vals_seed in prop::collection::vec(0u32..u32::MAX, 64..300),
        lo_frac in 0.0f64..1.2,
        span_frac in 0.0f64..1.2,
    ) {
        let vals: Vec<u32> = vals_seed.iter().map(|&v| v % domain).collect();
        let v: BitPackedVec = vals.iter().copied().collect();
        let lo = (domain as f64 * lo_frac) as u32;
        let hi = lo.saturating_add((domain as f64 * span_frac) as u32);
        let mut out = vec![0u64; vals.len().div_ceil(64)];
        v.match_interval_into(0, vals.len(), lo, hi, &mut out);
        for (i, &x) in vals.iter().enumerate() {
            let got = out[i / 64] >> (i % 64) & 1 == 1;
            prop_assert_eq!(got, x >= lo && x < hi, "value {} vs [{}, {})", x, lo, hi);
        }
    }

    #[test]
    fn dictionary_rebuild_preserves_decoding(ints in prop::collection::vec(-50i32..50, 1..200)) {
        let mut d = Dictionary::new();
        let codes: Vec<u32> = ints.iter().map(|&i| d.intern(&Value::Int(i))).collect();
        let decoded_before: Vec<Value> = codes.iter().map(|&c| d.decode(c).clone()).collect();
        let remap = d.rebuild();
        let codes_after: Vec<u32> = match remap {
            None => codes,
            Some(map) => codes.iter().map(|&c| map[c as usize]).collect(),
        };
        let decoded_after: Vec<Value> = codes_after.iter().map(|&c| d.decode(c).clone()).collect();
        prop_assert_eq!(decoded_before, decoded_after);
        prop_assert_eq!(d.tail_len(), 0);
        // after rebuild the dictionary is sorted: codes are order-preserving
        let values: Vec<Value> = d.values().cloned().collect();
        let mut sorted = values.clone();
        sorted.sort();
        prop_assert_eq!(values, sorted);
    }

    #[test]
    fn stores_agree_on_range_filters(
        rows in rows_strategy(),
        lo in -10i32..25,
        span in 0i32..15,
    ) {
        let (rt, ct) = build_both(&rows);
        let range = ColRange::between(1, Value::Int(lo), Value::Int(lo + span));
        prop_assert_eq!(rt.filter_rows(std::slice::from_ref(&range)), ct.filter_rows(&[range]));
    }

    /// The batched pipeline (`filter_rows` via SelVec) must agree with the
    /// element-at-a-time scalar path on both stores, with and without
    /// dictionary-tail codes (updates push new values into the tail).
    #[test]
    fn batched_filter_matches_scalar_path(
        rows in rows_strategy(),
        lo in -10i32..25,
        span in 0i32..15,
        a_eq in 0i32..20,
        upd_target in 0i32..20,
    ) {
        let (rt, mut ct) = build_both(&rows);
        let ranges = [
            ColRange::between(1, Value::Int(lo), Value::Int(lo + span)),
            ColRange::ge(2, Value::Double(-50.0)),
            ColRange::eq(1, Value::Int(a_eq)),
        ];
        for k in 1..=ranges.len() {
            let conj = &ranges[..k];
            prop_assert_eq!(ct.filter_rows(conj), ct.filter_rows_scalar(conj));
            // SelVec form agrees with the id list and with the row store.
            let sel = ct.filter_selvec(conj);
            prop_assert_eq!(sel.to_row_ids(), ct.filter_rows(conj));
            prop_assert_eq!(rt.filter_selvec(conj).to_row_ids(), rt.filter_rows(conj));
        }
        // Push values into the dictionary tail (no compact) and re-check.
        let hits = ct.filter_rows_scalar(&[ColRange::eq(1, Value::Int(upd_target))]);
        if !hits.is_empty() {
            ct.update_rows(&hits, &[(1, Value::Int(999))]).unwrap();
            let r = [ColRange::ge(1, Value::Int(500))];
            prop_assert_eq!(ct.filter_rows(&r), ct.filter_rows_scalar(&r));
        }
    }

    /// SelVec conjunction semantics: AND of single-predicate selections
    /// equals the conjunction selection.
    #[test]
    fn selvec_and_matches_conjunction(
        rows in rows_strategy(),
        lo in -10i32..25,
        a_eq in 0i32..20,
    ) {
        let (_, ct) = build_both(&rows);
        let r1 = ColRange::ge(1, Value::Int(lo));
        let r2 = ColRange::eq(1, Value::Int(a_eq));
        let mut a = ct.filter_selvec(std::slice::from_ref(&r1));
        let b = ct.filter_selvec(std::slice::from_ref(&r2));
        a.and_assign(&b);
        let both = ct.filter_selvec(&[r1, r2]);
        prop_assert_eq!(a.to_row_ids(), both.to_row_ids());
        let all = SelVec::all(ct.row_count());
        prop_assert_eq!(all.count(), ct.row_count());
    }

    #[test]
    fn stores_agree_on_conjunctions(
        rows in rows_strategy(),
        a_eq in 0i32..20,
        b_lo in -100.0f64..100.0,
    ) {
        let (rt, ct) = build_both(&rows);
        let ranges = [
            ColRange::eq(1, Value::Int(a_eq)),
            ColRange::ge(2, Value::Double(b_lo)),
        ];
        prop_assert_eq!(rt.filter_rows(&ranges), ct.filter_rows(&ranges));
    }

    #[test]
    fn stores_agree_after_updates(
        rows in rows_strategy(),
        target in 0i32..20,
        new_a in 100i32..200,
    ) {
        let (mut rt, mut ct) = build_both(&rows);
        let hits = rt.filter_rows(&[ColRange::eq(1, Value::Int(target))]);
        rt.update_rows(&hits, &[(1, Value::Int(new_a))]).unwrap();
        ct.update_rows(&hits, &[(1, Value::Int(new_a))]).unwrap();
        let r = ColRange::eq(1, Value::Int(new_a));
        prop_assert_eq!(rt.filter_rows(std::slice::from_ref(&r)), ct.filter_rows(std::slice::from_ref(&r)));
        // compaction must not change results
        ct.compact();
        prop_assert_eq!(rt.filter_rows(std::slice::from_ref(&r)), ct.filter_rows(&[r]));
    }

    #[test]
    fn numeric_aggregation_matches_across_stores(rows in rows_strategy()) {
        let (rt, ct) = build_both(&rows);
        let mut sum_r = 0.0;
        let mut sum_c = 0.0;
        rt.for_each_numeric(2, RowSel::All, |v| sum_r += v);
        ct.for_each_numeric(2, RowSel::All, |v| sum_c += v);
        prop_assert!((sum_r - sum_c).abs() < 1e-9);
    }

    #[test]
    fn secondary_index_never_changes_filter_results(
        rows in rows_strategy(),
        lo in -10i32..25,
        span in 0i32..15,
    ) {
        let (mut rt, _) = build_both(&rows);
        let range = ColRange::between(1, Value::Int(lo), Value::Int(lo + span));
        let without = rt.filter_rows(std::slice::from_ref(&range));
        rt.create_index(1).unwrap();
        let with = rt.filter_rows(&[range]);
        prop_assert_eq!(without, with);
    }

    #[test]
    fn store_migration_round_trips(rows in rows_strategy()) {
        let (rt, _) = build_both(&rows);
        let original: Vec<Vec<Value>> = rt.collect_rows(RowSel::All, None);
        let as_col = Table::from_rows(schema(), StoreKind::Column, original.clone()).unwrap();
        let back = Table::from_rows(schema(), StoreKind::Row, as_col.into_rows()).unwrap();
        prop_assert_eq!(back.collect_rows(RowSel::All, None), original);
    }
}
