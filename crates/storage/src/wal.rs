//! Write-ahead-log substrate: checksummed frame codec, append backends,
//! fsync-batched writer, fault-injection shim, and the recovery scanner.
//!
//! This module is deliberately *semantics-free*: a frame carries an opaque
//! payload plus a 32-bit `table_tag` routing hint. The engine layer
//! (`hsd-engine`'s durability module) decides what payloads mean and how to
//! replay them; this layer owns the byte format, the checksums, and the
//! torn-tail/corruption classification that makes recovery safe.
//!
//! # Frame format
//!
//! Every record is one frame: a 16-byte header followed by the payload.
//!
//! ```text
//! offset  size  field
//! 0       4     payload length        (u32, little endian)
//! 4       4     payload CRC-32        (IEEE, over the payload bytes)
//! 8       4     table tag             (routing hint; 0 = global record)
//! 12      4     header CRC-32         (over header bytes 0..12)
//! 16      len   payload
//! ```
//!
//! The header carries its *own* checksum so a scanner can distinguish "the
//! frame boundary itself is garbage" (torn tail — stop and truncate) from
//! "the boundary is sound but the payload is damaged" (interior corruption —
//! skip the record, quarantine the tag, keep scanning). The `table_tag`
//! travels in the separately-checksummed header precisely so interior
//! corruption can still be *attributed* to a table even though the payload
//! is unreadable.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Size of the fixed frame header in bytes.
pub const HEADER_LEN: usize = 16;

/// Upper bound on a single payload. A length field that passes the header
/// CRC but exceeds this is treated as corruption rather than an allocation
/// request — a belt-and-suspenders guard against CRC collisions on garbage.
pub const MAX_PAYLOAD_LEN: usize = 1 << 30;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320)

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes` — the checksum used by both frame header and
/// payload, and by callers deriving stable 32-bit tags from names.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Frame codec

/// Encode one frame (header + payload) ready for appending.
pub fn encode_frame(table_tag: u32, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(&table_tag.to_le_bytes());
    let header_crc = crc32(&buf[..12]);
    buf.extend_from_slice(&header_crc.to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

/// One structurally valid frame with a payload that passed its checksum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Byte offset of the frame header in the log.
    pub offset: u64,
    /// Routing tag from the header (0 = global record).
    pub table_tag: u32,
    /// The verified payload.
    pub payload: Vec<u8>,
}

/// A frame whose header was sound but whose payload failed its checksum —
/// interior corruption, attributable via the header's tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptFrame {
    /// Byte offset of the frame header in the log.
    pub offset: u64,
    /// Routing tag from the (separately checksummed) header.
    pub table_tag: u32,
}

/// Result of scanning a log image: the valid frames, the corrupt interior
/// frames, and where the structurally sound prefix ends.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanReport {
    /// Frames whose header and payload both verified, in log order.
    pub frames: Vec<Frame>,
    /// Interior frames with a sound header but a damaged payload.
    pub corrupt: Vec<CorruptFrame>,
    /// End of the last structurally sound frame: the offset appends should
    /// resume from (a torn tail past this point is truncated).
    pub recovered_len: u64,
    /// Total bytes examined.
    pub scanned_len: u64,
    /// Offset of a torn/garbage tail, when one was found. Everything at and
    /// past this offset is not a frame and must be discarded.
    pub torn_tail: Option<u64>,
}

/// Scan a log image into frames.
///
/// Classification rules:
/// * truncated or checksum-failing **header**, oversized length, or payload
///   extending past the image → *torn tail*: scanning stops and
///   [`ScanReport::recovered_len`] marks the truncation point;
/// * sound header, checksum-failing **payload** → *interior corruption*: the
///   frame is reported in [`ScanReport::corrupt`] and scanning continues
///   (the frame's slot stays in the log — later frames remain valid).
pub fn scan_frames(bytes: &[u8]) -> ScanReport {
    let mut report = ScanReport {
        scanned_len: bytes.len() as u64,
        ..ScanReport::default()
    };
    let mut off = 0usize;
    while off < bytes.len() {
        let rest = &bytes[off..];
        if rest.len() < HEADER_LEN {
            report.torn_tail = Some(off as u64);
            break;
        }
        let stored_header_crc = u32::from_le_bytes(rest[12..16].try_into().unwrap());
        if crc32(&rest[..12]) != stored_header_crc {
            report.torn_tail = Some(off as u64);
            break;
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        let payload_crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        let table_tag = u32::from_le_bytes(rest[8..12].try_into().unwrap());
        if len > MAX_PAYLOAD_LEN || rest.len() < HEADER_LEN + len {
            report.torn_tail = Some(off as u64);
            break;
        }
        let payload = &rest[HEADER_LEN..HEADER_LEN + len];
        if crc32(payload) == payload_crc {
            report.frames.push(Frame {
                offset: off as u64,
                table_tag,
                payload: payload.to_vec(),
            });
        } else {
            report.corrupt.push(CorruptFrame {
                offset: off as u64,
                table_tag,
            });
        }
        off += HEADER_LEN + len;
        report.recovered_len = off as u64;
    }
    report
}

// ---------------------------------------------------------------------------
// Append backends

/// An append-only byte sink the WAL writes through. Implementations may
/// short-write (return `Ok(n)` with `n < buf.len()`) and may fail with
/// transient [`io::ErrorKind::Interrupted`] errors; the [`WalWriter`]
/// retries both with bounded backoff.
pub trait WalBackend: Send + fmt::Debug {
    /// Append up to `buf.len()` bytes, returning how many were written.
    fn append(&mut self, buf: &[u8]) -> io::Result<usize>;
    /// Flush appended bytes to durable storage.
    fn sync(&mut self) -> io::Result<()>;
    /// Bytes appended so far (the current end of the log).
    fn len(&self) -> u64;
    /// Whether nothing has been appended.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// A detachable device-sync half, if the backend can sync concurrently
    /// with appends (a file can: fsync on a duplicated descriptor flushes
    /// the same inode the append path keeps writing). `None` means syncs
    /// must serialize with appends through `&mut self`. Group commit uses
    /// the handle to fsync *outside* the append lock, so one sync covers a
    /// whole batch of concurrently appended records.
    fn sync_handle(&self) -> Option<Box<dyn WalSyncHandle>> {
        None
    }
}

/// Device-sync half of a [`WalBackend`], detached via
/// [`WalBackend::sync_handle`]. A successful [`WalSyncHandle::sync`] makes
/// every byte appended *before the call started* durable; bytes appended
/// concurrently may or may not be covered.
pub trait WalSyncHandle: Send + fmt::Debug {
    /// Flush the backend's appended bytes to durable storage.
    fn sync(&mut self) -> io::Result<()>;
}

/// Real-file backend: appends to a [`File`], syncing with `sync_data`.
#[derive(Debug)]
pub struct FileBackend {
    file: File,
    len: u64,
}

impl FileBackend {
    /// Open (creating if missing) `path` for appending.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        Self::at_end(file, len)
    }

    /// Open `path`, truncate it to `keep_len` bytes (discarding a torn
    /// tail), and position for appending. Used by recovery.
    pub fn open_truncated(path: impl AsRef<Path>, keep_len: u64) -> io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        if file.metadata()?.len() != keep_len {
            file.set_len(keep_len)?;
            file.sync_data()?;
        }
        Self::at_end(file, keep_len)
    }

    fn at_end(mut file: File, len: u64) -> io::Result<Self> {
        file.seek(SeekFrom::Start(len))?;
        Ok(FileBackend { file, len })
    }
}

impl WalBackend for FileBackend {
    fn append(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.file.write(buf)?;
        self.len += n as u64;
        Ok(n)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn len(&self) -> u64 {
        self.len
    }

    fn sync_handle(&self) -> Option<Box<dyn WalSyncHandle>> {
        let file = self.file.try_clone().ok()?;
        Some(Box::new(FileSyncHandle { file }))
    }
}

/// `sync_data` on a duplicated descriptor of a [`FileBackend`]'s file.
#[derive(Debug)]
struct FileSyncHandle {
    file: File,
}

impl WalSyncHandle for FileSyncHandle {
    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }
}

/// In-memory backend over shared bytes, so a test harness can snapshot the
/// log image at arbitrary points ("what was on disk at the crash") while a
/// writer keeps appending through the same handle.
#[derive(Debug, Clone, Default)]
pub struct MemBackend {
    bytes: Arc<Mutex<Vec<u8>>>,
}

impl MemBackend {
    /// Fresh empty backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// A second handle onto the same bytes (clone is equivalent; this name
    /// documents the intent at call sites).
    pub fn share(&self) -> Self {
        self.clone()
    }

    /// Copy of the current log image.
    pub fn snapshot(&self) -> Vec<u8> {
        self.bytes.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }
}

impl WalBackend for MemBackend {
    fn append(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.bytes
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn len(&self) -> u64 {
        self.bytes.lock().unwrap_or_else(|p| p.into_inner()).len() as u64
    }

    fn sync_handle(&self) -> Option<Box<dyn WalSyncHandle>> {
        // Memory is "durable" the moment it is appended.
        Some(Box::new(NoopSyncHandle))
    }
}

#[derive(Debug)]
struct NoopSyncHandle;

impl WalSyncHandle for NoopSyncHandle {
    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Fault plan for [`FaultFile`]: which I/O pathologies to inject.
///
/// All faults default to off; a default plan is a transparent pass-through.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Simulated media death: bytes past this absolute offset are dropped
    /// and every later append fails. A boundary in the middle of a frame
    /// produces exactly the torn tail a real crash leaves behind.
    pub crash_after_bytes: Option<u64>,
    /// Flip the lowest bit of the byte written at this absolute offset —
    /// silent corruption that checksums must catch.
    pub bit_flip_at: Option<u64>,
    /// Fail this many appends with [`io::ErrorKind::Interrupted`] before
    /// letting writes through (transient `EINTR`-style faults).
    pub transient_failures: u32,
    /// Cap every append at this many bytes (persistent short writes, so
    /// callers must loop).
    pub short_write_cap: Option<usize>,
}

/// Fault-injecting wrapper around any [`WalBackend`] (see [`FaultPlan`]).
#[derive(Debug)]
pub struct FaultFile {
    inner: Box<dyn WalBackend>,
    plan: FaultPlan,
    transient_left: u32,
    /// Appends rejected with an injected transient error so far.
    transient_injected: u32,
}

impl FaultFile {
    /// Wrap `inner` with the given fault plan.
    pub fn new(inner: Box<dyn WalBackend>, plan: FaultPlan) -> Self {
        let transient_left = plan.transient_failures;
        FaultFile {
            inner,
            plan,
            transient_left,
            transient_injected: 0,
        }
    }

    /// How many transient failures have been injected so far.
    pub fn transient_injected(&self) -> u32 {
        self.transient_injected
    }
}

impl WalBackend for FaultFile {
    fn append(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.transient_left > 0 {
            self.transient_left -= 1;
            self.transient_injected += 1;
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "injected transient fault",
            ));
        }
        let pos = self.inner.len();
        let mut allowed = buf.len();
        if let Some(crash) = self.plan.crash_after_bytes {
            if pos >= crash {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "injected crash: log device is gone",
                ));
            }
            allowed = allowed.min((crash - pos) as usize);
        }
        if let Some(cap) = self.plan.short_write_cap {
            allowed = allowed.min(cap.max(1));
        }
        let mut chunk = buf[..allowed].to_vec();
        if let Some(flip) = self.plan.bit_flip_at {
            if flip >= pos && flip < pos + allowed as u64 {
                chunk[(flip - pos) as usize] ^= 1;
            }
        }
        // Write the (possibly corrupted, possibly truncated) chunk fully
        // into the inner backend; partiality toward the caller is the fault
        // being modeled, not the inner backend's.
        let mut off = 0;
        while off < chunk.len() {
            let n = self.inner.append(&chunk[off..])?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "inner backend refused bytes",
                ));
            }
            off += n;
        }
        Ok(allowed)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.inner.sync()
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }
}

// ---------------------------------------------------------------------------
// Writer

/// When the writer syncs the backend — the fsync batching policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Sync after every appended record (maximum durability, slowest).
    Always,
    /// Group commit: sync once every `n` appended records. Between syncs,
    /// committed records are in the OS page cache — a crash may lose up to
    /// `n - 1` of the latest records, never corrupt earlier ones.
    EveryN(usize),
    /// Sync only when [`WalWriter::sync`] is called explicitly.
    Manual,
}

/// Bounded retry/backoff for transient append failures.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// How many [`io::ErrorKind::Interrupted`] failures to absorb per
    /// record before giving up.
    pub max_retries: u32,
    /// Sleep between retries (use [`Duration::ZERO`] in tests).
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 8,
            backoff: Duration::from_micros(50),
        }
    }
}

/// Lifetime counters of a [`WalWriter`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended.
    pub records: u64,
    /// Total frame bytes appended (headers + payloads).
    pub frame_bytes: u64,
    /// Payload bytes appended (excluding frame headers).
    pub payload_bytes: u64,
    /// Backend syncs issued.
    pub syncs: u64,
    /// Transient append failures absorbed by retry.
    pub retries: u64,
}

/// Frame-appending WAL writer: encodes records, retries transient faults
/// with bounded backoff, and batches fsyncs per [`SyncPolicy`].
#[derive(Debug)]
pub struct WalWriter {
    backend: Box<dyn WalBackend>,
    sync: SyncPolicy,
    retry: RetryPolicy,
    unsynced: usize,
    stats: WalStats,
}

impl WalWriter {
    /// Writer over `backend` with the given sync policy and default retry.
    pub fn new(backend: Box<dyn WalBackend>, sync: SyncPolicy) -> Self {
        Self::with_retry(backend, sync, RetryPolicy::default())
    }

    /// Writer with an explicit retry policy.
    pub fn with_retry(backend: Box<dyn WalBackend>, sync: SyncPolicy, retry: RetryPolicy) -> Self {
        WalWriter {
            backend,
            sync,
            retry,
            unsynced: 0,
            stats: WalStats::default(),
        }
    }

    /// Append one record, returning the log length after the append. The
    /// record is *committed* (replayable) once this returns `Ok`; it is
    /// *durable* once the next sync per [`SyncPolicy`] lands.
    pub fn append(&mut self, table_tag: u32, payload: &[u8]) -> io::Result<u64> {
        let len = self.append_unsynced(table_tag, payload)?;
        match self.sync {
            SyncPolicy::Always => self.sync()?,
            SyncPolicy::EveryN(n) => {
                if self.unsynced >= n.max(1) {
                    self.sync()?;
                }
            }
            SyncPolicy::Manual => {}
        }
        Ok(len)
    }

    /// Append one record *without* applying the sync policy: the record is
    /// committed but its durability is the caller's responsibility. This is
    /// the building block of cross-thread group commit — one later
    /// [`WalWriter::sync`] covers every record appended before it, so
    /// concurrent writers coalesce their fsyncs instead of paying one each.
    pub fn append_unsynced(&mut self, table_tag: u32, payload: &[u8]) -> io::Result<u64> {
        let frame = encode_frame(table_tag, payload);
        let mut off = 0usize;
        let mut retries = 0u32;
        while off < frame.len() {
            match self.backend.append(&frame[off..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "wal backend accepted no bytes",
                    ));
                }
                Ok(n) => off += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    if retries >= self.retry.max_retries {
                        return Err(e);
                    }
                    retries += 1;
                    self.stats.retries += 1;
                    if !self.retry.backoff.is_zero() {
                        std::thread::sleep(self.retry.backoff);
                    }
                }
                Err(e) => return Err(e),
            }
        }
        self.stats.records += 1;
        self.stats.frame_bytes += frame.len() as u64;
        self.stats.payload_bytes += payload.len() as u64;
        self.unsynced += 1;
        Ok(self.backend.len())
    }

    /// The writer's configured sync policy.
    pub fn sync_policy(&self) -> SyncPolicy {
        self.sync
    }

    /// Detachable device-sync handle, when the backend supports syncing
    /// concurrently with appends (see [`WalBackend::sync_handle`]).
    pub fn sync_handle(&self) -> Option<Box<dyn WalSyncHandle>> {
        self.backend.sync_handle()
    }

    /// Record that an external [`WalSyncHandle::sync`] completed: count it
    /// and reset the unsynced-record batch (the handle's sync covered every
    /// record appended before it started; treating later concurrent appends
    /// as covered only affects [`SyncPolicy::EveryN`] batch accounting,
    /// and group commit is used with [`SyncPolicy::Always`]).
    pub fn note_external_sync(&mut self) {
        self.stats.syncs += 1;
        self.unsynced = 0;
    }

    /// Sync the backend now (flushes the current fsync batch).
    pub fn sync(&mut self) -> io::Result<()> {
        self.backend.sync()?;
        self.stats.syncs += 1;
        self.unsynced = 0;
        Ok(())
    }

    /// Current log length in bytes.
    pub fn len(&self) -> u64 {
        self.backend.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.backend.is_empty()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &WalStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_round_trip() {
        let mut log = Vec::new();
        log.extend_from_slice(&encode_frame(7, b"hello"));
        log.extend_from_slice(&encode_frame(0, b""));
        log.extend_from_slice(&encode_frame(9, b"world!"));
        let report = scan_frames(&log);
        assert_eq!(report.frames.len(), 3);
        assert!(report.corrupt.is_empty());
        assert_eq!(report.torn_tail, None);
        assert_eq!(report.recovered_len, log.len() as u64);
        assert_eq!(report.frames[0].table_tag, 7);
        assert_eq!(report.frames[0].payload, b"hello");
        assert_eq!(report.frames[1].payload, b"");
        assert_eq!(report.frames[2].payload, b"world!");
    }

    #[test]
    fn torn_tail_is_detected_at_every_cut() {
        let mut log = Vec::new();
        log.extend_from_slice(&encode_frame(1, b"first record"));
        let keep = log.len();
        log.extend_from_slice(&encode_frame(2, b"second record"));
        for cut in keep + 1..log.len() {
            let report = scan_frames(&log[..cut]);
            assert_eq!(report.frames.len(), 1, "cut at {cut}");
            assert_eq!(report.recovered_len, keep as u64, "cut at {cut}");
            assert_eq!(report.torn_tail, Some(keep as u64), "cut at {cut}");
        }
    }

    #[test]
    fn interior_payload_corruption_is_attributed_and_skipped() {
        let mut log = Vec::new();
        log.extend_from_slice(&encode_frame(1, b"aaaa"));
        let second = log.len();
        log.extend_from_slice(&encode_frame(42, b"bbbb"));
        log.extend_from_slice(&encode_frame(3, b"cccc"));
        // Flip a payload byte of the middle frame.
        log[second + HEADER_LEN] ^= 0xFF;
        let report = scan_frames(&log);
        assert_eq!(report.frames.len(), 2);
        assert_eq!(report.corrupt.len(), 1);
        assert_eq!(report.corrupt[0].table_tag, 42);
        assert_eq!(report.corrupt[0].offset, second as u64);
        assert_eq!(report.torn_tail, None);
        assert_eq!(report.recovered_len, log.len() as u64);
        // Later frames still decode.
        assert_eq!(report.frames[1].payload, b"cccc");
    }

    #[test]
    fn interior_header_corruption_truncates() {
        let mut log = Vec::new();
        log.extend_from_slice(&encode_frame(1, b"aaaa"));
        let second = log.len();
        log.extend_from_slice(&encode_frame(2, b"bbbb"));
        log[second + 2] ^= 0xFF; // damage the length field
        let report = scan_frames(&log);
        assert_eq!(report.frames.len(), 1);
        assert_eq!(report.torn_tail, Some(second as u64));
        assert_eq!(report.recovered_len, second as u64);
    }

    #[test]
    fn writer_batches_syncs() {
        let mem = MemBackend::new();
        let mut w = WalWriter::new(Box::new(mem.share()), SyncPolicy::EveryN(3));
        for i in 0..7u8 {
            w.append(1, &[i]).unwrap();
        }
        assert_eq!(w.stats().records, 7);
        assert_eq!(w.stats().syncs, 2, "7 records under every-3 batching");
        w.sync().unwrap();
        assert_eq!(w.stats().syncs, 3);
        let report = scan_frames(&mem.snapshot());
        assert_eq!(report.frames.len(), 7);
    }

    #[test]
    fn writer_retries_transient_faults() {
        let mem = MemBackend::new();
        let faulty = FaultFile::new(
            Box::new(mem.share()),
            FaultPlan {
                transient_failures: 3,
                short_write_cap: Some(5),
                ..FaultPlan::default()
            },
        );
        let mut w = WalWriter::with_retry(
            Box::new(faulty),
            SyncPolicy::Always,
            RetryPolicy {
                max_retries: 4,
                backoff: Duration::ZERO,
            },
        );
        w.append(1, b"a payload that takes several short writes")
            .unwrap();
        assert_eq!(w.stats().retries, 3);
        let report = scan_frames(&mem.snapshot());
        assert_eq!(report.frames.len(), 1);
    }

    #[test]
    fn writer_gives_up_after_bounded_retries() {
        let faulty = FaultFile::new(
            Box::new(MemBackend::new()),
            FaultPlan {
                transient_failures: 10,
                ..FaultPlan::default()
            },
        );
        let mut w = WalWriter::with_retry(
            Box::new(faulty),
            SyncPolicy::Manual,
            RetryPolicy {
                max_retries: 2,
                backoff: Duration::ZERO,
            },
        );
        let err = w.append(1, b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
    }

    #[test]
    fn crash_fault_leaves_a_torn_tail() {
        let mem = MemBackend::new();
        let mut w = WalWriter::new(Box::new(mem.share()), SyncPolicy::Manual);
        w.append(1, b"committed before the crash").unwrap();
        let committed = w.len();
        let faulty = FaultFile::new(
            Box::new(mem.share()),
            FaultPlan {
                crash_after_bytes: Some(committed + 9),
                ..FaultPlan::default()
            },
        );
        let mut w = WalWriter::new(Box::new(faulty), SyncPolicy::Manual);
        assert!(w.append(1, b"lost in the crash").is_err());
        let report = scan_frames(&mem.snapshot());
        assert_eq!(report.frames.len(), 1, "only the pre-crash record scans");
        assert_eq!(report.torn_tail, Some(committed));
        assert_eq!(report.recovered_len, committed);
    }

    #[test]
    fn bit_flip_fault_corrupts_exactly_one_record() {
        let mem = MemBackend::new();
        let mut w = WalWriter::new(Box::new(mem.share()), SyncPolicy::Manual);
        w.append(1, b"clean").unwrap();
        let start = w.len();
        let faulty = FaultFile::new(
            Box::new(mem.share()),
            FaultPlan {
                bit_flip_at: Some(start + HEADER_LEN as u64 + 2),
                ..FaultPlan::default()
            },
        );
        let mut w = WalWriter::new(Box::new(faulty), SyncPolicy::Manual);
        w.append(2, b"damaged").unwrap();
        w.append(3, b"clean again").unwrap();
        let report = scan_frames(&mem.snapshot());
        assert_eq!(report.frames.len(), 2);
        assert_eq!(report.corrupt.len(), 1);
        assert_eq!(report.corrupt[0].table_tag, 2);
    }

    #[test]
    fn file_backend_round_trip_and_truncation() {
        let dir = std::env::temp_dir().join(format!("hsd_wal_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.wal");
        let _ = std::fs::remove_file(&path);
        let mut w = WalWriter::new(
            Box::new(FileBackend::open(&path).unwrap()),
            SyncPolicy::Always,
        );
        w.append(1, b"one").unwrap();
        let keep = w.len();
        w.append(2, b"two").unwrap();
        drop(w);
        // Simulate a torn tail by chopping the file mid-frame.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..keep as usize + 5]).unwrap();
        let report = scan_frames(&std::fs::read(&path).unwrap());
        assert_eq!(report.frames.len(), 1);
        assert_eq!(report.torn_tail, Some(keep));
        // Recovery-style reopen: truncate the tail, append, rescan.
        let backend = FileBackend::open_truncated(&path, report.recovered_len).unwrap();
        let mut w = WalWriter::new(Box::new(backend), SyncPolicy::Always);
        w.append(3, b"three").unwrap();
        drop(w);
        let report = scan_frames(&std::fs::read(&path).unwrap());
        assert_eq!(report.frames.len(), 2);
        assert_eq!(report.frames[1].payload, b"three");
        let _ = std::fs::remove_file(&path);
    }
}
