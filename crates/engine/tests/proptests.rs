//! Property tests for the execution engine: every storage layout must be
//! observationally equivalent under randomized queries and mutations.

use proptest::prelude::*;
use std::sync::Arc;

use hsd_catalog::{HorizontalSpec, PartitionSpec, TablePlacement, VerticalSpec};
use hsd_engine::{mover, HybridDatabase, QueryOutput};
use hsd_query::{AggFunc, Aggregate, AggregateQuery, InsertQuery, Query, SelectQuery, UpdateQuery};
use hsd_storage::{ColRange, StoreKind};
use hsd_types::{ColumnDef, ColumnType, TableSchema, Value};

const ROWS: i64 = 160;

fn schema() -> TableSchema {
    TableSchema::new(
        "t",
        vec![
            ColumnDef::new("id", ColumnType::BigInt),
            ColumnDef::new("kf", ColumnType::Double),
            ColumnDef::new("grp", ColumnType::Integer),
            ColumnDef::new("st", ColumnType::Integer),
        ],
        vec![0],
    )
    .unwrap()
}

fn db_with(placement: &TablePlacement) -> HybridDatabase {
    let db = HybridDatabase::new();
    db.create_single(schema(), StoreKind::Row).unwrap();
    db.bulk_load(
        "t",
        (0..ROWS).map(|i| {
            vec![
                Value::BigInt(i),
                Value::Double((i % 13) as f64 / 2.0),
                Value::Int((i % 5) as i32),
                Value::Int((i % 3) as i32),
            ]
        }),
    )
    .unwrap();
    mover::move_table(&db, "t", placement).unwrap();
    db
}

fn placements() -> Vec<TablePlacement> {
    vec![
        TablePlacement::Single(StoreKind::Row),
        TablePlacement::Single(StoreKind::Column),
        TablePlacement::Partitioned(PartitionSpec {
            horizontal: Some(HorizontalSpec {
                split_column: 0,
                split_value: Value::BigInt(ROWS * 3 / 4),
            }),
            vertical: Some(VerticalSpec { row_cols: vec![3] }),
            ..Default::default()
        }),
    ]
}

/// A randomized query over the fixed schema.
fn query_strategy() -> impl Strategy<Value = Query> {
    let agg = (0usize..5, any::<bool>(), -1i64..ROWS + 20).prop_map(|(f, grouped, bound)| {
        let funcs = [
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Count,
        ];
        Query::Aggregate(AggregateQuery {
            table: "t".into(),
            aggregates: vec![Aggregate {
                func: funcs[f],
                column: 1,
            }],
            group_by: grouped.then_some(2),
            filter: if bound < 0 {
                vec![]
            } else {
                vec![ColRange::ge(0, Value::BigInt(bound))]
            },
            join: None,
        })
    });
    let select = (0i64..ROWS + 20, any::<bool>()).prop_map(|(id, point)| {
        Query::Select(SelectQuery {
            table: "t".into(),
            columns: Some(vec![0, 3]),
            filter: if point {
                vec![ColRange::eq(0, Value::BigInt(id))]
            } else {
                vec![ColRange::between(
                    0,
                    Value::BigInt(id / 2),
                    Value::BigInt(id),
                )]
            },
        })
    });
    let update = (0i64..ROWS, 0i32..9).prop_map(|(id, v)| {
        Query::Update(UpdateQuery {
            table: "t".into(),
            sets: vec![(3, Value::Int(v))],
            filter: vec![ColRange::eq(0, Value::BigInt(id))],
        })
    });
    let insert = (ROWS..ROWS + 1000i64).prop_map(|id| {
        Query::Insert(InsertQuery {
            table: "t".into(),
            rows: vec![vec![
                Value::BigInt(id),
                Value::Double(0.5),
                Value::Int(1),
                Value::Int(2),
            ]],
        })
    });
    prop_oneof![agg, select, update, insert]
}

fn outputs_close(a: &QueryOutput, b: &QueryOutput) -> bool {
    match (a, b) {
        (QueryOutput::Aggregates(x), QueryOutput::Aggregates(y)) => {
            x.len() == y.len()
                && x.iter().zip(y).all(|(p, q)| {
                    p.key == q.key
                        && p.values.len() == q.values.len()
                        && p.values
                            .iter()
                            .zip(&q.values)
                            .all(|(u, v)| (u - v).abs() <= 1e-9 * u.abs().max(v.abs()).max(1.0))
                })
        }
        _ => a == b,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any random query sequence (with duplicate-insert failures treated
    /// uniformly) yields the same outputs on every layout.
    #[test]
    fn layouts_are_observationally_equivalent(
        queries in prop::collection::vec(query_strategy(), 1..25)
    ) {
        let plans = placements();
        let mut reference: Option<Vec<Option<QueryOutput>>> = None;
        for placement in &plans {
            let db = db_with(placement);
            let outputs: Vec<Option<QueryOutput>> =
                queries.iter().map(|q| db.execute(q).ok()).collect();
            match &reference {
                None => reference = Some(outputs),
                Some(r) => {
                    prop_assert_eq!(r.len(), outputs.len());
                    for (x, y) in r.iter().zip(&outputs) {
                        match (x, y) {
                            (Some(a), Some(b)) => prop_assert!(
                                outputs_close(a, b),
                                "layout {:?}: {:?} vs {:?}",
                                placement, a, b
                            ),
                            (None, None) => {}
                            other => prop_assert!(false, "error divergence: {other:?}"),
                        }
                    }
                }
            }
        }
    }

    /// Moving a table through a random chain of layouts never changes its
    /// logical contents.
    #[test]
    fn layout_chains_preserve_contents(chain in prop::collection::vec(0usize..3, 1..5)) {
        let plans = placements();
        let db = db_with(&plans[0]);
        let checksum = |db: &HybridDatabase| -> f64 {
            let q = Query::Aggregate(AggregateQuery::simple("t", AggFunc::Sum, 1));
            match db.execute(&q).unwrap() {
                QueryOutput::Aggregates(g) => g[0].values[0],
                other => panic!("unexpected {other:?}"),
            }
        };
        let before = checksum(&db);
        for idx in chain {
            mover::move_table(&db, "t", &plans[idx]).unwrap();
            prop_assert_eq!(db.row_count("t").unwrap(), ROWS as usize);
            let after = checksum(&db);
            prop_assert!((before - after).abs() < 1e-9);
        }
    }
}

/// Catalog annotations always reflect the physical layout after moves.
#[test]
fn catalog_annotation_tracks_moves() {
    let plans = placements();
    let db = db_with(&plans[0]);
    for p in &plans {
        mover::move_table(&db, "t", p).unwrap();
        assert_eq!(&db.catalog().entry_by_name("t").unwrap().placement, p);
        assert_eq!(db.current_layout().placement("t"), p.clone());
    }
    let _ = Arc::new(schema()); // keep Arc in scope for parity with engine APIs
}
