//! Quickstart: build a hybrid database, run a mixed workload, calibrate the
//! cost model, and ask the storage advisor where each table belongs.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;

use hybrid_store_advisor::advisor::report;
use hybrid_store_advisor::prelude::*;

fn main() -> hybrid_store_advisor::types::Result<()> {
    // ------------------------------------------------------------------
    // 1. Define a table and load it into the hybrid database.
    //    (HANA's default for new tables is the row store.)
    // ------------------------------------------------------------------
    let spec = TableSpec::paper_wide("sales", 50_000, 42);
    let schema = spec.schema()?;
    let db = HybridDatabase::new();
    db.create_single(schema.clone(), StoreKind::Row)?;
    db.bulk_load("sales", spec.rows())?;
    println!("loaded {} rows into the row store", db.row_count("sales")?);

    // ------------------------------------------------------------------
    // 2. A mixed workload: 5 % analytical queries, the rest inserts,
    //    updates, and point selects.
    // ------------------------------------------------------------------
    let workload = WorkloadGenerator::single_table(
        &spec,
        &MixedWorkloadConfig {
            queries: 300,
            olap_fraction: 0.05,
            ..Default::default()
        },
    );
    let runner = WorkloadRunner::new();
    let before = runner.run(&db, &workload)?;
    println!("workload on current layout: {:.1} ms", before.total_ms());

    // ------------------------------------------------------------------
    // 3. Calibrate the cost model against this machine (Figure 5's
    //    "initialize cost model" step) and ask the advisor.
    // ------------------------------------------------------------------
    let model = calibrate(&CalibrationConfig::quick())?;
    let advisor = StorageAdvisor::new(model);
    let mut stats = BTreeMap::new();
    stats.insert(
        "sales".to_string(),
        db.catalog().entry_by_name("sales")?.stats.clone(),
    );
    let rec = advisor.recommend_offline(&[Arc::new(schema)], &stats, &workload, true)?;
    println!("\n{}", report::render(&rec));

    // ------------------------------------------------------------------
    // 4. Apply the recommendation to a freshly loaded database (the
    //    workload inserts rows, so re-running it needs pristine data) and
    //    measure again.
    // ------------------------------------------------------------------
    let db = HybridDatabase::new();
    db.create_single(spec.schema()?, StoreKind::Row)?;
    db.bulk_load("sales", spec.rows())?;
    let moved = mover::apply_layout(&db, &rec.layout)?;
    println!("moved tables: {moved:?}");
    let after = runner.run(&db, &workload)?;
    println!("workload on recommended layout: {:.1} ms", after.total_ms());
    println!(
        "speedup: {:.2}x",
        before.total.as_secs_f64() / after.total.as_secs_f64()
    );
    Ok(())
}
