//! Shared workload for the scan-throughput benchmarks (`benches/scan.rs`
//! and the `bench_scan` binary): a 1M-row column-store table with a
//! mid-cardinality bit-packed attribute, plus the predicates the benchmarks
//! scan with.

use std::sync::Arc;

use hsd_storage::{ColRange, ColumnTable};
use hsd_types::{ColumnDef, ColumnType, TableSchema, Value};

/// Rows in the benchmark table.
pub const ROWS: usize = 1_000_000;

/// Distinct values of the scanned attribute (13-bit packed codes).
pub const VAL_DOMAIN: u32 = 8192;

/// Distinct values of the second (conjunction) attribute.
pub const GRP_DOMAIN: u32 = 64;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Benchmark schema: `id` (BigInt PK), `val` (Integer, [`VAL_DOMAIN`]
/// distinct), `grp` (Integer, [`GRP_DOMAIN`] distinct).
pub fn schema() -> Arc<TableSchema> {
    Arc::new(
        TableSchema::new(
            "scan",
            vec![
                ColumnDef::new("id", ColumnType::BigInt),
                ColumnDef::new("val", ColumnType::Integer),
                ColumnDef::new("grp", ColumnType::Integer),
            ],
            vec![0],
        )
        .unwrap(),
    )
}

/// Build (and compact) the benchmark table with `ROWS` deterministic rows.
/// `packed = false` is the plain-`u32` code-vector ablation.
pub fn build_table(packed: bool) -> ColumnTable {
    let mut t = ColumnTable::with_encoding(schema(), packed);
    for i in 0..ROWS as u64 {
        let h = splitmix64(i);
        t.insert(&[
            Value::BigInt(i as i64),
            Value::Int((h % VAL_DOMAIN as u64) as i32),
            Value::Int((h >> 32) as i32 & (GRP_DOMAIN as i32 - 1)),
        ])
        .expect("benchmark rows are unique");
    }
    t.compact();
    t
}

/// The unselective predicate (matches ≈ 95% of rows): the acceptance
/// criterion's "unselective 1M-row single-column range scan".
pub fn range_90pct() -> ColRange {
    ColRange::between(
        1,
        Value::Int((VAL_DOMAIN / 20) as i32),
        Value::Int(VAL_DOMAIN as i32),
    )
}

/// Selective predicate (matches ≈ 0.1% of rows).
pub fn range_selective() -> ColRange {
    ColRange::between(1, Value::Int(0), Value::Int(7))
}

/// A two-column conjunction (≈ 95% × 50%).
pub fn conjunction() -> Vec<ColRange> {
    vec![
        range_90pct(),
        ColRange::between(2, Value::Int(0), Value::Int((GRP_DOMAIN / 2) as i32 - 1)),
    ]
}
