//! One-table summary of every `BENCH_*.json` trajectory artifact in the
//! working directory — the consolidated view CI's `bench-trajectory` job
//! prints so a reviewer reads one table instead of four JSON blobs.
//!
//! For each artifact the summary reports the pass flag and its headline
//! ratios: explicitly recorded ratio fields (`speedup`, `*_reduction`,
//! `*_ratio`, `*_amplification`, `*_overhead`) found anywhere in the
//! document, plus derived best/baseline
//! throughput ratios for `results`-array benchmarks (`bench_scan`'s
//! `rows_per_sec` series). Exits non-zero if any artifact records
//! `pass: false`, so the caller decides whether that gates.
//!
//! Run with `cargo run --release -p hsd-bench --bin bench_summary`.

use hsd_types::Json;

/// Recursively collect `(path, value)` pairs of explicit ratio fields.
/// `None` marks a ratio recorded without a usable value — a missing/zero
/// baseline (`"n/a"` markers from the bench bins) or a non-finite number —
/// which the table renders as `n/a` instead of `inf`/panicking.
fn collect_ratios(prefix: &str, json: &Json, out: &mut Vec<(String, Option<f64>)>) {
    match json {
        Json::Obj(map) => {
            for (k, v) in map {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                let ratio_key = k == "speedup"
                    || k.ends_with("_speedup")
                    || k.ends_with("_reduction")
                    || k.ends_with("_ratio")
                    || k.ends_with("_amplification")
                    || k.ends_with("_overhead")
                    || k.ends_with("_scaling");
                match v {
                    Json::Num(n) if ratio_key => out.push((path, n.is_finite().then_some(*n))),
                    Json::Int(n) if ratio_key => out.push((path, Some(*n as f64))),
                    Json::Str(_) | Json::Null if ratio_key => out.push((path, None)),
                    _ => collect_ratios(&path, v, out),
                }
            }
        }
        Json::Arr(items) => {
            for (i, v) in items.iter().enumerate() {
                collect_ratios(&format!("{prefix}[{i}]"), v, out);
            }
        }
        _ => {}
    }
}

/// Derive best/baseline throughput ratios from `results`-style arrays
/// (entries with `name` + `rows_per_sec`), grouped by the name's leading
/// token: `unselective_scalar_get` vs `unselective_block_selvec` etc.
fn derive_throughput_ratios(json: &Json, out: &mut Vec<(String, Option<f64>)>) {
    let Some(results) = json.get_opt("results").and_then(|r| r.as_arr().ok()) else {
        return;
    };
    let mut groups: std::collections::BTreeMap<String, (f64, f64)> = Default::default();
    for entry in results {
        let (Ok(name), Ok(rps)) = (
            entry.get("name").and_then(Json::as_str),
            entry.get("rows_per_sec").and_then(Json::as_f64),
        ) else {
            continue;
        };
        let group = name.split('_').next().unwrap_or(name).to_string();
        let slot = groups.entry(group).or_insert((f64::INFINITY, 0.0));
        slot.0 = slot.0.min(rps);
        slot.1 = slot.1.max(rps);
    }
    for (group, (worst, best)) in groups {
        if worst.is_finite() && worst > 0.0 && best > worst {
            out.push((format!("{group} best/baseline"), Some(best / worst)));
        }
    }
}

fn main() {
    let mut files: Vec<String> = std::fs::read_dir(".")
        .expect("read cwd")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    files.sort();
    if files.is_empty() {
        eprintln!("[bench_summary] no BENCH_*.json artifacts found");
        std::process::exit(1);
    }
    let mut all_pass = true;
    println!("| artifact | benchmark | pass | speedup ratios |");
    println!("|---|---|---|---|");
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                println!("| {file} | (unreadable: {e}) | ? | |");
                all_pass = false;
                continue;
            }
        };
        let json = match Json::parse(&text) {
            Ok(j) => j,
            Err(e) => {
                println!("| {file} | (unparsable: {e:?}) | ? | |");
                all_pass = false;
                continue;
            }
        };
        let benchmark = json
            .get_opt("benchmark")
            .and_then(|b| b.as_str().ok())
            .unwrap_or("?")
            .to_string();
        let pass = json.get_opt("pass").and_then(|p| p.as_bool().ok());
        if pass == Some(false) {
            all_pass = false;
        }
        let mut ratios = Vec::new();
        collect_ratios("", &json, &mut ratios);
        derive_throughput_ratios(&json, &mut ratios);
        let ratio_cell = if ratios.is_empty() {
            "—".to_string()
        } else {
            ratios
                .iter()
                .map(|(k, v)| match v {
                    Some(v) => format!("{k} {v:.2}x"),
                    None => format!("{k} n/a"),
                })
                .collect::<Vec<_>>()
                .join(", ")
        };
        let pass_cell = match pass {
            Some(true) => "✅",
            Some(false) => "❌",
            None => "—",
        };
        println!("| {file} | {benchmark} | {pass_cell} | {ratio_cell} |");
    }
    if !all_pass {
        std::process::exit(1);
    }
}
