//! Logical values and column types.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Scale applied to [`Value::Decimal`]: decimals are stored as integers in
/// hundredths (e.g. `12.34` is stored as `1234`).
pub const DECIMAL_SCALE: i64 = 100;

/// Logical type of a column.
///
/// The storage layer maps each of these onto a single 64-bit physical slot
/// (text via a per-table string dictionary), which keeps both stores
/// fixed-width and comparable — the same simplification SAP HANA's column
/// store makes by fully dictionary-encoding every column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 32-bit signed integer.
    Integer,
    /// 64-bit signed integer.
    BigInt,
    /// 64-bit IEEE-754 float. The paper's example aggregates a `Double`.
    Double,
    /// Fixed-point decimal with two fractional digits (scaled `i64`).
    Decimal,
    /// Variable-length string.
    Varchar,
    /// Date, stored as days since 1970-01-01.
    Date,
    /// Boolean flag.
    Boolean,
}

impl ColumnType {
    /// All column types, in a stable order (useful for calibration sweeps).
    pub const ALL: [ColumnType; 7] = [
        ColumnType::Integer,
        ColumnType::BigInt,
        ColumnType::Double,
        ColumnType::Decimal,
        ColumnType::Varchar,
        ColumnType::Date,
        ColumnType::Boolean,
    ];

    /// Whether values of this type can be summed / averaged.
    pub fn is_numeric(self) -> bool {
        matches!(
            self,
            ColumnType::Integer | ColumnType::BigInt | ColumnType::Double | ColumnType::Decimal
        )
    }

    /// Short lowercase name, used in reports and generated statements.
    pub fn name(self) -> &'static str {
        match self {
            ColumnType::Integer => "integer",
            ColumnType::BigInt => "bigint",
            ColumnType::Double => "double",
            ColumnType::Decimal => "decimal",
            ColumnType::Varchar => "varchar",
            ColumnType::Date => "date",
            ColumnType::Boolean => "boolean",
        }
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single logical value.
///
/// `Value` implements a *total* order and hash (doubles are compared via
/// `f64::total_cmp` / hashed via their bit pattern) so that values can serve
/// as group-by keys and dictionary entries without wrapper types.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL. Sorts before every non-null value.
    Null,
    /// 32-bit integer value.
    Int(i32),
    /// 64-bit integer value.
    BigInt(i64),
    /// Double-precision float value.
    Double(f64),
    /// Fixed-point decimal, scaled by [`DECIMAL_SCALE`].
    Decimal(i64),
    /// String value (cheaply cloneable).
    Text(Arc<str>),
    /// Days since the Unix epoch.
    Date(i32),
    /// Boolean value.
    Bool(bool),
}

impl Value {
    /// Build a text value from anything string-like.
    pub fn text(s: impl AsRef<str>) -> Self {
        Value::Text(Arc::from(s.as_ref()))
    }

    /// Build a decimal from a float, rounding to two fractional digits.
    pub fn decimal_from_f64(v: f64) -> Self {
        Value::Decimal((v * DECIMAL_SCALE as f64).round() as i64)
    }

    /// The column type this value naturally belongs to, or `None` for NULL.
    pub fn column_type(&self) -> Option<ColumnType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(ColumnType::Integer),
            Value::BigInt(_) => Some(ColumnType::BigInt),
            Value::Double(_) => Some(ColumnType::Double),
            Value::Decimal(_) => Some(ColumnType::Decimal),
            Value::Text(_) => Some(ColumnType::Varchar),
            Value::Date(_) => Some(ColumnType::Date),
            Value::Bool(_) => Some(ColumnType::Boolean),
        }
    }

    /// Whether the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Whether this value is admissible in a column of type `ty`.
    pub fn matches_type(&self, ty: ColumnType) -> bool {
        match self.column_type() {
            None => true, // NULL fits any (nullable) column; nullability is checked by the schema
            Some(t) => t == ty,
        }
    }

    /// Numeric view of the value, for aggregation. Decimals are unscaled to
    /// their real magnitude; dates and booleans are not numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::BigInt(v) => Some(*v as f64),
            Value::Double(v) => Some(*v),
            Value::Decimal(v) => Some(*v as f64 / DECIMAL_SCALE as f64),
            _ => None,
        }
    }

    /// Integer view for key-like values.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v as i64),
            Value::BigInt(v) => Some(*v),
            Value::Date(v) => Some(*v as i64),
            Value::Bool(v) => Some(*v as i64),
            _ => None,
        }
    }

    /// String view for text values.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::BigInt(_) => 3,
            Value::Double(_) => 4,
            Value::Decimal(_) => 5,
            Value::Date(_) => 6,
            Value::Text(_) => 7,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (BigInt(a), BigInt(b)) => a.cmp(b),
            (Double(a), Double(b)) => a.total_cmp(b),
            (Decimal(a), Decimal(b)) => a.cmp(b),
            (Text(a), Text(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            // Cross-type comparisons only occur in mixed dictionaries, which
            // the storage layer never builds; fall back to a stable rank so
            // the order is still total.
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.rank().hash(state);
        match self {
            Value::Null => {}
            Value::Int(v) => v.hash(state),
            Value::BigInt(v) => v.hash(state),
            Value::Double(v) => v.to_bits().hash(state),
            Value::Decimal(v) => v.hash(state),
            Value::Text(s) => s.hash(state),
            Value::Date(v) => v.hash(state),
            Value::Bool(v) => v.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::BigInt(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Decimal(v) => {
                let sign = if *v < 0 { "-" } else { "" };
                let abs = v.abs();
                write!(
                    f,
                    "{sign}{}.{:02}",
                    abs / DECIMAL_SCALE,
                    abs % DECIMAL_SCALE
                )
            }
            Value::Text(s) => write!(f, "'{s}'"),
            Value::Date(d) => write!(f, "date#{d}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::BigInt(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::text(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn type_of_values() {
        assert_eq!(Value::Int(1).column_type(), Some(ColumnType::Integer));
        assert_eq!(Value::Double(1.0).column_type(), Some(ColumnType::Double));
        assert_eq!(Value::text("x").column_type(), Some(ColumnType::Varchar));
        assert_eq!(Value::Null.column_type(), None);
    }

    #[test]
    fn null_matches_any_type() {
        for ty in ColumnType::ALL {
            assert!(Value::Null.matches_type(ty));
        }
        assert!(Value::Int(3).matches_type(ColumnType::Integer));
        assert!(!Value::Int(3).matches_type(ColumnType::Double));
    }

    #[test]
    fn decimal_display_and_round_trip() {
        let v = Value::decimal_from_f64(12.34);
        assert_eq!(v, Value::Decimal(1234));
        assert_eq!(v.to_string(), "12.34");
        assert_eq!(v.as_f64(), Some(12.34));
        assert_eq!(Value::decimal_from_f64(-0.05).to_string(), "-0.05");
    }

    #[test]
    fn decimal_negative_display() {
        assert_eq!(Value::Decimal(-107).to_string(), "-1.07");
    }

    #[test]
    fn total_order_on_doubles() {
        let nan = Value::Double(f64::NAN);
        let one = Value::Double(1.0);
        // total_cmp puts NaN above all finite numbers.
        assert_eq!(nan.cmp(&one), Ordering::Greater);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
    }

    #[test]
    fn eq_is_consistent_with_hash() {
        let a = Value::Double(3.5);
        let b = Value::Double(3.5);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
        let s1 = Value::text("abc");
        let s2 = Value::text("abc");
        assert_eq!(s1, s2);
        assert_eq!(hash_of(&s1), hash_of(&s2));
    }

    #[test]
    fn null_sorts_first() {
        let mut vals = [Value::Int(1), Value::Null, Value::Int(-5)];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Int(-5));
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::BigInt(7).as_i64(), Some(7));
        assert_eq!(Value::Decimal(150).as_f64(), Some(1.5));
        assert_eq!(Value::text("x").as_f64(), None);
        assert_eq!(Value::Date(10).as_i64(), Some(10));
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(3i64), Value::BigInt(3));
        assert_eq!(Value::from(3.0f64), Value::Double(3.0));
        assert_eq!(Value::from("s"), Value::text("s"));
        assert_eq!(Value::from(true), Value::Bool(true));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::text("hi").to_string(), "'hi'");
        assert_eq!(Value::Date(42).to_string(), "date#42");
        assert_eq!(Value::Bool(false).to_string(), "false");
    }

    #[test]
    fn numeric_types() {
        assert!(ColumnType::Integer.is_numeric());
        assert!(ColumnType::Decimal.is_numeric());
        assert!(!ColumnType::Varchar.is_numeric());
        assert!(!ColumnType::Date.is_numeric());
    }
}
