//! Scan-throughput benchmarks for the batched pipeline: block-decoded
//! bit-packing + selection vectors vs the per-element `get` baseline.
//!
//! The same measurements back `src/bin/bench_scan.rs`, which records the
//! results (and the batched-vs-scalar speedup) in `BENCH_scan.json` so the
//! repo keeps a perf trajectory across PRs.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hsd_bench::scan_workload::{build_table, conjunction, range_90pct, range_selective};
use hsd_storage::ColumnTable;

fn tables() -> (ColumnTable, ColumnTable) {
    (build_table(true), build_table(false))
}

fn bench_unselective(c: &mut Criterion) {
    let (packed, plain) = tables();
    let range = range_90pct();
    let mut group = c.benchmark_group("scan_unselective_1m");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("scalar_get_packed"), |b| {
        b.iter(|| {
            packed
                .filter_rows_scalar(std::slice::from_ref(&range))
                .len()
        })
    });
    group.bench_function(BenchmarkId::from_parameter("block_selvec_packed"), |b| {
        b.iter(|| packed.filter_selvec(std::slice::from_ref(&range)).count())
    });
    group.bench_function(BenchmarkId::from_parameter("block_selvec_plain"), |b| {
        b.iter(|| plain.filter_selvec(std::slice::from_ref(&range)).count())
    });
    group.finish();
}

fn bench_selective(c: &mut Criterion) {
    let (packed, _) = tables();
    let range = range_selective();
    let mut group = c.benchmark_group("scan_selective_1m");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("scalar_get"), |b| {
        b.iter(|| {
            packed
                .filter_rows_scalar(std::slice::from_ref(&range))
                .len()
        })
    });
    group.bench_function(BenchmarkId::from_parameter("block_selvec"), |b| {
        b.iter(|| packed.filter_selvec(std::slice::from_ref(&range)).count())
    });
    group.finish();
}

fn bench_conjunction(c: &mut Criterion) {
    let (packed, _) = tables();
    let ranges = conjunction();
    let mut group = c.benchmark_group("scan_conjunction_1m");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("scalar_get"), |b| {
        b.iter(|| packed.filter_rows_scalar(&ranges).len())
    });
    group.bench_function(BenchmarkId::from_parameter("block_selvec"), |b| {
        b.iter(|| packed.filter_selvec(&ranges).count())
    });
    group.finish();
}

fn bench_aggregate_scan(c: &mut Criterion) {
    let (packed, _) = tables();
    let mut group = c.benchmark_group("aggregate_scan_1m");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("sum_block_decode"), |b| {
        b.iter(|| {
            let mut sum = 0.0;
            packed.for_each_numeric_sel(1, None, |v| sum += v);
            sum
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_unselective,
    bench_selective,
    bench_conjunction,
    bench_aggregate_scan
);
criterion_main!(benches);
