//! Human-readable recovery health reports for the database administrator.
//!
//! Recovery itself lives in `hsd_engine::durability`; this module renders
//! its [`RecoveryReport`] the way [`crate::report`] renders advisor
//! recommendations — the operator-facing text surfaced after a restart, in
//! particular when the log came back torn or with quarantined tables.

use std::fmt::Write as _;

use hsd_engine::RecoveryReport;

/// Render a recovery report as the post-restart health summary.
pub fn render_health(report: &RecoveryReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== Recovery Health Report ===");
    let _ = writeln!(
        out,
        "status: {}",
        if report.is_clean() {
            "CLEAN"
        } else {
            "DEGRADED"
        }
    );
    let _ = writeln!(
        out,
        "log: {} of {} bytes recovered",
        report.recovered_len, report.scanned_len
    );
    let _ = writeln!(
        out,
        "records: {} replayed ({} completed merges re-applied), {} skipped",
        report.records_replayed, report.merges_replayed, report.records_skipped
    );
    match report.torn_tail {
        Some(offset) => {
            let _ = writeln!(
                out,
                "torn tail: truncated at byte {offset} ({} bytes of an \
                 uncommitted record discarded)",
                report.scanned_len.saturating_sub(offset)
            );
        }
        None => {
            let _ = writeln!(out, "torn tail: none");
        }
    }
    if report.degraded.is_empty() {
        let _ = writeln!(out, "degraded tables: none");
    } else {
        let _ = writeln!(
            out,
            "degraded tables: {} (read-only until cleared)",
            report.degraded.len()
        );
        for d in &report.degraded {
            let _ = writeln!(out, "  {:<16} {}", d.table, d.reason);
        }
        let _ = writeln!(
            out,
            "action: verify the listed tables against an external source, \
             then clear_degraded() to restore writes"
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsd_engine::DegradedTable;

    #[test]
    fn clean_report_renders_clean() {
        let report = RecoveryReport {
            records_replayed: 12,
            merges_replayed: 2,
            recovered_len: 4096,
            scanned_len: 4096,
            ..RecoveryReport::default()
        };
        let text = render_health(&report);
        assert!(text.contains("status: CLEAN"));
        assert!(text.contains("4096 of 4096 bytes"));
        assert!(text.contains("12 replayed (2 completed merges re-applied)"));
        assert!(text.contains("torn tail: none"));
        assert!(text.contains("degraded tables: none"));
    }

    #[test]
    fn damage_is_itemized() {
        let report = RecoveryReport {
            records_replayed: 7,
            records_skipped: 3,
            torn_tail: Some(900),
            recovered_len: 900,
            scanned_len: 1000,
            degraded: vec![DegradedTable {
                table: "orders".into(),
                reason: "corrupt record at byte 512".into(),
            }],
            ..RecoveryReport::default()
        };
        let text = render_health(&report);
        assert!(text.contains("status: DEGRADED"));
        assert!(text.contains("truncated at byte 900 (100 bytes"));
        assert!(text.contains("orders"));
        assert!(text.contains("corrupt record at byte 512"));
        assert!(text.contains("clear_degraded()"));
    }
}
