//! Figure 7(b): recommendation quality with **join queries** on a star
//! schema — the (small) dimension table is pinned to the row store ("based
//! on preceding measurements"), the advisor decides the fact table's store.
//!
//! Paper setup: fact 20m × 10 attributes, dimension 1000 × 6 attributes;
//! OLAP queries aggregate fact keyfigures grouped by dimension attributes.

use std::collections::BTreeMap;

use hsd_bench::{calibrated_model, ctx_of, fmt_s, print_series, scaled_rows};
use hsd_core::estimator::estimate_workload;
use hsd_engine::{HybridDatabase, WorkloadRunner};
use hsd_query::{MixedWorkloadConfig, TableSpec, WorkloadGenerator};
use hsd_storage::StoreKind;

fn fact_spec(rows: usize) -> TableSpec {
    TableSpec {
        name: "fact".into(),
        rows,
        fk_attrs: 1,
        fk_cardinality: 1000,
        keyfigures: 4,
        group_attrs: 0,
        filter_attrs: 2,
        status_attrs: 2,
        group_cardinality: 1,
        status_cardinality: 8,
        // BI fact keyfigures (quantities, prices) are low-cardinality; this
        // also keeps the aggregate-decode tables cache-resident, which is
        // where the column store's join advantage comes from.
        kf_distinct: (rows / 100).max(64) as u32,
        seed: 0xF17B,
    }
}

fn dim_spec() -> TableSpec {
    TableSpec {
        name: "dim".into(),
        rows: 1000,
        fk_attrs: 0,
        fk_cardinality: 1,
        keyfigures: 0,
        group_attrs: 3,
        filter_attrs: 2,
        status_attrs: 0,
        group_cardinality: 20,
        status_cardinality: 1,
        kf_distinct: 64,
        seed: 0xD1B,
    }
}

fn build(
    fact: &TableSpec,
    dim: &TableSpec,
    fact_store: StoreKind,
) -> hsd_types::Result<HybridDatabase> {
    let db = HybridDatabase::new();
    db.create_single(fact.schema()?, fact_store)?;
    db.create_single(dim.schema()?, StoreKind::Row)?;
    db.bulk_load("fact", fact.rows())?;
    db.bulk_load("dim", dim.rows())?;
    Ok(db)
}

fn main() -> hsd_types::Result<()> {
    let model = calibrated_model()?;
    let runner = WorkloadRunner::new();
    let n = scaled_rows(20_000_000);
    let queries = 500; // paper count; only the data scales
    let fact = fact_spec(n);
    let dim = dim_spec();

    let mut rows_out = Vec::new();
    let mut hits = 0usize;
    let fractions = [0.0, 0.0125, 0.025, 0.0375, 0.05];
    for frac in fractions {
        let cfg = MixedWorkloadConfig {
            queries,
            olap_fraction: frac,
            oltp_insert_share: 0.4,
            oltp_update_share: 0.4,
            seed: 0x7B + (frac * 1e4) as u64,
            ..Default::default()
        };
        let workload = WorkloadGenerator::star(&fact, &dim, fact.fk_col(0), &cfg);
        let mut runtimes: BTreeMap<StoreKind, f64> = BTreeMap::new();
        let mut estimates: BTreeMap<StoreKind, f64> = BTreeMap::new();
        for store in StoreKind::BOTH {
            let db = build(&fact, &dim, store)?;
            // Estimate with the dimension pinned to the row store.
            let ctx = ctx_of(&db);
            let assignment: BTreeMap<String, StoreKind> = [
                ("fact".to_string(), store),
                ("dim".to_string(), StoreKind::Row),
            ]
            .into_iter()
            .collect();
            estimates.insert(
                store,
                estimate_workload(&model, &ctx, &assignment, &workload),
            );
            let report = runner.run(&db, &workload)?;
            runtimes.insert(store, report.total.as_secs_f64());
        }
        let recommended = if estimates[&StoreKind::Row] <= estimates[&StoreKind::Column] {
            StoreKind::Row
        } else {
            StoreKind::Column
        };
        let rs = runtimes[&StoreKind::Row];
        let cs = runtimes[&StoreKind::Column];
        let optimal = if rs <= cs {
            StoreKind::Row
        } else {
            StoreKind::Column
        };
        if recommended == optimal {
            hits += 1;
        }
        rows_out.push(vec![
            format!("{:.2}%", frac * 100.0),
            fmt_s(rs),
            fmt_s(cs),
            fmt_s(runtimes[&recommended]),
            recommended.to_string(),
            optimal.to_string(),
        ]);
    }
    print_series(
        &format!(
            "Figure 7(b): join recommendation quality (fact {n} x 10 attrs, dim 1000 x 6, {queries} queries)"
        ),
        &["OLAP frac", "RS only (s)", "CS only (s)", "advisor (s)", "rec", "optimal"],
        &rows_out,
    );
    println!(
        "advisor picked the optimal fact store in {hits}/{} workloads",
        fractions.len()
    );
    Ok(())
}
