//! The column store: per-column dictionaries plus bit-packed code vectors,
//! with an unsorted dictionary tail absorbing new values (delta semantics)
//! and an explicit merge ([`ColumnTable::compact`]).
//!
//! Scans run through a batched pipeline: codes are block-decoded with
//! word-level unpacking ([`BitPackedVec::decode_into`]), range predicates
//! are evaluated branch-free over decoded blocks in the code domain, and
//! matches are collected in bitmap selection vectors ([`SelVec`]) that
//! conjunctions combine with word-wise `AND`s. The element-at-a-time path
//! ([`ColumnData::filter_scalar`], [`ColumnTable::filter_rows_scalar`])
//! remains as the ablation baseline the scan benchmarks compare against.

use std::collections::HashMap;
use std::sync::Arc;

use hsd_types::{ColumnIdx, Error, Result, TableSchema, Value};

use crate::bitpack::{BitPackedVec, BLOCK};
use crate::dictionary::Dictionary;
use crate::predicate::{ColRange, RowSel};
use crate::selvec::SelVec;
use crate::table::{pk_key_of, PkKey};

/// Physical encoding of a code vector.
///
/// `Packed` is the production encoding; `Plain` exists for the bit-packing
/// ablation benchmark and stores codes as raw `u32`s.
#[derive(Debug, Clone)]
pub enum CodeVec {
    /// Bit-packed at the dictionary's current width.
    Packed(BitPackedVec),
    /// Plain `u32` codes (ablation variant).
    Plain(Vec<u32>),
}

impl CodeVec {
    fn new(packed: bool) -> Self {
        if packed {
            CodeVec::Packed(BitPackedVec::new())
        } else {
            CodeVec::Plain(Vec::new())
        }
    }

    /// An empty vector with the same encoding as `self` (the shadow vector
    /// an incremental merge fills).
    fn like(&self) -> Self {
        CodeVec::new(matches!(self, CodeVec::Packed(_)))
    }

    #[inline]
    fn get(&self, idx: usize) -> u32 {
        match self {
            CodeVec::Packed(v) => v.get(idx),
            CodeVec::Plain(v) => v[idx],
        }
    }

    fn push(&mut self, code: u32) {
        match self {
            CodeVec::Packed(v) => v.push(code),
            CodeVec::Plain(v) => v.push(code),
        }
    }

    fn set(&mut self, idx: usize, code: u32) {
        match self {
            CodeVec::Packed(v) => v.set(idx, code),
            CodeVec::Plain(v) => v[idx] = code,
        }
    }

    fn len(&self) -> usize {
        match self {
            CodeVec::Packed(v) => v.len(),
            CodeVec::Plain(v) => v.len(),
        }
    }

    /// Decode the run `[start, start + out.len())` into `out`. The packed
    /// encoding uses word-level unpacking; the plain ablation encoding is a
    /// straight copy.
    #[inline]
    fn decode_into(&self, start: usize, out: &mut [u32]) {
        match self {
            CodeVec::Packed(v) => v.decode_into(start, out),
            CodeVec::Plain(v) => out.copy_from_slice(&v[start..start + out.len()]),
        }
    }

    fn heap_bytes(&self) -> usize {
        match self {
            CodeVec::Packed(v) => v.heap_bytes(),
            CodeVec::Plain(v) => v.capacity() * 4,
        }
    }
}

/// Progress of one bounded slice of an incremental delta merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MergeProgress {
    /// Code-vector entries remapped into the shadow vector by this slice
    /// (the unit the caller's remap-cost budget is expressed in).
    pub rows_remapped: usize,
    /// Dictionary-tail entries folded into sorted regions by merges that
    /// *completed* during this slice.
    pub entries_folded: usize,
    /// Whether the merge work is finished — for [`ColumnData::merge_step`],
    /// this column's shadow rebuild swapped in (or none was in flight); for
    /// [`ColumnTable::compact_step`], no column has an in-flight rebuild or
    /// a remaining dictionary tail.
    pub done: bool,
}

impl PendingMerge {
    /// New-domain code for an old-domain `code`, extending the remapping on
    /// demand for values interned after the rebuild snapshot was taken
    /// (those join the rebuilt dictionary's tail and are folded by the
    /// *next* merge).
    fn translate(&mut self, old_dict: &Dictionary, code: u32) -> u32 {
        for c in self.remap.len()..=code as usize {
            let new = self.new_dict.intern(old_dict.decode(c as u32));
            self.remap.push(new);
        }
        self.remap[code as usize]
    }
}

/// In-flight state of an incremental delta merge on one column.
///
/// The merge is a **shadow rebuild**: the rebuilt (fully sorted) dictionary
/// and a shadow code vector are prepared on the side while the current
/// dictionary and codes stay authoritative for every read. Each
/// [`ColumnData::merge_step`] remaps a bounded run of codes into the shadow
/// vector; when the copy catches up with the live vector, the shadow pair is
/// swapped in. Writes that land *behind* the copy cursor are mirrored into
/// the shadow vector at set time; values first interned *during* the merge
/// extend the remapping on demand and stay in the rebuilt dictionary's tail
/// (they are the next merge's problem, exactly as in a HANA-style
/// delta-into-main merge).
#[derive(Debug, Clone)]
struct PendingMerge {
    /// The rebuilt dictionary the column swaps to on completion.
    new_dict: Dictionary,
    /// `old_code -> new_code`; extended lazily for codes interned after the
    /// rebuild snapshot was taken.
    remap: Vec<u32>,
    /// Shadow code vector, filled for rows `[0, cursor)`.
    new_codes: CodeVec,
    /// Rows copied so far.
    cursor: usize,
    /// Tail entries the snapshot is folding (reported on completion).
    folding: usize,
}

/// A dictionary rebuild prepared **off the write path**, ready to be
/// installed as an incremental merge.
///
/// [`ColumnData::plan_merge`] computes the sort-heavy half of
/// [`ColumnData::begin_merge`] — the rebuilt dictionary and the
/// old-code → new-code remapping — through `&self`, so a maintenance
/// thread can do that work under a shared read pin while scans proceed.
/// [`ColumnData::install_merge_plan`] then adopts the plan under the
/// (brief) exclusive latch, after validating it is not stale.
///
/// Staleness is judged by the merge epoch alone: writes between plan and
/// install only *append* to the dictionary tail, so the planned remapping
/// stays correct for every code it covers and later-interned codes are
/// translated lazily (`PendingMerge::translate`), exactly as writes
/// during an in-flight merge are. Only a dictionary handoff (epoch bump)
/// or an already-pending merge invalidates the plan.
#[derive(Debug, Clone)]
pub struct MergePlan {
    /// The rebuilt, fully sorted dictionary.
    new_dict: Dictionary,
    /// `old_code -> new_code` for every code that existed at plan time.
    remap: Vec<u32>,
    /// The column's merge epoch the plan was computed against.
    epoch: u64,
    /// Tail entries the plan folds (plan-time tail length).
    folding: usize,
}

impl MergePlan {
    /// Tail entries this plan folds when it completes.
    pub fn folding(&self) -> usize {
        self.folding
    }
}

/// One dictionary-encoded column.
#[derive(Debug, Clone)]
pub struct ColumnData {
    dict: Dictionary,
    codes: CodeVec,
    /// In-flight incremental merge, if any.
    pending: Option<PendingMerge>,
    /// Merge epoch: incremented at every dictionary handoff — the shadow
    /// swap completing an incremental merge, or a one-shot in-place rebuild.
    /// External observers (the online advisor, the maintenance worker) use
    /// the epoch to detect that a merge completed between two looks at the
    /// column without having watched every slice.
    epoch: u64,
}

impl ColumnData {
    /// Empty column.
    pub fn new(packed: bool) -> Self {
        ColumnData {
            dict: Dictionary::new(),
            codes: CodeVec::new(packed),
            pending: None,
            epoch: 0,
        }
    }

    /// Append a value (interning it into the dictionary).
    pub fn push(&mut self, value: &Value) {
        let code = self.dict.intern(value);
        self.codes.push(code);
    }

    /// Borrow the decoded value at `row`.
    #[inline]
    pub fn value_at(&self, row: usize) -> &Value {
        self.dict.decode(self.codes.get(row))
    }

    /// Raw dictionary code at `row` (the engine's code-level grouping and
    /// dictionary-join fast paths operate directly on codes).
    #[inline]
    pub fn code_at(&self, row: usize) -> u32 {
        self.codes.get(row)
    }

    /// Per-code numeric lookup table (`lut[code] = value.as_f64()`); lets
    /// hot loops decode via one array index instead of a dictionary probe.
    pub fn numeric_lut(&self) -> Vec<Option<f64>> {
        self.dict.values().map(Value::as_f64).collect()
    }

    /// Overwrite the value at `row` (interning new values into the tail).
    ///
    /// If an incremental merge is in flight and `row` sits behind its copy
    /// cursor, the write is mirrored into the shadow code vector so the
    /// eventual swap observes it.
    pub fn set(&mut self, row: usize, value: &Value) {
        let code = self.dict.intern(value);
        self.codes.set(row, code);
        if let Some(pending) = &mut self.pending {
            if row < pending.cursor {
                let new_code = pending.translate(&self.dict, code);
                pending.new_codes.set(row, new_code);
            }
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.len() == 0
    }

    /// Distinct values in the dictionary.
    pub fn distinct_count(&self) -> usize {
        self.dict.len()
    }

    /// Entries in the unsorted dictionary tail (delta size indicator).
    pub fn tail_len(&self) -> usize {
        self.dict.tail_len()
    }

    /// Access the dictionary (read-only).
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// Smallest and largest non-null value, straight from the dictionary.
    ///
    /// Note: dictionary entries may include values no longer referenced by
    /// any row after updates; bounds are therefore conservative (a superset
    /// of the live domain), which is the right direction for selectivity
    /// estimation.
    pub fn min_max(&self) -> (Option<Value>, Option<Value>) {
        self.dict.min_max()
    }

    /// Fold the dictionary tail into the sorted region and remap codes.
    ///
    /// One-shot: the full O(rows) remap runs in this call. An incremental
    /// merge in flight is first driven to completion (abandoning the copied
    /// prefix would waste it); values interned *during* that merge land in
    /// the rebuilt dictionary's tail, so the normal rebuild below then
    /// folds them too — `compact` always leaves an empty tail. Use
    /// [`ColumnData::begin_merge`] / [`ColumnData::merge_step`] to bound the
    /// per-call remap cost instead.
    pub fn compact(&mut self) {
        while self.pending.is_some() {
            self.merge_step(usize::MAX);
        }
        if let Some(remap) = self.dict.rebuild() {
            for i in 0..self.codes.len() {
                let old = self.codes.get(i);
                self.codes.set(i, remap[old as usize]);
            }
            self.epoch += 1;
        }
    }

    /// Whether an incremental merge is in flight on this column.
    pub fn merge_in_progress(&self) -> bool {
        self.pending.is_some()
    }

    /// The column's merge epoch — how many dictionary handoffs (shadow
    /// swaps or one-shot rebuilds) have completed. See the `epoch` field.
    pub fn merge_epoch(&self) -> u64 {
        self.epoch
    }

    /// Abandon an in-flight incremental merge, discarding the shadow
    /// dictionary and code vector. The live pair stayed authoritative for
    /// every read and write throughout the merge, so cancellation never
    /// loses data — only the remap work done so far. Returns whether a
    /// merge was actually cancelled.
    pub fn cancel_merge(&mut self) -> bool {
        self.pending.take().is_some()
    }

    /// Start an incremental merge: snapshot the rebuilt dictionary and
    /// remapping, and allocate the shadow code vector. Returns `false` when
    /// there is nothing to merge (empty tail) and no merge was started; a
    /// merge already in flight counts as started.
    pub fn begin_merge(&mut self) -> bool {
        if self.pending.is_some() {
            return true;
        }
        let Some((new_dict, remap)) = self.dict.rebuild_plan() else {
            return false;
        };
        self.pending = Some(PendingMerge {
            new_dict,
            remap,
            new_codes: self.codes.like(),
            cursor: 0,
            folding: self.dict.tail_len(),
        });
        true
    }

    /// Compute a [`MergePlan`] for this column's dictionary tail through
    /// `&self` — the concurrent-read half of [`ColumnData::begin_merge`].
    /// Returns `None` when there is nothing to merge (empty tail) or a
    /// merge is already in flight.
    pub fn plan_merge(&self) -> Option<MergePlan> {
        if self.pending.is_some() {
            return None;
        }
        let (new_dict, remap) = self.dict.rebuild_plan()?;
        Some(MergePlan {
            new_dict,
            remap,
            epoch: self.epoch,
            folding: self.dict.tail_len(),
        })
    }

    /// Adopt a previously computed [`MergePlan`] as the in-flight
    /// incremental merge (the install half of [`ColumnData::begin_merge`];
    /// call under the exclusive latch). Returns `false` — discarding the
    /// plan — when it is stale: the epoch moved (a dictionary handoff
    /// completed since planning) or another merge is already pending.
    pub fn install_merge_plan(&mut self, plan: MergePlan) -> bool {
        if plan.epoch != self.epoch || self.pending.is_some() {
            return false;
        }
        self.pending = Some(PendingMerge {
            new_dict: plan.new_dict,
            remap: plan.remap,
            new_codes: self.codes.like(),
            cursor: 0,
            folding: plan.folding,
        });
        true
    }

    /// Advance the in-flight incremental merge by at most `budget_rows`
    /// remapped codes. Returns progress for this slice; when the copy
    /// catches up with the live code vector, the rebuilt dictionary and
    /// shadow codes are swapped in and `done` is reported through the
    /// returned [`MergeProgress`] (`entries_folded` counts the tail entries
    /// the completed merge absorbed).
    ///
    /// A no-op returning `done` when no merge is in flight.
    pub fn merge_step(&mut self, budget_rows: usize) -> MergeProgress {
        let Some(pending) = &mut self.pending else {
            return MergeProgress {
                done: true,
                ..MergeProgress::default()
            };
        };
        let end = self
            .codes
            .len()
            .min(pending.cursor.saturating_add(budget_rows));
        let copied = end - pending.cursor;
        for i in pending.cursor..end {
            let code = pending.translate(&self.dict, self.codes.get(i));
            pending.new_codes.push(code);
        }
        pending.cursor = end;
        if pending.cursor < self.codes.len() {
            return MergeProgress {
                rows_remapped: copied,
                entries_folded: 0,
                done: false,
            };
        }
        // Copy complete: swap the shadow pair in — the epoch handoff. The
        // epoch bump is the externally visible signal that the dictionary
        // generation changed.
        let pending = self.pending.take().expect("checked above");
        self.dict = pending.new_dict;
        self.codes = pending.new_codes;
        self.epoch += 1;
        MergeProgress {
            rows_remapped: copied,
            entries_folded: pending.folding,
            done: true,
        }
    }

    /// Decode the codes `[start, start + out.len())` into `out` (block
    /// decode; see [`BitPackedVec::decode_into`]). Batch consumers — the
    /// engine's aggregation loops, the filter pipeline — use this instead
    /// of per-row [`ColumnData::code_at`] calls.
    #[inline]
    pub fn decode_codes_into(&self, start: usize, out: &mut [u32]) {
        self.codes.decode_into(start, out);
    }

    /// The code-domain match set for `range`: the sorted-region interval
    /// `[lo, hi)` plus the (sorted) list of matching tail codes.
    fn code_matches(&self, range: &ColRange) -> (u32, u32, Vec<u32>) {
        let (lo, hi) = self.dict.sorted_code_range(range.lo_ref(), range.hi_ref());
        let mut tail = self
            .dict
            .tail_codes_in_range(range.lo_ref(), range.hi_ref());
        tail.sort_unstable();
        (lo, hi, tail)
    }

    /// Batched filter: the selection of rows whose value satisfies `range`,
    /// evaluated block-at-a-time without leaving the code domain.
    ///
    /// Bit-packed columns run the predicate through a fused per-width
    /// unpack+compare kernel ([`BitPackedVec::match_interval_into`]): each
    /// packed word is loaded once and 64 match bits are produced per
    /// selection-vector word with a single branch-free range test per code.
    /// When `prior` is given (an earlier conjunct's selection), blocks with
    /// no surviving candidate are skipped entirely and the result is
    /// pre-masked by `prior` — the cheap AND-combination that makes
    /// conjunctions scale. Dictionary-tail codes (rare between delta
    /// merges) take a block-decoded path with a sorted-list membership test.
    pub fn filter_selvec(&self, range: &ColRange, prior: Option<&SelVec>) -> SelVec {
        let n = self.codes.len();
        if let Some(p) = prior {
            assert_eq!(p.len(), n, "prior selection domain mismatch");
        }
        let (lo, hi, tail) = self.code_matches(range);
        let span = hi.wrapping_sub(lo);
        let mut out = SelVec::none(n);
        let mut buf = [0u32; BLOCK];
        {
            let out_words = out.words_mut();
            let mut start = 0;
            while start < n {
                let block_len = BLOCK.min(n - start);
                let word_base = start / 64; // exact: BLOCK is a multiple of 64
                let word_end = (start + block_len).div_ceil(64);
                if let Some(p) = prior {
                    if p.words()[word_base..word_end].iter().all(|&w| w == 0) {
                        start += block_len;
                        continue;
                    }
                }
                match (&self.codes, tail.is_empty()) {
                    (CodeVec::Packed(v), true) => {
                        v.match_interval_into(
                            start,
                            block_len,
                            lo,
                            hi,
                            &mut out_words[word_base..word_end],
                        );
                    }
                    (CodeVec::Plain(v), true) => {
                        let codes = &v[start..start + block_len];
                        for (wi, chunk) in codes.chunks(64).enumerate() {
                            // Branch-free interval test; vectorizes to the
                            // compare + movemask shape.
                            let mut bits = 0u64;
                            for (j, &c) in chunk.iter().enumerate() {
                                bits |= ((c.wrapping_sub(lo) < span) as u64) << j;
                            }
                            out_words[word_base + wi] = bits;
                        }
                    }
                    (_, false) => {
                        // Tail codes present: decode the block and check the
                        // sorted tail list alongside the interval.
                        let codes = &mut buf[..block_len];
                        self.codes.decode_into(start, codes);
                        for (wi, chunk) in codes.chunks(64).enumerate() {
                            let mut bits = 0u64;
                            for (j, &c) in chunk.iter().enumerate() {
                                bits |= ((c.wrapping_sub(lo) < span) as u64) << j;
                            }
                            for (j, &c) in chunk.iter().enumerate() {
                                bits |= (tail.binary_search(&c).is_ok() as u64) << j;
                            }
                            out_words[word_base + wi] = bits;
                        }
                    }
                }
                start += block_len;
            }
        }
        if let Some(p) = prior {
            out.and_assign(p);
        }
        out
    }

    /// Row indexes (within `sel`) whose value satisfies `range`, evaluated
    /// element-at-a-time via [`ColumnData::code_at`]-style decoding.
    ///
    /// This is the pre-batching scan path, kept as the ablation baseline
    /// (`bench_scan` compares it against [`ColumnData::filter_selvec`]) and
    /// as the parity oracle for the batched pipeline's property tests.
    pub fn filter_scalar(&self, range: &ColRange, sel: RowSel<'_>) -> Vec<u32> {
        let (lo, hi, tail) = self.code_matches(range);
        let hit = |code: u32| (code >= lo && code < hi) || tail.binary_search(&code).is_ok();
        let mut out = Vec::new();
        match sel {
            RowSel::All => {
                for i in 0..self.codes.len() {
                    if hit(self.codes.get(i)) {
                        out.push(i as u32);
                    }
                }
            }
            RowSel::Subset(rows) => {
                for &i in rows {
                    if hit(self.codes.get(i as usize)) {
                        out.push(i);
                    }
                }
            }
        }
        out
    }

    /// Visit the numeric interpretation of the selected rows.
    ///
    /// Full scans block-decode the code vector (word-level unpacking)
    /// instead of per-row `get` calls. When the dictionary is small relative
    /// to the visited rows, decoding goes through a per-call lookup table so
    /// the hot loop reads only packed codes — the column store's fast
    /// aggregation path. For near-unique columns (LUT construction would
    /// dominate), codes are decoded directly against the dictionary.
    pub fn for_each_numeric(&self, sel: RowSel<'_>, mut f: impl FnMut(f64)) {
        let visited = match sel {
            RowSel::All => self.codes.len(),
            RowSel::Subset(rows) => rows.len(),
        };
        if self.dict.len() * 4 <= visited {
            let lut: Vec<Option<f64>> = self.dict.values().map(Value::as_f64).collect();
            match sel {
                RowSel::All => self.for_each_code_block(|codes| {
                    for &c in codes {
                        if let Some(v) = lut[c as usize] {
                            f(v);
                        }
                    }
                }),
                RowSel::Subset(rows) => {
                    for &i in rows {
                        if let Some(v) = lut[self.codes.get(i as usize) as usize] {
                            f(v);
                        }
                    }
                }
            }
        } else {
            match sel {
                RowSel::All => self.for_each_code_block(|codes| {
                    for &c in codes {
                        if let Some(v) = self.dict.decode(c).as_f64() {
                            f(v);
                        }
                    }
                }),
                RowSel::Subset(rows) => {
                    for &i in rows {
                        if let Some(v) = self.dict.decode(self.codes.get(i as usize)).as_f64() {
                            f(v);
                        }
                    }
                }
            }
        }
    }

    /// Visit the numeric interpretation of the rows selected by `sel`
    /// (`None` = all rows), decoding codes block-at-a-time and walking the
    /// selection's set bits — the batched counterpart of
    /// [`ColumnData::for_each_numeric`] used by the engine's aggregation
    /// pipeline.
    pub fn for_each_numeric_sel(&self, sel: Option<&SelVec>, mut f: impl FnMut(f64)) {
        let Some(sv) = sel else {
            return self.for_each_numeric(RowSel::All, f);
        };
        let n = self.codes.len();
        debug_assert_eq!(sv.len(), n, "selection domain mismatch");
        // Same trade-off as `for_each_numeric`: a per-call LUT only pays
        // off when the selection is large relative to the dictionary;
        // near-unique columns under selective filters decode straight
        // against the dictionary (O(selected) instead of O(dictionary)).
        let lut: Option<Vec<Option<f64>>> = if self.dict.len() * 4 <= sv.count() {
            Some(self.dict.values().map(Value::as_f64).collect())
        } else {
            None
        };
        // BLOCK-sized decode runs like every other batched consumer (one
        // decode call per 1024 rows, not per 64), skipping blocks with no
        // selected candidate.
        let mut buf = [0u32; BLOCK];
        let mut start = 0;
        while start < n {
            let len = BLOCK.min(n - start);
            let word_base = start / 64; // exact: BLOCK is a multiple of 64
            let word_end = (start + len).div_ceil(64);
            let words = &sv.words()[word_base..word_end];
            if words.iter().all(|&w| w == 0) {
                start += len;
                continue;
            }
            self.codes.decode_into(start, &mut buf[..len]);
            for (wi, &w) in words.iter().enumerate() {
                let mut bits = w;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let code = buf[wi * 64 + b];
                    let v = match &lut {
                        Some(lut) => lut[code as usize],
                        None => self.dict.decode(code).as_f64(),
                    };
                    if let Some(v) = v {
                        f(v);
                    }
                }
            }
            start += len;
        }
    }

    /// Visit the decoded value of each row in `rows`, calling
    /// `f(position_in_rows, value)`.
    ///
    /// Codes are fetched through a per-[`BLOCK`] decode cache instead of a
    /// per-element bit-extraction `get`: for ascending row lists (the shape
    /// every filter produces) each touched block is unpacked exactly once,
    /// which is what makes batched tuple materialization cheaper than
    /// per-cell [`ColumnData::value_at`] calls.
    pub fn gather_values(&self, rows: &[u32], mut f: impl FnMut(usize, &Value)) {
        let n = self.codes.len();
        let mut buf = [0u32; BLOCK];
        // usize::MAX = no block cached yet (no valid block starts there).
        let mut cached = usize::MAX;
        for (i, &r) in rows.iter().enumerate() {
            let r = r as usize;
            let block_start = r / BLOCK * BLOCK;
            if block_start != cached {
                let len = BLOCK.min(n - block_start);
                self.codes.decode_into(block_start, &mut buf[..len]);
                cached = block_start;
            }
            f(i, self.dict.decode(buf[r - block_start]));
        }
    }

    /// Feed every code to `f` in block-decoded runs of up to
    /// [`BLOCK`] codes.
    pub fn for_each_code_block(&self, mut f: impl FnMut(&[u32])) {
        let n = self.codes.len();
        let mut buf = [0u32; BLOCK];
        let mut start = 0;
        while start < n {
            let block_len = BLOCK.min(n - start);
            self.codes.decode_into(start, &mut buf[..block_len]);
            f(&buf[..block_len]);
            start += block_len;
        }
    }

    /// Visit the decoded value of the selected rows.
    pub fn for_each_value(&self, sel: RowSel<'_>, mut f: impl FnMut(&Value)) {
        match sel {
            RowSel::All => self.for_each_code_block(|codes| {
                for &c in codes {
                    f(self.dict.decode(c));
                }
            }),
            RowSel::Subset(rows) => {
                for &i in rows {
                    f(self.dict.decode(self.codes.get(i as usize)));
                }
            }
        }
    }

    /// Heap bytes of codes + dictionary.
    pub fn heap_bytes(&self) -> usize {
        self.codes.heap_bytes() + self.dict.heap_bytes()
    }

    /// The bit-packed code vector, or `None` for the plain ablation
    /// encoding. The segment writer serializes packed columns zero-copy
    /// through this accessor.
    pub fn packed_codes(&self) -> Option<&BitPackedVec> {
        match &self.codes {
            CodeVec::Packed(v) => Some(v),
            CodeVec::Plain(_) => None,
        }
    }

    /// Rebuild a column from its persisted parts: a restored dictionary
    /// ([`Dictionary::from_regions`]), the bit-packed code vector
    /// ([`BitPackedVec::from_raw_parts`]), and the merge epoch the column
    /// had when it was serialized. No merge is in flight on the restored
    /// column (in-flight shadow state is never persisted — it is
    /// reconstructible and cancellation is lossless).
    ///
    /// # Panics
    /// Panics if any code is out of range for the dictionary.
    pub fn from_parts(dict: Dictionary, codes: BitPackedVec, epoch: u64) -> Self {
        for code in codes.iter() {
            assert!(
                (code as usize) < dict.len(),
                "restored code {code} out of dictionary range {}",
                dict.len()
            );
        }
        ColumnData {
            dict,
            codes: CodeVec::Packed(codes),
            pending: None,
            epoch,
        }
    }
}

/// A column-oriented table.
#[derive(Debug, Clone)]
pub struct ColumnTable {
    schema: Arc<TableSchema>,
    columns: Vec<ColumnData>,
    pk: HashMap<PkKey, u32>,
    rows: usize,
}

impl ColumnTable {
    /// Empty table with bit-packed code vectors.
    pub fn new(schema: Arc<TableSchema>) -> Self {
        Self::with_encoding(schema, true)
    }

    /// Empty table choosing the code-vector encoding (`packed = false` is
    /// the ablation variant).
    pub fn with_encoding(schema: Arc<TableSchema>, packed: bool) -> Self {
        let columns = (0..schema.arity())
            .map(|_| ColumnData::new(packed))
            .collect();
        ColumnTable {
            schema,
            columns,
            pk: HashMap::new(),
            rows: 0,
        }
    }

    /// Table schema.
    pub fn schema(&self) -> &Arc<TableSchema> {
        &self.schema
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// Insert a row; enforces schema validity and primary-key uniqueness.
    ///
    /// Every column's dictionary must be consulted (and possibly extended),
    /// which is the structural reason column-store inserts cost more than
    /// row-store appends.
    pub fn insert(&mut self, row: &[Value]) -> Result<u32> {
        self.schema.validate_row(row)?;
        let key = pk_key_of(&self.schema, row);
        let idx = self.rows as u32;
        match self.pk.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                return Err(Error::DuplicateKey(format!(
                    "{}: {:?}",
                    self.schema.name,
                    e.key()
                )));
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(idx);
            }
        }
        for (col, value) in self.columns.iter_mut().zip(row) {
            col.push(value);
        }
        self.rows += 1;
        Ok(idx)
    }

    /// Borrow a single attribute of a row (no tuple reconstruction).
    #[inline]
    pub fn value_at(&self, idx: u32, col: ColumnIdx) -> &Value {
        self.columns[col].value_at(idx as usize)
    }

    /// Reconstruct the full tuple at `idx` — one dictionary decode per
    /// column, the "tuple reconstruction" cost of the paper's
    /// `f_#selectedColumns` adjustment.
    pub fn row(&self, idx: u32) -> Vec<Value> {
        self.columns
            .iter()
            .map(|c| c.value_at(idx as usize).clone())
            .collect()
    }

    /// Find the row index for a primary key, if present.
    pub fn point_lookup(&self, key: &[Value]) -> Option<u32> {
        self.pk.get(key).copied()
    }

    /// Row indexes matching *all* of `ranges` (conjunction), ascending.
    ///
    /// Runs the batched pipeline ([`ColumnTable::filter_selvec`]) and
    /// materializes the id list once at the end.
    pub fn filter_rows(&self, ranges: &[ColRange]) -> Vec<u32> {
        if ranges.is_empty() {
            return (0..self.rows as u32).collect();
        }
        self.filter_selvec(ranges).to_row_ids()
    }

    /// The selection matching *all* of `ranges` (conjunction) as a bitmap.
    ///
    /// Each conjunct is evaluated block-decoded and branch-free against the
    /// previous conjunct's selection ([`ColumnData::filter_selvec`]); the
    /// conjunction short-circuits as soon as any intermediate selection is
    /// empty, skipping the remaining predicates entirely.
    pub fn filter_selvec(&self, ranges: &[ColRange]) -> SelVec {
        let mut current: Option<SelVec> = None;
        for range in ranges {
            let next = self.columns[range.column].filter_selvec(range, current.as_ref());
            if next.is_none_selected() {
                return next;
            }
            current = Some(next);
        }
        current.unwrap_or_else(|| SelVec::all(self.rows))
    }

    /// Scalar (element-at-a-time) variant of [`ColumnTable::filter_rows`]:
    /// the ablation baseline and parity oracle for the batched pipeline.
    pub fn filter_rows_scalar(&self, ranges: &[ColRange]) -> Vec<u32> {
        if ranges.is_empty() {
            return (0..self.rows as u32).collect();
        }
        let mut current: Option<Vec<u32>> = None;
        for range in ranges {
            let sel = match &current {
                None => RowSel::All,
                Some(rows) => RowSel::Subset(rows),
            };
            let next = self.columns[range.column].filter_scalar(range, sel);
            if next.is_empty() {
                return next;
            }
            current = Some(next);
        }
        current.unwrap_or_default()
    }

    /// Update the given rows, assigning each `(column, value)` pair.
    ///
    /// New values extend the affected columns' dictionary tails, degrading
    /// scan locality until [`ColumnTable::compact`] runs — the delta-merge
    /// trade-off.
    pub fn update_rows(&mut self, rows: &[u32], sets: &[(ColumnIdx, Value)]) -> Result<usize> {
        for (col, value) in sets {
            if self.schema.is_pk_column(*col) {
                return Err(Error::InvalidOperation(format!(
                    "cannot update primary-key column {} of {}",
                    self.schema.column(*col)?.name,
                    self.schema.name
                )));
            }
            self.schema.validate_value_at(*col, value)?;
        }
        for &idx in rows {
            if idx as usize >= self.rows {
                return Err(Error::NotFound(format!(
                    "row {idx} in {}",
                    self.schema.name
                )));
            }
        }
        for &idx in rows {
            for (col, value) in sets {
                self.columns[*col].set(idx as usize, value);
            }
        }
        Ok(rows.len())
    }

    /// Visit the numeric value of `col` for the selected rows.
    pub fn for_each_numeric(&self, col: ColumnIdx, sel: RowSel<'_>, f: impl FnMut(f64)) {
        self.columns[col].for_each_numeric(sel, f);
    }

    /// Visit the numeric value of `col` for the rows selected by `sel`
    /// (`None` = all rows), via the batched block-decode path.
    pub fn for_each_numeric_sel(&self, col: ColumnIdx, sel: Option<&SelVec>, f: impl FnMut(f64)) {
        self.columns[col].for_each_numeric_sel(sel, f);
    }

    /// Visit the value of `col` for the selected rows.
    pub fn for_each_value(&self, col: ColumnIdx, sel: RowSel<'_>, f: impl FnMut(&Value)) {
        self.columns[col].for_each_value(sel, f);
    }

    /// Materialize the selected rows, optionally projecting to `cols`.
    ///
    /// Batched: the output tuples are filled column-at-a-time through the
    /// block-decoded gather path ([`ColumnData::gather_values`]) instead of
    /// reconstructing each tuple with per-cell `value_at` calls — one code
    /// block decode per [`BLOCK`] selected rows per column, and the
    /// dictionary probe cost drops to one slot index per cell.
    pub fn collect_rows(&self, sel: RowSel<'_>, cols: Option<&[ColumnIdx]>) -> Vec<Vec<Value>> {
        let all_cols: Vec<ColumnIdx>;
        let proj: &[ColumnIdx] = match cols {
            Some(c) => c,
            None => {
                all_cols = (0..self.schema.arity()).collect();
                &all_cols
            }
        };
        let emit_width = proj.len();
        match sel {
            RowSel::All => {
                let mut out: Vec<Vec<Value>> = (0..self.rows)
                    .map(|_| Vec::with_capacity(emit_width))
                    .collect();
                for &c in proj {
                    let mut i = 0;
                    self.columns[c].for_each_value(RowSel::All, |v| {
                        out[i].push(v.clone());
                        i += 1;
                    });
                }
                out
            }
            RowSel::Subset(rows) => {
                let mut out: Vec<Vec<Value>> = rows
                    .iter()
                    .map(|_| Vec::with_capacity(emit_width))
                    .collect();
                for &c in proj {
                    self.columns[c].gather_values(rows, |i, v| out[i].push(v.clone()));
                }
                out
            }
        }
    }

    /// Merge every column's dictionary tail (the delta merge).
    pub fn compact(&mut self) {
        for col in &mut self.columns {
            col.compact();
        }
    }

    /// Merge a single column's dictionary tail (per-column delta merge).
    pub fn compact_column(&mut self, col: ColumnIdx) {
        self.columns[col].compact();
    }

    /// Advance the incremental (chunked) delta merge by at most
    /// `budget_rows` remapped code-vector entries, spread across columns.
    ///
    /// Columns are merged one after another, each through the shadow-rebuild
    /// protocol ([`ColumnData::begin_merge`] / [`ColumnData::merge_step`]):
    /// a column with a tail gets a merge started, the budget is spent
    /// remapping its codes, and the remainder rolls over to the next tailed
    /// column. The merge is **resumable** — state lives on the columns, so
    /// the next `compact_step` call continues exactly where this one
    /// stopped, and reads/writes between calls see a fully consistent
    /// table throughout. `done` is reported once no column has an in-flight
    /// rebuild or a remaining tail; very large tables therefore never pay a
    /// full-table O(rows × columns) remap inside one call.
    pub fn compact_step(&mut self, budget_rows: usize) -> MergeProgress {
        let mut remaining = budget_rows;
        let mut total = MergeProgress::default();
        for col in &mut self.columns {
            if remaining == 0 {
                break;
            }
            if !col.merge_in_progress() {
                if col.tail_len() == 0 {
                    continue;
                }
                if !col.begin_merge() {
                    continue;
                }
            }
            while remaining > 0 && col.merge_in_progress() {
                let p = col.merge_step(remaining);
                total.rows_remapped += p.rows_remapped;
                total.entries_folded += p.entries_folded;
                remaining = remaining.saturating_sub(p.rows_remapped.max(1));
            }
        }
        total.done = !self
            .columns
            .iter()
            .any(|c| c.merge_in_progress() || c.tail_len() > 0);
        total
    }

    /// Compute [`MergePlan`]s for every column with a dictionary tail and
    /// no in-flight merge, through `&self` (the concurrent-read phase of a
    /// two-phase merge slice). Columns with nothing to fold are skipped.
    pub fn plan_compact(&self) -> Vec<(ColumnIdx, MergePlan)> {
        self.columns
            .iter()
            .enumerate()
            .filter_map(|(i, col)| col.plan_merge().map(|p| (i, p)))
            .collect()
    }

    /// Adopt previously computed plans as in-flight incremental merges
    /// (call under the exclusive latch); stale plans are discarded per
    /// [`ColumnData::install_merge_plan`]. Returns how many installed.
    pub fn install_plans(&mut self, plans: Vec<(ColumnIdx, MergePlan)>) -> usize {
        let mut installed = 0;
        for (i, plan) in plans {
            if let Some(col) = self.columns.get_mut(i) {
                installed += col.install_merge_plan(plan) as usize;
            }
        }
        installed
    }

    /// Whether any column has an incremental merge in flight.
    pub fn merge_in_progress(&self) -> bool {
        self.columns.iter().any(ColumnData::merge_in_progress)
    }

    /// Sum of the per-column merge epochs: increases every time any
    /// column's dictionary generation is handed off (shadow swap or
    /// one-shot rebuild), so a changed value means "some merge completed
    /// since the last look".
    pub fn merge_epoch(&self) -> u64 {
        self.columns.iter().map(ColumnData::merge_epoch).sum()
    }

    /// Abandon every in-flight incremental merge (see
    /// [`ColumnData::cancel_merge`]); returns how many columns had one.
    pub fn cancel_merge(&mut self) -> usize {
        self.columns
            .iter_mut()
            .map(|c| c.cancel_merge() as usize)
            .sum()
    }

    /// Merge only the columns whose dictionary tail exceeds `min_tail`
    /// entries, leaving small tails in place; returns how many tail entries
    /// were folded in. This is the selective half of the hysteretic merge
    /// policy: columns below the low watermark skip the O(rows) code remap.
    pub fn compact_columns_over(&mut self, min_tail: usize) -> usize {
        let mut merged = 0;
        for col in &mut self.columns {
            if col.tail_len() > min_tail {
                merged += col.tail_len();
                col.compact();
            }
        }
        merged
    }

    /// Total dictionary-tail entries across columns (how much delta has
    /// accumulated since the last merge).
    pub fn tail_total(&self) -> usize {
        self.columns.iter().map(ColumnData::tail_len).sum()
    }

    /// Dictionary-tail entries of a single column.
    pub fn tail_len(&self, col: ColumnIdx) -> usize {
        self.columns[col].tail_len()
    }

    /// Distinct values in `col`'s dictionary.
    pub fn distinct_count(&self, col: ColumnIdx) -> usize {
        self.columns[col].distinct_count()
    }

    /// Access a column (read-only).
    pub fn column(&self, col: ColumnIdx) -> &ColumnData {
        &self.columns[col]
    }

    /// Approximate heap bytes (codes + dictionaries + PK index).
    pub fn memory_bytes(&self) -> usize {
        let value = std::mem::size_of::<Value>();
        let cols: usize = self.columns.iter().map(ColumnData::heap_bytes).sum();
        let pk = self.pk.capacity() * (value * self.schema.primary_key.len() + 8);
        cols + pk
    }

    /// Drain this table into its rows (used by the data mover).
    pub fn into_rows(self) -> Vec<Vec<Value>> {
        (0..self.rows as u32).map(|i| self.row(i)).collect()
    }

    /// Rebuild a table from restored columns (the segment decode path).
    ///
    /// The columns must all have the same row count and there must be one
    /// per schema attribute. The primary-key index is not persisted; it is
    /// reconstructed here by decoding the PK columns.
    pub fn from_parts(schema: Arc<TableSchema>, columns: Vec<ColumnData>) -> Result<Self> {
        if columns.len() != schema.arity() {
            return Err(Error::InvalidOperation(format!(
                "segment for {} has {} columns, schema expects {}",
                schema.name,
                columns.len(),
                schema.arity()
            )));
        }
        let rows = columns.first().map_or(0, ColumnData::len);
        if columns.iter().any(|c| c.len() != rows) {
            return Err(Error::InvalidOperation(format!(
                "segment for {} has ragged column lengths",
                schema.name
            )));
        }
        let mut pk = HashMap::with_capacity(rows);
        for idx in 0..rows {
            let key: PkKey = schema
                .primary_key
                .iter()
                .map(|&c| columns[c].value_at(idx).clone())
                .collect();
            if pk.insert(key, idx as u32).is_some() {
                return Err(Error::DuplicateKey(format!(
                    "{}: restored segment repeats a primary key at row {idx}",
                    schema.name
                )));
            }
        }
        Ok(ColumnTable {
            schema,
            columns,
            pk,
            rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsd_types::{ColumnDef, ColumnType};

    fn schema() -> Arc<TableSchema> {
        Arc::new(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("id", ColumnType::Integer),
                    ColumnDef::new("price", ColumnType::Double),
                    ColumnDef::new("status", ColumnType::Varchar),
                ],
                vec![0],
            )
            .unwrap(),
        )
    }

    fn sample() -> ColumnTable {
        let mut t = ColumnTable::new(schema());
        let statuses = ["new", "paid", "shipped"];
        for i in 0..12 {
            t.insert(&[
                Value::Int(i),
                Value::Double((i % 4) as f64),
                Value::text(statuses[i as usize % 3]),
            ])
            .unwrap();
        }
        t.compact();
        t
    }

    #[test]
    fn insert_and_reconstruct() {
        let t = sample();
        assert_eq!(t.row_count(), 12);
        assert_eq!(
            t.row(5),
            vec![Value::Int(5), Value::Double(1.0), Value::text("shipped")]
        );
        assert_eq!(t.value_at(5, 2), &Value::text("shipped"));
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut t = sample();
        let err = t
            .insert(&[Value::Int(3), Value::Double(0.0), Value::text("new")])
            .unwrap_err();
        assert!(matches!(err, Error::DuplicateKey(_)));
    }

    #[test]
    fn dictionary_compression_kicks_in() {
        let t = sample();
        assert_eq!(t.distinct_count(1), 4); // values 0..4 repeat
        assert_eq!(t.distinct_count(2), 3);
        assert_eq!(t.distinct_count(0), 12);
    }

    #[test]
    fn filter_uses_code_ranges() {
        let t = sample();
        let hits = t.filter_rows(&[ColRange::between(1, Value::Double(2.0), Value::Double(3.0))]);
        let expect: Vec<u32> = (0..12u32).filter(|i| (i % 4) >= 2).collect();
        assert_eq!(hits, expect);
    }

    #[test]
    fn filter_conjunction() {
        let t = sample();
        let hits = t.filter_rows(&[
            ColRange::eq(2, Value::text("paid")),
            ColRange::ge(0, Value::Int(6)),
        ]);
        assert_eq!(hits, vec![7, 10]);
    }

    #[test]
    fn filter_empty_short_circuits() {
        let t = sample();
        let hits = t.filter_rows(&[
            ColRange::eq(2, Value::text("missing")),
            ColRange::ge(0, Value::Int(0)),
        ]);
        assert!(hits.is_empty());
    }

    #[test]
    fn updates_extend_tail_and_compact_restores() {
        let mut t = sample();
        assert_eq!(t.tail_total(), 0);
        t.update_rows(&[2, 3], &[(1, Value::Double(99.5))]).unwrap();
        assert_eq!(t.value_at(2, 1), &Value::Double(99.5));
        assert!(t.tail_total() > 0, "new value should land in the tail");
        // range filters still see tail values
        let hits = t.filter_rows(&[ColRange::ge(1, Value::Double(50.0))]);
        assert_eq!(hits, vec![2, 3]);
        t.compact();
        assert_eq!(t.tail_total(), 0);
        let hits = t.filter_rows(&[ColRange::ge(1, Value::Double(50.0))]);
        assert_eq!(hits, vec![2, 3]);
        assert_eq!(t.value_at(2, 1), &Value::Double(99.5));
    }

    #[test]
    fn update_pk_rejected() {
        let mut t = sample();
        assert!(matches!(
            t.update_rows(&[0], &[(0, Value::Int(99))]).unwrap_err(),
            Error::InvalidOperation(_)
        ));
    }

    #[test]
    fn numeric_visitor_uses_lut() {
        let t = sample();
        let mut sum = 0.0;
        t.for_each_numeric(1, RowSel::All, |v| sum += v);
        assert_eq!(sum, (0..12).map(|i| (i % 4) as f64).sum::<f64>());
    }

    #[test]
    fn non_numeric_column_visits_nothing() {
        let t = sample();
        let mut count = 0;
        t.for_each_numeric(2, RowSel::All, |_| count += 1);
        assert_eq!(count, 0);
    }

    #[test]
    fn point_lookup_works() {
        let t = sample();
        assert_eq!(t.point_lookup(&[Value::Int(11)]), Some(11));
        assert_eq!(t.point_lookup(&[Value::Int(42)]), None);
    }

    #[test]
    fn plain_encoding_behaves_identically() {
        let mut packed = ColumnTable::with_encoding(schema(), true);
        let mut plain = ColumnTable::with_encoding(schema(), false);
        for i in 0..20 {
            let row = [
                Value::Int(i),
                Value::Double((i % 5) as f64),
                Value::text("s"),
            ];
            packed.insert(&row).unwrap();
            plain.insert(&row).unwrap();
        }
        let r = ColRange::between(1, Value::Double(1.0), Value::Double(3.0));
        assert_eq!(
            packed.filter_rows(std::slice::from_ref(&r)),
            plain.filter_rows(&[r])
        );
        assert!(packed.memory_bytes() > 0 && plain.memory_bytes() > 0);
    }

    #[test]
    fn into_rows_round_trip() {
        let t = sample();
        let rows = t.clone().into_rows();
        assert_eq!(rows.len(), 12);
        assert_eq!(rows[0][2], Value::text("new"));
    }

    #[test]
    fn collect_rows_projects() {
        let t = sample();
        let rows = t.collect_rows(RowSel::Subset(&[1]), Some(&[2]));
        assert_eq!(rows, vec![vec![Value::text("paid")]]);
    }

    #[test]
    fn gathered_collect_matches_per_cell_reconstruction() {
        let mut t = sample();
        // leave a dictionary tail in place so the gather crosses regions
        t.update_rows(&[4, 9], &[(1, Value::Double(777.0))])
            .unwrap();
        let subset: Vec<u32> = vec![0, 3, 4, 9, 11];
        let batched = t.collect_rows(RowSel::Subset(&subset), None);
        let reference: Vec<Vec<Value>> = subset.iter().map(|&r| t.row(r)).collect();
        assert_eq!(batched, reference);
        let all = t.collect_rows(RowSel::All, Some(&[2, 0]));
        for (i, row) in all.iter().enumerate() {
            assert_eq!(row[0], *t.value_at(i as u32, 2));
            assert_eq!(row[1], *t.value_at(i as u32, 0));
        }
    }

    #[test]
    fn incremental_merge_matches_one_shot() {
        let mut a = sample();
        let mut b = sample();
        for t in [&mut a, &mut b] {
            t.update_rows(&[2, 3], &[(1, Value::Double(99.5))]).unwrap();
            t.update_rows(&[7], &[(2, Value::text("returned"))])
                .unwrap();
        }
        assert!(a.tail_total() > 0);
        a.compact();
        // Drive b through bounded slices: 3 rows of remap budget per call.
        let mut steps = 0;
        loop {
            let p = b.compact_step(3);
            steps += 1;
            assert!(p.rows_remapped <= 3);
            if p.done {
                break;
            }
            assert!(steps < 100, "chunked merge must terminate");
        }
        assert!(steps > 1, "a 3-row budget must take several slices");
        assert_eq!(b.tail_total(), 0);
        for r in 0..12u32 {
            assert_eq!(a.row(r), b.row(r), "row {r} diverged");
        }
        let range = ColRange::ge(1, Value::Double(50.0));
        assert_eq!(
            a.filter_rows(std::slice::from_ref(&range)),
            b.filter_rows(std::slice::from_ref(&range))
        );
    }

    #[test]
    fn incremental_merge_absorbs_interleaved_writes() {
        let mut t = sample();
        t.update_rows(&[0, 1, 2], &[(1, Value::Double(500.5))])
            .unwrap();
        // Start the merge, then write both behind and ahead of the cursor
        // while it is in flight.
        let p = t.compact_step(4);
        assert!(!p.done);
        t.update_rows(&[1], &[(1, Value::Double(600.5))]).unwrap(); // behind cursor
        t.update_rows(&[10], &[(1, Value::Double(700.5))]).unwrap(); // ahead of cursor
        t.insert(&[Value::Int(12), Value::Double(800.5), Value::text("shipped")])
            .unwrap();
        while !t.compact_step(4).done {}
        assert_eq!(t.value_at(1, 1), &Value::Double(600.5));
        assert_eq!(t.value_at(10, 1), &Value::Double(700.5));
        assert_eq!(t.value_at(12, 1), &Value::Double(800.5));
        assert_eq!(t.row_count(), 13);
        let hits = t.filter_rows(&[ColRange::ge(1, Value::Double(500.0))]);
        assert_eq!(hits, vec![0, 1, 2, 10, 12]);
    }

    #[test]
    fn compact_step_reports_done_on_clean_table() {
        let mut t = sample();
        let p = t.compact_step(1024);
        assert!(p.done);
        assert_eq!(p.rows_remapped, 0);
        assert_eq!(p.entries_folded, 0);
    }

    #[test]
    fn one_shot_compact_finishes_in_flight_merge() {
        let mut t = sample();
        t.update_rows(&[4, 5], &[(1, Value::Double(123.25))])
            .unwrap();
        let p = t.compact_step(2);
        assert!(!p.done);
        t.compact();
        assert_eq!(t.tail_total(), 0);
        assert_eq!(t.value_at(4, 1), &Value::Double(123.25));
        assert!(!t.column(1).merge_in_progress());
    }

    #[test]
    fn one_shot_compact_folds_values_interned_mid_merge() {
        let mut t = sample();
        t.update_rows(&[4, 5], &[(1, Value::Double(123.25))])
            .unwrap();
        // Start a chunked merge, then intern a fresh value while it is in
        // flight: it lands in the rebuilt dictionary's tail.
        assert!(!t.compact_step(2).done);
        t.update_rows(&[7], &[(1, Value::Double(456.75))]).unwrap();
        // A one-shot compact must fold that mid-merge value too.
        t.compact();
        assert_eq!(t.tail_total(), 0, "compact must always empty the tail");
        assert_eq!(t.value_at(7, 1), &Value::Double(456.75));
        let hits = t.filter_rows(&[ColRange::ge(1, Value::Double(400.0))]);
        assert_eq!(hits, vec![7]);
    }

    #[test]
    fn merge_epoch_bumps_on_every_handoff() {
        let mut t = sample();
        let e0 = t.merge_epoch();
        // A clean compact rebuilds nothing: no handoff, no bump.
        t.compact();
        assert_eq!(t.merge_epoch(), e0);
        // One-shot rebuild path.
        t.update_rows(&[0], &[(1, Value::Double(901.0))]).unwrap();
        t.compact();
        let e1 = t.merge_epoch();
        assert!(e1 > e0, "in-place rebuild must bump the epoch");
        // Shadow-swap path: the epoch moves only when the swap lands.
        t.update_rows(&[1], &[(1, Value::Double(902.0))]).unwrap();
        assert!(!t.compact_step(3).done);
        assert_eq!(t.merge_epoch(), e1, "no handoff before the swap");
        while !t.compact_step(3).done {}
        assert!(t.merge_epoch() > e1, "swap completion is the handoff");
    }

    #[test]
    fn cancel_merge_abandons_shadow_state_without_data_loss() {
        let mut t = sample();
        t.update_rows(&[2, 3], &[(1, Value::Double(77.5))]).unwrap();
        let tail = t.tail_total();
        let epoch = t.merge_epoch();
        assert!(!t.compact_step(4).done);
        assert!(t.merge_in_progress());
        assert_eq!(t.cancel_merge(), 1);
        assert!(!t.merge_in_progress());
        assert_eq!(t.merge_epoch(), epoch, "no handoff happened");
        assert_eq!(t.tail_total(), tail, "the tail is untouched");
        // Reads see the same data; a later merge starts from scratch and
        // still folds everything.
        assert_eq!(t.value_at(2, 1), &Value::Double(77.5));
        let mut steps = 0;
        while !t.compact_step(4).done {
            steps += 1;
            assert!(steps < 100);
        }
        assert_eq!(t.tail_total(), 0);
        assert_eq!(t.value_at(3, 1), &Value::Double(77.5));
        // Cancelling when nothing is in flight is a no-op.
        assert_eq!(t.cancel_merge(), 0);
    }

    #[test]
    fn per_column_compact_is_selective() {
        let mut t = sample();
        t.update_rows(&[0], &[(1, Value::Double(50.5))]).unwrap();
        t.update_rows(&[1], &[(2, Value::text("returned"))])
            .unwrap();
        assert_eq!(t.tail_len(1), 1);
        assert_eq!(t.tail_len(2), 1);
        t.compact_column(1);
        assert_eq!(t.tail_len(1), 0);
        assert_eq!(t.tail_len(2), 1, "other columns keep their tails");
        assert_eq!(t.value_at(0, 1), &Value::Double(50.5));
        // threshold-driven selective compact: only tails above min merge
        t.update_rows(
            &[2, 3],
            &[(1, Value::Double(60.5)), (1, Value::Double(61.5))],
        )
        .unwrap();
        assert_eq!(t.tail_len(1), 2);
        let merged = t.compact_columns_over(2);
        assert_eq!(merged, 0, "no tail exceeds 2 entries yet");
        t.update_rows(&[5], &[(1, Value::Double(62.5))]).unwrap();
        let merged = t.compact_columns_over(2);
        assert_eq!(merged, 3, "column 1's tail crossed the watermark");
        assert_eq!(t.tail_len(1), 0);
        assert_eq!(t.tail_len(2), 1);
    }
}
