//! The cost model: store-specific base costs and adjustment functions.
//!
//! All costs are in **milliseconds** of estimated runtime. Multiplicative
//! adjustments are unitless factors normalized to `1.0` at the calibration
//! reference setting, exactly as in the paper's examples
//! (`Costs = BaseSUMCosts^RS · c^RS_NoGroupBy · c^RS_Double ·
//! f^RS_#rows(1000) · f^RS_compression(0.7)`).

use std::collections::BTreeSet;
use std::sync::{Arc, RwLock};

use hsd_query::AggFunc;
use hsd_storage::StoreKind;
use hsd_types::{ColumnType, Json, JsonError, JsonResult};

/// An adjustment function `f` of the cost model. The paper observes that
/// "most of these functions are simple linear functions (e.g., `f_#rows`),
/// piecewise linear functions (e.g., `f_compression`) or even constants
/// (e.g., `c_dataType`)" — these are exactly the three variants.
#[derive(Debug, Clone, PartialEq)]
pub enum AdjustmentFn {
    /// Constant factor, independent of the characteristic.
    Constant(f64),
    /// `slope * x + intercept`.
    Linear {
        /// Per-unit coefficient.
        slope: f64,
        /// Offset at `x = 0`.
        intercept: f64,
    },
    /// Piecewise-linear interpolation through `(x, y)` control points
    /// (sorted by `x`; clamped outside the covered range).
    Piecewise {
        /// Control points.
        points: Vec<(f64, f64)>,
    },
}

impl AdjustmentFn {
    /// Evaluate the function at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        match self {
            AdjustmentFn::Constant(c) => *c,
            AdjustmentFn::Linear { slope, intercept } => slope * x + intercept,
            AdjustmentFn::Piecewise { points } => {
                if points.is_empty() {
                    return 1.0;
                }
                if x <= points[0].0 {
                    return points[0].1;
                }
                if x >= points[points.len() - 1].0 {
                    return points[points.len() - 1].1;
                }
                for w in points.windows(2) {
                    let (x0, y0) = w[0];
                    let (x1, y1) = w[1];
                    if x <= x1 {
                        if (x1 - x0).abs() < f64::EPSILON {
                            return y1;
                        }
                        let t = (x - x0) / (x1 - x0);
                        return y0 + t * (y1 - y0);
                    }
                }
                points[points.len() - 1].1
            }
        }
    }

    /// The same function with every output multiplied by `factor` — the
    /// shape-preserving step the online calibrator applies when a
    /// coefficient family's measured/modeled ratio drifts: the fitted
    /// curve keeps its form (constant stays constant, a piecewise profile
    /// keeps its knees), only its scale moves.
    pub fn scaled(&self, factor: f64) -> Self {
        match self {
            AdjustmentFn::Constant(c) => AdjustmentFn::Constant(c * factor),
            AdjustmentFn::Linear { slope, intercept } => AdjustmentFn::Linear {
                slope: slope * factor,
                intercept: intercept * factor,
            },
            AdjustmentFn::Piecewise { points } => AdjustmentFn::Piecewise {
                points: points.iter().map(|&(x, y)| (x, y * factor)).collect(),
            },
        }
    }

    /// Least-squares linear fit through `(x, y)` samples. Falls back to a
    /// constant when fewer than two distinct x-values are given.
    pub fn fit_linear(samples: &[(f64, f64)]) -> Self {
        if samples.is_empty() {
            return AdjustmentFn::Constant(0.0);
        }
        let n = samples.len() as f64;
        let sx: f64 = samples.iter().map(|(x, _)| x).sum();
        let sy: f64 = samples.iter().map(|(_, y)| y).sum();
        let sxx: f64 = samples.iter().map(|(x, _)| x * x).sum();
        let sxy: f64 = samples.iter().map(|(x, y)| x * y).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            return AdjustmentFn::Constant(sy / n);
        }
        let slope = (n * sxy - sx * sy) / denom;
        let intercept = (sy - slope * sx) / n;
        AdjustmentFn::Linear { slope, intercept }
    }

    /// Piecewise-linear function through the given samples (sorted, deduped
    /// by x; averaged on duplicate x).
    pub fn fit_piecewise(mut samples: Vec<(f64, f64)>) -> Self {
        samples.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut points: Vec<(f64, f64)> = Vec::with_capacity(samples.len());
        for (x, y) in samples {
            match points.last_mut() {
                Some((px, py)) if (*px - x).abs() < 1e-12 => *py = (*py + y) / 2.0,
                _ => points.push((x, y)),
            }
        }
        AdjustmentFn::Piecewise { points }
    }
}

fn agg_index(f: AggFunc) -> usize {
    match f {
        AggFunc::Sum => 0,
        AggFunc::Avg => 1,
        AggFunc::Min => 2,
        AggFunc::Max => 3,
        AggFunc::Count => 4,
    }
}

fn type_index(t: ColumnType) -> usize {
    ColumnType::ALL
        .iter()
        .position(|x| *x == t)
        .expect("type in ALL")
}

/// Calibrated cost parameters for one store.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreModel {
    // --- aggregation -----------------------------------------------------
    /// Unitless multiplier per aggregation function (SUM = 1 reference).
    pub base_agg: [f64; 5],
    /// Multiplier applied when the query has a GROUP BY (`c_groupBy`).
    pub c_group_by: f64,
    /// Multiplier per aggregated data type (`c_dataType`, Double = 1).
    pub c_data_type: [f64; 7],
    /// Milliseconds for the reference aggregation as a function of the row
    /// count (`f_#rows`).
    pub f_rows: AdjustmentFn,
    /// Multiplier as a function of the aggregated attribute's compression
    /// rate (`f_compression`), normalized to 1 at the reference rate.
    pub f_compression: AdjustmentFn,
    // --- point/range selection -------------------------------------------
    /// Milliseconds for a primary-key point lookup (including one-tuple
    /// reconstruction).
    pub sel_point_ms: f64,
    /// Per-table-row milliseconds when the predicate is evaluated without a
    /// (secondary) index — the paper's "a table scan is executed". For the
    /// column store this is the cheap packed-code scan of the implicit
    /// dictionary index.
    pub sel_per_row_scan: f64,
    /// Per-table-row milliseconds when a secondary index serves the
    /// predicate (≈ 0 for the row store's B-tree range probe).
    pub sel_per_row_indexed: f64,
    /// Milliseconds per matched (emitted) row.
    pub sel_per_match: f64,
    /// Multiplier by the number of selected columns
    /// (`f_#selectedColumns`): tuple-reconstruction cost, constant for the
    /// row store, increasing for the column store.
    pub f_selected_columns: AdjustmentFn,
    // --- insert ------------------------------------------------------------
    /// Milliseconds per inserted row as a function of the table's current
    /// row count (uniqueness verification grows with the table).
    pub ins_row: AdjustmentFn,
    // --- update ------------------------------------------------------------
    /// Milliseconds per updated row (single attribute).
    pub upd_row_ms: f64,
    /// Multiplier by the number of assigned columns (`f_#affectedColumns`).
    pub f_affected_columns: AdjustmentFn,
    // --- delta maintenance --------------------------------------------------
    /// Multiplier on scan-type costs as a function of the accumulated
    /// dictionary-tail *fraction* (tail entries / rows), normalized to 1 at
    /// an empty tail. The column store's delta region disables the fused
    /// scan kernels and adds per-code tail membership tests, so scans
    /// degrade as the tail grows; the row store has no delta region and
    /// keeps the neutral constant 1.
    pub f_tail: AdjustmentFn,
    /// Milliseconds for a full delta merge as a function of the row count
    /// (dictionary rebuild + code-vector remap). Constant 0 for the row
    /// store. This is the cost side of the advisor's merge-scheduling
    /// decision ([`crate::maintenance::evaluate_merge`]).
    pub merge_ms: AdjustmentFn,
}

impl StoreModel {
    /// The calibrated cost of one reference scan-type statement over `rows`
    /// rows: the reference aggregation (`f_rows`) plus full-table predicate
    /// evaluation (`sel_per_row_scan`) — exactly the two terms the `f_tail`
    /// degradation multiplies in the estimator. This is the base quantity
    /// both merge scheduling ([`crate::maintenance::evaluate_merge`]) and
    /// maintenance-aware placement
    /// ([`crate::maintenance::estimate_maintenance`]) price the
    /// dictionary-tail penalty against.
    pub fn scan_base_ms(&self, rows: f64) -> f64 {
        self.f_rows.eval(rows).max(0.0) + self.sel_per_row_scan.max(0.0) * rows
    }

    /// A neutral model (all factors 1, all costs 0) — useful as a building
    /// block in tests.
    pub fn neutral() -> Self {
        StoreModel {
            base_agg: [1.0; 5],
            c_group_by: 1.0,
            c_data_type: [1.0; 7],
            f_rows: AdjustmentFn::Constant(0.0),
            f_compression: AdjustmentFn::Constant(1.0),
            sel_point_ms: 0.0,
            sel_per_row_scan: 0.0,
            sel_per_row_indexed: 0.0,
            sel_per_match: 0.0,
            f_selected_columns: AdjustmentFn::Constant(1.0),
            ins_row: AdjustmentFn::Constant(0.0),
            upd_row_ms: 0.0,
            f_affected_columns: AdjustmentFn::Constant(1.0),
            f_tail: AdjustmentFn::Constant(1.0),
            merge_ms: AdjustmentFn::Constant(0.0),
        }
    }

    /// Base-cost multiplier for an aggregation function.
    pub fn base_agg_of(&self, f: AggFunc) -> f64 {
        self.base_agg[agg_index(f)]
    }

    /// Set the base-cost multiplier for an aggregation function.
    pub fn set_base_agg(&mut self, f: AggFunc, v: f64) {
        self.base_agg[agg_index(f)] = v;
    }

    /// `c_dataType` for a column type.
    pub fn c_type_of(&self, t: ColumnType) -> f64 {
        self.c_data_type[type_index(t)]
    }

    /// Set `c_dataType` for a column type.
    pub fn set_c_type(&mut self, t: ColumnType, v: f64) {
        self.c_data_type[type_index(t)] = v;
    }
}

/// Disk-tier pricing: what persistent-tier residency of a cold partition
/// adds to each access class, on top of the store-specific costs above.
///
/// The engine keeps a demoted cold partition as an on-disk segment and
/// decodes it per query, so the tier dimension prices three things:
///
/// * **scans** pay a decode cost proportional to the segment size
///   ([`TierModel::scan_mib_ms`]);
/// * **point reads** that miss the hot partition pay a segment fetch
///   ([`TierModel::point_ms`]);
/// * **writes** routed to the cold partition pay the write-through cycle —
///   load, apply, re-encode, republish — proportional to the segment size
///   ([`TierModel::rewrite_mib_ms`]).
///
/// All three are zero in [`TierModel::neutral`] (disk is free — placement
/// collapses to the memory-only model) and strictly positive in
/// [`TierModel::default_disk`], so demotion is only chosen when the
/// workload's cold-access share is low enough that the saved memory is
/// worth the slower accesses — the budget trade
/// [`crate::budget::select_under_budget`] arbitrates.
#[derive(Debug, Clone, PartialEq)]
pub struct TierModel {
    /// Milliseconds per MiB of cold segment decoded by a scan-type access.
    pub scan_mib_ms: f64,
    /// Milliseconds added to a point read that must hit the segment.
    pub point_ms: f64,
    /// Milliseconds per MiB for one write-through rewrite of the segment.
    pub rewrite_mib_ms: f64,
}

impl TierModel {
    /// Free disk: tier residency adds nothing (tests; memory-only
    /// deployments).
    pub fn neutral() -> Self {
        TierModel {
            scan_mib_ms: 0.0,
            point_ms: 0.0,
            rewrite_mib_ms: 0.0,
        }
    }

    /// Conservative local-flash profile used when no measured tier
    /// calibration exists: ~170 MiB/s effective segment decode for scans,
    /// tens of microseconds per point fetch, and a rewrite roughly 3x the
    /// decode (encode + fsync + rename dominate).
    pub fn default_disk() -> Self {
        TierModel {
            scan_mib_ms: 6.0,
            point_ms: 0.05,
            rewrite_mib_ms: 20.0,
        }
    }
}

/// Metadata recorded at calibration time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CalibrationMeta {
    /// Base row count of the calibration tables.
    pub base_rows: usize,
    /// Compression rate of the reference aggregation attribute.
    pub reference_compression: f64,
    /// Arity of the calibration table (the reference for
    /// `f_selected_columns`).
    pub table_arity: usize,
    /// Timing repeats per micro-benchmark.
    pub repeats: usize,
    /// How many online re-fits ([`ModelHandle::refit`]) have amended this
    /// model since its one-shot calibration. `0` for a freshly calibrated
    /// (or pre-self-calibration) artifact.
    pub refits: u64,
    /// Overall modeled-vs-measured drift gauge at the last re-fit (mean
    /// absolute log error; `0.0` when never refit). Provenance only — the
    /// live gauge belongs to the calibrator, not the artifact.
    pub drift: f64,
}

/// The complete calibrated cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Row-store parameters.
    pub row: StoreModel,
    /// Column-store parameters.
    pub column: StoreModel,
    /// Join overhead multiplier indexed by `[fact_store][dim_store]`
    /// (0 = row, 1 = column): the paper's store-combination base costs
    /// (`BaseSUMCosts^{RS,CS}`), normalized against the fact-side
    /// aggregation.
    pub join_factor: [[f64; 2]; 2],
    /// Dimension-side hash-build milliseconds vs. dimension rows, per dim
    /// store.
    pub dim_build: [AdjustmentFn; 2],
    /// Fixed overhead per additional partition in a horizontal union
    /// (partial-aggregate merging).
    pub union_overhead_ms: f64,
    /// Disk-tier pricing for demoted cold partitions.
    pub tier: TierModel,
    /// Calibration provenance.
    pub meta: CalibrationMeta,
}

/// Index into the per-store arrays of [`CostModel`].
pub fn store_index(s: StoreKind) -> usize {
    match s {
        StoreKind::Row => 0,
        StoreKind::Column => 1,
    }
}

impl CostModel {
    /// Neutral model for tests.
    pub fn neutral() -> Self {
        CostModel {
            row: StoreModel::neutral(),
            column: StoreModel::neutral(),
            join_factor: [[1.0; 2]; 2],
            dim_build: [AdjustmentFn::Constant(0.0), AdjustmentFn::Constant(0.0)],
            union_overhead_ms: 0.0,
            tier: TierModel::neutral(),
            meta: CalibrationMeta::default(),
        }
    }

    /// Parameters of one store.
    pub fn store(&self, s: StoreKind) -> &StoreModel {
        match s {
            StoreKind::Row => &self.row,
            StoreKind::Column => &self.column,
        }
    }

    /// Mutable parameters of one store.
    pub fn store_mut(&mut self, s: StoreKind) -> &mut StoreModel {
        match s {
            StoreKind::Row => &mut self.row,
            StoreKind::Column => &mut self.column,
        }
    }

    /// Join factor for a store combination.
    pub fn join_factor_of(&self, fact: StoreKind, dim: StoreKind) -> f64 {
        self.join_factor[store_index(fact)][store_index(dim)]
    }

    /// Serialize to JSON (the "system-specific cost model" artifact the
    /// offline mode produces).
    pub fn to_json(&self) -> String {
        let join_factor = Json::Arr(
            self.join_factor
                .iter()
                .map(|row| Json::Arr(row.iter().map(|&v| Json::Num(v)).collect()))
                .collect(),
        );
        Json::obj([
            ("row", store_model_to_json(&self.row)),
            ("column", store_model_to_json(&self.column)),
            ("join_factor", join_factor),
            (
                "dim_build",
                Json::Arr(self.dim_build.iter().map(adjustment_to_json).collect()),
            ),
            ("union_overhead_ms", Json::Num(self.union_overhead_ms)),
            (
                "tier",
                Json::obj([
                    ("scan_mib_ms", Json::Num(self.tier.scan_mib_ms)),
                    ("point_ms", Json::Num(self.tier.point_ms)),
                    ("rewrite_mib_ms", Json::Num(self.tier.rewrite_mib_ms)),
                ]),
            ),
            (
                "meta",
                Json::obj([
                    ("base_rows", Json::Int(self.meta.base_rows as i64)),
                    (
                        "reference_compression",
                        Json::Num(self.meta.reference_compression),
                    ),
                    ("table_arity", Json::Int(self.meta.table_arity as i64)),
                    ("repeats", Json::Int(self.meta.repeats as i64)),
                    ("refits", Json::Int(self.meta.refits as i64)),
                    ("drift", Json::Num(self.meta.drift)),
                ]),
            ),
        ])
        .to_string_pretty()
    }

    /// Deserialize a model written by [`CostModel::to_json`].
    pub fn from_json(s: &str) -> JsonResult<Self> {
        let root = Json::parse(s)?;
        let jf = root.get("join_factor")?.as_arr()?;
        if jf.len() != 2 {
            return Err(JsonError("join_factor must be 2x2".to_string()));
        }
        let mut join_factor = [[0.0; 2]; 2];
        for (i, row) in jf.iter().enumerate() {
            let row = row.as_arr()?;
            if row.len() != 2 {
                return Err(JsonError("join_factor must be 2x2".to_string()));
            }
            for (j, v) in row.iter().enumerate() {
                join_factor[i][j] = v.as_f64()?;
            }
        }
        let db = root.get("dim_build")?.as_arr()?;
        if db.len() != 2 {
            return Err(JsonError("dim_build must have 2 entries".to_string()));
        }
        let meta = root.get("meta")?;
        // Models written before the tier dimension existed have no "tier"
        // key; they load with free-disk pricing (the behavior they encoded).
        let tier = match root.get_opt("tier") {
            Some(t) => TierModel {
                scan_mib_ms: t.get("scan_mib_ms")?.as_f64()?,
                point_ms: t.get("point_ms")?.as_f64()?,
                rewrite_mib_ms: t.get("rewrite_mib_ms")?.as_f64()?,
            },
            None => TierModel::neutral(),
        };
        Ok(CostModel {
            row: store_model_from_json(root.get("row")?)?,
            column: store_model_from_json(root.get("column")?)?,
            join_factor,
            dim_build: [adjustment_from_json(&db[0])?, adjustment_from_json(&db[1])?],
            union_overhead_ms: root.get("union_overhead_ms")?.as_f64()?,
            tier,
            meta: CalibrationMeta {
                base_rows: meta.get("base_rows")?.as_usize()?,
                reference_compression: meta.get("reference_compression")?.as_f64()?,
                table_arity: meta.get("table_arity")?.as_usize()?,
                repeats: meta.get("repeats")?.as_usize()?,
                // Pre-self-calibration artifacts carry no refit provenance;
                // they load as never-refit models (the behavior they encoded).
                refits: match meta.get_opt("refits") {
                    Some(v) => v.as_usize()? as u64,
                    None => 0,
                },
                drift: match meta.get_opt("drift") {
                    Some(v) => v.as_f64()?,
                    None => 0.0,
                },
            },
        })
    }
}

// ---------------------------------------------------------------------------
// Versioned model handle (the self-calibrating pipeline's shared artifact)

/// Versioned, shared, refittable handle to a [`CostModel`].
///
/// Before the self-calibrating pipeline, every advisor path owned its own
/// `CostModel` snapshot, so a re-fit would have had to rebuild the advisor.
/// The handle replaces the owned snapshot: cloning it shares the same
/// underlying model, [`ModelHandle::snapshot`] yields a cheap immutable
/// `Arc` view for one pricing pass, and [`ModelHandle::refit`] publishes an
/// amended model atomically while bumping the version counter — readers
/// mid-estimate keep pricing against the snapshot they took, and the next
/// pass picks up the re-fitted coefficients.
#[derive(Debug, Clone)]
pub struct ModelHandle {
    inner: Arc<RwLock<VersionedModel>>,
}

#[derive(Debug)]
struct VersionedModel {
    model: Arc<CostModel>,
    version: u64,
}

impl ModelHandle {
    /// Wrap a model at version 0.
    pub fn new(model: CostModel) -> Self {
        ModelHandle {
            inner: Arc::new(RwLock::new(VersionedModel {
                model: Arc::new(model),
                version: 0,
            })),
        }
    }

    /// An immutable snapshot of the current model. Pricing passes take one
    /// snapshot at entry so a concurrent re-fit can never mix coefficient
    /// versions within a single estimate.
    pub fn snapshot(&self) -> Arc<CostModel> {
        self.read().model.clone()
    }

    /// Version counter: 0 at construction, bumped by every
    /// [`ModelHandle::refit`] / [`ModelHandle::replace`].
    pub fn version(&self) -> u64 {
        self.read().version
    }

    /// Re-fit the model in place: `adjust` mutates a private copy, which is
    /// then published atomically with a bumped version (and a bumped
    /// [`CalibrationMeta::refits`] provenance counter). Returns the new
    /// version.
    pub fn refit(&self, adjust: impl FnOnce(&mut CostModel)) -> u64 {
        let mut guard = self.write();
        let mut model = (*guard.model).clone();
        adjust(&mut model);
        model.meta.refits += 1;
        guard.model = Arc::new(model);
        guard.version += 1;
        guard.version
    }

    /// Replace the model wholesale (e.g. a fresh offline calibration).
    /// Returns the new version.
    pub fn replace(&self, model: CostModel) -> u64 {
        let mut guard = self.write();
        guard.model = Arc::new(model);
        guard.version += 1;
        guard.version
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, VersionedModel> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, VersionedModel> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

// ---------------------------------------------------------------------------
// Schema self-check (committed cost_model.json vs the current CostModel)

/// Result of [`CostModel::schema_diff`]: how a serialized artifact's key
/// paths differ from the current [`CostModel`] schema.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SchemaDiff {
    /// Key paths the current schema has but the artifact lacks. These are
    /// exactly the fields that would load as silent defaults — the drift
    /// the check exists to fail loudly on.
    pub missing: Vec<String>,
    /// Key paths the artifact has but the current schema does not (a field
    /// was removed or renamed; the artifact is stale).
    pub unknown: Vec<String>,
}

impl SchemaDiff {
    /// No differences: the artifact matches the current schema exactly.
    pub fn is_clean(&self) -> bool {
        self.missing.is_empty() && self.unknown.is_empty()
    }
}

/// Collect the dotted key paths of a serialized model. An adjustment
/// function serializes as a single-variant object (`{"Constant": ...}` /
/// `{"Linear": ...}` / `{"Piecewise": ...}`); the variant is a fitted
/// *value*, not schema, so the path stops at the field holding it.
fn collect_key_paths(prefix: &str, j: &Json, out: &mut BTreeSet<String>) {
    let Json::Obj(map) = j else {
        if !prefix.is_empty() {
            out.insert(prefix.to_string());
        }
        return;
    };
    let is_adjustment = map.len() == 1
        && map
            .keys()
            .all(|k| matches!(k.as_str(), "Constant" | "Linear" | "Piecewise"));
    if is_adjustment && !prefix.is_empty() {
        out.insert(prefix.to_string());
        return;
    }
    for (k, v) in map {
        let path = if prefix.is_empty() {
            k.clone()
        } else {
            format!("{prefix}.{k}")
        };
        collect_key_paths(&path, v, out);
    }
}

impl CostModel {
    /// The canonical key paths of the current `CostModel` JSON schema,
    /// derived from a neutral model's own serialization — so the check can
    /// never drift from the struct the way a hand-maintained key list
    /// would.
    pub fn schema_key_paths() -> BTreeSet<String> {
        let json = Json::parse(&CostModel::neutral().to_json()).expect("own serialization parses");
        let mut out = BTreeSet::new();
        collect_key_paths("", &json, &mut out);
        out
    }

    /// Compare a serialized artifact (e.g. the committed `cost_model.json`)
    /// against the current schema. Back-compat defaults make *loading* an
    /// old artifact legal; this check is deliberately strict so the
    /// **committed** reference artifact cannot silently rely on them —
    /// `calibrate_model --check` fails CI on any difference.
    pub fn schema_diff(artifact: &str) -> JsonResult<SchemaDiff> {
        let json = Json::parse(artifact)?;
        let mut have = BTreeSet::new();
        collect_key_paths("", &json, &mut have);
        let want = CostModel::schema_key_paths();
        Ok(SchemaDiff {
            missing: want.difference(&have).cloned().collect(),
            unknown: have.difference(&want).cloned().collect(),
        })
    }
}

fn adjustment_to_json(f: &AdjustmentFn) -> Json {
    match f {
        AdjustmentFn::Constant(c) => Json::obj([("Constant", Json::Num(*c))]),
        AdjustmentFn::Linear { slope, intercept } => Json::obj([(
            "Linear",
            Json::obj([
                ("slope", Json::Num(*slope)),
                ("intercept", Json::Num(*intercept)),
            ]),
        )]),
        AdjustmentFn::Piecewise { points } => Json::obj([(
            "Piecewise",
            Json::obj([(
                "points",
                Json::Arr(
                    points
                        .iter()
                        .map(|&(x, y)| Json::Arr(vec![Json::Num(x), Json::Num(y)]))
                        .collect(),
                ),
            )]),
        )]),
    }
}

fn adjustment_from_json(j: &Json) -> JsonResult<AdjustmentFn> {
    if let Some(c) = j.get_opt("Constant") {
        return Ok(AdjustmentFn::Constant(c.as_f64()?));
    }
    if let Some(l) = j.get_opt("Linear") {
        return Ok(AdjustmentFn::Linear {
            slope: l.get("slope")?.as_f64()?,
            intercept: l.get("intercept")?.as_f64()?,
        });
    }
    let p = j.get("Piecewise")?;
    let points = p
        .get("points")?
        .as_arr()?
        .iter()
        .map(|pt| {
            let pt = pt.as_arr()?;
            if pt.len() != 2 {
                return Err(JsonError("piecewise point must be [x, y]".to_string()));
            }
            Ok((pt[0].as_f64()?, pt[1].as_f64()?))
        })
        .collect::<JsonResult<Vec<_>>>()?;
    Ok(AdjustmentFn::Piecewise { points })
}

fn f64_array_to_json(values: &[f64]) -> Json {
    Json::Arr(values.iter().map(|&v| Json::Num(v)).collect())
}

fn f64_array_from_json<const N: usize>(j: &Json) -> JsonResult<[f64; N]> {
    let arr = j.as_arr()?;
    if arr.len() != N {
        return Err(JsonError(format!(
            "expected array of {N} numbers, got {}",
            arr.len()
        )));
    }
    let mut out = [0.0; N];
    for (slot, v) in out.iter_mut().zip(arr) {
        *slot = v.as_f64()?;
    }
    Ok(out)
}

fn store_model_to_json(m: &StoreModel) -> Json {
    Json::obj([
        ("base_agg", f64_array_to_json(&m.base_agg)),
        ("c_group_by", Json::Num(m.c_group_by)),
        ("c_data_type", f64_array_to_json(&m.c_data_type)),
        ("f_rows", adjustment_to_json(&m.f_rows)),
        ("f_compression", adjustment_to_json(&m.f_compression)),
        ("sel_point_ms", Json::Num(m.sel_point_ms)),
        ("sel_per_row_scan", Json::Num(m.sel_per_row_scan)),
        ("sel_per_row_indexed", Json::Num(m.sel_per_row_indexed)),
        ("sel_per_match", Json::Num(m.sel_per_match)),
        (
            "f_selected_columns",
            adjustment_to_json(&m.f_selected_columns),
        ),
        ("ins_row", adjustment_to_json(&m.ins_row)),
        ("upd_row_ms", Json::Num(m.upd_row_ms)),
        (
            "f_affected_columns",
            adjustment_to_json(&m.f_affected_columns),
        ),
        ("f_tail", adjustment_to_json(&m.f_tail)),
        ("merge_ms", adjustment_to_json(&m.merge_ms)),
    ])
}

fn store_model_from_json(j: &Json) -> JsonResult<StoreModel> {
    Ok(StoreModel {
        base_agg: f64_array_from_json(j.get("base_agg")?)?,
        c_group_by: j.get("c_group_by")?.as_f64()?,
        c_data_type: f64_array_from_json(j.get("c_data_type")?)?,
        f_rows: adjustment_from_json(j.get("f_rows")?)?,
        f_compression: adjustment_from_json(j.get("f_compression")?)?,
        sel_point_ms: j.get("sel_point_ms")?.as_f64()?,
        sel_per_row_scan: j.get("sel_per_row_scan")?.as_f64()?,
        sel_per_row_indexed: j.get("sel_per_row_indexed")?.as_f64()?,
        sel_per_match: j.get("sel_per_match")?.as_f64()?,
        f_selected_columns: adjustment_from_json(j.get("f_selected_columns")?)?,
        ins_row: adjustment_from_json(j.get("ins_row")?)?,
        upd_row_ms: j.get("upd_row_ms")?.as_f64()?,
        f_affected_columns: adjustment_from_json(j.get("f_affected_columns")?)?,
        f_tail: adjustment_from_json(j.get("f_tail")?)?,
        merge_ms: adjustment_from_json(j.get("merge_ms")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_eval() {
        assert_eq!(AdjustmentFn::Constant(2.5).eval(100.0), 2.5);
    }

    #[test]
    fn linear_eval_and_fit() {
        let f = AdjustmentFn::Linear {
            slope: 2.0,
            intercept: 1.0,
        };
        assert_eq!(f.eval(3.0), 7.0);
        // perfect fit recovery
        let samples: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 5.0)).collect();
        let fit = AdjustmentFn::fit_linear(&samples);
        match fit {
            AdjustmentFn::Linear { slope, intercept } => {
                assert!((slope - 3.0).abs() < 1e-9);
                assert!((intercept - 5.0).abs() < 1e-9);
            }
            other => panic!("expected linear, got {other:?}"),
        }
    }

    #[test]
    fn degenerate_linear_fit_is_constant() {
        let fit = AdjustmentFn::fit_linear(&[(2.0, 5.0), (2.0, 7.0)]);
        assert_eq!(fit, AdjustmentFn::Constant(6.0));
        assert_eq!(AdjustmentFn::fit_linear(&[]), AdjustmentFn::Constant(0.0));
    }

    #[test]
    fn piecewise_interpolates_and_clamps() {
        let f = AdjustmentFn::fit_piecewise(vec![(1.0, 10.0), (0.0, 0.0), (2.0, 40.0)]);
        assert_eq!(f.eval(0.5), 5.0);
        assert_eq!(f.eval(1.5), 25.0);
        assert_eq!(f.eval(-1.0), 0.0); // clamped left
        assert_eq!(f.eval(9.0), 40.0); // clamped right
        assert_eq!(f.eval(1.0), 10.0); // exact point
    }

    #[test]
    fn piecewise_duplicate_x_averages() {
        let f = AdjustmentFn::fit_piecewise(vec![(1.0, 10.0), (1.0, 20.0)]);
        assert_eq!(f.eval(1.0), 15.0);
    }

    #[test]
    fn empty_piecewise_is_identity_factor() {
        assert_eq!(AdjustmentFn::fit_piecewise(vec![]).eval(3.0), 1.0);
    }

    #[test]
    fn store_model_accessors() {
        let mut m = StoreModel::neutral();
        m.set_base_agg(AggFunc::Avg, 1.4);
        assert_eq!(m.base_agg_of(AggFunc::Avg), 1.4);
        assert_eq!(m.base_agg_of(AggFunc::Sum), 1.0);
        m.set_c_type(ColumnType::Integer, 0.8);
        assert_eq!(m.c_type_of(ColumnType::Integer), 0.8);
        assert_eq!(m.c_type_of(ColumnType::Double), 1.0);
    }

    #[test]
    fn cost_model_json_round_trip() {
        let mut m = CostModel::neutral();
        m.row.f_rows = AdjustmentFn::Linear {
            slope: 0.001,
            intercept: 0.2,
        };
        m.join_factor[0][1] = 1.7;
        m.column.f_tail = AdjustmentFn::Piecewise {
            points: vec![(0.0, 1.0), (0.1, 1.8)],
        };
        m.column.merge_ms = AdjustmentFn::Linear {
            slope: 2e-4,
            intercept: 0.5,
        };
        let json = m.to_json();
        let back = CostModel::from_json(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn tier_model_json_round_trip_and_back_compat() {
        let mut m = CostModel::neutral();
        m.tier = TierModel::default_disk();
        let json = m.to_json();
        let back = CostModel::from_json(&json).unwrap();
        assert_eq!(back.tier, TierModel::default_disk());
        // A model serialized before tier pricing existed (no "tier" key)
        // must parse with the neutral tier — disk residency priced free,
        // exactly the pre-tier behaviour.
        let Json::Obj(mut fields) = Json::parse(&json).unwrap() else {
            panic!("cost model serializes as an object");
        };
        assert!(fields.remove("tier").is_some(), "tier object serialized");
        let old = CostModel::from_json(&Json::Obj(fields).to_string()).unwrap();
        assert_eq!(old.tier, TierModel::neutral());
    }

    #[test]
    fn store_lookup() {
        let m = CostModel::neutral();
        assert_eq!(m.store(StoreKind::Row), &m.row);
        assert_eq!(m.store(StoreKind::Column), &m.column);
        assert_eq!(m.join_factor_of(StoreKind::Row, StoreKind::Column), 1.0);
    }

    /// Price a small scan+point workload — the "does an old artifact price
    /// identically" probe of the back-compat tests.
    fn probe_estimates(m: &CostModel) -> Vec<f64> {
        use crate::estimator::{EstimationCtx, TableCtx};
        use hsd_query::{AggFunc, AggregateQuery, Query, SelectQuery};
        use hsd_storage::ColRange;
        use hsd_types::Value;

        let mut ctx = EstimationCtx::new();
        ctx.insert(
            "t",
            TableCtx {
                stats: hsd_catalog::TableStats {
                    row_count: 10_000,
                    columns: vec![
                        hsd_catalog::ColumnStats {
                            distinct: 10_000,
                            min: Some(Value::BigInt(0)),
                            max: Some(Value::BigInt(9_999)),
                            compression_rate: 0.0,
                        },
                        hsd_catalog::ColumnStats {
                            distinct: 100,
                            min: Some(Value::Double(0.0)),
                            max: Some(Value::Double(100.0)),
                            compression_rate: 0.7,
                        },
                    ],
                },
                indexed: vec![],
                column_types: vec![ColumnType::BigInt, ColumnType::Double],
                pk_columns: vec![0],
                delta_tail: 500,
                observed_tail_rate: None,
            },
        );
        let queries = [
            Query::Aggregate(AggregateQuery::simple("t", AggFunc::Sum, 1)),
            Query::Select(SelectQuery {
                table: "t".into(),
                columns: Some(vec![1]),
                filter: vec![ColRange::eq(0, Value::BigInt(7))],
            }),
        ];
        let mut out = Vec::new();
        for store in [StoreKind::Row, StoreKind::Column] {
            let assign: std::collections::BTreeMap<String, StoreKind> =
                [("t".to_string(), store)].into();
            for q in &queries {
                out.push(crate::estimator::estimate_query(m, &ctx, &assign, q));
            }
        }
        out
    }

    /// Pre-tier AND pre-drift artifacts (written before the `tier` object
    /// and the `meta.refits`/`meta.drift` provenance keys existed) must
    /// deserialize with neutral defaults and price identically to the same
    /// model serialized today.
    #[test]
    fn pre_tier_and_pre_drift_artifacts_load_and_price_identically() {
        let mut m = CostModel::neutral();
        m.row.f_rows = AdjustmentFn::Linear {
            slope: 1e-3,
            intercept: 0.1,
        };
        m.column.f_rows = AdjustmentFn::Linear {
            slope: 1e-4,
            intercept: 0.2,
        };
        m.column.f_tail = AdjustmentFn::Linear {
            slope: 10.0,
            intercept: 1.0,
        };
        m.row.sel_point_ms = 0.002;
        m.column.sel_point_ms = 0.01;
        let Json::Obj(mut fields) = Json::parse(&m.to_json()).unwrap() else {
            panic!("cost model serializes as an object");
        };
        // Strip everything a pre-tier, pre-drift writer never emitted.
        assert!(fields.remove("tier").is_some());
        let Some(Json::Obj(meta)) = fields.get_mut("meta") else {
            panic!("meta object serialized");
        };
        assert!(meta.remove("refits").is_some());
        assert!(meta.remove("drift").is_some());
        let old = CostModel::from_json(&Json::Obj(fields).to_string()).unwrap();
        assert_eq!(old.tier, TierModel::neutral());
        assert_eq!(old.meta.refits, 0);
        assert_eq!(old.meta.drift, 0.0);
        assert_eq!(
            probe_estimates(&old),
            probe_estimates(&m),
            "neutral defaults must not change a single estimate"
        );
    }

    #[test]
    fn model_handle_versions_refits_and_shares_across_clones() {
        let handle = ModelHandle::new(CostModel::neutral());
        assert_eq!(handle.version(), 0);
        let before = handle.snapshot();
        let shared = handle.clone();
        let v = handle.refit(|m| m.row.sel_point_ms = 0.5);
        assert_eq!(v, 1);
        // The pre-refit snapshot is immutable; new snapshots (including via
        // the clone) see the published re-fit and its provenance bump.
        assert_eq!(before.row.sel_point_ms, 0.0);
        assert_eq!(shared.snapshot().row.sel_point_ms, 0.5);
        assert_eq!(shared.version(), 1);
        assert_eq!(shared.snapshot().meta.refits, 1);
        let mut fresh = CostModel::neutral();
        fresh.column.sel_point_ms = 0.9;
        assert_eq!(handle.replace(fresh), 2);
        assert_eq!(shared.snapshot().column.sel_point_ms, 0.9);
        assert_eq!(shared.snapshot().meta.refits, 0, "replace is wholesale");
    }

    #[test]
    fn schema_diff_is_clean_for_current_serialization() {
        let diff = CostModel::schema_diff(&CostModel::neutral().to_json()).unwrap();
        assert!(diff.is_clean(), "{diff:?}");
        // The fitted adjustment variant is a value, not schema: swapping a
        // Constant for a Piecewise must not register as a difference.
        let mut m = CostModel::neutral();
        m.column.f_tail = AdjustmentFn::Piecewise {
            points: vec![(0.0, 1.0), (0.5, 3.0)],
        };
        assert!(CostModel::schema_diff(&m.to_json()).unwrap().is_clean());
    }

    #[test]
    fn schema_diff_flags_missing_and_unknown_keys() {
        let Json::Obj(mut fields) = Json::parse(&CostModel::neutral().to_json()).unwrap() else {
            panic!("cost model serializes as an object");
        };
        fields.remove("tier");
        fields.insert("bogus_extra".to_string(), Json::Num(1.0));
        let diff = CostModel::schema_diff(&Json::Obj(fields).to_string()).unwrap();
        assert!(diff.missing.iter().any(|p| p.starts_with("tier")));
        assert_eq!(diff.unknown, vec!["bogus_extra".to_string()]);
        assert!(!diff.is_clean());
    }
}
