//! Human-readable recommendation reports for the database administrator.

use std::fmt::Write as _;

use crate::advisor::Recommendation;

/// Render a recommendation as the report shown to the DBA.
pub fn render(rec: &Recommendation) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== Storage Advisor Recommendation ===");
    let _ = writeln!(out, "estimated workload runtime:");
    let _ = writeln!(
        out,
        "  all tables in row store   : {:>12.3} ms",
        rec.rs_only_ms
    );
    let _ = writeln!(
        out,
        "  all tables in column store: {:>12.3} ms",
        rec.cs_only_ms
    );
    let _ = writeln!(
        out,
        "  recommended layout        : {:>12.3} ms",
        rec.estimated_ms
    );
    let baseline = rec.rs_only_ms.min(rec.cs_only_ms);
    if baseline > 0.0 {
        let gain = 100.0 * (baseline - rec.estimated_ms) / baseline;
        let _ = writeln!(
            out,
            "  improvement vs best single-store baseline: {gain:.1} %"
        );
    }
    if rec.disk_bytes > 0.0 {
        let _ = writeln!(
            out,
            "  modeled residency: {:.1} MiB memory + {:.1} MiB disk",
            rec.footprint_bytes / (1024.0 * 1024.0),
            rec.disk_bytes / (1024.0 * 1024.0)
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "per-table decisions:");
    for t in &rec.tables {
        let _ = writeln!(
            out,
            "  {:<16} RS {:>10.3} ms | CS {:>10.3} ms -> {}",
            t.table,
            t.cost_row_ms,
            t.cost_column_ms,
            t.placement.describe()
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "migration statements:");
    for s in &rec.statements {
        let _ = writeln!(out, "  {s}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advisor::TableRecommendation;
    use hsd_catalog::{StorageLayout, TablePlacement};
    use hsd_storage::StoreKind;

    #[test]
    fn report_contains_key_facts() {
        let rec = Recommendation {
            layout: StorageLayout::uniform(["t"], StoreKind::Column),
            estimated_ms: 10.0,
            rs_only_ms: 40.0,
            cs_only_ms: 15.0,
            tables: vec![TableRecommendation {
                table: "t".into(),
                cost_row_ms: 40.0,
                cost_column_ms: 15.0,
                placement: TablePlacement::Single(StoreKind::Column),
            }],
            statements: vec!["ALTER TABLE t MOVE TO COLUMN STORE;".into()],
            footprint_bytes: 0.0,
            disk_bytes: 0.0,
            budget_bytes: None,
            budget_feasible: true,
        };
        let text = render(&rec);
        assert!(text.contains("row store   :"));
        assert!(text.contains("ALTER TABLE t MOVE TO COLUMN STORE;"));
        assert!(text.contains("single (CS)"));
        assert!(text.contains("improvement"));
    }
}
