//! TPC-H-like schema, data generator, and mixed workload.
//!
//! The paper's final experiment (Figure 10) "used a TPC-H like scenario by
//! using the TPC-H data (with a scale factor of 1) but generating a mixed
//! workload of OLTP queries (inserts and updates for all tables but nation
//! and region) and OLAP queries (aggregates with and without joins and
//! groupings mainly on lineitem and orders)". This crate provides:
//!
//! * [`schema`] — the eight TPC-H tables with faithful column sets, types,
//!   and primary keys;
//! * [`gen`] — a deterministic dbgen-style generator with the standard
//!   cardinality ratios at an adjustable scale factor;
//! * [`workload`] — the mixed workload of the final experiment;
//! * [`scenario`] — the deterministic multi-tenant HTAP scenario driver
//!   (uniform, Zipf-skew, flash-crowd, phase-shift, tenant-churn).

#![warn(missing_docs)]

pub mod gen;
pub mod scenario;
pub mod schema;
pub mod workload;

pub use gen::TpchGenerator;
pub use scenario::{
    generate_scenario, load_tenants, tenant_table, tenant_tables, MixedStatement, MixedWorkload,
    Scenario, ScenarioConfig,
};
pub use workload::{generate_workload, TpchWorkloadConfig};
