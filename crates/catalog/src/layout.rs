//! Storage layouts: the advisor's output and the engine's partitioning
//! annotation.
//!
//! A layout assigns every table either a single store or a partition
//! specification with up to two horizontal and up to two vertical partitions
//! — the exact search space of the paper's heuristic (Section 3.2:
//! *"For each table, we consider (up to) two horizontal and (up to) two
//! vertical partitions"*).

use std::collections::BTreeMap;

use hsd_storage::StoreKind;
use hsd_types::{ColumnIdx, Json, JsonResult, Value};

/// Horizontal split: rows with `split_column >= split_value` form the *hot*
/// partition (kept in the row store for fast inserts and whole-tuple
/// updates); the remaining *historic* rows form the cold partition.
/// Inserts are routed to the hot partition.
#[derive(Debug, Clone, PartialEq)]
pub struct HorizontalSpec {
    /// Column the split predicate applies to.
    pub split_column: ColumnIdx,
    /// Rows with `split_column >= split_value` are hot.
    pub split_value: Value,
}

/// Vertical split of a table (or of its cold horizontal partition): the
/// listed non-key columns live in a row-store fragment, every other non-key
/// column lives in a column-store fragment, and both fragments carry the
/// primary key (the paper: "the partitions are not disjoint but all contain
/// the primary key attributes").
#[derive(Debug, Clone, PartialEq)]
pub struct VerticalSpec {
    /// Non-key columns placed in the row-store fragment (the "OLTP
    /// attributes").
    pub row_cols: Vec<ColumnIdx>,
}

/// Storage tier of a fragment: where its bytes reside.
///
/// Tier is the third placement dimension next to store kind and
/// partitioning (following hStorage-DB's heterogeneity-aware placement):
/// the advisor prices memory vs disk residency per fragment and the mover
/// demotes/promotes fragments the same way it flips stores. Only the
/// *cold* region of a table can be disk-resident — the hot partition
/// exists precisely because it absorbs writes, which disk residency would
/// make pay a full segment rewrite each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Tier {
    /// Resident in memory (the default; all placements before tiering).
    #[default]
    Memory,
    /// Resident as an immutable on-disk column segment, loaded per scan.
    Disk,
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Tier::Memory => "memory",
            Tier::Disk => "disk",
        })
    }
}

/// Partitioning of one table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PartitionSpec {
    /// Optional horizontal hot/cold split.
    pub horizontal: Option<HorizontalSpec>,
    /// Optional vertical split (applies to the cold partition when a
    /// horizontal split is present, else to the whole table).
    pub vertical: Option<VerticalSpec>,
    /// Storage tier of the cold partition. `Tier::Disk` demotes the cold
    /// column fragment to an on-disk segment; with no horizontal split the
    /// "cold partition" is the whole table, so
    /// `PartitionSpec { cold_tier: Tier::Disk, ..Default::default() }` is
    /// the whole-table-on-disk placement. Disk residency composes with a
    /// horizontal split but not with a vertical one (the vertical pair's
    /// row fragment serves point reads, which disk residency defeats).
    pub cold_tier: Tier,
}

impl PartitionSpec {
    /// Whether the spec actually partitions anything (a disk-resident cold
    /// tier counts: it changes the physical layout even with no split).
    pub fn is_trivial(&self) -> bool {
        self.horizontal.is_none() && self.vertical.is_none() && self.cold_tier == Tier::Memory
    }
}

/// Where one table's data lives.
#[derive(Debug, Clone, PartialEq)]
pub enum TablePlacement {
    /// The whole table resides in one store.
    Single(StoreKind),
    /// The table is partitioned across stores.
    Partitioned(PartitionSpec),
}

impl TablePlacement {
    /// Short human-readable description, used in recommendation reports.
    pub fn describe(&self) -> String {
        match self {
            TablePlacement::Single(s) => format!("single ({s})"),
            TablePlacement::Partitioned(spec) => {
                let mut parts = Vec::new();
                if let Some(h) = &spec.horizontal {
                    parts.push(format!(
                        "horizontal split at col#{} >= {}",
                        h.split_column, h.split_value
                    ));
                }
                if let Some(v) = &spec.vertical {
                    parts.push(format!("vertical split, RS cols {:?}", v.row_cols));
                }
                if spec.cold_tier == Tier::Disk {
                    parts.push("cold tier: disk".to_string());
                }
                if parts.is_empty() {
                    "partitioned (trivial)".to_string()
                } else {
                    format!("partitioned ({})", parts.join("; "))
                }
            }
        }
    }
}

/// A complete storage layout: table name → placement.
///
/// Keyed by name (not id) so layouts can be serialized, diffed, and applied
/// to a freshly loaded database.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StorageLayout {
    /// Per-table placements.
    pub placements: BTreeMap<String, TablePlacement>,
}

impl StorageLayout {
    /// Empty layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Layout placing every listed table in the same store (the paper's
    /// "RS only" / "CS only" baselines).
    pub fn uniform<'a>(tables: impl IntoIterator<Item = &'a str>, store: StoreKind) -> Self {
        let placements = tables
            .into_iter()
            .map(|t| (t.to_string(), TablePlacement::Single(store)))
            .collect();
        StorageLayout { placements }
    }

    /// Set a table's placement.
    pub fn set(&mut self, table: impl Into<String>, placement: TablePlacement) {
        self.placements.insert(table.into(), placement);
    }

    /// Look up a table's placement (default: row store, HANA's default for
    /// newly created tables).
    pub fn placement(&self, table: &str) -> TablePlacement {
        self.placements
            .get(table)
            .cloned()
            .unwrap_or(TablePlacement::Single(StoreKind::Row))
    }

    /// Serialize to JSON (layouts are persisted and diffed as artifacts).
    pub fn to_json(&self) -> String {
        let placements: BTreeMap<String, Json> = self
            .placements
            .iter()
            .map(|(name, p)| (name.clone(), placement_to_json(p)))
            .collect();
        Json::obj([("placements", Json::Obj(placements))]).to_string_pretty()
    }

    /// Deserialize a layout written by [`StorageLayout::to_json`].
    pub fn from_json(s: &str) -> JsonResult<Self> {
        let root = Json::parse(s)?;
        let mut placements = BTreeMap::new();
        for (name, p) in root.get("placements")?.as_obj()? {
            placements.insert(name.clone(), placement_from_json(p)?);
        }
        Ok(StorageLayout { placements })
    }

    /// Tables whose placement differs from `other` — the "adaptation
    /// recommendations" of the online mode.
    pub fn diff<'a>(&'a self, other: &'a StorageLayout) -> Vec<&'a str> {
        let mut out = Vec::new();
        for (name, placement) in &self.placements {
            if other.placements.get(name) != Some(placement) {
                out.push(name.as_str());
            }
        }
        for name in other.placements.keys() {
            if !self.placements.contains_key(name) {
                out.push(name.as_str());
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

fn store_to_json(s: StoreKind) -> Json {
    Json::Str(match s {
        StoreKind::Row => "Row".to_string(),
        StoreKind::Column => "Column".to_string(),
    })
}

fn store_from_json(j: &Json) -> JsonResult<StoreKind> {
    match j.as_str()? {
        "Row" => Ok(StoreKind::Row),
        "Column" => Ok(StoreKind::Column),
        other => Err(hsd_types::JsonError(format!(
            "unknown store kind `{other}`"
        ))),
    }
}

/// Encode one placement as JSON (the per-table encoding of
/// [`StorageLayout::to_json`]; also used by the engine's WAL record codec).
pub fn placement_to_json(p: &TablePlacement) -> Json {
    match p {
        TablePlacement::Single(s) => Json::obj([("Single", store_to_json(*s))]),
        TablePlacement::Partitioned(spec) => {
            let horizontal = match &spec.horizontal {
                None => Json::Null,
                Some(h) => Json::obj([
                    ("split_column", Json::Int(h.split_column as i64)),
                    ("split_value", Json::from_value(&h.split_value)),
                ]),
            };
            let vertical = match &spec.vertical {
                None => Json::Null,
                Some(v) => Json::obj([(
                    "row_cols",
                    Json::Arr(v.row_cols.iter().map(|&c| Json::Int(c as i64)).collect()),
                )]),
            };
            let cold_tier = match spec.cold_tier {
                // Omitted for memory: layouts written before tiering parse
                // identically, and tiered layouts parse under old readers'
                // `get_opt` defaults.
                Tier::Memory => Json::Null,
                Tier::Disk => Json::Str("Disk".to_string()),
            };
            Json::obj([(
                "Partitioned",
                Json::obj([
                    ("horizontal", horizontal),
                    ("vertical", vertical),
                    ("cold_tier", cold_tier),
                ]),
            )])
        }
    }
}

/// Decode a placement written by [`placement_to_json`].
pub fn placement_from_json(j: &Json) -> JsonResult<TablePlacement> {
    if let Some(s) = j.get_opt("Single") {
        return Ok(TablePlacement::Single(store_from_json(s)?));
    }
    let spec = j.get("Partitioned")?;
    let horizontal = match spec.get_opt("horizontal") {
        None => None,
        Some(h) => Some(HorizontalSpec {
            split_column: h.get("split_column")?.as_usize()?,
            split_value: h.get("split_value")?.to_value()?,
        }),
    };
    let vertical = match spec.get_opt("vertical") {
        None => None,
        Some(v) => Some(VerticalSpec {
            row_cols: v
                .get("row_cols")?
                .as_arr()?
                .iter()
                .map(Json::as_usize)
                .collect::<JsonResult<Vec<_>>>()?,
        }),
    };
    let cold_tier = match spec.get_opt("cold_tier") {
        None => Tier::Memory,
        Some(t) => match t.as_str()? {
            "Memory" => Tier::Memory,
            "Disk" => Tier::Disk,
            other => {
                return Err(hsd_types::JsonError(format!("unknown tier `{other}`")));
            }
        },
    };
    Ok(TablePlacement::Partitioned(PartitionSpec {
        horizontal,
        vertical,
        cold_tier,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_layout() {
        let l = StorageLayout::uniform(["a", "b"], StoreKind::Column);
        assert_eq!(l.placement("a"), TablePlacement::Single(StoreKind::Column));
        assert_eq!(l.placement("b"), TablePlacement::Single(StoreKind::Column));
        // unknown tables default to row store
        assert_eq!(l.placement("zzz"), TablePlacement::Single(StoreKind::Row));
    }

    #[test]
    fn trivial_spec_detection() {
        assert!(PartitionSpec::default().is_trivial());
        let spec = PartitionSpec {
            horizontal: Some(HorizontalSpec {
                split_column: 0,
                split_value: Value::Int(5),
            }),
            ..Default::default()
        };
        assert!(!spec.is_trivial());
        let disk_only = PartitionSpec {
            cold_tier: Tier::Disk,
            ..Default::default()
        };
        assert!(!disk_only.is_trivial(), "a disk cold tier changes layout");
    }

    #[test]
    fn describe_placements() {
        let single = TablePlacement::Single(StoreKind::Row);
        assert_eq!(single.describe(), "single (RS)");
        let part = TablePlacement::Partitioned(PartitionSpec {
            horizontal: Some(HorizontalSpec {
                split_column: 2,
                split_value: Value::Int(9),
            }),
            vertical: Some(VerticalSpec {
                row_cols: vec![1, 3],
            }),
            ..Default::default()
        });
        let d = part.describe();
        assert!(d.contains("col#2 >= 9"), "{d}");
        assert!(d.contains("[1, 3]"), "{d}");
        let tiered = TablePlacement::Partitioned(PartitionSpec {
            cold_tier: Tier::Disk,
            ..Default::default()
        });
        assert!(tiered.describe().contains("disk"), "{}", tiered.describe());
    }

    #[test]
    fn diff_detects_changes() {
        let mut a = StorageLayout::uniform(["x", "y"], StoreKind::Row);
        let b = a.clone();
        assert!(a.diff(&b).is_empty());
        a.set("y", TablePlacement::Single(StoreKind::Column));
        a.set("z", TablePlacement::Single(StoreKind::Row));
        let d = a.diff(&b);
        assert_eq!(d, vec!["y", "z"]);
    }

    #[test]
    fn layout_serializes() {
        let mut l = StorageLayout::new();
        l.set(
            "orders",
            TablePlacement::Partitioned(PartitionSpec {
                horizontal: Some(HorizontalSpec {
                    split_column: 0,
                    split_value: Value::Int(100),
                }),
                vertical: Some(VerticalSpec { row_cols: vec![2] }),
                ..Default::default()
            }),
        );
        l.set("small", TablePlacement::Single(StoreKind::Column));
        l.set(
            "trivial",
            TablePlacement::Partitioned(PartitionSpec::default()),
        );
        l.set(
            "archive",
            TablePlacement::Partitioned(PartitionSpec {
                cold_tier: Tier::Disk,
                ..Default::default()
            }),
        );
        let json = l.to_json();
        let back = StorageLayout::from_json(&json).unwrap();
        assert_eq!(back, l);
    }

    #[test]
    fn pre_tier_layouts_still_parse() {
        // A layout written before `cold_tier` existed must decode with the
        // memory default (back-compat for committed artifacts).
        let legacy = r#"{"placements": {"orders": {"Partitioned": {
            "horizontal": {"split_column": 0, "split_value": {"Int": 5}},
            "vertical": null
        }}}}"#;
        let l = StorageLayout::from_json(legacy).unwrap();
        match l.placement("orders") {
            TablePlacement::Partitioned(spec) => assert_eq!(spec.cold_tier, Tier::Memory),
            other => panic!("unexpected {other:?}"),
        }
    }
}
