//! The online working mode: record, re-evaluate, adapt.
//!
//! Figure 5 of the paper: after the offline mode produced the initial
//! layout, the system "records extended workload and table statistics and,
//! in certain time intervals, ... re-evaluates the storage layout based on
//! the current workload statistics and recommends adaptations if required".

use hsd_engine::{mover, HybridDatabase, StatisticsRecorder};
use hsd_query::{Query, Workload};
use hsd_types::Result;

use crate::advisor::{Recommendation, StorageAdvisor};

/// Settings of the online advisor.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Re-evaluate after this many recorded statements.
    pub evaluation_interval: usize,
    /// Required relative improvement before an adaptation is recommended
    /// (changing a layout costs downtime, so small wins are ignored).
    pub min_improvement: f64,
    /// Maximum number of recent queries kept as the estimation window.
    pub window_capacity: usize,
    /// Whether partitioning recommendations are enabled.
    pub enable_partitioning: bool,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            evaluation_interval: 500,
            min_improvement: 0.10,
            window_capacity: 2_000,
            enable_partitioning: true,
        }
    }
}

/// An adaptation the online advisor wants to apply.
#[derive(Debug, Clone)]
pub struct AdaptationRecommendation {
    /// The full recommendation (layout, estimates, statements).
    pub recommendation: Recommendation,
    /// Estimated runtime of the window under the *current* layout (ms).
    pub current_ms: f64,
    /// Estimated relative improvement (`0.25` = 25 % faster).
    pub improvement: f64,
    /// Tables whose placement changes.
    pub changed_tables: Vec<String>,
}

/// Online advisor: wraps a [`StorageAdvisor`] with statistics recording and
/// interval-based re-evaluation.
#[derive(Debug)]
pub struct OnlineAdvisor {
    advisor: StorageAdvisor,
    cfg: OnlineConfig,
    recorder: StatisticsRecorder,
    window: Vec<Query>,
    since_last_eval: usize,
}

impl OnlineAdvisor {
    /// New online advisor around a calibrated storage advisor.
    pub fn new(advisor: StorageAdvisor, cfg: OnlineConfig) -> Self {
        OnlineAdvisor {
            advisor,
            cfg,
            recorder: StatisticsRecorder::new(),
            window: Vec::new(),
            since_last_eval: 0,
        }
    }

    /// Observe one query (recording statistics and the estimation window)
    /// and — at interval boundaries — re-evaluate the layout. Returns an
    /// adaptation recommendation when a sufficiently better layout exists.
    pub fn observe(
        &mut self,
        db: &HybridDatabase,
        query: &Query,
    ) -> Result<Option<AdaptationRecommendation>> {
        self.recorder.record(db, query);
        if self.window.len() == self.cfg.window_capacity {
            self.window.remove(0);
        }
        self.window.push(query.clone());
        self.since_last_eval += 1;
        if self.since_last_eval < self.cfg.evaluation_interval {
            return Ok(None);
        }
        self.since_last_eval = 0;
        self.evaluate(db)
    }

    /// Force a re-evaluation of the current layout.
    pub fn evaluate(&self, db: &HybridDatabase) -> Result<Option<AdaptationRecommendation>> {
        if self.window.is_empty() {
            return Ok(None);
        }
        let window = Workload::from_queries(self.window.clone());
        let rec = self.advisor.recommend_online(
            db,
            self.recorder.stats(),
            &window,
            self.cfg.enable_partitioning,
        )?;
        // Cost of the window under the database's *current* layout.
        let schemas: Vec<_> = db
            .catalog()
            .entries()
            .iter()
            .map(|e| e.schema.clone())
            .collect();
        let stats = db
            .catalog()
            .entries()
            .iter()
            .map(|e| (e.schema.name.clone(), e.stats.clone()))
            .collect();
        let ctx = crate::advisor::build_ctx(&schemas, &stats);
        let current_layout = db.current_layout();
        let current_ms = crate::estimator::estimate_workload_layout(
            &self.advisor.model,
            &ctx,
            &current_layout,
            &window,
        );
        if current_ms <= 0.0 {
            return Ok(None);
        }
        let improvement = (current_ms - rec.estimated_ms) / current_ms;
        if improvement < self.cfg.min_improvement {
            return Ok(None);
        }
        let changed: Vec<String> = rec
            .layout
            .diff(&current_layout)
            .into_iter()
            .map(str::to_string)
            .collect();
        if changed.is_empty() {
            return Ok(None);
        }
        Ok(Some(AdaptationRecommendation {
            recommendation: rec,
            current_ms,
            improvement,
            changed_tables: changed,
        }))
    }

    /// Apply an adaptation (the "directly applied to the database system"
    /// path; the paper notes this "should be applied with care").
    pub fn apply(
        &mut self,
        db: &mut HybridDatabase,
        adaptation: &AdaptationRecommendation,
    ) -> Result<Vec<String>> {
        let moved = mover::apply_layout(db, &adaptation.recommendation.layout)?;
        // A layout change invalidates the recorded interval.
        self.recorder.reset();
        self.window.clear();
        self.since_last_eval = 0;
        Ok(moved)
    }

    /// Recorded statements since the last reset.
    pub fn recorded_statements(&self) -> u64 {
        self.recorder.stats().total_statements
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{AdjustmentFn, CostModel};
    use hsd_catalog::TablePlacement;
    use hsd_query::{MixedWorkloadConfig, TableSpec, WorkloadGenerator};
    use hsd_storage::StoreKind;

    fn model() -> CostModel {
        let mut m = CostModel::neutral();
        m.row.f_rows = AdjustmentFn::Linear {
            slope: 1e-3,
            intercept: 0.05,
        };
        m.column.f_rows = AdjustmentFn::Linear {
            slope: 1e-4,
            intercept: 0.05,
        };
        m.row.ins_row = AdjustmentFn::Constant(0.002);
        m.column.ins_row = AdjustmentFn::Constant(0.01);
        m.row.sel_point_ms = 0.002;
        m.column.sel_point_ms = 0.01;
        m.row.upd_row_ms = 0.002;
        m.column.upd_row_ms = 0.01;
        m
    }

    fn spec() -> TableSpec {
        TableSpec::paper_wide("w", 2_000, 9)
    }

    #[test]
    fn online_advisor_detects_workload_shift() {
        let s = spec();
        let mut db = HybridDatabase::new();
        db.create_single(s.schema().unwrap(), StoreKind::Row)
            .unwrap();
        db.bulk_load("w", s.rows()).unwrap();

        let cfg = OnlineConfig {
            evaluation_interval: 100,
            min_improvement: 0.05,
            enable_partitioning: false,
            ..Default::default()
        };
        let mut online = OnlineAdvisor::new(StorageAdvisor::new(model()), cfg);

        // Phase 1: OLTP-only — the current row-store layout should hold.
        let oltp = WorkloadGenerator::single_table(
            &s,
            &MixedWorkloadConfig {
                queries: 100,
                olap_fraction: 0.0,
                ..Default::default()
            },
        );
        let mut adaptations = 0;
        for q in &oltp.queries {
            db.execute(q).unwrap();
            if online.observe(&db, q).unwrap().is_some() {
                adaptations += 1;
            }
        }
        assert_eq!(adaptations, 0, "row store is already optimal for OLTP");

        // Phase 2: the workload turns analytical — an adaptation to the
        // column store must be recommended. The phase-2 generator allocates
        // insert ids beyond everything phase 1 could have inserted.
        let s2 = TableSpec {
            rows: 10_000,
            ..spec()
        };
        let olap = WorkloadGenerator::single_table(
            &s2,
            &MixedWorkloadConfig {
                queries: 100,
                olap_fraction: 0.8,
                ..Default::default()
            },
        );
        let mut adaptation = None;
        for q in &olap.queries {
            db.execute(q).unwrap();
            if let Some(a) = online.observe(&db, q).unwrap() {
                adaptation = Some(a);
                break;
            }
        }
        let adaptation = adaptation.expect("workload shift must trigger adaptation");
        assert!(adaptation.improvement >= 0.05);
        assert_eq!(adaptation.changed_tables, vec!["w".to_string()]);
        assert_eq!(
            adaptation.recommendation.layout.placement("w"),
            TablePlacement::Single(StoreKind::Column)
        );

        // Apply it and verify the database moved.
        let moved = online.apply(&mut db, &adaptation).unwrap();
        assert_eq!(moved, vec!["w".to_string()]);
        assert_eq!(
            db.catalog().single_store_of("w").unwrap(),
            StoreKind::Column
        );
        assert_eq!(
            online.recorded_statements(),
            0,
            "interval resets after adaptation"
        );
    }
}
