//! In-memory hybrid storage: a row store and a dictionary-compressed column
//! store.
//!
//! This crate is the physical substrate the storage advisor reasons about.
//! It deliberately reproduces the asymmetries the paper's cost model is built
//! on (Section 2 of the paper):
//!
//! * **Row store** ([`row_store::RowTable`]): rows live contiguously in a
//!   fixed-width arena. Retrieving or updating a whole tuple touches one
//!   small memory region; appending is cheap. Scanning a *single attribute*
//!   strides across full tuples, so analytical scans are slow. A hash index
//!   on the primary key serves point queries; optional ordered secondary
//!   indexes accelerate range predicates ("if an index is available" in the
//!   paper's `f_selectivity`).
//! * **Column store** ([`column_store::ColumnTable`]): every column is
//!   dictionary-encoded — an order-preserving *sorted* dictionary plus an
//!   unsorted *tail* that absorbs newly arriving values (the delta of
//!   HANA-style stores), and a bit-packed code vector. Scans over one
//!   attribute read only that column's tightly packed codes, so aggregation
//!   is fast; the sorted dictionary acts as the "implicit index" the paper
//!   mentions for selections. Inserts must consult every column's dictionary
//!   and tuple reconstruction must gather one code per column, which is what
//!   makes OLTP work comparatively expensive.
//!
//! The [`table::Table`] enum gives the engine a store-agnostic interface, so
//! the same query executor runs against either store — exactly the situation
//! in which "where should this table live?" becomes the advisor's question.

#![warn(missing_docs)]

pub mod bitpack;
pub mod column_store;
pub mod dictionary;
pub mod predicate;
pub mod row_store;
pub mod table;

pub use bitpack::BitPackedVec;
pub use column_store::{ColumnData, ColumnTable};
pub use dictionary::Dictionary;
pub use predicate::{ColRange, RowSel};
pub use row_store::RowTable;
pub use table::{PkKey, StoreKind, Table};
