//! Extended workload statistics — the online mode's inputs.
//!
//! The paper (Section 4): *"Examples for extended workload statistics are
//! information about the number of inserts per table, the number of updates
//! and aggregates per attribute or the number of joins between tables."*
//! This module holds exactly those counters, plus the update-predicate
//! envelopes the partition advisor uses to locate "tuples that are
//! frequently updated as a whole".

use std::collections::BTreeMap;

use hsd_types::{ColumnIdx, Value};

/// Accumulated envelope of predicate ranges observed on one column.
///
/// The envelope widens to cover every observed range; together with basic
/// table statistics it lets the advisor estimate *which* tuples OLTP
/// activity concentrates on (e.g. "updates touch ids ≥ 0.9·n").
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RangeEnvelope {
    /// Smallest observed lower bound (None until first observation).
    pub lo: Option<Value>,
    /// Largest observed upper bound.
    pub hi: Option<Value>,
    /// Number of observed ranges.
    pub count: u64,
}

impl RangeEnvelope {
    /// Widen the envelope with an observed closed range.
    pub fn observe(&mut self, lo: &Value, hi: &Value) {
        match &self.lo {
            None => self.lo = Some(lo.clone()),
            Some(cur) if lo < cur => self.lo = Some(lo.clone()),
            _ => {}
        }
        match &self.hi {
            None => self.hi = Some(hi.clone()),
            Some(cur) if hi > cur => self.hi = Some(hi.clone()),
            _ => {}
        }
        self.count += 1;
    }
}

/// Per-column activity counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColumnActivity {
    /// Times the column appeared as an aggregate input.
    pub aggregates: u64,
    /// Times the column was a GROUP BY key.
    pub group_bys: u64,
    /// Times the column was assigned by an UPDATE (SET target).
    pub update_sets: u64,
    /// Times the column appeared in an UPDATE's predicate.
    pub update_preds: u64,
    /// Times the column appeared in a SELECT's predicate.
    pub select_preds: u64,
    /// Times the column was projected by a SELECT.
    pub select_projs: u64,
}

impl ColumnActivity {
    /// OLTP-leaning uses of this column (updates + point/range accesses).
    pub fn oltp_score(&self) -> u64 {
        self.update_sets + self.update_preds + self.select_preds + self.select_projs
    }

    /// OLAP-leaning uses of this column (aggregates + grouping).
    pub fn olap_score(&self) -> u64 {
        self.aggregates + self.group_bys
    }
}

/// Per-table activity counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TableActivity {
    /// Number of INSERT statements (not rows) against the table.
    pub inserts: u64,
    /// Number of UPDATE statements.
    pub updates: u64,
    /// Updates that assigned at least half of the non-key attributes —
    /// the paper's "updated as a whole" signal for horizontal partitioning.
    pub whole_tuple_updates: u64,
    /// Number of SELECT (point/range) statements.
    pub selects: u64,
    /// Number of aggregation queries touching the table.
    pub aggregations: u64,
    /// Dictionary-tail entries actually observed to appear on the table's
    /// column-store regions while recording (positive `delta_tail` deltas
    /// sampled per statement). Where the static estimate charges one entry
    /// per assigned column / inserted row (an upper bound — repeated values
    /// intern nothing), this counter is ground truth from the live
    /// dictionaries, and the advisor feeds the implied per-write rate back
    /// into its maintenance drivers. 0 for row-store layouts (no delta).
    pub observed_tail_growth: u64,
    /// Write statements (inserts + updates) recorded while
    /// `observed_tail_growth` was accumulated — the denominator of the
    /// observed tail rate.
    pub observed_write_statements: u64,
    /// Per-column counters.
    pub columns: Vec<ColumnActivity>,
    /// Envelopes of UPDATE predicates per column.
    pub update_envelopes: BTreeMap<ColumnIdx, RangeEnvelope>,
    /// Join partner counts, keyed by the partner table's name.
    pub join_partners: BTreeMap<String, u64>,
}

impl TableActivity {
    /// Fresh counters for an `arity`-column table.
    pub fn new(arity: usize) -> Self {
        TableActivity {
            columns: vec![ColumnActivity::default(); arity],
            ..Default::default()
        }
    }

    /// Total statements recorded against this table.
    pub fn total_statements(&self) -> u64 {
        self.inserts + self.updates + self.selects + self.aggregations
    }

    /// Fraction of recorded statements that are inserts (drives the
    /// horizontal-partitioning heuristic's first test).
    pub fn insert_fraction(&self) -> f64 {
        let total = self.total_statements();
        if total == 0 {
            0.0
        } else {
            self.inserts as f64 / total as f64
        }
    }

    /// Observed dictionary-tail entries per write statement, measured while
    /// the table had a column-store region — `None` until any such write
    /// was recorded. This is the live feedback that tightens the static
    /// one-entry-per-assignment upper bound in the advisor's maintenance
    /// drivers.
    pub fn observed_tail_rate(&self) -> Option<f64> {
        if self.observed_write_statements == 0 {
            return None;
        }
        Some(self.observed_tail_growth as f64 / self.observed_write_statements as f64)
    }
}

/// Extended workload statistics across all tables, keyed by table name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExtendedStats {
    /// Per-table activity.
    pub tables: BTreeMap<String, TableActivity>,
    /// Total statements recorded.
    pub total_statements: u64,
}

impl ExtendedStats {
    /// Empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get-or-create the activity entry for a table.
    pub fn table_mut(&mut self, name: &str, arity: usize) -> &mut TableActivity {
        self.tables
            .entry(name.to_string())
            .or_insert_with(|| TableActivity::new(arity))
    }

    /// Read-only accessor.
    pub fn table(&self, name: &str) -> Option<&TableActivity> {
        self.tables.get(name)
    }

    /// Merge another batch of statistics into this one (used when several
    /// recorders feed one advisor).
    pub fn merge(&mut self, other: &ExtendedStats) {
        self.total_statements += other.total_statements;
        for (name, theirs) in &other.tables {
            let arity = theirs.columns.len();
            let ours = self.table_mut(name, arity);
            ours.inserts += theirs.inserts;
            ours.updates += theirs.updates;
            ours.whole_tuple_updates += theirs.whole_tuple_updates;
            ours.selects += theirs.selects;
            ours.aggregations += theirs.aggregations;
            ours.observed_tail_growth += theirs.observed_tail_growth;
            ours.observed_write_statements += theirs.observed_write_statements;
            if ours.columns.len() < arity {
                ours.columns.resize(arity, ColumnActivity::default());
            }
            for (o, t) in ours.columns.iter_mut().zip(&theirs.columns) {
                o.aggregates += t.aggregates;
                o.group_bys += t.group_bys;
                o.update_sets += t.update_sets;
                o.update_preds += t.update_preds;
                o.select_preds += t.select_preds;
                o.select_projs += t.select_projs;
            }
            for (col, env) in &theirs.update_envelopes {
                let entry = ours.update_envelopes.entry(*col).or_default();
                if let (Some(lo), Some(hi)) = (&env.lo, &env.hi) {
                    entry.observe(lo, hi);
                    entry.count += env.count - 1;
                }
            }
            for (partner, n) in &theirs.join_partners {
                *ours.join_partners.entry(partner.clone()).or_insert(0) += n;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_widens() {
        let mut env = RangeEnvelope::default();
        env.observe(&Value::Int(10), &Value::Int(20));
        env.observe(&Value::Int(5), &Value::Int(15));
        env.observe(&Value::Int(12), &Value::Int(30));
        assert_eq!(env.lo, Some(Value::Int(5)));
        assert_eq!(env.hi, Some(Value::Int(30)));
        assert_eq!(env.count, 3);
    }

    #[test]
    fn activity_scores() {
        let a = ColumnActivity {
            aggregates: 5,
            group_bys: 2,
            update_sets: 1,
            ..Default::default()
        };
        assert_eq!(a.olap_score(), 7);
        assert_eq!(a.oltp_score(), 1);
    }

    #[test]
    fn insert_fraction() {
        let mut t = TableActivity::new(2);
        assert_eq!(t.insert_fraction(), 0.0);
        t.inserts = 30;
        t.updates = 50;
        t.selects = 10;
        t.aggregations = 10;
        assert!((t.insert_fraction() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn table_mut_creates_entries() {
        let mut s = ExtendedStats::new();
        s.table_mut("orders", 4).inserts += 1;
        s.table_mut("orders", 4).inserts += 1;
        assert_eq!(s.table("orders").unwrap().inserts, 2);
        assert!(s.table("missing").is_none());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ExtendedStats::new();
        a.total_statements = 10;
        {
            let t = a.table_mut("t", 2);
            t.inserts = 3;
            t.columns[0].aggregates = 4;
            t.update_envelopes
                .entry(0)
                .or_default()
                .observe(&Value::Int(0), &Value::Int(10));
            *t.join_partners.entry("dim".into()).or_insert(0) += 2;
        }
        let mut b = ExtendedStats::new();
        b.total_statements = 5;
        {
            let t = b.table_mut("t", 2);
            t.inserts = 2;
            t.columns[0].aggregates = 1;
            t.update_envelopes
                .entry(0)
                .or_default()
                .observe(&Value::Int(5), &Value::Int(20));
            *t.join_partners.entry("dim".into()).or_insert(0) += 1;
        }
        a.merge(&b);
        assert_eq!(a.total_statements, 15);
        let t = a.table("t").unwrap();
        assert_eq!(t.inserts, 5);
        assert_eq!(t.columns[0].aggregates, 5);
        let env = &t.update_envelopes[&0];
        assert_eq!(env.lo, Some(Value::Int(0)));
        assert_eq!(env.hi, Some(Value::Int(20)));
        assert_eq!(env.count, 2);
        assert_eq!(t.join_partners["dim"], 3);
    }
}
