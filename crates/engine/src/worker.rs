//! Background incremental-merge worker: drains advisor-scheduled delta
//! merges one bounded slice at a time, so a busy serving loop keeps its
//! tails shrinking without ever taking the full-table stop-the-world remap
//! of [`crate::mover::merge_delta`].
//!
//! The worker owns a queue of [`MergeJob`]s, keyed and deduplicated by
//! `(table, partition)` — a cold-fragment merge of a partitioned table and
//! a whole-table merge are distinct jobs. Each tick the worker picks the
//! job with the highest **accrued-penalty-per-row** score (the table's
//! dictionary-tail entries per merge-region row — the per-row scan
//! degradation its delta is inflicting right now), FIFO on ties, so
//! several tables' merges interleave by urgency instead of arrival order.
//! The selected job advances by one slice through the resumable
//! shadow-rebuild protocol, routed to the job's region; queries executed
//! between ticks see a fully consistent table, writes are mirrored into
//! the shadow behind the copy cursor, and the dictionary handoff at swap
//! bumps the table's merge epoch
//! ([`crate::database::HybridDatabase::merge_epoch`]) so observers can
//! detect completion without watching every slice.
//!
//! Slices run through [`crate::mover::merge_slice_concurrent`]: the
//! sort-heavy dictionary rebuild is planned under a shared read pin
//! (concurrent with scans of the same table), and only the budgeted remap
//! itself holds the table's write latch. Since [`HybridDatabase`] is
//! internally latched per table, the worker never takes a database-wide
//! lock — a merge slice on one table runs in parallel with queries on
//! every other table, and with reads of its own table during the plan
//! phase.
//!
//! The per-slice row budget is set by a [`MergePacer`] that adapts to
//! observed query latency: feed every served query's latency to
//! [`MaintenanceWorker::observe_query_latency`], and the pacer shrinks the
//! budget when the recent p99 degrades against its long-run baseline
//! (merge slices are stealing too much of the serving loop) and grows it
//! when the stream is healthy or idle (spare capacity — finish the merge
//! sooner). This is the classic maintenance governor: total merge work is
//! fixed, the pacer only chooses how finely it is diced.
//!
//! Two execution modes share the same worker:
//!
//! * **Cooperative** (the right mode on a single core): the serving loop
//!   calls [`MaintenanceWorker::tick`] between statements.
//! * **Threaded** ([`BackgroundWorker::spawn`] with the same
//!   [`WorkerConfig`]): a `std::thread` drains slices against an
//!   `Arc<HybridDatabase>` — the multi-core path. Queries and slices
//!   interleave at per-table latch granularity: a query on the merging
//!   table waits at most one budgeted remap, and queries on other tables
//!   never wait at all.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use hsd_storage::MergeProgress;
use hsd_types::Result;

use crate::database::HybridDatabase;
use crate::mover;
use crate::partition::MergePartition;

/// One queued merge job: the table plus the physical region to fold. Jobs
/// are identified (and deduplicated) by the full `(table, partition)` pair —
/// a cold-fragment merge and a later whole-table merge of the same table
/// are distinct work items.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeJob {
    /// Table the merge targets.
    pub table: String,
    /// Physical region of the table the merge is routed to.
    pub partition: MergePartition,
}

/// Settings of the [`MergePacer`].
#[derive(Debug, Clone)]
pub struct PacerConfig {
    /// Starting per-slice remap budget (rows).
    pub initial_budget: usize,
    /// Budget floor: the merge always makes progress, however loaded the
    /// serving loop is (no live-lock under sustained degradation). A value
    /// of 0 is treated as 1 — a zero floor would wedge the budget at zero
    /// rows forever, silently stalling every queued merge.
    pub min_budget: usize,
    /// Budget ceiling: one slice never grows into an unbounded pause. A
    /// ceiling below the (sanitized) floor is raised to it.
    pub max_budget: usize,
    /// Shrink trigger: recent p99 latency above `baseline ×
    /// degrade_threshold` counts as degradation.
    pub degrade_threshold: f64,
    /// Multiplicative budget shrink on degradation (e.g. `0.5`).
    pub shrink: f64,
    /// Multiplicative budget growth when healthy or idle (e.g. `1.5`).
    pub grow: f64,
    /// Number of recent latency samples the p99 is computed over.
    pub window: usize,
    /// Weight of a new sample in the long-run baseline EWMA. Small values
    /// make the baseline deliberately sluggish, so transient merge-induced
    /// degradation shows up against it instead of being absorbed.
    pub baseline_decay: f64,
}

impl Default for PacerConfig {
    fn default() -> Self {
        PacerConfig {
            initial_budget: 4_096,
            min_budget: 256,
            max_budget: 1 << 20,
            degrade_threshold: 1.5,
            shrink: 0.5,
            grow: 1.5,
            window: 64,
            baseline_decay: 0.05,
        }
    }
}

/// Latency-adaptive slice-budget governor (see the module docs).
#[derive(Debug)]
pub struct MergePacer {
    cfg: PacerConfig,
    budget: usize,
    /// Long-run EWMA of query latency — the "normal" the p99 is judged
    /// against. `None` until the first sample.
    baseline_ms: Option<f64>,
    /// Ring of the most recent latency samples.
    recent: VecDeque<f64>,
    /// Samples observed since the last slice (0 = the stream is idle).
    since_slice: usize,
    /// Consecutive slices with no observed query. The budget grows once
    /// per idle streak, not once per idle tick — a threaded worker ticks
    /// far more often than statements arrive, and compounding growth on
    /// every self-paced tick would blow the budget to its ceiling between
    /// two queries.
    idle_streak: u32,
}

impl MergePacer {
    /// The sanitized `(floor, ceiling)` clamp bounds: a zero floor becomes
    /// 1 (a 0-row budget can never make progress), an inverted ceiling is
    /// raised to the floor (`usize::clamp` panics on `min > max`). The
    /// documented fallback for nonsensical configs, not an error path.
    fn bounds(cfg: &PacerConfig) -> (usize, usize) {
        let floor = cfg.min_budget.max(1);
        (floor, cfg.max_budget.max(floor))
    }

    /// Pacer with the given settings.
    pub fn new(cfg: PacerConfig) -> Self {
        let (floor, ceil) = Self::bounds(&cfg);
        let budget = cfg.initial_budget.clamp(floor, ceil);
        MergePacer {
            cfg,
            budget,
            baseline_ms: None,
            recent: VecDeque::new(),
            since_slice: 0,
            idle_streak: 0,
        }
    }

    /// Record one served query's latency.
    pub fn observe_query_latency(&mut self, ms: f64) {
        if !ms.is_finite() || ms < 0.0 {
            return;
        }
        self.baseline_ms = Some(match self.baseline_ms {
            None => ms,
            Some(b) => self.cfg.baseline_decay * ms + (1.0 - self.cfg.baseline_decay) * b,
        });
        if self.recent.len() == self.cfg.window.max(1) {
            self.recent.pop_front();
        }
        self.recent.push_back(ms);
        self.since_slice += 1;
    }

    /// p99 of the recent window (max of the window when it is small).
    fn recent_p99(&self) -> Option<f64> {
        if self.recent.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = self.recent.iter().copied().collect();
        // total_cmp: the window is filtered to finite samples on entry, but
        // a defensive total order costs nothing and can never panic.
        sorted.sort_by(f64::total_cmp);
        let idx = ((sorted.len() as f64) * 0.99).ceil() as usize;
        Some(sorted[idx.min(sorted.len()) - 1])
    }

    /// Decide the budget for the next slice: shrink on degradation, grow
    /// when healthy or (once per streak) when idle. Called by the worker
    /// once per tick.
    fn next_budget(&mut self) -> usize {
        let observed = std::mem::take(&mut self.since_slice);
        let factor = if observed == 0 {
            // No queries since the last slice: the stream is idle, spare
            // capacity belongs to the merge — but grow only on the first
            // idle tick, so a self-paced (threaded) worker does not
            // compound its budget to the ceiling between two queries.
            self.idle_streak += 1;
            if self.idle_streak > 1 {
                1.0
            } else {
                self.cfg.grow
            }
        } else {
            self.idle_streak = 0;
            let degraded = match (self.recent_p99(), self.baseline_ms) {
                (Some(p99), Some(base)) => p99 > base * self.cfg.degrade_threshold,
                _ => false,
            };
            if degraded {
                self.cfg.shrink
            } else {
                self.cfg.grow
            }
        };
        // Apply the factor with a guaranteed ≥1-row step toward the clamp
        // bound: with a small budget and a factor near 1.0, rounding alone
        // can be a no-op, leaving a degraded stream that never backs off
        // (or an idle one that never grows).
        let scaled = (self.budget as f64 * factor).round() as usize;
        let next = if factor < 1.0 {
            scaled.min(self.budget.saturating_sub(1))
        } else if factor > 1.0 {
            scaled.max(self.budget.saturating_add(1))
        } else {
            scaled
        };
        let (floor, ceil) = Self::bounds(&self.cfg);
        self.budget = next.clamp(floor, ceil);
        self.budget
    }

    /// The budget the next slice will get (without advancing the pacer).
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The long-run latency baseline, if any sample arrived yet.
    pub fn baseline_ms(&self) -> Option<f64> {
        self.baseline_ms
    }
}

/// Settings of the maintenance worker (shared by both execution modes:
/// construct a [`MaintenanceWorker`] for cooperative ticking, or pass the
/// same config to [`BackgroundWorker::spawn`] for the `std::thread` mode).
#[derive(Debug, Clone, Default)]
pub struct WorkerConfig {
    /// Pacer settings.
    pub pacer: PacerConfig,
    /// Fault injection: make the next N slice executions panic before
    /// touching the database. Test-only knob (default 0) for exercising the
    /// worker's panic containment — a panicking slice must not wedge the
    /// engine or take it down.
    pub fault_slice_panics: u32,
}

/// Pollable worker condition. A slice panic marks the worker
/// [`WorkerHealth::Unhealthy`] (sticky, with the first panic's message);
/// the worker itself keeps running and the database stays usable — the
/// status exists so operators notice instead of losing merges silently.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum WorkerHealth {
    /// No slice has panicked.
    #[default]
    Healthy,
    /// At least one slice panicked; the first panic's message is kept.
    Unhealthy {
        /// Panic payload of the first panicking slice.
        reason: String,
    },
}

impl WorkerHealth {
    /// Whether the worker has never had a slice panic.
    pub fn is_healthy(&self) -> bool {
        matches!(self, WorkerHealth::Healthy)
    }
}

/// Lock-free health mirror shared between a worker thread and its pollers.
///
/// Health polling must never contend with slice execution, so the cell is
/// a sticky [`AtomicBool`] plus a write-once reason: [`HealthCell::mark`]
/// publishes the first panic's message before the release store of the
/// flag, and [`HealthCell::get`]'s acquire load therefore always observes
/// the reason once it observes the flag. Later marks are ignored — health
/// is sticky on the *first* failure, exactly like [`WorkerHealth`].
#[derive(Debug, Default)]
struct HealthCell {
    unhealthy: AtomicBool,
    reason: OnceLock<String>,
}

impl HealthCell {
    /// Record a failure (first reason wins; sets the sticky flag).
    fn mark(&self, reason: &str) {
        let _ = self.reason.set(reason.to_string());
        self.unhealthy.store(true, Ordering::Release);
    }

    /// Current health, without taking any lock.
    fn get(&self) -> WorkerHealth {
        if self.unhealthy.load(Ordering::Acquire) {
            WorkerHealth::Unhealthy {
                reason: self.reason.get().cloned().unwrap_or_default(),
            }
        } else {
            WorkerHealth::Healthy
        }
    }
}

/// Best-effort text of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Lifetime counters of a worker.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Slices executed.
    pub slices: u64,
    /// Code-vector entries remapped across all slices.
    pub rows_remapped: u64,
    /// Wall-clock nanoseconds spent inside completed slices (the measured
    /// side of the `merge_ms` calibration channel; with
    /// [`WorkerStats::rows_remapped`] it yields the worker's observed
    /// ns-per-remapped-row — the quantity a wall-clock merge pacer and the
    /// online calibrator both need).
    pub slice_ns: u64,
    /// Dictionary-tail entries folded by completed merges.
    pub entries_folded: u64,
    /// Jobs driven to completion.
    pub jobs_completed: u64,
    /// Jobs retracted before completion (queue removal and/or in-flight
    /// cancellation).
    pub jobs_retracted: u64,
    /// Slices that panicked and were contained (see [`WorkerHealth`]).
    pub slice_panics: u64,
}

impl WorkerStats {
    /// Observed wall-clock nanoseconds per remapped row across all
    /// completed slices (`None` before any row was remapped).
    pub fn ns_per_row(&self) -> Option<f64> {
        if self.rows_remapped == 0 {
            None
        } else {
            Some(self.slice_ns as f64 / self.rows_remapped as f64)
        }
    }
}

/// Outcome of one worker tick that ran a slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceReport {
    /// Table the slice advanced.
    pub table: String,
    /// Physical region the slice was routed to.
    pub partition: MergePartition,
    /// Remap budget the pacer granted the slice.
    pub budget: usize,
    /// Wall-clock nanoseconds the slice took (plan + budgeted remap).
    /// Paired with `progress.rows_remapped` this is one observation for
    /// the online calibrator's `merge_ms` family
    /// (`hsd_core::OnlineAdvisor::observe_merge_slice`).
    pub elapsed_ns: u64,
    /// Progress reported by the storage layer.
    pub progress: MergeProgress,
}

/// Cooperative background-merge worker (see the module docs).
///
/// # Example
///
/// ```
/// use hsd_engine::{HybridDatabase, MaintenanceWorker, MergeConfig, MergePartition};
/// use hsd_storage::StoreKind;
/// use hsd_types::{ColumnDef, ColumnType, TableSchema, Value};
///
/// let db = HybridDatabase::new();
/// db.create_single(
///     TableSchema::new(
///         "t",
///         vec![ColumnDef::new("id", ColumnType::BigInt),
///              ColumnDef::new("v", ColumnType::Double)],
///         vec![0],
///     )?,
///     StoreKind::Column,
/// )?;
/// db.bulk_load("t", (0..64i64).map(|i| vec![Value::BigInt(i), Value::Double(i as f64)]))?;
/// db.set_merge_config(MergeConfig::disabled());
///
/// let mut worker = MaintenanceWorker::default();
/// worker.enqueue("t", MergePartition::Whole);
/// // The serving loop: execute a statement, feed its latency to the
/// // pacer, let the worker advance one bounded slice.
/// while worker.tick(&db)?.is_some() {
///     worker.observe_query_latency(0.05);
/// }
/// assert_eq!(db.delta_tail("t")?, 0);
/// # Ok::<(), hsd_types::Error>(())
/// ```
#[derive(Debug)]
pub struct MaintenanceWorker {
    queue: VecDeque<MergeJob>,
    pacer: MergePacer,
    stats: WorkerStats,
    health: WorkerHealth,
    /// Remaining injected slice panics (from
    /// [`WorkerConfig::fault_slice_panics`]).
    fault_slice_panics: u32,
}

impl Default for MaintenanceWorker {
    fn default() -> Self {
        Self::new(WorkerConfig::default())
    }
}

impl MaintenanceWorker {
    /// Worker with the given settings.
    pub fn new(cfg: WorkerConfig) -> Self {
        MaintenanceWorker {
            queue: VecDeque::new(),
            pacer: MergePacer::new(cfg.pacer),
            stats: WorkerStats::default(),
            health: WorkerHealth::Healthy,
            fault_slice_panics: cfg.fault_slice_panics,
        }
    }

    /// Enqueue a merge job for the `partition` region of `table`. Returns
    /// `false` (and leaves the queue unchanged) when the same
    /// `(table, partition)` job is already queued — one job folds everything
    /// its region accumulates while it runs, so exact duplicates add no
    /// work. Jobs for a *different* region of the same table are distinct
    /// and are queued normally (a cold-fragment merge does not satisfy a
    /// later whole-table merge request).
    pub fn enqueue(&mut self, table: &str, partition: MergePartition) -> bool {
        if self.has_job(table, partition) {
            return false;
        }
        self.queue.push_back(MergeJob {
            table: table.to_string(),
            partition,
        });
        true
    }

    /// Whether the exact `(table, partition)` job is queued (possibly in
    /// flight).
    pub fn has_job(&self, table: &str, partition: MergePartition) -> bool {
        self.queue
            .iter()
            .any(|j| j.table == table && j.partition == partition)
    }

    /// Whether `table` has any queued job, regardless of region.
    pub fn has_job_for_table(&self, table: &str) -> bool {
        self.queue.iter().any(|j| j.table == table)
    }

    /// Whether the worker has no work.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of queued jobs.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Retract every job for `table` (any region — a retraction is a
    /// table-level decision): remove them from the queue and cancel any
    /// in-flight shadow rebuild on the table (the live data stayed
    /// authoritative throughout, so cancellation only discards remap work).
    /// Returns whether anything was retracted.
    pub fn retract(&mut self, db: &HybridDatabase, table: &str) -> Result<bool> {
        let before = self.queue.len();
        self.queue.retain(|j| j.table != table);
        let dequeued = self.queue.len() < before;
        let cancelled = mover::cancel_merge(db, table).unwrap_or(0);
        let retracted = dequeued || cancelled > 0;
        if retracted {
            self.stats.jobs_retracted += 1;
        }
        Ok(retracted)
    }

    /// Feed one served query's latency to the pacer.
    pub fn observe_query_latency(&mut self, ms: f64) {
        self.pacer.observe_query_latency(ms);
    }

    /// Pick the queued job with the highest accrued-penalty-per-row score:
    /// the table's current dictionary-tail entries per merge-region row —
    /// the per-row scan degradation its unfolded delta inflicts right now,
    /// which is exactly the rate the advisor's rent-or-buy accrual grows
    /// at. Ties (and the common single-job queue) fall back to FIFO order.
    /// A job whose table cannot be scored (dropped/renamed) is selected
    /// immediately so the tick surfaces its error and retires it.
    fn select_job(&self, db: &HybridDatabase) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, job) in self.queue.iter().enumerate() {
            let Ok(tail) = db.delta_tail(&job.table) else {
                return Some(i);
            };
            let rows = db.merge_region_rows(&job.table).unwrap_or(0).max(1);
            let score = tail as f64 / rows as f64;
            match best {
                Some((_, b)) if score <= b => {}
                _ => best = Some((i, score)),
            }
        }
        best.map(|(i, _)| i)
    }

    /// Advance the most urgent job by one remap-budgeted slice (see
    /// `MaintenanceWorker::select_job` for the priority rule). Returns
    /// `None` when the queue is empty; otherwise the slice report. A job
    /// whose table no longer exists is dropped (the error is propagated
    /// once).
    ///
    /// A slice that **panics** is contained here (never unwound into the
    /// caller): the job is dropped, any in-flight shadow rebuild on its
    /// table is cancelled (live data stayed authoritative — nothing is
    /// lost), the worker goes [`WorkerHealth::Unhealthy`], and the panic
    /// surfaces as an ordinary error.
    pub fn tick(&mut self, db: &HybridDatabase) -> Result<Option<SliceReport>> {
        let Some(idx) = self.select_job(db) else {
            return Ok(None);
        };
        let job = self.queue[idx].clone();
        let budget = self.pacer.next_budget();
        let inject_panic = self.fault_slice_panics > 0;
        if inject_panic {
            self.fault_slice_panics -= 1;
        }
        let slice_start = std::time::Instant::now();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if inject_panic {
                panic!("injected slice panic (WorkerConfig::fault_slice_panics)");
            }
            mover::merge_slice_concurrent(db, &job.table, job.partition, budget)
        }));
        let elapsed_ns = slice_start.elapsed().as_nanos() as u64;
        let progress = match outcome {
            Ok(Ok(p)) => p,
            Ok(Err(e)) => {
                // The table vanished (moved/rebuilt under a different
                // name) or is quarantined: the job is moot.
                self.queue.remove(idx);
                return Err(e);
            }
            Err(payload) => {
                self.queue.remove(idx);
                self.stats.slice_panics += 1;
                let reason = panic_message(payload.as_ref());
                if self.health.is_healthy() {
                    self.health = WorkerHealth::Unhealthy {
                        reason: reason.clone(),
                    };
                }
                // Defensive cleanup: the interrupted slice may have left an
                // in-flight shadow rebuild; discard it (also contained — a
                // panicking cancel must not unwind either).
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let _ = mover::cancel_merge(db, &job.table);
                }));
                return Err(hsd_types::Error::InvalidOperation(format!(
                    "merge slice on `{}` panicked: {reason}",
                    job.table
                )));
            }
        };
        self.stats.slices += 1;
        self.stats.rows_remapped += progress.rows_remapped as u64;
        self.stats.slice_ns += elapsed_ns;
        self.stats.entries_folded += progress.entries_folded as u64;
        if progress.done {
            self.queue.remove(idx);
            self.stats.jobs_completed += 1;
        }
        Ok(Some(SliceReport {
            table: job.table,
            partition: job.partition,
            budget,
            elapsed_ns,
            progress,
        }))
    }

    /// Run every queued job to completion (ignoring the pacer's adaptivity
    /// beyond its current budget) — the shutdown/drain path. A job whose
    /// table no longer exists is skipped (tick already dropped it); the
    /// rest of the queue still drains.
    pub fn drain(&mut self, db: &HybridDatabase) -> Result<()> {
        loop {
            match self.tick(db) {
                Ok(None) => return Ok(()),
                Ok(Some(_)) => {}
                Err(_) => {}
            }
        }
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &WorkerStats {
        &self.stats
    }

    /// Pollable health: [`WorkerHealth::Unhealthy`] (sticky) after any
    /// contained slice panic.
    pub fn health(&self) -> &WorkerHealth {
        &self.health
    }

    /// The pacer (read-only; for budget introspection).
    pub fn pacer(&self) -> &MergePacer {
        &self.pacer
    }
}

// ---------------------------------------------------------------------------
// Threaded mode

/// A database shared between serving threads and a threaded worker. The
/// [`HybridDatabase`] is internally latched per table, so sharing it is a
/// plain `Arc` — there is no database-wide lock to take (or to poison).
pub type SharedDatabase = Arc<HybridDatabase>;

enum Command {
    Enqueue(String, MergePartition),
    Retract(String),
    Latency(f64),
    /// Stop the worker; `drain` runs every queued job to completion first.
    Stop {
        drain: bool,
    },
}

/// Handle to a [`MaintenanceWorker`] running on its own `std::thread`
/// against a [`SharedDatabase`] — the multi-core execution mode. Queries
/// and merge slices interleave at per-table latch granularity: the worker
/// plans each slice under a shared read pin and holds the table's write
/// latch only for one bounded remap, so a query on the merging table waits
/// at most one slice (the pause the pacer bounds) and queries on other
/// tables never wait at all.
#[derive(Debug)]
pub struct BackgroundWorker {
    tx: mpsc::Sender<Command>,
    thread: Option<std::thread::JoinHandle<WorkerStats>>,
    /// Lock-free health mirror, updated by the thread after every tick so
    /// callers can poll without contending with slice execution.
    health: Arc<HealthCell>,
}

impl BackgroundWorker {
    /// Spawn the worker thread. `poll` is how long the thread parks waiting
    /// for commands while its queue is idle.
    pub fn spawn(db: SharedDatabase, cfg: WorkerConfig, poll: Duration) -> Self {
        let (tx, rx) = mpsc::channel::<Command>();
        let health = Arc::new(HealthCell::default());
        let health_tx = health.clone();
        let thread = std::thread::spawn(move || {
            let mut worker = MaintenanceWorker::new(cfg);
            let mut stopping = false;
            loop {
                // Absorb all pending commands; park briefly when idle.
                loop {
                    let cmd = if worker.is_idle() && !stopping {
                        match rx.recv_timeout(poll) {
                            Ok(c) => c,
                            Err(mpsc::RecvTimeoutError::Timeout) => break,
                            Err(mpsc::RecvTimeoutError::Disconnected) => return *worker.stats(),
                        }
                    } else {
                        match rx.try_recv() {
                            Ok(c) => c,
                            Err(mpsc::TryRecvError::Empty) => break,
                            Err(mpsc::TryRecvError::Disconnected) => {
                                stopping = true;
                                break;
                            }
                        }
                    };
                    match cmd {
                        Command::Enqueue(t, partition) => {
                            worker.enqueue(&t, partition);
                        }
                        Command::Retract(t) => {
                            let _ = worker.retract(&db, &t);
                        }
                        Command::Latency(ms) => worker.observe_query_latency(ms),
                        Command::Stop { drain } => {
                            if !drain {
                                return *worker.stats();
                            }
                            stopping = true;
                        }
                    }
                }
                if worker.is_idle() {
                    if stopping {
                        return *worker.stats();
                    }
                    continue;
                }
                // One bounded slice, then yield: the slice itself holds the
                // target table's write latch only for the budgeted remap
                // (the plan phase runs under a shared pin), and the yield
                // lets serving threads parked on that latch in before the
                // next slice. tick() contains slice panics internally.
                let _ = worker.tick(&db);
                if let WorkerHealth::Unhealthy { reason } = worker.health() {
                    health_tx.mark(reason);
                }
                std::thread::yield_now();
            }
        });
        BackgroundWorker {
            tx,
            thread: Some(thread),
            health,
        }
    }

    /// Poll the worker's health: [`WorkerHealth::Unhealthy`] (sticky) after
    /// any contained slice panic on the worker thread. Lock-free — polling
    /// never contends with slice execution. The database itself stays
    /// usable either way.
    pub fn health(&self) -> WorkerHealth {
        self.health.get()
    }

    /// Enqueue a merge job for the `partition` region of `table`.
    pub fn enqueue(&self, table: &str, partition: MergePartition) {
        let _ = self.tx.send(Command::Enqueue(table.to_string(), partition));
    }

    /// Retract the job for `table` (queue removal + in-flight
    /// cancellation).
    pub fn retract(&self, table: &str) {
        let _ = self.tx.send(Command::Retract(table.to_string()));
    }

    /// Feed one served query's latency to the worker's pacer.
    pub fn observe_query_latency(&self, ms: f64) {
        let _ = self.tx.send(Command::Latency(ms));
    }

    /// Stop the worker and join the thread, returning its lifetime stats.
    /// With `drain`, every queued job runs to completion first. If the
    /// worker thread itself died to an unexpected panic (outside the
    /// per-slice containment), the health mirror is marked and default
    /// stats are returned instead of propagating the panic.
    pub fn stop(mut self, drain: bool) -> WorkerStats {
        let _ = self.tx.send(Command::Stop { drain });
        match self.thread.take() {
            Some(t) => match t.join() {
                Ok(stats) => stats,
                Err(payload) => {
                    self.health.mark(&format!(
                        "worker thread panicked: {}",
                        panic_message(payload.as_ref())
                    ));
                    WorkerStats::default()
                }
            },
            None => WorkerStats::default(),
        }
    }
}

impl Drop for BackgroundWorker {
    fn drop(&mut self) {
        let _ = self.tx.send(Command::Stop { drain: false });
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maintenance::MergeConfig;
    use hsd_query::{AggFunc, AggregateQuery, Query, UpdateQuery};
    use hsd_storage::{ColRange, StoreKind};
    use hsd_types::{ColumnDef, ColumnType, TableSchema, Value};

    fn column_db_named(name: &str, rows: i64) -> HybridDatabase {
        let db = HybridDatabase::new();
        add_column_table(&db, name, rows);
        db
    }

    fn add_column_table(db: &HybridDatabase, name: &str, rows: i64) {
        db.create_single(
            TableSchema::new(
                name,
                vec![
                    ColumnDef::new("id", ColumnType::BigInt),
                    ColumnDef::new("a", ColumnType::Double),
                    ColumnDef::new("b", ColumnType::Double),
                ],
                vec![0],
            )
            .unwrap(),
            StoreKind::Column,
        )
        .unwrap();
        db.bulk_load(
            name,
            (0..rows).map(|i| {
                vec![
                    Value::BigInt(i),
                    Value::Double(i as f64),
                    Value::Double(i as f64),
                ]
            }),
        )
        .unwrap();
        db.set_merge_config(MergeConfig::disabled());
    }

    fn column_db(rows: i64) -> HybridDatabase {
        column_db_named("t", rows)
    }

    fn grow_tail_on(db: &HybridDatabase, table: &str, n: usize) {
        for i in 0..n {
            db.execute(&Query::Update(UpdateQuery {
                table: table.into(),
                sets: vec![(1, Value::Double(50_000.0 + i as f64))],
                filter: vec![ColRange::eq(0, Value::BigInt(i as i64))],
            }))
            .unwrap();
        }
    }

    fn grow_tail(db: &HybridDatabase, n: usize) {
        grow_tail_on(db, "t", n);
    }

    fn checksum(db: &HybridDatabase) -> f64 {
        let out = db
            .execute(&Query::Aggregate(AggregateQuery::simple(
                "t",
                AggFunc::Sum,
                1,
            )))
            .unwrap();
        out.aggregates().unwrap()[0].values[0]
    }

    fn small_pacer() -> PacerConfig {
        PacerConfig {
            initial_budget: 16,
            min_budget: 4,
            max_budget: 64,
            ..Default::default()
        }
    }

    #[test]
    fn worker_drains_queue_in_bounded_slices_with_consistent_reads() {
        let db = column_db(100);
        grow_tail(&db, 40);
        let expected = checksum(&db);
        let mut worker = MaintenanceWorker::new(WorkerConfig {
            pacer: small_pacer(),
            ..WorkerConfig::default()
        });
        assert!(worker.enqueue("t", MergePartition::Whole));
        assert!(
            !worker.enqueue("t", MergePartition::Whole),
            "duplicate jobs are rejected"
        );
        let mut slices = 0;
        while let Some(report) = worker.tick(&db).unwrap() {
            slices += 1;
            assert!(report.budget <= 64);
            assert!(report.progress.rows_remapped <= report.budget);
            assert!(report.elapsed_ns > 0, "every slice is wall-clock timed");
            // Reads between slices stay consistent.
            assert_eq!(checksum(&db), expected);
            worker.observe_query_latency(0.01);
            assert!(slices < 10_000, "worker must terminate");
        }
        assert!(slices > 1, "a 16..64-row budget over 100 rows takes slices");
        assert!(worker.is_idle());
        assert_eq!(db.delta_tail("t").unwrap(), 0);
        let s = worker.stats();
        assert_eq!(s.jobs_completed, 1);
        assert_eq!(s.entries_folded, 40);
        assert!(
            s.rows_remapped >= 100,
            "every row was remapped at least once"
        );
        assert!(s.slice_ns > 0, "slice wall-clock accumulates");
        assert!(
            s.ns_per_row().unwrap() > 0.0,
            "observed merge throughput is derivable"
        );
        assert_eq!(WorkerStats::default().ns_per_row(), None);
    }

    /// The priority queue orders by accrued-penalty-per-row: with two
    /// tables queued FIFO in the "wrong" order, the worker slices the one
    /// whose tail-per-row score is higher first, and only then drains the
    /// other.
    #[test]
    fn worker_prioritizes_highest_penalty_per_row_job() {
        let db = column_db_named("calm", 4_000);
        add_column_table(&db, "urgent", 100);
        grow_tail_on(&db, "calm", 5); // tiny tail over many rows
        grow_tail_on(&db, "urgent", 40); // big tail over few rows
        let mut worker = MaintenanceWorker::new(WorkerConfig {
            pacer: small_pacer(),
            ..WorkerConfig::default()
        });
        // FIFO arrival order is calm first; priority must override it.
        assert!(worker.enqueue("calm", MergePartition::Whole));
        assert!(worker.enqueue("urgent", MergePartition::Whole));
        let first = worker.tick(&db).unwrap().unwrap();
        assert_eq!(
            first.table, "urgent",
            "the higher tail-per-row table is sliced first"
        );
        // "urgent" completes before "calm" gets its first slice.
        let mut urgent_done_at = None;
        let mut slices = 1;
        while let Some(report) = worker.tick(&db).unwrap() {
            slices += 1;
            if report.table == "calm" {
                assert!(
                    urgent_done_at.is_some(),
                    "calm must not be sliced while urgent is pending"
                );
            }
            if report.table == "urgent" && report.progress.done {
                urgent_done_at = Some(slices);
            }
            assert!(slices < 10_000, "worker must terminate");
        }
        assert!(worker.is_idle());
        assert_eq!(db.delta_tail("urgent").unwrap(), 0);
        assert_eq!(db.delta_tail("calm").unwrap(), 0);
        assert_eq!(worker.stats().jobs_completed, 2);
    }

    #[test]
    fn pacer_shrinks_on_degradation_and_grows_when_idle() {
        let cfg = PacerConfig {
            initial_budget: 1_024,
            min_budget: 64,
            max_budget: 8_192,
            degrade_threshold: 1.5,
            shrink: 0.5,
            grow: 2.0,
            window: 16,
            // Freeze the baseline at the first sample so the trajectory is
            // deterministic (the default slowly re-learns "normal", which
            // is the behavior the adaptive baseline exists for).
            baseline_decay: 0.0,
        };
        let mut pacer = MergePacer::new(cfg);
        // Establish a healthy baseline at 1 ms.
        for _ in 0..64 {
            pacer.observe_query_latency(1.0);
        }
        assert_eq!(pacer.next_budget(), 2_048, "healthy stream grows");
        // Degraded tail: p99 of the window jumps far above baseline.
        for _ in 0..16 {
            pacer.observe_query_latency(10.0);
        }
        assert_eq!(pacer.next_budget(), 1_024, "degraded p99 shrinks");
        for _ in 0..16 {
            pacer.observe_query_latency(10.0);
        }
        assert_eq!(
            pacer.next_budget(),
            512,
            "sustained degradation keeps shrinking"
        );
        // Idle stream (no samples since the last slice): grow.
        assert_eq!(pacer.next_budget(), 1_024, "idle stream grows");
        // Budget respects the floor under unbounded degradation.
        for _ in 0..20 {
            for _ in 0..16 {
                pacer.observe_query_latency(100.0);
            }
            pacer.next_budget();
        }
        assert_eq!(pacer.budget(), 64, "floor bounds the shrink");
    }

    /// At `min_budget + 1` with a shrink factor near 1.0, rounding alone is
    /// a no-op (`round(5 · 0.9) = 5`): the budget must still step down to
    /// the floor so a degraded stream actually backs off. Symmetrically, a
    /// growth factor whose rounding is a no-op must still step up.
    #[test]
    fn pacer_steps_despite_rounding_no_op_factors() {
        let cfg = PacerConfig {
            initial_budget: 5,
            min_budget: 4,
            max_budget: 8,
            degrade_threshold: 1.5,
            shrink: 0.9,
            grow: 1.05,
            window: 4,
            baseline_decay: 0.0,
        };
        let mut pacer = MergePacer::new(cfg);
        pacer.observe_query_latency(1.0); // baseline frozen at 1 ms
        for _ in 0..4 {
            pacer.observe_query_latency(10.0); // degraded p99
        }
        assert_eq!(
            pacer.next_budget(),
            4,
            "shrink at min_budget + 1 must reach the floor, not stall at 5"
        );
        // Healthy stream: grow 1.05 rounds to a no-op at 4, but must step.
        let mut pacer = MergePacer::new(PacerConfig {
            initial_budget: 4,
            ..pacer.cfg.clone()
        });
        for _ in 0..4 {
            pacer.observe_query_latency(1.0);
        }
        assert_eq!(pacer.next_budget(), 5, "growth must step past rounding");
    }

    #[test]
    fn retract_cancels_in_flight_job() {
        let db = column_db(200);
        grow_tail(&db, 30);
        let expected = checksum(&db);
        let mut worker = MaintenanceWorker::new(WorkerConfig {
            pacer: small_pacer(),
            ..WorkerConfig::default()
        });
        worker.enqueue("t", MergePartition::Whole);
        // Start the merge but do not finish it.
        let report = worker.tick(&db).unwrap().unwrap();
        assert!(!report.progress.done);
        assert!(db.merge_in_progress("t").unwrap());
        let epoch = db.merge_epoch("t").unwrap();
        assert!(worker.retract(&db, "t").unwrap());
        assert!(worker.is_idle());
        assert!(!db.merge_in_progress("t").unwrap());
        assert_eq!(db.merge_epoch("t").unwrap(), epoch, "no handoff happened");
        assert!(db.delta_tail("t").unwrap() > 0, "tail kept (merge undone)");
        assert_eq!(checksum(&db), expected, "no data was lost");
        assert_eq!(worker.stats().jobs_retracted, 1);
        // Retracting an unknown job is a no-op.
        assert!(!worker.retract(&db, "t").unwrap());
    }

    #[test]
    fn threaded_worker_interleaves_with_queries_without_a_global_lock() {
        let db = column_db(300);
        grow_tail(&db, 60);
        let expected = checksum(&db);
        let shared: SharedDatabase = Arc::new(db);
        let worker = BackgroundWorker::spawn(
            shared.clone(),
            WorkerConfig {
                pacer: small_pacer(),
                ..WorkerConfig::default()
            },
            Duration::from_millis(1),
        );
        worker.enqueue("t", MergePartition::Whole);
        // Serve queries from this thread while the worker slices away.
        for _ in 0..50 {
            let start = std::time::Instant::now();
            let c = checksum(&shared);
            assert_eq!(c, expected);
            worker.observe_query_latency(start.elapsed().as_secs_f64() * 1e3);
        }
        let stats = worker.stop(true);
        assert_eq!(stats.jobs_completed, 1);
        assert_eq!(stats.entries_folded, 60);
        assert_eq!(shared.delta_tail("t").unwrap(), 0);
        assert_eq!(checksum(&shared), expected);
    }

    #[test]
    fn tick_on_unknown_table_drops_the_job() {
        let db = column_db(10);
        let mut worker = MaintenanceWorker::default();
        worker.enqueue("nope", MergePartition::Whole);
        assert!(worker.tick(&db).is_err());
        assert!(worker.is_idle(), "the moot job is dropped");
        assert!(worker.tick(&db).unwrap().is_none());
    }

    /// Jobs are keyed by `(table, partition)`: a cold-fragment merge and a
    /// later whole-table merge of the same table are distinct queue entries,
    /// while an exact duplicate is still deduplicated. Retraction stays
    /// table-level and clears both.
    #[test]
    fn jobs_are_keyed_by_table_and_partition() {
        let db = column_db(20);
        let mut worker = MaintenanceWorker::default();
        assert!(worker.enqueue("t", MergePartition::Cold));
        assert!(
            worker.enqueue("t", MergePartition::Whole),
            "a whole-table job is distinct from the queued cold-fragment job"
        );
        assert!(
            !worker.enqueue("t", MergePartition::Cold),
            "exact (table, partition) duplicates are still rejected"
        );
        assert_eq!(worker.queue_len(), 2);
        assert!(worker.has_job("t", MergePartition::Cold));
        assert!(worker.has_job("t", MergePartition::Whole));
        assert!(!worker.has_job("u", MergePartition::Cold));
        assert!(worker.has_job_for_table("t"));
        // Equal scores (same table) fall back to FIFO: the cold-fragment
        // job queued first runs first.
        let first = worker.tick(&db).unwrap().unwrap();
        assert_eq!(first.table, "t");
        assert_eq!(first.partition, MergePartition::Cold);
        // Retraction removes every remaining job for the table.
        assert!(worker.retract(&db, "t").unwrap());
        assert!(worker.is_idle());
        assert!(!worker.has_job_for_table("t"));
    }

    // -- defensive-input pacer tests ---------------------------------------

    #[test]
    fn pacer_ignores_nan_inf_and_negative_latencies() {
        let mut pacer = MergePacer::new(PacerConfig::default());
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0] {
            pacer.observe_query_latency(bad);
        }
        // Nothing was admitted to the window, so the first tick is an idle
        // grow — and must neither panic nor collapse the budget.
        let b = pacer.next_budget();
        assert!(b >= 4_096, "garbage samples must not shrink the budget");
        assert_eq!(pacer.baseline_ms(), None);
        // A NaN-only stream keeps the pacer on the idle path forever
        // without wedging at 0.
        for _ in 0..50 {
            pacer.observe_query_latency(f64::NAN);
            assert!(pacer.next_budget() > 0);
        }
    }

    #[test]
    fn pacer_survives_empty_window_and_zero_p99() {
        // Empty window: next_budget on a fresh pacer is the idle path.
        let mut pacer = MergePacer::new(PacerConfig::default());
        assert!(pacer.next_budget() > 0);
        // All-zero latencies: baseline 0, p99 0 — `0 > 0 * threshold` is
        // false, so the stream counts as healthy; the budget grows.
        let mut pacer = MergePacer::new(PacerConfig::default());
        for _ in 0..32 {
            pacer.observe_query_latency(0.0);
        }
        let before = pacer.budget();
        assert!(pacer.next_budget() > before);
    }

    #[test]
    fn pacer_sanitizes_zero_floor_and_inverted_bounds() {
        // min_budget = 0 must not wedge the budget at 0 under degradation.
        let mut pacer = MergePacer::new(PacerConfig {
            initial_budget: 8,
            min_budget: 0,
            max_budget: 8,
            baseline_decay: 0.0,
            window: 4,
            ..Default::default()
        });
        pacer.observe_query_latency(1.0);
        for _ in 0..30 {
            for _ in 0..4 {
                pacer.observe_query_latency(1_000.0); // heavily degraded
            }
            assert!(pacer.next_budget() >= 1, "budget must never reach 0");
        }
        assert_eq!(pacer.budget(), 1, "sanitized floor is 1, not 0");
        // min > max must not panic (usize::clamp would): ceiling is raised.
        let mut pacer = MergePacer::new(PacerConfig {
            initial_budget: 7,
            min_budget: 100,
            max_budget: 10,
            ..Default::default()
        });
        assert_eq!(pacer.budget(), 100);
        assert_eq!(pacer.next_budget(), 100, "floor==ceiling pins the budget");
    }

    // -- panic containment -------------------------------------------------

    #[test]
    fn slice_panic_is_contained_and_marks_worker_unhealthy() {
        let db = column_db(100);
        grow_tail(&db, 20);
        let expected = checksum(&db);
        let mut worker = MaintenanceWorker::new(WorkerConfig {
            pacer: small_pacer(),
            fault_slice_panics: 1,
        });
        worker.enqueue("t", MergePartition::Whole);
        assert!(worker.health().is_healthy());
        // The injected panic surfaces as an error, not an unwind.
        let err = worker.tick(&db).unwrap_err();
        assert!(err.to_string().contains("panicked"), "{err}");
        assert!(!worker.health().is_healthy());
        assert_eq!(worker.stats().slice_panics, 1);
        assert!(worker.is_idle(), "the panicking job is dropped");
        // The database is fully usable afterwards: reads, writes, and a
        // re-enqueued merge all succeed.
        assert_eq!(checksum(&db), expected);
        assert!(!db.merge_in_progress("t").unwrap());
        worker.enqueue("t", MergePartition::Whole);
        while worker.tick(&db).unwrap().is_some() {}
        assert_eq!(db.delta_tail("t").unwrap(), 0);
        assert_eq!(checksum(&db), expected);
        // Health stays sticky even after successful slices.
        assert!(!worker.health().is_healthy());
    }

    #[test]
    fn threaded_slice_panic_leaves_the_shared_database_usable() {
        let db = column_db(100);
        grow_tail(&db, 30);
        let expected = checksum(&db);
        let shared: SharedDatabase = Arc::new(db);
        let worker = BackgroundWorker::spawn(
            shared.clone(),
            WorkerConfig {
                pacer: small_pacer(),
                fault_slice_panics: 1,
            },
            Duration::from_millis(1),
        );
        worker.enqueue("t", MergePartition::Whole);
        // Poll until the panics happened and the health mirror flipped —
        // the lock-free poll itself never blocks on the worker.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while worker.health().is_healthy() {
            assert!(
                std::time::Instant::now() < deadline,
                "worker never reported the contained panic"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        // The database still answers (no global lock existed to poison).
        assert_eq!(checksum(&shared), expected);
        // The worker thread survived the injected panic: it still
        // processes work and joins cleanly.
        worker.enqueue("t", MergePartition::Whole);
        let stats = worker.stop(true);
        assert_eq!(stats.slice_panics, 1);
        assert_eq!(shared.delta_tail("t").unwrap(), 0);
        assert_eq!(checksum(&shared), expected);
    }
}
