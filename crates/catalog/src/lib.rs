//! System catalog for the hybrid-store database.
//!
//! The catalog carries everything the storage advisor consumes besides the
//! workload itself (Figure 4 of the paper):
//!
//! * the **data schema** — table definitions with primary keys;
//! * **data characteristics** — basic per-table statistics
//!   ([`stats::TableStats`]): row counts, per-column distinct counts,
//!   min/max, and the compression rate the paper's `f_compression`
//!   adjustment depends on;
//! * **extended workload statistics** ([`workload_stats::ExtendedStats`]) —
//!   the online mode's inputs: "the number of inserts per table, the number
//!   of updates and aggregates per attribute or the number of joins between
//!   tables";
//! * the current **storage layout** ([`layout`]) including partition
//!   annotations, which the engine's rewriter evaluates "for incoming
//!   queries" exactly as Section 4 describes.

#![warn(missing_docs)]

pub mod catalog;
pub mod layout;
pub mod stats;
pub mod workload_stats;

pub use catalog::{Catalog, TableEntry};
pub use layout::{
    placement_from_json, placement_to_json, HorizontalSpec, PartitionSpec, StorageLayout,
    TablePlacement, Tier, VerticalSpec,
};
pub use stats::{ColumnStats, TableStats};
pub use workload_stats::{ColumnActivity, ExtendedStats, RangeEnvelope, TableActivity};
