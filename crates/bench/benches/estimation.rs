//! Cost-estimation overhead. The paper argues that estimating store
//! combinations is "a negligible overhead" because the adjustment functions
//! are simple; these benches quantify that claim for our implementation:
//! single-query estimation, whole-workload estimation, and the advisor's
//! full store-combination search.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use hsd_catalog::{ColumnStats, TableStats};
use hsd_core::advisor::build_ctx;
use hsd_core::estimator::{estimate_query, estimate_workload};
use hsd_core::{AdjustmentFn, CostModel, StorageAdvisor};
use hsd_query::{
    AggFunc, AggregateQuery, MixedWorkloadConfig, Query, TableSpec, WorkloadGenerator,
};
use hsd_storage::StoreKind;
use hsd_types::{TableSchema, Value};

fn model() -> CostModel {
    let mut m = CostModel::neutral();
    m.row.f_rows = AdjustmentFn::Linear {
        slope: 1e-3,
        intercept: 0.05,
    };
    m.column.f_rows = AdjustmentFn::Linear {
        slope: 1e-4,
        intercept: 0.05,
    };
    m.row.f_compression = AdjustmentFn::Piecewise {
        points: vec![(0.0, 1.1), (0.5, 1.0), (0.95, 0.9)],
    };
    m.column.f_compression = AdjustmentFn::Piecewise {
        points: vec![(0.0, 1.4), (0.5, 1.0), (0.95, 0.7)],
    };
    m.row.ins_row = AdjustmentFn::Linear {
        slope: 1e-9,
        intercept: 0.001,
    };
    m.column.ins_row = AdjustmentFn::Linear {
        slope: 1e-9,
        intercept: 0.005,
    };
    m.row.sel_point_ms = 0.002;
    m.column.sel_point_ms = 0.01;
    m.row.upd_row_ms = 0.002;
    m.column.upd_row_ms = 0.01;
    m
}

fn spec() -> TableSpec {
    TableSpec::paper_wide("w", 1_000_000, 5)
}

fn schema_and_stats(s: &TableSpec) -> (Vec<Arc<TableSchema>>, BTreeMap<String, TableStats>) {
    let schema = Arc::new(s.schema().unwrap());
    let stats = TableStats {
        row_count: s.rows,
        columns: (0..schema.arity())
            .map(|c| ColumnStats {
                distinct: if c == 0 { s.rows } else { 1000 },
                min: Some(Value::BigInt(0)),
                max: Some(Value::BigInt(s.rows as i64)),
                compression_rate: 0.9,
            })
            .collect(),
    };
    let mut map = BTreeMap::new();
    map.insert("w".to_string(), stats);
    (vec![schema], map)
}

fn bench_estimation(c: &mut Criterion) {
    let m = model();
    let s = spec();
    let (schemas, stats) = schema_and_stats(&s);
    let ctx = build_ctx(&schemas, &stats);
    let assignment: BTreeMap<String, StoreKind> =
        [("w".to_string(), StoreKind::Column)].into_iter().collect();
    let q = Query::Aggregate(AggregateQuery::simple("w", AggFunc::Sum, s.kf_col(0)));

    let mut group = c.benchmark_group("estimation");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(50);
    group.bench_function("single_query", |b| {
        b.iter(|| estimate_query(&m, &ctx, &assignment, &q))
    });

    let workload = WorkloadGenerator::single_table(
        &s,
        &MixedWorkloadConfig {
            queries: 500,
            olap_fraction: 0.05,
            ..Default::default()
        },
    );
    group.bench_function("workload_500_queries", |b| {
        b.iter(|| estimate_workload(&m, &ctx, &assignment, &workload))
    });

    let advisor = StorageAdvisor::new(m.clone());
    group.bench_function("advisor_recommend_offline", |b| {
        b.iter(|| {
            advisor
                .recommend_offline(&schemas, &stats, &workload, true)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_estimation);
criterion_main!(benches);
