//! Workload-aware delta-merge scheduling: the decision model behind the
//! online advisor's `MaintenanceAction::Merge` recommendations.
//!
//! The column store's delta tail is a *deferred cost*: every scan between
//! merges pays the `f_tail` degradation, and the merge itself costs
//! `merge_ms`. A size-only trigger ignores the workload — it merges a
//! write-only table (pure cost, no scans ever collect the benefit) exactly
//! as eagerly as a scan-heavy one. The scheduler here instead compares the
//! *modeled* quantities the calibrated cost model already knows: schedule a
//! merge when the scan savings expected over the next observation interval
//! exceed the modeled merge cost.

use hsd_engine::{mover, HybridDatabase};
use hsd_types::Result;

use crate::cost::CostModel;

/// Which physical region of a table a maintenance action targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergePartition {
    /// The table is a single column-store table.
    Whole,
    /// The cold partition (or its column-store fragment) of a partitioned
    /// table — the only region with a delta tail, since the hot partition
    /// is row-store resident.
    Cold,
}

/// A maintenance operation the online advisor recommends, alongside (and
/// independently of) its placement adaptations.
#[derive(Debug, Clone, PartialEq)]
pub enum MaintenanceAction {
    /// Fold the dictionary tails of `table`'s column-store partition back
    /// into the sorted region (the delta merge).
    Merge {
        /// Table to merge.
        table: String,
        /// Which physical region holds the delta.
        partition: MergePartition,
    },
}

impl MaintenanceAction {
    /// The table this action targets.
    pub fn table(&self) -> &str {
        match self {
            MaintenanceAction::Merge { table, .. } => table,
        }
    }

    /// Apply the action to the database via the engine's explicit
    /// maintenance entry point; returns how many tail entries were merged.
    ///
    /// [`mover::merge_delta`] compacts every column-store region of the
    /// table — which is exactly the region the `partition` field names:
    /// the whole table for [`MergePartition::Whole`], and only the cold
    /// partition for [`MergePartition::Cold`] (the hot partition is
    /// row-store resident and carries no delta). The field documents where
    /// the work happens; it does not select a different operation.
    pub fn apply(&self, db: &mut HybridDatabase) -> Result<usize> {
        match self {
            MaintenanceAction::Merge { table, .. } => mover::merge_delta(db, table),
        }
    }
}

/// The two sides of a merge-scheduling decision, in modeled milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MergeDecision {
    /// Scan cost the accumulated tail is expected to add over the next
    /// `expected_scans` scans if left unmerged.
    pub scan_savings_ms: f64,
    /// Modeled cost of running the merge now.
    pub merge_cost_ms: f64,
}

impl MergeDecision {
    /// Whether the merge pays for itself: modeled savings must exceed the
    /// modeled cost by `safety_factor` (1.0 = break-even scheduling; larger
    /// values demand a margin before interrupting the workload).
    pub fn beneficial(&self, safety_factor: f64) -> bool {
        self.scan_savings_ms > self.merge_cost_ms * safety_factor
    }
}

/// Evaluate the merge trade-off for a column-store region of `rows` rows
/// carrying `tail` accumulated dictionary-tail entries, over
/// `expected_scans` scan-type statements (aggregations, range selects).
///
/// Savings per scan are the calibrated scan base cost — reference
/// aggregation plus predicate evaluation over the table, the two terms
/// `f_tail` multiplies in the estimator — times the `f_tail` degradation
/// in excess of 1; the merge cost is the calibrated `merge_ms` at the
/// current row count.
///
/// The online advisor does not compare one interval's savings against the
/// full merge cost (that would starve merges under steady moderate scan
/// rates); it *accrues* each interval's modeled penalty and schedules the
/// merge once the total paid since the last merge exceeds the merge cost —
/// the classic rent-or-buy rule, within a constant factor of the optimal
/// offline schedule regardless of how the scan rate fluctuates.
pub fn evaluate_merge(
    model: &CostModel,
    rows: usize,
    tail: usize,
    expected_scans: f64,
) -> MergeDecision {
    let m = &model.column;
    let n = rows as f64;
    let frac = tail as f64 / n.max(1.0);
    let per_scan = m.f_rows.eval(n).max(0.0) + m.sel_per_row_scan.max(0.0) * n;
    let penalty_per_scan = per_scan * (m.f_tail.eval(frac).max(1.0) - 1.0);
    MergeDecision {
        scan_savings_ms: penalty_per_scan * expected_scans.max(0.0),
        merge_cost_ms: m.merge_ms.eval(n).max(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::AdjustmentFn;

    /// Model with hand-set maintenance terms: reference scan 1 ms, tail
    /// factor `1 + 10·frac`, merge cost flat 10 ms.
    fn model() -> CostModel {
        let mut m = CostModel::neutral();
        m.column.f_rows = AdjustmentFn::Constant(1.0);
        m.column.f_tail = AdjustmentFn::Linear {
            slope: 10.0,
            intercept: 1.0,
        };
        m.column.merge_ms = AdjustmentFn::Constant(10.0);
        m
    }

    #[test]
    fn decision_boundary_scales_with_expected_scans() {
        let m = model();
        // tail fraction 0.1 -> factor 2.0 -> 1 ms penalty per scan.
        let few = evaluate_merge(&m, 1000, 100, 5.0);
        assert!((few.scan_savings_ms - 5.0).abs() < 1e-9);
        assert!((few.merge_cost_ms - 10.0).abs() < 1e-9);
        assert!(!few.beneficial(1.0), "5 ms savings < 10 ms merge");
        let many = evaluate_merge(&m, 1000, 100, 20.0);
        assert!(many.beneficial(1.0), "20 ms savings > 10 ms merge");
        // exactly break-even is NOT beneficial (strict inequality)
        let even = evaluate_merge(&m, 1000, 100, 10.0);
        assert!(!even.beneficial(1.0));
        // a safety factor demands margin
        assert!(!many.beneficial(2.5), "20 < 10 * 2.5");
    }

    #[test]
    fn decision_boundary_scales_with_tail() {
        let m = model();
        // No tail -> no savings, never beneficial.
        let clean = evaluate_merge(&m, 1000, 0, 1000.0);
        assert_eq!(clean.scan_savings_ms, 0.0);
        assert!(!clean.beneficial(1.0));
        // Bigger tail -> bigger per-scan penalty.
        let small = evaluate_merge(&m, 1000, 50, 10.0);
        let large = evaluate_merge(&m, 1000, 500, 10.0);
        assert!(large.scan_savings_ms > small.scan_savings_ms);
    }

    #[test]
    fn write_only_workloads_never_schedule() {
        let m = model();
        let d = evaluate_merge(&m, 1000, 900, 0.0);
        assert_eq!(d.scan_savings_ms, 0.0);
        assert!(!d.beneficial(0.0), "zero scans -> zero benefit");
    }
}
