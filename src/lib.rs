//! # hybrid-store-advisor
//!
//! A from-scratch reproduction of *"A Storage Advisor for Hybrid-Store
//! Databases"* (Rösch, Dannecker, Hackenbroich, Färber — SAP, PVLDB 5(12),
//! 2012): an in-memory hybrid row-/column-store database engine plus the
//! paper's cost-model-driven storage advisor.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `hsd-types` | values, schemas, errors |
//! | [`storage`] | `hsd-storage` | row store, dictionary-compressed column store |
//! | [`catalog`] | `hsd-catalog` | statistics, layouts, partition specs |
//! | [`query`] | `hsd-query` | query AST, workloads, generators |
//! | [`engine`] | `hsd-engine` | executor, partition rewriting, data mover |
//! | [`advisor`] | `hsd-core` | cost model, calibration, recommendation |
//! | [`tpch`] | `hsd-tpch` | TPC-H-like generator and mixed workload |
//!
//! ## Quickstart
//!
//! ```
//! use hybrid_store_advisor::prelude::*;
//!
//! // A hybrid database with a column-store table.
//! let db = HybridDatabase::new();
//! let schema = TableSchema::new(
//!     "orders",
//!     vec![
//!         ColumnDef::new("id", ColumnType::BigInt),
//!         ColumnDef::new("amount", ColumnType::Double),
//!     ],
//!     vec![0],
//! )
//! .unwrap();
//! db.create_single(schema, StoreKind::Column).unwrap();
//! db.bulk_load(
//!     "orders",
//!     (0..1000).map(|i| vec![Value::BigInt(i), Value::Double(i as f64)]),
//! )
//! .unwrap();
//!
//! // Aggregate through the store-agnostic executor.
//! let q = Query::Aggregate(AggregateQuery::simple("orders", AggFunc::Sum, 1));
//! let out = db.execute(&q).unwrap();
//! let sum = out.aggregates().unwrap()[0].values[0];
//! assert_eq!(sum, (0..1000).map(|i| i as f64).sum::<f64>());
//! ```

pub use hsd_catalog as catalog;
pub use hsd_core as advisor;
pub use hsd_engine as engine;
pub use hsd_query as query;
pub use hsd_storage as storage;
pub use hsd_tpch as tpch;
pub use hsd_types as types;

/// Common imports for applications.
pub mod prelude {
    pub use hsd_catalog::{
        ExtendedStats, HorizontalSpec, PartitionSpec, StorageLayout, TablePlacement, TableStats,
        Tier, VerticalSpec,
    };
    pub use hsd_core::{
        calibrate, AdaptationRecommendation, CalibrationConfig, CostModel, MaintenanceAction,
        MergePartition, OnlineAdvisor, OnlineConfig, Recommendation, StorageAdvisor,
    };
    pub use hsd_engine::{
        mover, BackgroundWorker, DegradedTable, DurabilityConfig, HybridDatabase,
        MaintenanceWorker, MergeConfig, MergeMode, PacerConfig, RecoveryReport, SharedDatabase,
        StatisticsRecorder, WorkerConfig, WorkerHealth, WorkloadRunner,
    };
    pub use hsd_query::{
        AggFunc, Aggregate, AggregateQuery, InsertQuery, JoinSpec, MixedWorkloadConfig, Query,
        SelectQuery, TableSpec, UpdateQuery, Workload, WorkloadGenerator,
    };
    pub use hsd_storage::{ColRange, StoreKind, SyncPolicy, WalWriter};
    pub use hsd_types::{ColumnDef, ColumnType, TableSchema, Value};
}
