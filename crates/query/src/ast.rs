//! The query AST.

use hsd_storage::ColRange;
use hsd_types::{ColumnIdx, Value};

/// Aggregation functions supported by the engine and cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Sum of the (numeric) attribute.
    Sum,
    /// Arithmetic mean.
    Avg,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Count of non-null values.
    Count,
}

impl AggFunc {
    /// All functions, stable order (calibration sweeps iterate this).
    pub const ALL: [AggFunc; 5] = [
        AggFunc::Sum,
        AggFunc::Avg,
        AggFunc::Min,
        AggFunc::Max,
        AggFunc::Count,
    ];

    /// SQL-ish name.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Count => "COUNT",
        }
    }
}

impl std::fmt::Display for AggFunc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One aggregate expression: `func(column)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aggregate {
    /// Aggregation function.
    pub func: AggFunc,
    /// Input column (on the fact table for join queries).
    pub column: ColumnIdx,
}

/// Equi-join of the queried (fact) table against a dimension table.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinSpec {
    /// Name of the dimension table.
    pub dim_table: String,
    /// Foreign-key column on the fact table.
    pub fact_fk: ColumnIdx,
    /// Join column on the dimension table (its primary key).
    pub dim_pk: ColumnIdx,
    /// Optional GROUP BY on a dimension attribute.
    pub group_by_dim: Option<ColumnIdx>,
}

/// An aggregation (OLAP) query, optionally grouped and/or joined.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateQuery {
    /// Queried (fact) table.
    pub table: String,
    /// Aggregates to compute (at least one).
    pub aggregates: Vec<Aggregate>,
    /// Optional GROUP BY on a fact column.
    pub group_by: Option<ColumnIdx>,
    /// Conjunctive filter on fact columns (empty = full scan).
    pub filter: Vec<ColRange>,
    /// Optional dimension join.
    pub join: Option<JoinSpec>,
}

/// A point or range selection (OLTP read).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectQuery {
    /// Queried table.
    pub table: String,
    /// Projected columns (`None` = all columns).
    pub columns: Option<Vec<ColumnIdx>>,
    /// Conjunctive filter.
    pub filter: Vec<ColRange>,
}

/// An insert of one or more rows.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertQuery {
    /// Target table.
    pub table: String,
    /// Rows to insert.
    pub rows: Vec<Vec<Value>>,
}

/// An update assigning values to matching rows.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateQuery {
    /// Target table.
    pub table: String,
    /// Column assignments.
    pub sets: Vec<(ColumnIdx, Value)>,
    /// Conjunctive filter selecting the affected rows.
    pub filter: Vec<ColRange>,
}

/// Any query the engine executes.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Aggregation (OLAP).
    Aggregate(AggregateQuery),
    /// Point/range selection (OLTP read).
    Select(SelectQuery),
    /// Insert (OLTP write).
    Insert(InsertQuery),
    /// Update (OLTP write).
    Update(UpdateQuery),
}

/// Coarse query classification, used for workload summaries and the cost
/// model's base-cost lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// Aggregation over a single table.
    Aggregation,
    /// Aggregation joining a dimension table.
    AggregationJoin,
    /// Point or range selection.
    Select,
    /// Insert.
    Insert,
    /// Update.
    Update,
}

impl Query {
    /// The primary table the query addresses.
    pub fn table(&self) -> &str {
        match self {
            Query::Aggregate(q) => &q.table,
            Query::Select(q) => &q.table,
            Query::Insert(q) => &q.table,
            Query::Update(q) => &q.table,
        }
    }

    /// Coarse classification.
    pub fn kind(&self) -> QueryKind {
        match self {
            Query::Aggregate(q) if q.join.is_some() => QueryKind::AggregationJoin,
            Query::Aggregate(_) => QueryKind::Aggregation,
            Query::Select(_) => QueryKind::Select,
            Query::Insert(_) => QueryKind::Insert,
            Query::Update(_) => QueryKind::Update,
        }
    }

    /// Whether this is an analytical (OLAP) query.
    pub fn is_olap(&self) -> bool {
        matches!(self, Query::Aggregate(_))
    }

    /// All tables the query touches (primary table plus join partner).
    pub fn tables(&self) -> Vec<&str> {
        match self {
            Query::Aggregate(q) => match &q.join {
                Some(j) => vec![q.table.as_str(), j.dim_table.as_str()],
                None => vec![q.table.as_str()],
            },
            other => vec![other.table()],
        }
    }
}

/// Builder shorthands used throughout tests and generators.
impl AggregateQuery {
    /// Ungrouped, unfiltered single-aggregate query.
    pub fn simple(table: impl Into<String>, func: AggFunc, column: ColumnIdx) -> Self {
        AggregateQuery {
            table: table.into(),
            aggregates: vec![Aggregate { func, column }],
            group_by: None,
            filter: Vec::new(),
            join: None,
        }
    }
}

impl SelectQuery {
    /// Point select on a single-column primary key.
    pub fn point(table: impl Into<String>, pk_col: ColumnIdx, key: Value) -> Self {
        SelectQuery {
            table: table.into(),
            columns: None,
            filter: vec![ColRange::eq(pk_col, key)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_tables() {
        let agg = Query::Aggregate(AggregateQuery::simple("t", AggFunc::Sum, 1));
        assert_eq!(agg.kind(), QueryKind::Aggregation);
        assert!(agg.is_olap());
        assert_eq!(agg.tables(), vec!["t"]);

        let mut joined = AggregateQuery::simple("fact", AggFunc::Avg, 2);
        joined.join = Some(JoinSpec {
            dim_table: "dim".into(),
            fact_fk: 0,
            dim_pk: 0,
            group_by_dim: Some(1),
        });
        let joined = Query::Aggregate(joined);
        assert_eq!(joined.kind(), QueryKind::AggregationJoin);
        assert_eq!(joined.tables(), vec!["fact", "dim"]);

        let sel = Query::Select(SelectQuery::point("t", 0, Value::Int(5)));
        assert_eq!(sel.kind(), QueryKind::Select);
        assert!(!sel.is_olap());

        let ins = Query::Insert(InsertQuery {
            table: "t".into(),
            rows: vec![],
        });
        assert_eq!(ins.kind(), QueryKind::Insert);

        let upd = Query::Update(UpdateQuery {
            table: "t".into(),
            sets: vec![],
            filter: vec![],
        });
        assert_eq!(upd.kind(), QueryKind::Update);
        assert_eq!(upd.table(), "t");
    }

    #[test]
    fn agg_func_names() {
        assert_eq!(AggFunc::Sum.to_string(), "SUM");
        assert_eq!(AggFunc::ALL.len(), 5);
    }
}
