//! Table schemas.

use crate::error::{Error, Result};
use crate::ids::ColumnIdx;
use crate::value::{ColumnType, Value};

/// Definition of a single column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name (unique within the table).
    pub name: String,
    /// Logical type.
    pub ty: ColumnType,
    /// Whether NULLs are admitted.
    pub nullable: bool,
}

impl ColumnDef {
    /// A non-nullable column.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
            nullable: false,
        }
    }

    /// A nullable column.
    pub fn nullable(name: impl Into<String>, ty: ColumnType) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
            nullable: true,
        }
    }
}

/// Schema of a table: named, typed columns plus a primary key.
///
/// The primary key is a list of column indexes; it is required because both
/// stores maintain a PK index for uniqueness checks (the paper's insert cost
/// model explicitly includes the uniqueness verification, which is why insert
/// cost grows with table size).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<ColumnDef>,
    /// Indexes of the primary-key columns.
    pub primary_key: Vec<ColumnIdx>,
}

impl TableSchema {
    /// Create and validate a schema.
    pub fn new(
        name: impl Into<String>,
        columns: Vec<ColumnDef>,
        primary_key: Vec<ColumnIdx>,
    ) -> Result<Self> {
        let name = name.into();
        if columns.is_empty() {
            return Err(Error::InvalidSchema(format!("table {name} has no columns")));
        }
        if primary_key.is_empty() {
            return Err(Error::InvalidSchema(format!(
                "table {name} has no primary key"
            )));
        }
        for &idx in &primary_key {
            if idx >= columns.len() {
                return Err(Error::InvalidSchema(format!(
                    "table {name}: primary-key column index {idx} out of range"
                )));
            }
            if columns[idx].nullable {
                return Err(Error::InvalidSchema(format!(
                    "table {name}: primary-key column {} must not be nullable",
                    columns[idx].name
                )));
            }
        }
        let mut names: Vec<&str> = columns.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        if names.len() != columns.len() {
            return Err(Error::InvalidSchema(format!(
                "table {name} has duplicate column names"
            )));
        }
        Ok(TableSchema {
            name,
            columns,
            primary_key,
        })
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Resolve a column name to its index.
    pub fn column_index(&self, name: &str) -> Result<ColumnIdx> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| Error::UnknownColumn(format!("{}.{}", self.name, name)))
    }

    /// Column definition at `idx`.
    pub fn column(&self, idx: ColumnIdx) -> Result<&ColumnDef> {
        self.columns
            .get(idx)
            .ok_or_else(|| Error::UnknownColumn(format!("{}[{}]", self.name, idx)))
    }

    /// Whether `idx` is part of the primary key.
    pub fn is_pk_column(&self, idx: ColumnIdx) -> bool {
        self.primary_key.contains(&idx)
    }

    /// Validate a full row against the schema (arity, types, nullability).
    pub fn validate_row(&self, row: &[Value]) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(Error::ArityMismatch {
                expected: self.columns.len(),
                got: row.len(),
            });
        }
        for (value, col) in row.iter().zip(&self.columns) {
            self.validate_value(value, col)?;
        }
        Ok(())
    }

    /// Validate a single value against column `idx`.
    pub fn validate_value_at(&self, idx: ColumnIdx, value: &Value) -> Result<()> {
        let col = self.column(idx)?;
        self.validate_value(value, col)
    }

    fn validate_value(&self, value: &Value, col: &ColumnDef) -> Result<()> {
        if value.is_null() {
            if !col.nullable {
                return Err(Error::NullViolation(format!("{}.{}", self.name, col.name)));
            }
            return Ok(());
        }
        if !value.matches_type(col.ty) {
            return Err(Error::TypeMismatch {
                expected: col.ty,
                got: value.to_string(),
            });
        }
        Ok(())
    }

    /// Extract the primary-key values of a row, in PK order.
    pub fn pk_values<'a>(&self, row: &'a [Value]) -> Vec<&'a Value> {
        self.primary_key.iter().map(|&i| &row[i]).collect()
    }

    /// Build a schema with a derived name and a subset of columns (used for
    /// vertical partitions; the PK columns are always retained).
    ///
    /// `keep` lists column indexes of *this* schema to retain; indexes are
    /// deduplicated and emitted in their original order, with PK columns
    /// prepended if missing. Returns the new schema plus the mapping from new
    /// column index to old column index.
    pub fn project(
        &self,
        suffix: &str,
        keep: &[ColumnIdx],
    ) -> Result<(TableSchema, Vec<ColumnIdx>)> {
        let mut selected: Vec<ColumnIdx> = Vec::new();
        for &pk in &self.primary_key {
            if !selected.contains(&pk) {
                selected.push(pk);
            }
        }
        for &idx in keep {
            if idx >= self.columns.len() {
                return Err(Error::UnknownColumn(format!("{}[{}]", self.name, idx)));
            }
            if !selected.contains(&idx) {
                selected.push(idx);
            }
        }
        let columns: Vec<ColumnDef> = selected.iter().map(|&i| self.columns[i].clone()).collect();
        let primary_key: Vec<ColumnIdx> = self
            .primary_key
            .iter()
            .map(|pk| selected.iter().position(|s| s == pk).expect("pk retained"))
            .collect();
        let schema = TableSchema::new(format!("{}_{suffix}", self.name), columns, primary_key)?;
        Ok((schema, selected))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TableSchema {
        TableSchema::new(
            "orders",
            vec![
                ColumnDef::new("id", ColumnType::BigInt),
                ColumnDef::new("amount", ColumnType::Double),
                ColumnDef::nullable("note", ColumnType::Varchar),
            ],
            vec![0],
        )
        .unwrap()
    }

    #[test]
    fn build_and_lookup() {
        let s = sample();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.column_index("amount").unwrap(), 1);
        assert!(s.column_index("missing").is_err());
        assert!(s.is_pk_column(0));
        assert!(!s.is_pk_column(1));
    }

    #[test]
    fn rejects_bad_schemas() {
        assert!(TableSchema::new("t", vec![], vec![]).is_err());
        let cols = vec![ColumnDef::new("a", ColumnType::Integer)];
        assert!(TableSchema::new("t", cols.clone(), vec![]).is_err());
        assert!(TableSchema::new("t", cols.clone(), vec![5]).is_err());
        let dup = vec![
            ColumnDef::new("a", ColumnType::Integer),
            ColumnDef::new("a", ColumnType::Double),
        ];
        assert!(TableSchema::new("t", dup, vec![0]).is_err());
        let nullable_pk = vec![ColumnDef::nullable("a", ColumnType::Integer)];
        assert!(TableSchema::new("t", nullable_pk, vec![0]).is_err());
    }

    #[test]
    fn validates_rows() {
        let s = sample();
        assert!(s
            .validate_row(&[Value::BigInt(1), Value::Double(2.0), Value::text("x")])
            .is_ok());
        assert!(s
            .validate_row(&[Value::BigInt(1), Value::Double(2.0), Value::Null])
            .is_ok());
        // wrong arity
        assert!(s.validate_row(&[Value::BigInt(1)]).is_err());
        // wrong type
        assert!(s
            .validate_row(&[Value::BigInt(1), Value::Int(2), Value::Null])
            .is_err());
        // null in non-nullable
        assert!(s
            .validate_row(&[Value::Null, Value::Double(2.0), Value::Null])
            .is_err());
    }

    #[test]
    fn pk_values_extracts_in_order() {
        let s = sample();
        let row = [Value::BigInt(9), Value::Double(1.0), Value::Null];
        let pk = s.pk_values(&row);
        assert_eq!(pk, vec![&Value::BigInt(9)]);
    }

    #[test]
    fn project_keeps_pk_and_order() {
        let s = sample();
        let (sub, mapping) = s.project("olap", &[1]).unwrap();
        assert_eq!(sub.name, "orders_olap");
        assert_eq!(sub.arity(), 2);
        assert_eq!(sub.columns[0].name, "id");
        assert_eq!(sub.columns[1].name, "amount");
        assert_eq!(mapping, vec![0, 1]);
        assert_eq!(sub.primary_key, vec![0]);
    }

    #[test]
    fn project_dedups_and_validates() {
        let s = sample();
        let (sub, mapping) = s.project("x", &[0, 2, 2]).unwrap();
        assert_eq!(mapping, vec![0, 2]);
        assert_eq!(sub.arity(), 2);
        assert!(s.project("x", &[9]).is_err());
    }

    #[test]
    fn composite_pk_projection() {
        let s = TableSchema::new(
            "lineitem",
            vec![
                ColumnDef::new("orderkey", ColumnType::BigInt),
                ColumnDef::new("linenumber", ColumnType::Integer),
                ColumnDef::new("qty", ColumnType::Double),
            ],
            vec![0, 1],
        )
        .unwrap();
        let (sub, mapping) = s.project("v", &[2]).unwrap();
        assert_eq!(mapping, vec![0, 1, 2]);
        assert_eq!(sub.primary_key, vec![0, 1]);
    }
}
