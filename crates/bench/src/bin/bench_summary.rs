//! One-table summary of every `BENCH_*.json` trajectory artifact in the
//! working directory — the consolidated view CI's `bench-trajectory` job
//! prints so a reviewer reads one table instead of four JSON blobs.
//!
//! Thin wrapper over [`hsd_bench::summary`]: globs the artifacts, prints
//! the markdown table, and exits non-zero if any artifact records
//! `pass: false` or is unreadable, so the caller decides whether that
//! gates. Missing files and missing keys degrade to `n/a` cells rather
//! than panics (the logic is unit-tested in the library module).
//!
//! `--check-readme` instead verifies that every committed `BENCH_*.json`
//! is documented in `README.md` (each artifact name must appear verbatim)
//! and exits non-zero listing the undocumented ones — the gating CI guard
//! against the README bench table drifting from the artifacts.
//!
//! Run with `cargo run --release -p hsd-bench --bin bench_summary`.

use hsd_bench::summary;

fn artifact_files() -> Vec<String> {
    let mut files: Vec<String> = std::fs::read_dir(".")
        .expect("read cwd")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    files.sort();
    files
}

fn main() {
    let check_readme = std::env::args().any(|a| a == "--check-readme");
    let files = artifact_files();
    if files.is_empty() {
        eprintln!("[bench_summary] no BENCH_*.json artifacts found");
        std::process::exit(1);
    }

    if check_readme {
        let readme = std::fs::read_to_string("README.md").expect("read README.md");
        let missing = summary::readme_missing_rows(&readme, &files);
        if missing.is_empty() {
            println!(
                "[bench_summary] README.md documents all {} artifacts",
                files.len()
            );
            return;
        }
        for m in &missing {
            eprintln!("[bench_summary] README.md has no row for {m}");
        }
        std::process::exit(1);
    }

    let rows: Vec<summary::ArtifactRow> =
        files.iter().map(|f| summary::summarize_path(f)).collect();
    print!("{}", summary::render_markdown(&rows));
    if rows.iter().any(summary::ArtifactRow::failing) {
        std::process::exit(1);
    }
}
