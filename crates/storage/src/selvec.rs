//! Selection vectors: bitmap row selections with cheap conjunction.
//!
//! The scalar scan path materialized a fresh `Vec<u32>` of row ids per
//! predicate and intersected them by merging — O(matches) allocation and
//! branchy merge work per conjunct. A [`SelVec`] stores one bit per row
//! instead: predicates write 64 rows of match bits with a handful of ALU
//! ops, conjunctions are word-wise `AND`s, and an all-zero word lets later
//! conjuncts skip 64 rows at a time. Row-id lists are materialized once at
//! the end, only when an explicit list is actually needed (updates, tuple
//! materialization).

/// A bitmap selection over the rows `0..len` of one table or partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelVec {
    words: Vec<u64>,
    len: usize,
}

impl SelVec {
    /// Selection of every row in `0..len`.
    pub fn all(len: usize) -> Self {
        let mut words = vec![u64::MAX; len.div_ceil(64)];
        if let Some(last) = words.last_mut() {
            let tail_bits = len % 64;
            if tail_bits != 0 {
                *last = (1u64 << tail_bits) - 1;
            }
        }
        SelVec { words, len }
    }

    /// Empty selection over a domain of `len` rows.
    pub fn none(len: usize) -> Self {
        SelVec {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Selection from an ascending list of row ids.
    pub fn from_row_ids(len: usize, rows: &[u32]) -> Self {
        let mut v = SelVec::none(len);
        for &r in rows {
            v.insert(r as usize);
        }
        v
    }

    /// Number of rows in the domain (not the number selected).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of selected rows.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no row is selected.
    pub fn is_none_selected(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether row `i` is selected.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Select row `i`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        assert!(
            i < self.len,
            "SelVec row {i} out of bounds (len {})",
            self.len
        );
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// The backing words (64 rows per word, LSB = lowest row id).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable backing words, for batch predicate evaluation. Bits at or
    /// beyond `len` in the final word must stay zero.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Intersect with another selection over the same domain (conjunction).
    ///
    /// # Panics
    /// Panics if the domains differ.
    pub fn and_assign(&mut self, other: &SelVec) {
        assert_eq!(
            self.len, other.len,
            "SelVec conjunction over different domains"
        );
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Union with another selection over the same domain (disjunction).
    ///
    /// # Panics
    /// Panics if the domains differ.
    pub fn or_assign(&mut self, other: &SelVec) {
        assert_eq!(
            self.len, other.len,
            "SelVec disjunction over different domains"
        );
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Iterate the selected row ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let base = (wi * 64) as u32;
            BitIter { word: w }.map(move |b| base + b)
        })
    }

    /// Materialize the ascending row-id list.
    pub fn to_row_ids(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.count());
        out.extend(self.iter());
        out
    }
}

/// Iterator over the set bit positions of one word (ascending).
struct BitIter {
    word: u64,
}

impl Iterator for BitIter {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.word == 0 {
            return None;
        }
        let b = self.word.trailing_zeros();
        self.word &= self.word - 1;
        Some(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_and_none() {
        let a = SelVec::all(70);
        assert_eq!(a.len(), 70);
        assert_eq!(a.count(), 70);
        assert!(a.contains(0) && a.contains(69));
        let n = SelVec::none(70);
        assert_eq!(n.count(), 0);
        assert!(n.is_none_selected());
        assert!(!a.is_none_selected());
        // domain-boundary word is masked: no phantom bits
        assert_eq!(a.words().last().copied().unwrap() >> (70 % 64), 0);
    }

    #[test]
    fn exact_multiple_of_64() {
        let a = SelVec::all(128);
        assert_eq!(a.count(), 128);
        assert_eq!(a.words(), &[u64::MAX, u64::MAX]);
        let e = SelVec::all(0);
        assert_eq!(e.count(), 0);
        assert!(e.is_empty());
    }

    #[test]
    fn round_trip_row_ids() {
        let ids = vec![0u32, 1, 63, 64, 65, 99];
        let v = SelVec::from_row_ids(100, &ids);
        assert_eq!(v.to_row_ids(), ids);
        assert_eq!(v.count(), ids.len());
        assert!(v.contains(64));
        assert!(!v.contains(2));
    }

    #[test]
    fn conjunction_and_disjunction() {
        let mut a = SelVec::from_row_ids(200, &[1, 5, 64, 70, 199]);
        let b = SelVec::from_row_ids(200, &[5, 64, 128, 199]);
        let mut o = a.clone();
        a.and_assign(&b);
        assert_eq!(a.to_row_ids(), vec![5, 64, 199]);
        o.or_assign(&b);
        assert_eq!(o.to_row_ids(), vec![1, 5, 64, 70, 128, 199]);
    }

    #[test]
    #[should_panic(expected = "different domains")]
    fn mismatched_domains_panic() {
        let mut a = SelVec::all(10);
        a.and_assign(&SelVec::all(11));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn insert_out_of_bounds_panics() {
        let mut a = SelVec::none(10);
        a.insert(10);
    }

    #[test]
    fn iteration_order_is_ascending() {
        let v = SelVec::from_row_ids(1000, &[999, 0, 512, 511, 513]);
        assert_eq!(v.to_row_ids(), vec![0, 511, 512, 513, 999]);
    }
}
