//! Order-preserving dictionaries with an unsorted tail.
//!
//! A column's dictionary has two regions:
//!
//! * a **sorted region** (codes `0..sorted_len`): value order equals code
//!   order, so range predicates compress to a code interval — the "implicit
//!   index" the paper attributes to the column store's data dictionary;
//! * an **unsorted tail** (codes `sorted_len..len`): values that arrived
//!   after the last [`Dictionary::rebuild`]. Lookups in the tail go through a
//!   hash map, and range predicates must inspect tail entries one by one.
//!
//! The tail is what makes column-store inserts and updates cheap enough to be
//! usable while still more expensive than row-store ones; a rebuild (the
//! delta merge of HANA-style stores) folds the tail back into the sorted
//! region and yields a code remapping that the owning column applies to its
//! code vector.

use std::collections::HashMap;
use std::ops::Bound;

use hsd_types::Value;

/// An order-preserving dictionary with an unsorted tail region.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    sorted: Vec<Value>,
    tail: Vec<Value>,
    tail_lookup: HashMap<Value, u32>,
}

impl Dictionary {
    /// Empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a fully sorted dictionary from a set of distinct values.
    pub fn from_distinct(mut values: Vec<Value>) -> Self {
        values.sort();
        values.dedup();
        Dictionary {
            sorted: values,
            tail: Vec::new(),
            tail_lookup: HashMap::new(),
        }
    }

    /// Rebuild a dictionary from its two persisted regions — the restore
    /// half of serializing [`Dictionary::values`] together with
    /// [`Dictionary::sorted_len`]. `sorted` must already be in sorted order
    /// (it is persisted exactly as this module maintains it); `tail` keeps
    /// its arrival order so every code decodes to the same value it was
    /// assigned to. The tail lookup index is reconstructed here.
    ///
    /// # Panics
    /// Panics (debug builds) if `sorted` is not sorted.
    pub fn from_regions(sorted: Vec<Value>, tail: Vec<Value>) -> Self {
        debug_assert!(sorted.is_sorted(), "persisted sorted region out of order");
        let base = sorted.len() as u32;
        let tail_lookup = tail
            .iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), base + i as u32))
            .collect();
        Dictionary {
            sorted,
            tail,
            tail_lookup,
        }
    }

    /// Total number of distinct values (sorted + tail).
    pub fn len(&self) -> usize {
        self.sorted.len() + self.tail.len()
    }

    /// Whether the dictionary holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of values in the sorted region.
    pub fn sorted_len(&self) -> usize {
        self.sorted.len()
    }

    /// Number of values in the unsorted tail.
    pub fn tail_len(&self) -> usize {
        self.tail.len()
    }

    /// Look up the code of `value`, if present.
    pub fn code_for(&self, value: &Value) -> Option<u32> {
        match self.sorted.binary_search(value) {
            Ok(pos) => Some(pos as u32),
            Err(_) => self.tail_lookup.get(value).copied(),
        }
    }

    /// Look up or insert `value`, returning its code. New values go to the
    /// tail.
    pub fn intern(&mut self, value: &Value) -> u32 {
        if let Some(code) = self.code_for(value) {
            return code;
        }
        let code = self.len() as u32;
        self.tail.push(value.clone());
        self.tail_lookup.insert(value.clone(), code);
        code
    }

    /// Decode a code back to its value.
    ///
    /// # Panics
    /// Panics if `code` is out of range.
    #[inline]
    pub fn decode(&self, code: u32) -> &Value {
        let idx = code as usize;
        if idx < self.sorted.len() {
            &self.sorted[idx]
        } else {
            &self.tail[idx - self.sorted.len()]
        }
    }

    /// The half-open code interval `[start, end)` of *sorted-region* codes
    /// whose values fall within the given bounds.
    ///
    /// An unbounded lower end excludes `NULL` (which, when present, is always
    /// the first sorted entry): SQL comparisons never match NULL. To select
    /// NULLs explicitly, pass `Included(Value::Null)` bounds.
    pub fn sorted_code_range(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> (u32, u32) {
        let start = match lo {
            Bound::Unbounded => {
                // Skip a leading NULL if present.
                usize::from(self.sorted.first().is_some_and(Value::is_null))
            }
            Bound::Included(v) => self.sorted.partition_point(|x| x < v),
            Bound::Excluded(v) => self.sorted.partition_point(|x| x <= v),
        };
        let end = match hi {
            Bound::Unbounded => self.sorted.len(),
            Bound::Included(v) => self.sorted.partition_point(|x| x <= v),
            Bound::Excluded(v) => self.sorted.partition_point(|x| x < v),
        };
        (start as u32, end.max(start) as u32)
    }

    /// Codes of *tail* values that fall within the given bounds.
    ///
    /// The tail is unsorted, so this is a linear pass — which is precisely
    /// why a large tail degrades selection performance until the next merge.
    pub fn tail_codes_in_range(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> Vec<u32> {
        let base = self.sorted.len() as u32;
        self.tail
            .iter()
            .enumerate()
            .filter(|(_, v)| value_in_range(v, lo, hi))
            .map(|(i, _)| base + i as u32)
            .collect()
    }

    /// Fold the tail into the sorted region.
    ///
    /// Returns the remapping `old_code -> new_code` that the owning column
    /// must apply to its code vector, or `None` if the tail was empty (no
    /// remap needed).
    pub fn rebuild(&mut self) -> Option<Vec<u32>> {
        let (rebuilt, remap) = self.rebuild_plan()?;
        *self = rebuilt;
        Some(remap)
    }

    /// Plan a rebuild without mutating `self`: the fully sorted dictionary
    /// the tail would fold into, plus the `old_code -> new_code` remapping.
    ///
    /// This is the snapshot an *incremental* merge works from: the owning
    /// column keeps serving reads from the current dictionary while a shadow
    /// code vector is remapped in bounded chunks, and swaps in the rebuilt
    /// dictionary only when the copy completes
    /// ([`crate::column_store::ColumnTable::compact_step`]).
    pub fn rebuild_plan(&self) -> Option<(Dictionary, Vec<u32>)> {
        if self.tail.is_empty() {
            return None;
        }
        let old_len = self.len();
        let mut all: Vec<Value> = Vec::with_capacity(old_len);
        all.extend(self.sorted.iter().cloned());
        all.extend(self.tail.iter().cloned());
        let mut sorted = all.clone();
        sorted.sort();
        sorted.dedup();
        let remap: Vec<u32> = all
            .iter()
            .map(|v| sorted.binary_search(v).expect("value present after sort") as u32)
            .collect();
        Some((
            Dictionary {
                sorted,
                tail: Vec::new(),
                tail_lookup: HashMap::new(),
            },
            remap,
        ))
    }

    /// Iterate over all values in code order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.sorted.iter().chain(self.tail.iter())
    }

    /// Smallest and largest non-null value. O(tail) — the sorted region
    /// answers in O(1), only tail entries need inspection.
    pub fn min_max(&self) -> (Option<Value>, Option<Value>) {
        let mut min: Option<&Value> = self.sorted.iter().find(|v| !v.is_null());
        let mut max: Option<&Value> = self.sorted.last().filter(|v| !v.is_null());
        for v in &self.tail {
            if v.is_null() {
                continue;
            }
            if min.is_none_or(|m| v < m) {
                min = Some(v);
            }
            if max.is_none_or(|m| v > m) {
                max = Some(v);
            }
        }
        (min.cloned(), max.cloned())
    }

    /// Approximate heap bytes (dictionary entries + tail lookup).
    pub fn heap_bytes(&self) -> usize {
        let entry = std::mem::size_of::<Value>();
        (self.sorted.capacity() + self.tail.capacity()) * entry
            + self.tail_lookup.capacity() * (entry + std::mem::size_of::<u32>())
    }
}

/// Check a single value against a pair of bounds, with SQL NULL semantics
/// for unbounded lower ends (see [`Dictionary::sorted_code_range`]).
pub(crate) fn value_in_range(v: &Value, lo: Bound<&Value>, hi: Bound<&Value>) -> bool {
    if v.is_null() && !matches!(lo, Bound::Included(Value::Null)) {
        return false;
    }
    let lo_ok = match lo {
        Bound::Unbounded => true,
        Bound::Included(l) => v >= l,
        Bound::Excluded(l) => v > l,
    };
    let hi_ok = match hi {
        Bound::Unbounded => true,
        Bound::Included(h) => v <= h,
        Bound::Excluded(h) => v < h,
    };
    lo_ok && hi_ok
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict_of(ints: &[i32]) -> Dictionary {
        Dictionary::from_distinct(ints.iter().map(|&i| Value::Int(i)).collect())
    }

    #[test]
    fn from_distinct_sorts_and_dedups() {
        let d = dict_of(&[5, 1, 3, 3, 1]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.sorted_len(), 3);
        assert_eq!(d.decode(0), &Value::Int(1));
        assert_eq!(d.decode(2), &Value::Int(5));
    }

    #[test]
    fn intern_existing_returns_same_code() {
        let mut d = dict_of(&[1, 2, 3]);
        assert_eq!(d.intern(&Value::Int(2)), 1);
        assert_eq!(d.tail_len(), 0);
    }

    #[test]
    fn intern_new_goes_to_tail() {
        let mut d = dict_of(&[10, 20]);
        let c = d.intern(&Value::Int(15));
        assert_eq!(c, 2);
        assert_eq!(d.tail_len(), 1);
        assert_eq!(d.decode(2), &Value::Int(15));
        assert_eq!(d.code_for(&Value::Int(15)), Some(2));
        // interning again reuses the tail code
        assert_eq!(d.intern(&Value::Int(15)), 2);
        assert_eq!(d.tail_len(), 1);
    }

    #[test]
    fn sorted_code_range_bounds() {
        let d = dict_of(&[10, 20, 30, 40]);
        use Bound::*;
        assert_eq!(d.sorted_code_range(Unbounded, Unbounded), (0, 4));
        assert_eq!(
            d.sorted_code_range(Included(&Value::Int(20)), Included(&Value::Int(30))),
            (1, 3)
        );
        assert_eq!(
            d.sorted_code_range(Excluded(&Value::Int(20)), Unbounded),
            (2, 4)
        );
        assert_eq!(
            d.sorted_code_range(Unbounded, Excluded(&Value::Int(20))),
            (0, 1)
        );
        // range for an absent value collapses correctly
        assert_eq!(
            d.sorted_code_range(Included(&Value::Int(25)), Included(&Value::Int(25))),
            (2, 2)
        );
        // inverted range yields empty interval
        assert_eq!(
            d.sorted_code_range(Included(&Value::Int(40)), Included(&Value::Int(10))),
            (3, 3)
        );
    }

    #[test]
    fn unbounded_lower_skips_null() {
        let d = Dictionary::from_distinct(vec![Value::Null, Value::Int(1), Value::Int(2)]);
        use Bound::*;
        assert_eq!(d.sorted_code_range(Unbounded, Unbounded), (1, 3));
        // explicit NULL selection
        assert_eq!(
            d.sorted_code_range(Included(&Value::Null), Included(&Value::Null)),
            (0, 1)
        );
    }

    #[test]
    fn tail_codes_in_range_scans_tail() {
        let mut d = dict_of(&[10, 20]);
        d.intern(&Value::Int(15));
        d.intern(&Value::Int(99));
        use Bound::*;
        let hits = d.tail_codes_in_range(Included(&Value::Int(12)), Included(&Value::Int(50)));
        assert_eq!(hits, vec![2]);
    }

    #[test]
    fn rebuild_returns_remap_and_sorts() {
        let mut d = dict_of(&[10, 30]);
        d.intern(&Value::Int(20)); // code 2 in tail
        let remap = d.rebuild().expect("tail was non-empty");
        // old codes: 0->10, 1->30, 2->20; new sorted: 10,20,30
        assert_eq!(remap, vec![0, 2, 1]);
        assert_eq!(d.tail_len(), 0);
        assert_eq!(d.sorted_len(), 3);
        assert_eq!(d.decode(1), &Value::Int(20));
        assert!(d.rebuild().is_none(), "second rebuild is a no-op");
    }

    #[test]
    fn value_in_range_null_semantics() {
        use Bound::*;
        assert!(!value_in_range(&Value::Null, Unbounded, Unbounded));
        assert!(value_in_range(
            &Value::Null,
            Included(&Value::Null),
            Included(&Value::Null)
        ));
        assert!(value_in_range(
            &Value::Int(5),
            Included(&Value::Int(5)),
            Unbounded
        ));
        assert!(!value_in_range(
            &Value::Int(5),
            Excluded(&Value::Int(5)),
            Unbounded
        ));
    }

    #[test]
    fn decode_across_regions() {
        let mut d = dict_of(&[1]);
        d.intern(&Value::Int(7));
        assert_eq!(d.decode(0), &Value::Int(1));
        assert_eq!(d.decode(1), &Value::Int(7));
        let all: Vec<&Value> = d.values().collect();
        assert_eq!(all.len(), 2);
    }
}
