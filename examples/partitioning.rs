//! Store-aware partitioning by hand (Section 3.2): build a table whose
//! recent rows absorb the writes, split it horizontally and vertically, and
//! watch the same workload get faster — while query results stay identical.
//!
//! ```sh
//! cargo run --release --example partitioning
//! ```

use hybrid_store_advisor::prelude::*;

fn main() -> hybrid_store_advisor::types::Result<()> {
    let rows = 100_000;
    let spec = TableSpec::paper_wide("orders", rows, 3);
    // 5 % analytical queries; updates address the newest 10 % of the data.
    let workload = WorkloadGenerator::single_table(
        &spec,
        &MixedWorkloadConfig {
            queries: 400,
            olap_fraction: 0.05,
            oltp_insert_share: 0.2,
            oltp_update_share: 0.6,
            hot_fraction: Some(0.10),
            update_range_rows: Some(rows / 1000),
            whole_tuple_update_prob: 0.5,
            ..Default::default()
        },
    );
    let check = Query::Aggregate(AggregateQuery::simple(
        "orders",
        AggFunc::Sum,
        spec.kf_col(0),
    ));
    let runner = WorkloadRunner::new();

    let mut reference = None;
    for (label, placement) in [
        ("row store only", TablePlacement::Single(StoreKind::Row)),
        (
            "column store only",
            TablePlacement::Single(StoreKind::Column),
        ),
        (
            "hot/cold + vertical partitioning",
            TablePlacement::Partitioned(PartitionSpec {
                // newest 10 % of rows -> row-store hot partition
                horizontal: Some(HorizontalSpec {
                    split_column: spec.id_col(),
                    split_value: Value::BigInt((rows as f64 * 0.9) as i64),
                }),
                // status attributes -> row-store fragment of the cold part
                vertical: Some(VerticalSpec {
                    row_cols: spec.st_cols(),
                }),
                ..Default::default()
            }),
        ),
    ] {
        let db = HybridDatabase::new();
        db.create_single(spec.schema()?, StoreKind::Row)?;
        db.bulk_load("orders", spec.rows())?;
        mover::move_table(&db, "orders", &placement)?;
        let t = runner.run(&db, &workload)?;
        // Partitioning must be transparent: the same aggregate over all
        // partitions gives the same answer.
        let out = db.execute(&check)?;
        let sum = out.aggregates().unwrap()[0].values[0];
        match reference {
            // Workload mutations are deterministic, so every layout ends in
            // the same logical state.
            None => reference = Some(sum),
            Some(r) => assert!(
                (sum - r).abs() < 1e-6 * r.abs().max(1.0),
                "results diverged"
            ),
        }
        println!("{label:<34} {:>9.1} ms  (checksum {sum:.2})", t.total_ms());
    }
    println!("\nall three layouts returned identical results — rewriting is transparent");
    Ok(())
}
