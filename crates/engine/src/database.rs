//! The hybrid database: catalog + physical table data.
//!
//! # Concurrency model
//!
//! The database is a **shared-nothing collection of table shards**. Each
//! table's physical data lives in its own [`TableShard`]: an `RwLock`
//! around the [`TableData`] plus a monotonically increasing *version
//! counter* published on every write-latch release. All methods take
//! `&self`; an instance is shared across threads as a plain
//! `Arc<HybridDatabase>` — there is no global database mutex.
//!
//! * **Readers** pin a snapshot with [`TableShard::pin`]: the read latch
//!   records the shard version and scans the immutable column segments
//!   without coordinating with other tables. A debug assertion on drop
//!   verifies the version never moved under a pinned snapshot.
//! * **Writers** serialize per table with [`TableShard::latch`]: the write
//!   latch is the only mutation path, and dropping it bumps the version —
//!   the publish step that makes the mutation visible to new pins.
//! * **WAL appends happen under the table latch** (`log_record`),
//!   so each table's log order equals its apply order (recovery replays
//!   per table; see [`crate::durability`]).
//!
//! Lock order (outer → inner): catalog / tables-map / config maps →
//! table shard → WAL. A shard latch or pin must never be held while
//! acquiring the catalog or the tables map — catalog reads needed by a
//! mutation are taken (and released) before the latch.

use std::collections::{BTreeMap, HashMap};
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

use hsd_catalog::{Catalog, StorageLayout, TablePlacement, TableStats};
use hsd_query::Query;
use hsd_storage::wal::{SyncPolicy, WalStats, WalSyncHandle, WalWriter};
use hsd_storage::{SegmentStore, StoreKind, Table};
use hsd_types::{Error, Result, TableId, TableSchema, Value};

use crate::durability::WalRecord;
use crate::executor;
use crate::maintenance::MergeConfig;
use crate::partition::TableData;

/// Acquire a read guard, absorbing poison: a panicking thread never leaves
/// the database unusable (worker slice panics are already contained, this
/// covers user threads too).
pub(crate) fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

/// Acquire a write guard, absorbing poison.
pub(crate) fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

/// Acquire a mutex guard, absorbing poison.
pub(crate) fn mutex_lock<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|e| e.into_inner())
}

/// Group-commit state for the attached WAL.
///
/// Appends take the state mutex briefly (they are memory writes plus an OS
/// buffered write — microseconds). Device syncs are the expensive part, so
/// they run **outside** the mutex: the syncing thread checks the writer out
/// of the cell, releases the lock, syncs, and on completion publishes the
/// covered log length in `synced`. Every record appended before a sync
/// started is durable once that sync lands, so concurrent writers that
/// arrive while a sync is in flight queue on the condvar and are usually
/// covered by the *next* single sync — N writers pay ~1 fsync, not N.
#[derive(Debug, Default)]
struct WalCell {
    state: Mutex<WalState>,
    /// Signalled when a group sync completes (writer returned to the cell,
    /// `synced` advanced) so waiting appenders/syncers re-check.
    cv: Condvar,
}

#[derive(Debug, Default)]
struct WalState {
    /// `None` when durability is off — or transiently while a fallback
    /// group sync has the writer checked out (`syncing` distinguishes the
    /// two).
    writer: Option<WalWriter>,
    /// Detached device-sync half of the writer's backend, when it supports
    /// syncing concurrently with appends ([`WalWriter::sync_handle`]).
    /// With a handle, the group leader syncs while *appends keep flowing*
    /// — that concurrency is what forms batches: every record appended
    /// during the in-flight sync is covered together by the next one.
    /// Without one, the leader checks the writer out and appends stall for
    /// the sync's duration.
    handle: Option<Box<dyn WalSyncHandle>>,
    /// Log length after the most recent append: the target a group sync
    /// covers.
    appended: u64,
    /// Log length covered by the most recent completed sync.
    synced: u64,
    /// A thread is currently syncing (holding `handle` — or `writer`, in
    /// the fallback path).
    syncing: bool,
}

impl WalCell {
    /// Lock the state, waiting until the writer is in the cell so `writer`
    /// reflects attachment (Some = durable, None = in-memory). Only a
    /// fallback sync (no detachable handle) makes this wait.
    fn settled(&self) -> MutexGuard<'_, WalState> {
        let mut st = mutex_lock(&self.state);
        while st.syncing && st.writer.is_none() {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st
    }
}

/// One table's physical data plus its concurrency state: the per-table
/// write latch and the published version counter the epoch-snapshot read
/// protocol pins against.
#[derive(Debug)]
pub struct TableShard {
    data: RwLock<TableData>,
    /// Bumped on every write-latch release (the publish step). Readers pin
    /// this at snapshot start; a moved version under a live pin would mean
    /// the latch protocol was violated (checked by a debug assertion in
    /// [`TableRead::drop`]).
    version: AtomicU64,
}

impl TableShard {
    fn new(data: TableData) -> Self {
        TableShard {
            data: RwLock::new(data),
            version: AtomicU64::new(0),
        }
    }

    /// Pin an epoch snapshot for reading: scans through the returned guard
    /// see one immutable version of the table, concurrent with pins on the
    /// same table and with all activity on other tables.
    pub fn pin(&self) -> TableRead<'_> {
        let data = read_lock(&self.data);
        let pinned = self.version.load(Ordering::Acquire);
        TableRead {
            data,
            shard: self,
            pinned,
        }
    }

    /// Acquire the table's write latch: the exclusive mutation path.
    /// Dropping the guard publishes the write by bumping the version.
    pub fn latch(&self) -> TableWrite<'_> {
        let data = write_lock(&self.data);
        TableWrite { data, shard: self }
    }

    /// The currently published version.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }
}

/// A pinned read snapshot of one table (see [`TableShard::pin`]).
#[derive(Debug)]
pub struct TableRead<'a> {
    data: RwLockReadGuard<'a, TableData>,
    shard: &'a TableShard,
    pinned: u64,
}

impl Deref for TableRead<'_> {
    type Target = TableData;
    fn deref(&self) -> &TableData {
        &self.data
    }
}

impl Drop for TableRead<'_> {
    fn drop(&mut self) {
        // Epoch-monotonicity check: the published version must not have
        // moved while this snapshot was pinned — writers go through the
        // latch, which excludes pins. Debug builds (CI's stress step runs
        // the suite with debug assertions) verify the protocol held.
        debug_assert_eq!(
            self.shard.version.load(Ordering::Acquire),
            self.pinned,
            "table version moved under a pinned read snapshot"
        );
    }
}

/// The write latch over one table (see [`TableShard::latch`]).
#[derive(Debug)]
pub struct TableWrite<'a> {
    data: RwLockWriteGuard<'a, TableData>,
    shard: &'a TableShard,
}

impl Deref for TableWrite<'_> {
    type Target = TableData;
    fn deref(&self) -> &TableData {
        &self.data
    }
}

impl DerefMut for TableWrite<'_> {
    fn deref_mut(&mut self) -> &mut TableData {
        &mut self.data
    }
}

impl Drop for TableWrite<'_> {
    fn drop(&mut self) {
        // Publish: new pins observe the next version.
        self.shard.version.fetch_add(1, Ordering::Release);
    }
}

/// An in-memory hybrid-store database instance.
///
/// All methods take `&self`; share an instance across threads as
/// `Arc<HybridDatabase>` (see the module docs for the latching protocol).
///
/// # Example
///
/// ```
/// use hsd_engine::HybridDatabase;
/// use hsd_query::{AggFunc, AggregateQuery, Query};
/// use hsd_storage::StoreKind;
/// use hsd_types::{ColumnDef, ColumnType, TableSchema, Value};
///
/// let db = HybridDatabase::new();
/// let schema = TableSchema::new(
///     "orders",
///     vec![
///         ColumnDef::new("id", ColumnType::BigInt),
///         ColumnDef::new("amount", ColumnType::Double),
///     ],
///     vec![0], // primary key
/// )?;
/// db.create_single(schema, StoreKind::Column)?;
/// db.bulk_load(
///     "orders",
///     (0..100i64).map(|i| vec![Value::BigInt(i), Value::Double(i as f64)]),
/// )?;
///
/// // The executor is store-agnostic: the same query runs against either
/// // store or any partitioned layout the advisor recommends.
/// let q = Query::Aggregate(AggregateQuery::simple("orders", AggFunc::Sum, 1));
/// let out = db.execute(&q)?;
/// assert_eq!(out.aggregates().unwrap()[0].values[0], 4950.0);
/// # Ok::<(), hsd_types::Error>(())
/// ```
#[derive(Debug, Default)]
pub struct HybridDatabase {
    catalog: RwLock<Catalog>,
    /// Per-table shards, keyed by table name so shard resolution never
    /// touches the catalog lock.
    tables: RwLock<HashMap<String, Arc<TableShard>>>,
    merge_config: RwLock<MergeConfig>,
    /// Write-ahead log, when durability is enabled (see
    /// [`crate::durability`]). `None` keeps the engine purely in-memory.
    /// One log serves all tables; appends happen under the appending
    /// table's write latch, so per-table log order equals apply order.
    /// Syncs are **group-committed**: one fsync covers every record
    /// appended before it, so concurrent writers coalesce instead of
    /// paying a serialized device sync each (see [`WalCell`]).
    wal: WalCell,
    /// Tables quarantined read-only by crash recovery, with reasons.
    degraded: RwLock<BTreeMap<String, String>>,
    /// Store for demoted cold-partition segments (in-memory unless the
    /// database was opened against a directory).
    segments: Arc<SegmentStore>,
    /// On-disk layout when directory-backed (set by
    /// [`HybridDatabase::open_dir`]; enables checkpointing).
    data_dir: RwLock<Option<crate::checkpoint::DataDir>>,
}

impl HybridDatabase {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// The store holding demoted cold-partition segments.
    pub fn segment_store(&self) -> &Arc<SegmentStore> {
        &self.segments
    }

    /// Replace the segment store. Only valid before any fragment has been
    /// demoted (directory-backed databases install their store right after
    /// construction).
    pub(crate) fn set_segment_store(&mut self, store: SegmentStore) {
        self.segments = Arc::new(store);
    }

    /// Record the directory layout this database is backed by.
    pub(crate) fn set_data_dir(&self, layout: crate::checkpoint::DataDir) {
        *write_lock(&self.data_dir) = Some(layout);
    }

    /// The directory layout, when directory-backed.
    pub(crate) fn data_dir(&self) -> Option<crate::checkpoint::DataDir> {
        read_lock(&self.data_dir).clone()
    }

    /// Create a table with the given placement.
    pub fn create_table(&self, schema: TableSchema, placement: TablePlacement) -> Result<TableId> {
        let schema = Arc::new(schema);
        let data = TableData::new(schema.clone(), &placement)?;
        let id = write_lock(&self.catalog).register(schema.clone(), placement.clone())?;
        write_lock(&self.tables).insert(schema.name.clone(), Arc::new(TableShard::new(data)));
        self.log_record(&WalRecord::CreateTable {
            schema: (*schema).clone(),
            placement,
        })?;
        Ok(id)
    }

    /// Create a single-store table (convenience).
    pub fn create_single(&self, schema: TableSchema, store: StoreKind) -> Result<TableId> {
        self.create_table(schema, TablePlacement::Single(store))
    }

    /// Bulk-load rows into a table (hot partition rules apply). For
    /// column-store targets the dictionaries are compacted afterwards, as a
    /// real bulk load would end with a delta merge.
    pub fn bulk_load<I>(&self, table: &str, rows: I) -> Result<usize>
    where
        I: IntoIterator<Item = Vec<Value>>,
    {
        self.check_writable(table)?;
        let shard = self.shard(table)?;
        let wal_on = self.wal_active();
        // The applied rows are collected (only while logging) so a midway
        // failure can still log the prefix that stuck: the engine has no
        // statement rollback, and recovery must reproduce the same prefix.
        let mut applied: Vec<Vec<Value>> = Vec::new();
        let mut failure: Option<Error> = None;
        let mut n = 0;
        {
            let mut data = shard.latch();
            for row in rows {
                match data.insert(&row) {
                    Ok(_) => {
                        n += 1;
                        if wal_on {
                            applied.push(row);
                        }
                    }
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
            if failure.is_none() {
                data.compact_deltas();
            }
            if wal_on && !applied.is_empty() {
                // `load` marks the success path (replay re-compacts); a
                // partial prefix replays as a plain insert, leaving the
                // tail as-is. Logged under the latch: commit order ==
                // apply order.
                self.log_record(&WalRecord::Insert {
                    table: table.to_string(),
                    rows: applied,
                    load: failure.is_none(),
                })?;
            }
        }
        if let Some(e) = failure {
            return Err(e);
        }
        self.refresh_stats(table)?;
        Ok(n)
    }

    /// The system catalog (a read guard; drop it before calling any other
    /// database method that mutates the catalog).
    pub fn catalog(&self) -> RwLockReadGuard<'_, Catalog> {
        read_lock(&self.catalog)
    }

    /// Mutable catalog access (used by the mover and index management).
    /// Never acquire while holding a table latch or pin.
    pub fn catalog_mut(&self) -> RwLockWriteGuard<'_, Catalog> {
        write_lock(&self.catalog)
    }

    /// Resolve a table's shard. The returned `Arc` keeps the shard alive
    /// independent of the tables map; pin or latch it for access.
    pub fn shard(&self, table: &str) -> Result<Arc<TableShard>> {
        read_lock(&self.tables)
            .get(table)
            .cloned()
            .ok_or_else(|| Error::UnknownTable(table.into()))
    }

    /// Run `f` over a pinned read snapshot of a table.
    pub fn with_table<R>(&self, table: &str, f: impl FnOnce(&TableData) -> R) -> Result<R> {
        let shard = self.shard(table)?;
        let pin = shard.pin();
        Ok(f(&pin))
    }

    /// Total logical rows of a table.
    pub fn row_count(&self, table: &str) -> Result<usize> {
        self.with_table(table, TableData::row_count)
    }

    /// The engine-level delta-merge fallback policy.
    pub fn merge_config(&self) -> MergeConfig {
        *read_lock(&self.merge_config)
    }

    /// Replace the delta-merge fallback policy (e.g.
    /// [`MergeConfig::disabled`] when an online advisor schedules merges
    /// explicitly, leaving the executor's auto-merge as a safety valve
    /// only).
    pub fn set_merge_config(&self, cfg: MergeConfig) {
        *write_lock(&self.merge_config) = cfg;
    }

    /// Accumulated dictionary-tail entries of a table's column-store
    /// partitions (0 for row-store-only layouts).
    pub fn delta_tail(&self, table: &str) -> Result<usize> {
        self.with_table(table, TableData::delta_tail)
    }

    /// On-disk segment bytes of a table's demoted cold partition (0 for
    /// memory-resident layouts).
    pub fn disk_bytes(&self, table: &str) -> Result<u64> {
        self.with_table(table, TableData::disk_bytes)
    }

    /// Rows resident in the region a delta merge on `table` would remap:
    /// the whole table for single-store layouts, the cold partition for
    /// hot/cold layouts ([`TableData::merge_region_rows`]). Merge-cost
    /// models should price merges at this count, not
    /// [`HybridDatabase::row_count`].
    pub fn merge_region_rows(&self, table: &str) -> Result<usize> {
        self.with_table(table, TableData::merge_region_rows)
    }

    /// Whether an incremental delta merge is in flight on a table (always
    /// `false` for row-store-only layouts).
    pub fn merge_in_progress(&self, table: &str) -> Result<bool> {
        self.with_table(table, TableData::merge_in_progress)
    }

    /// A table's merge epoch: increases at every completed dictionary
    /// handoff (incremental shadow swap or one-shot rebuild), so observers
    /// — the online advisor, the maintenance worker — can detect that
    /// merge work completed between two looks without watching every
    /// slice. The epoch is **column-granular** (a multi-column merge bumps
    /// it once per column handoff), so "the whole job finished" is the
    /// conjunction of a moved epoch and
    /// [`HybridDatabase::merge_in_progress`] being `false`. 0 for
    /// row-store-only layouts.
    pub fn merge_epoch(&self, table: &str) -> Result<u64> {
        self.with_table(table, TableData::merge_epoch)
    }

    /// `(merge_epoch, merge_in_progress)` read under one pinned snapshot —
    /// the race-free form observers need under concurrency: reading the
    /// two separately can interleave with a worker slice completing in
    /// between, pairing a pre-completion epoch with a post-completion
    /// in-flight flag.
    pub fn merge_status(&self, table: &str) -> Result<(u64, bool)> {
        self.with_table(table, |d| (d.merge_epoch(), d.merge_in_progress()))
    }

    /// Execute a query against the current layout.
    pub fn execute(&self, query: &Query) -> Result<executor::QueryOutput> {
        executor::execute(self, query)
    }

    /// Recompute and store basic statistics for a table.
    pub fn refresh_stats(&self, table: &str) -> Result<()> {
        let shard = self.shard(table)?;
        let stats = {
            let pin = shard.pin();
            collect_stats(&pin, self.segment_store())?
        };
        let mut catalog = write_lock(&self.catalog);
        let id = catalog.id_of(table)?;
        catalog.set_stats(id, stats)
    }

    /// Recompute statistics for every table.
    pub fn refresh_all_stats(&self) -> Result<()> {
        for name in self.table_names() {
            self.refresh_stats(&name)?;
        }
        Ok(())
    }

    /// Create a row-store secondary index on a column of a single-store
    /// row table (and annotate the catalog for the cost model).
    pub fn create_index(&self, table: &str, col: usize) -> Result<()> {
        self.check_writable(table)?;
        let shard = self.shard(table)?;
        {
            let mut data = shard.latch();
            match &mut *data {
                TableData::Single(Table::Row(rt)) => rt.create_index(col)?,
                TableData::Single(Table::Column(_)) => {
                    // The column store's sorted dictionary already acts as
                    // an implicit index; nothing to build.
                }
                TableData::Partitioned { hot, cold, .. } => {
                    if let Some(Table::Row(rt)) = hot.as_mut() {
                        rt.create_index(col)?;
                    }
                    match cold {
                        crate::partition::ColdPart::Single(Table::Row(rt)) => {
                            rt.create_index(col)?
                        }
                        crate::partition::ColdPart::Single(Table::Column(_)) => {}
                        crate::partition::ColdPart::Vertical(p) => p.create_row_index(col)?,
                        // Disk segments are columnar; the dictionary is the
                        // implicit index, so nothing to build.
                        crate::partition::ColdPart::DiskColumn(_) => {}
                    }
                }
            }
            self.log_record(&WalRecord::CreateIndex {
                table: table.to_string(),
                column: col,
            })?;
        }
        let mut catalog = write_lock(&self.catalog);
        let id = catalog.id_of(table)?;
        let entry = catalog.entry_mut(id)?;
        if !entry.indexed_columns.contains(&col) {
            entry.indexed_columns.push(col);
        }
        Ok(())
    }

    /// Current layout snapshot.
    pub fn current_layout(&self) -> StorageLayout {
        self.catalog().current_layout()
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.catalog()
            .entries()
            .iter()
            .map(|e| e.schema.name.clone())
            .collect()
    }

    /// Total heap bytes across all tables.
    pub fn memory_bytes(&self) -> usize {
        let shards: Vec<Arc<TableShard>> = read_lock(&self.tables).values().cloned().collect();
        shards.iter().map(|s| s.pin().memory_bytes()).sum()
    }

    /// Enable durability: every mutating operation from here on is appended
    /// to `wal` (after its in-memory apply succeeds — the durable append is
    /// the commit point; see [`crate::durability`]).
    pub fn attach_wal(&self, wal: WalWriter) {
        let mut st = self.wal.settled();
        st.appended = wal.len();
        st.synced = st.appended;
        st.handle = wal.sync_handle();
        st.writer = Some(wal);
    }

    /// Disable durability, returning the writer (e.g. to inspect or sync
    /// it). Subsequent mutations are no longer logged.
    pub fn detach_wal(&self) -> Option<WalWriter> {
        let mut st = self.wal.settled();
        st.handle = None;
        st.writer.take()
    }

    /// Whether a WAL is attached.
    pub fn wal_active(&self) -> bool {
        let st = mutex_lock(&self.wal.state);
        st.writer.is_some() || st.syncing
    }

    /// Counters of the attached WAL writer, if any.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.wal.settled().writer.as_ref().map(|w| *w.stats())
    }

    /// Bytes appended to the attached WAL so far (0 without a WAL).
    pub fn wal_len(&self) -> u64 {
        self.wal.settled().writer.as_ref().map_or(0, |w| w.len())
    }

    /// Force the attached WAL to stable storage regardless of the batching
    /// policy (no-op without a WAL). Participates in group commit: if a
    /// concurrent sync already covers everything appended, this returns
    /// without touching the device.
    pub fn sync_wal(&self) -> Result<()> {
        let target = mutex_lock(&self.wal.state).appended;
        self.sync_wal_to(target)
    }

    /// Tables quarantined read-only by crash recovery: name → reason.
    pub fn degraded_tables(&self) -> BTreeMap<String, String> {
        read_lock(&self.degraded).clone()
    }

    /// Whether a table is quarantined read-only.
    pub fn is_degraded(&self, table: &str) -> bool {
        read_lock(&self.degraded).contains_key(table)
    }

    /// Operator override: lift a recovery quarantine, restoring
    /// writability. Returns whether the table was quarantined.
    pub fn clear_degraded(&self, table: &str) -> bool {
        write_lock(&self.degraded).remove(table).is_some()
    }

    /// Quarantine a table read-only (recovery's degraded mode).
    pub(crate) fn mark_degraded(&self, table: &str, reason: &str) {
        write_lock(&self.degraded).insert(table.to_string(), reason.to_string());
    }

    /// Reject mutations on quarantined tables.
    pub(crate) fn check_writable(&self, table: &str) -> Result<()> {
        match read_lock(&self.degraded).get(table) {
            Some(reason) => Err(Error::Degraded(format!("{table}: {reason}"))),
            None => Ok(()),
        }
    }

    /// Append one record to the WAL, if durability is enabled. Called
    /// *after* the in-memory apply succeeded and — for per-table mutations
    /// — **while still holding the table's write latch**, so the log's
    /// per-table record order matches the apply order under concurrency.
    /// An append failure is surfaced as [`Error::Io`] (the statement is
    /// applied in memory but not durable — callers treating the WAL as
    /// authoritative should discard the instance and recover).
    pub(crate) fn log_record(&self, rec: &WalRecord) -> Result<()> {
        let my_lsn = {
            let mut st = self.wal.settled();
            let Some(w) = st.writer.as_mut() else {
                return Ok(());
            };
            if w.sync_policy() != SyncPolicy::Always {
                // Batched/manual policies sync rarely; let the writer apply
                // its policy inline — no group commit needed.
                let len = w
                    .append(rec.table_tag(), &rec.to_payload())
                    .map_err(|e| Error::Io(e.to_string()))?;
                st.appended = len;
                return Ok(());
            }
            let len = w
                .append_unsynced(rec.table_tag(), &rec.to_payload())
                .map_err(|e| Error::Io(e.to_string()))?;
            st.appended = len;
            len
        };
        self.sync_wal_to(my_lsn)
    }

    /// Group-commit sync: return once the log is durable through `target`.
    /// If a completed sync already covers it, return immediately; if one is
    /// in flight, wait for it and re-check; otherwise become the group
    /// leader — check the writer out, sync outside the lock (covering every
    /// record appended so far, not just `target`), and publish the result.
    fn sync_wal_to(&self, target: u64) -> Result<()> {
        let mut st = mutex_lock(&self.wal.state);
        loop {
            if st.synced >= target {
                return Ok(());
            }
            if st.syncing {
                st = self.wal.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                continue;
            }
            if st.writer.is_none() {
                // Detached while we waited: nothing left to make durable.
                return Ok(());
            }
            let covers = st.appended;
            st.syncing = true;
            let res = if let Some(mut h) = st.handle.take() {
                // Handle leader: sync the device half while the writer
                // stays in the cell, so appends keep flowing — the records
                // they add are what the *next* sync covers as one batch.
                drop(st);
                let res = h.sync();
                st = mutex_lock(&self.wal.state);
                if st.writer.is_some() {
                    st.handle = Some(h);
                }
                if res.is_ok() {
                    if let Some(w) = st.writer.as_mut() {
                        w.note_external_sync();
                    }
                }
                res
            } else {
                // Fallback leader: the backend can't sync concurrently
                // with appends, so check the writer out for the sync.
                let mut w = st.writer.take().expect("writer checked above");
                drop(st);
                let res = w.sync();
                st = mutex_lock(&self.wal.state);
                st.writer = Some(w);
                res
            };
            st.syncing = false;
            if res.is_ok() {
                st.synced = st.synced.max(covers);
            }
            self.wal.cv.notify_all();
            if let Err(e) = res {
                return Err(Error::Io(e.to_string()));
            }
        }
    }
}

/// Collect stats over whatever layout the table currently has, by observing
/// the logical table (partition-transparent).
fn collect_stats(data: &TableData, store: &SegmentStore) -> Result<TableStats> {
    match data {
        TableData::Single(t) => Ok(TableStats::collect(t)),
        partitioned => {
            // Partition-aware collection: rebuild logical stats from parts.
            // Cheap approach: materialize nothing; scan via the executor's
            // logical visitors.
            executor::collect_logical_stats(partitioned, store)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsd_types::{ColumnDef, ColumnType};

    fn schema(name: &str) -> TableSchema {
        TableSchema::new(
            name,
            vec![
                ColumnDef::new("id", ColumnType::BigInt),
                ColumnDef::new("v", ColumnType::Double),
            ],
            vec![0],
        )
        .unwrap()
    }

    #[test]
    fn create_and_load() {
        let db = HybridDatabase::new();
        db.create_single(schema("t"), StoreKind::Column).unwrap();
        let n = db
            .bulk_load(
                "t",
                (0..50).map(|i| vec![Value::BigInt(i), Value::Double(i as f64)]),
            )
            .unwrap();
        assert_eq!(n, 50);
        assert_eq!(db.row_count("t").unwrap(), 50);
        let stats = db.catalog().entry_by_name("t").unwrap().stats.clone();
        assert_eq!(stats.row_count, 50);
        assert_eq!(stats.columns[0].distinct, 50);
    }

    #[test]
    fn unknown_table_errors() {
        let db = HybridDatabase::new();
        assert!(db.shard("nope").is_err());
    }

    #[test]
    fn index_creation_annotates_catalog() {
        let db = HybridDatabase::new();
        db.create_single(schema("r"), StoreKind::Row).unwrap();
        db.create_index("r", 1).unwrap();
        assert_eq!(
            db.catalog().entry_by_name("r").unwrap().indexed_columns,
            vec![1]
        );
        // column-store index creation is a no-op but records the intent
        db.create_single(schema("c"), StoreKind::Column).unwrap();
        db.create_index("c", 1).unwrap();
        assert_eq!(
            db.catalog().entry_by_name("c").unwrap().indexed_columns,
            vec![1]
        );
    }

    #[test]
    fn memory_accounting() {
        let db = HybridDatabase::new();
        db.create_single(schema("t"), StoreKind::Row).unwrap();
        db.bulk_load(
            "t",
            (0..10).map(|i| vec![Value::BigInt(i), Value::Double(0.0)]),
        )
        .unwrap();
        assert!(db.memory_bytes() > 0);
    }

    #[test]
    fn shard_latch_publishes_a_new_version() {
        let db = HybridDatabase::new();
        db.create_single(schema("t"), StoreKind::Column).unwrap();
        let shard = db.shard("t").unwrap();
        let v0 = shard.version();
        {
            let pin = shard.pin();
            assert_eq!(pin.row_count(), 0);
        }
        assert_eq!(shard.version(), v0, "pins never publish");
        drop(shard.latch());
        assert_eq!(shard.version(), v0 + 1, "latch release publishes");
    }
}
