//! Cost-model initialization ("calibration").
//!
//! Figure 5 of the paper starts the recommendation process with *"Initialize
//! cost model: based on some representative tests the base costs and the
//! adjustment functions are set to reflect the current system's hardware
//! settings and system configurations."* This module is that step: it builds
//! synthetic tables on a scratch [`HybridDatabase`], times micro-benchmarks
//! for every query type on both stores, and fits the adjustment functions
//! (least squares for linear terms, interpolation for piecewise terms).

pub mod online;

use std::time::Instant;

use hsd_catalog::{HorizontalSpec, PartitionSpec, TablePlacement};
use hsd_engine::{HybridDatabase, WorkloadRunner};
use hsd_query::{
    AggFunc, Aggregate, AggregateQuery, InsertQuery, JoinSpec, Query, SelectQuery, TableSpec,
    UpdateQuery,
};
use hsd_storage::{ColRange, StoreKind};
use hsd_types::{ColumnType, Result, Value};

use crate::cost::{store_index, AdjustmentFn, CalibrationMeta, CostModel};

/// Calibration settings.
#[derive(Debug, Clone)]
pub struct CalibrationConfig {
    /// Row count of the reference tables. Sweeps scale around this.
    pub base_rows: usize,
    /// Timing repeats per micro-benchmark (median taken).
    pub repeats: usize,
    /// Repeats for microsecond-scale operations (point queries, updates).
    pub point_repeats: usize,
    /// Row-count sweep factors for `f_#rows` and insert calibration.
    pub row_sweep: Vec<f64>,
    /// RNG seed for the synthetic data.
    pub seed: u64,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            base_rows: 50_000,
            repeats: 3,
            point_repeats: 40,
            row_sweep: vec![0.25, 0.5, 1.0, 1.5, 2.0],
            seed: 0xCA11B,
        }
    }
}

impl CalibrationConfig {
    /// Small, fast settings for tests (seconds instead of minutes).
    pub fn quick() -> Self {
        CalibrationConfig {
            base_rows: 20_000,
            repeats: 3,
            point_repeats: 10,
            row_sweep: vec![0.5, 1.0, 2.0],
            seed: 0xCA11B,
        }
    }
}

/// Run the full calibration and return the fitted cost model.
pub fn calibrate(cfg: &CalibrationConfig) -> Result<CostModel> {
    let mut model = CostModel::neutral();
    for store in StoreKind::BOTH {
        calibrate_store(&mut model, store, cfg)?;
    }
    calibrate_join(&mut model, cfg)?;
    calibrate_union_overhead(&mut model, cfg)?;
    // Disk-tier pricing is not micro-benchmarked (it depends on the deployment
    // medium far more than on this process); ship the documented defaults so a
    // calibrated model never treats disk residency as free.
    model.tier = crate::cost::TierModel::default_disk();
    model.meta = CalibrationMeta {
        base_rows: cfg.base_rows,
        reference_compression: reference_spec("x", cfg.base_rows, cfg)
            .kf_compression(cfg.base_rows),
        table_arity: reference_spec("x", cfg.base_rows, cfg).arity(),
        repeats: cfg.repeats,
        // Fresh calibration: no online re-fits have amended this model yet.
        ..CalibrationMeta::default()
    };
    Ok(model)
}

trait KfCompression {
    fn kf_compression(&self, rows: usize) -> f64;
}

impl KfCompression for TableSpec {
    fn kf_compression(&self, rows: usize) -> f64 {
        (1.0 - self.kf_distinct as f64 / rows as f64).max(0.0)
    }
}

/// The calibration table mirrors the paper's 30-attribute evaluation table.
/// The keyfigure dictionary scales with the row count so the reference
/// compression rate (~0.95) is the same at every sweep size — otherwise a
/// small calibration table would measure a nearly-unique-value regime the
/// production tables never exhibit.
fn reference_spec(name: &str, rows: usize, cfg: &CalibrationConfig) -> TableSpec {
    let mut spec = TableSpec::paper_wide(name, rows, cfg.seed);
    spec.kf_distinct = (rows / 20).max(64) as u32;
    spec
}

fn time_ms(db: &HybridDatabase, q: &Query, repeats: usize) -> Result<f64> {
    let d = WorkloadRunner::new().time_query(db, q, repeats)?;
    Ok(d.as_secs_f64() * 1e3)
}

/// Time a batch of distinct queries, returning the median per-query ms.
fn time_batch_ms(db: &HybridDatabase, queries: &[Query]) -> Result<f64> {
    let mut samples = Vec::with_capacity(queries.len());
    for q in queries {
        let start = Instant::now();
        db.execute(q)?;
        samples.push(start.elapsed().as_secs_f64() * 1e3);
    }
    samples.sort_by(f64::total_cmp);
    Ok(samples[samples.len() / 2])
}

/// Time a batch of distinct queries, returning the *mean* per-query ms.
/// Used for updates, whose cost includes occasional amortized delta merges
/// that a median would hide.
fn time_batch_mean_ms(db: &HybridDatabase, queries: &[Query]) -> Result<f64> {
    let start = Instant::now();
    for q in queries {
        db.execute(q)?;
    }
    Ok(start.elapsed().as_secs_f64() * 1e3 / queries.len().max(1) as f64)
}

fn sum_query(table: &str, col: usize) -> Query {
    Query::Aggregate(AggregateQuery::simple(table, AggFunc::Sum, col))
}

#[allow(clippy::too_many_lines)]
fn calibrate_store(model: &mut CostModel, store: StoreKind, cfg: &CalibrationConfig) -> Result<()> {
    let db = HybridDatabase::new();

    // --- build the row-count sweep tables ---------------------------------
    let mut sweep_tables: Vec<(String, usize)> = Vec::new();
    for (i, factor) in cfg.row_sweep.iter().enumerate() {
        let rows = ((cfg.base_rows as f64) * factor).round().max(16.0) as usize;
        let name = format!("calib_{i}");
        let spec = reference_spec(&name, rows, cfg);
        db.create_single(spec.schema()?, store)?;
        db.bulk_load(&name, spec.rows())?;
        sweep_tables.push((name, rows));
    }
    let ref_idx = cfg
        .row_sweep
        .iter()
        .position(|f| (*f - 1.0).abs() < 1e-9)
        .unwrap_or(cfg.row_sweep.len() / 2);
    let (ref_table, ref_rows) = sweep_tables[ref_idx].clone();
    let spec = reference_spec(&ref_table, ref_rows, cfg);
    let m = model.store_mut(store);

    // --- f_#rows: reference aggregation across the sweep ------------------
    let mut rows_samples = Vec::new();
    for (name, rows) in &sweep_tables {
        let ms = time_ms(&db, &sum_query(name, spec.kf_col(0)), cfg.repeats)?;
        rows_samples.push((*rows as f64, ms));
    }
    m.f_rows = AdjustmentFn::fit_linear(&rows_samples);
    let ref_agg_ms = time_ms(&db, &sum_query(&ref_table, spec.kf_col(0)), cfg.repeats)?;

    // --- base costs per aggregation function -------------------------------
    for func in AggFunc::ALL {
        let q = Query::Aggregate(AggregateQuery::simple(&ref_table, func, spec.kf_col(0)));
        let ms = time_ms(&db, &q, cfg.repeats)?;
        m.set_base_agg(func, (ms / ref_agg_ms).max(1e-3));
    }
    m.set_base_agg(AggFunc::Sum, 1.0);

    // --- c_dataType ---------------------------------------------------------
    // Double is the reference; Integer measured on a filter attribute,
    // BigInt on the id column. Types with no natural calibration column
    // (Decimal ≈ Integer, Varchar/Date/Boolean not aggregated) fall back to
    // the closest measured factor.
    let int_ms = time_ms(&db, &sum_query(&ref_table, spec.flt_col(0)), cfg.repeats)? / ref_agg_ms;
    let bigint_ms = time_ms(&db, &sum_query(&ref_table, 0), cfg.repeats)? / ref_agg_ms;
    m.set_c_type(ColumnType::Double, 1.0);
    m.set_c_type(ColumnType::Integer, int_ms.max(1e-3));
    m.set_c_type(ColumnType::BigInt, bigint_ms.max(1e-3));
    m.set_c_type(ColumnType::Decimal, int_ms.max(1e-3));

    // --- c_groupBy ----------------------------------------------------------
    // Median over several group columns: the ratio steers every grouped
    // estimate, so a single scheduling hiccup must not skew it.
    let mut grouped_samples = Vec::new();
    for g in 0..3.min(spec.group_attrs) {
        let grouped = Query::Aggregate(AggregateQuery {
            table: ref_table.clone(),
            aggregates: vec![Aggregate {
                func: AggFunc::Sum,
                column: spec.kf_col(0),
            }],
            group_by: Some(spec.grp_col(g)),
            filter: vec![],
            join: None,
        });
        grouped_samples.push(time_ms(&db, &grouped, cfg.repeats.max(3))?);
    }
    grouped_samples.sort_by(f64::total_cmp);
    let grouped_ms = grouped_samples[grouped_samples.len() / 2];
    m.c_group_by = (grouped_ms / ref_agg_ms).max(1.0);

    // --- f_compression -------------------------------------------------------
    // Vary the aggregated attribute's distinct count; normalize at the
    // reference table's compression rate.
    let ref_compression = spec.kf_compression(ref_rows);
    let mut comp_points = vec![(ref_compression, 1.0)];
    for (j, distinct) in [16u32, 1024, (cfg.base_rows as u32).max(32) * 4]
        .iter()
        .enumerate()
    {
        let name = format!("calib_comp_{j}");
        let mut cspec = reference_spec(&name, ref_rows, cfg);
        cspec.kf_distinct = *distinct;
        db.create_single(cspec.schema()?, store)?;
        db.bulk_load(&name, cspec.rows())?;
        let ms = time_ms(&db, &sum_query(&name, cspec.kf_col(0)), cfg.repeats)?;
        comp_points.push((cspec.kf_compression(ref_rows), ms / ref_agg_ms));
    }
    m.f_compression = AdjustmentFn::fit_piecewise(comp_points);

    // --- selections -----------------------------------------------------------
    // Point lookups via the primary key.
    let point_queries: Vec<Query> = (0..cfg.point_repeats)
        .map(|i| {
            let id = (i * 37 + 11) % ref_rows;
            Query::Select(SelectQuery::point(&ref_table, 0, Value::BigInt(id as i64)))
        })
        .collect();
    m.sel_point_ms = time_batch_ms(&db, &point_queries)?;

    // Range scans on a filter attribute (domain 0..10_000, uniform).
    let scan_fit = fit_range_scan(&db, &ref_table, &spec, ref_rows, cfg)?;
    m.sel_per_row_scan = scan_fit.0;
    m.sel_per_match = scan_fit.1;
    match store {
        StoreKind::Column => {
            // The dictionary is the implicit index; same path either way.
            m.sel_per_row_indexed = m.sel_per_row_scan;
        }
        StoreKind::Row => {
            // Re-fit with a secondary index in place.
            db.create_index(&ref_table, spec.flt_col(0))?;
            let idx_fit = fit_range_scan(&db, &ref_table, &spec, ref_rows, cfg)?;
            m.sel_per_row_indexed = idx_fit.0.min(m.sel_per_row_scan);
        }
    }

    // --- f_#selectedColumns ----------------------------------------------------
    // Range select emitting ~1% of rows, varying the projection width.
    let arity = spec.arity();
    let width_range = ColRange::between(spec.flt_col(1), Value::Int(0), Value::Int(100));
    let mut col_points = Vec::new();
    let full_ms = {
        let q = Query::Select(SelectQuery {
            table: ref_table.clone(),
            columns: None,
            filter: vec![width_range.clone()],
        });
        time_ms(&db, &q, cfg.repeats)?
    };
    for k in [1usize, arity / 4, arity / 2, arity] {
        let k = k.max(1);
        let q = Query::Select(SelectQuery {
            table: ref_table.clone(),
            columns: Some((0..k).collect()),
            filter: vec![width_range.clone()],
        });
        let ms = time_ms(&db, &q, cfg.repeats)?;
        col_points.push((k as f64, (ms / full_ms).clamp(0.05, 2.0)));
    }
    col_points.push((arity as f64, 1.0));
    m.f_selected_columns = AdjustmentFn::fit_piecewise(col_points);

    // --- inserts -----------------------------------------------------------------
    let mut ins_samples = Vec::new();
    let batch = 200.max(cfg.base_rows / 250);
    for (t, (name, rows)) in sweep_tables.iter().enumerate() {
        let tspec = reference_spec(name, *rows, cfg);
        let fresh_base = (rows * 10 + t) as u64;
        let rows_payload: Vec<Vec<Value>> = (0..batch)
            .map(|i| tspec.row(fresh_base + i as u64))
            .collect();
        let q = Query::Insert(InsertQuery {
            table: name.clone(),
            rows: rows_payload,
        });
        let ms = time_ms(&db, &q, 1)?;
        ins_samples.push((*rows as f64, ms / batch as f64));
    }
    let m = model.store_mut(store);
    m.ins_row = AdjustmentFn::fit_linear(&ins_samples);

    // --- updates ------------------------------------------------------------------
    // Representative updates write *fresh* keyfigure values (delta pressure:
    // dictionary tails grow, merges amortize in). Batch sizes are large
    // enough for the merge policy to fire, so the mean per-update cost is
    // merge-inclusive.
    let upd_batch = (ref_rows / 24).max(cfg.point_repeats);
    let fresh_update = |i: usize, k: usize| -> Query {
        let id = (i * 41 + 7) % ref_rows;
        let sets = (0..k)
            .map(|j| {
                let col = 1 + ((i + j) % (arity - 1));
                let value = match spec.value(((i + j) % ref_rows) as u64, col) {
                    Value::Double(_) => Value::Double(1e7 + (i * 13 + j) as f64 * 0.37),
                    v => v,
                };
                (col, value)
            })
            .collect();
        Query::Update(UpdateQuery {
            table: ref_table.clone(),
            sets,
            filter: vec![ColRange::eq(0, Value::BigInt(id as i64))],
        })
    };
    let upd_queries: Vec<Query> = (0..upd_batch).map(|i| fresh_update(i, 1)).collect();
    let upd1_ms = time_batch_mean_ms(&db, &upd_queries)?;
    m.upd_row_ms = (upd1_ms - m.sel_point_ms).max(upd1_ms * 0.1);
    // f_#affectedColumns: widen the SET list.
    let mut aff_points = vec![(1.0, 1.0)];
    for k in [2usize, 4, 8] {
        let k = k.min(arity - 1);
        let queries: Vec<Query> = (0..upd_batch / 2)
            .map(|i| fresh_update(i.wrapping_mul(3) + k, k))
            .collect();
        let ms = time_batch_mean_ms(&db, &queries)?;
        let upd_part = (ms - m.sel_point_ms).max(ms * 0.1);
        aff_points.push((k as f64, (upd_part / m.upd_row_ms).max(0.1)));
    }
    m.f_affected_columns = AdjustmentFn::fit_piecewise(aff_points);

    // --- delta maintenance (column store only) ------------------------------
    // f_tail: how much an unmerged dictionary tail degrades scans; merge_ms:
    // what folding it back in costs. Both feed the online advisor's merge
    // scheduling. The row store has no delta region; its terms stay neutral.
    if store == StoreKind::Column {
        calibrate_tail(model, &db, &sweep_tables, ref_idx, cfg)?;
    }

    Ok(())
}

/// Grow dictionary tails with fresh-value point updates (auto-merge
/// disabled), measuring (a) the scan degradation per tail fraction and
/// (b) the merge cost per row count.
fn calibrate_tail(
    model: &mut CostModel,
    db: &HybridDatabase,
    sweep_tables: &[(String, usize)],
    ref_idx: usize,
    cfg: &CalibrationConfig,
) -> Result<()> {
    let saved_policy = db.merge_config();
    db.set_merge_config(hsd_engine::MergeConfig::disabled());
    let (ref_table, ref_rows) = sweep_tables[ref_idx].clone();
    let spec = reference_spec(&ref_table, ref_rows, cfg);
    // Fresh updates target the reference keyfigure; the probe is a range
    // scan over that same column, so its predicate pays the tail path
    // (per-block tail membership tests instead of the fused kernel).
    let kf = spec.kf_col(0);
    let probe = Query::Aggregate(AggregateQuery {
        table: ref_table.clone(),
        aggregates: vec![Aggregate {
            func: AggFunc::Sum,
            column: kf,
        }],
        group_by: None,
        filter: vec![ColRange::ge(kf, Value::Double(0.0))],
        join: None,
    });
    let fresh_updates = |db: &HybridDatabase, from: usize, to: usize| -> Result<()> {
        for j in from..to {
            let id = (j * 29 + 3) % ref_rows;
            db.execute(&Query::Update(UpdateQuery {
                table: ref_table.clone(),
                sets: vec![(kf, Value::Double(5e8 + j as f64 * 0.013))],
                filter: vec![ColRange::eq(0, Value::BigInt(id as i64))],
            }))?;
        }
        Ok(())
    };
    // Clean baseline.
    hsd_engine::mover::merge_delta(db, &ref_table)?;
    let base_ms = time_ms(db, &probe, cfg.repeats.max(3))?;
    let mut tail_points = vec![(0.0, 1.0)];
    let mut grown = 0usize;
    for frac in [0.01f64, 0.04, 0.12] {
        let target = ((ref_rows as f64) * frac) as usize;
        fresh_updates(db, grown, target)?;
        grown = target;
        let ms = time_ms(db, &probe, cfg.repeats.max(3))?;
        let observed = db.delta_tail(&ref_table)? as f64 / ref_rows as f64;
        // Tails only hurt: clamp below at 1 so timing noise on small tails
        // cannot make the model reward deferred merges.
        tail_points.push((observed, (ms / base_ms).max(1.0)));
    }
    model.column.f_tail = AdjustmentFn::fit_piecewise(tail_points);

    // merge_ms: seed a proportional tail on every sweep table and time the
    // explicit merge entry point; fit linearly in the row count. Clear the
    // f_tail sweep's large leftover tail first so the reference table's
    // point folds the same seeded tail as every other sweep point.
    hsd_engine::mover::merge_delta(db, &ref_table)?;
    let mut merge_points = Vec::new();
    for (name, rows) in sweep_tables {
        let tspec = reference_spec(name, *rows, cfg);
        let tkf = tspec.kf_col(0);
        let seed_tail = (*rows / 64).max(64);
        for j in 0..seed_tail {
            let id = (j * 31 + 7) % rows;
            db.execute(&Query::Update(UpdateQuery {
                table: name.clone(),
                sets: vec![(tkf, Value::Double(7e8 + j as f64 * 0.017))],
                filter: vec![ColRange::eq(0, Value::BigInt(id as i64))],
            }))?;
        }
        let start = Instant::now();
        hsd_engine::mover::merge_delta(db, name)?;
        merge_points.push((*rows as f64, start.elapsed().as_secs_f64() * 1e3));
    }
    model.column.merge_ms = AdjustmentFn::fit_linear(&merge_points);
    db.set_merge_config(saved_policy);
    Ok(())
}

/// Fit `(per_table_row, per_match)` from a matched-rows sweep of range
/// selections on a uniform filter attribute.
fn fit_range_scan(
    db: &HybridDatabase,
    table: &str,
    spec: &TableSpec,
    rows: usize,
    cfg: &CalibrationConfig,
) -> Result<(f64, f64)> {
    let mut samples = Vec::new();
    for width in [50i32, 200, 1000, 4000] {
        let q = Query::Select(SelectQuery {
            table: table.to_string(),
            columns: Some(vec![0]),
            filter: vec![ColRange::between(
                spec.flt_col(0),
                Value::Int(0),
                Value::Int(width - 1),
            )],
        });
        let ms = time_ms(db, &q, cfg.repeats)?;
        let matched = rows as f64 * (width as f64 / 10_000.0);
        samples.push((matched, ms));
    }
    match AdjustmentFn::fit_linear(&samples) {
        AdjustmentFn::Linear { slope, intercept } => {
            Ok(((intercept / rows as f64).max(0.0), slope.max(0.0)))
        }
        AdjustmentFn::Constant(c) => Ok(((c / rows as f64).max(0.0), 0.0)),
        AdjustmentFn::Piecewise { .. } => unreachable!("fit_linear never returns piecewise"),
    }
}

/// Calibrate the join-combination factors and the dimension build cost.
fn calibrate_join(model: &mut CostModel, cfg: &CalibrationConfig) -> Result<()> {
    let fact_rows = cfg.base_rows;
    let dim_rows = (cfg.base_rows / 50).max(100);
    let fact_spec = TableSpec {
        name: String::new(),
        rows: fact_rows,
        fk_attrs: 1,
        fk_cardinality: dim_rows as u32,
        keyfigures: 4,
        group_attrs: 2,
        filter_attrs: 2,
        status_attrs: 1,
        group_cardinality: 100,
        status_cardinality: 8,
        kf_distinct: 100_000,
        seed: cfg.seed ^ 0xFAC7,
    };
    let dim_spec = TableSpec {
        name: String::new(),
        rows: dim_rows,
        fk_attrs: 0,
        fk_cardinality: 1,
        keyfigures: 0,
        group_attrs: 3,
        filter_attrs: 2,
        status_attrs: 0,
        group_cardinality: 25,
        status_cardinality: 1,
        kf_distinct: 1,
        seed: cfg.seed ^ 0xD1,
    };
    for fact_store in StoreKind::BOTH {
        for dim_store in StoreKind::BOTH {
            let db = HybridDatabase::new();
            let fname = format!("fact_{}", fact_store.abbrev());
            let dname = format!("dim_{}", dim_store.abbrev());
            let mut fspec = fact_spec.clone();
            fspec.name = fname.clone();
            let mut dspec = dim_spec.clone();
            dspec.name = dname.clone();
            db.create_single(fspec.schema()?, fact_store)?;
            db.create_single(dspec.schema()?, dim_store)?;
            db.bulk_load(&fname, fspec.rows())?;
            db.bulk_load(&dname, dspec.rows())?;
            // Reference: grouped single-table aggregation on the fact side.
            let solo = Query::Aggregate(AggregateQuery {
                table: fname.clone(),
                aggregates: vec![Aggregate {
                    func: AggFunc::Sum,
                    column: fspec.kf_col(0),
                }],
                group_by: Some(fspec.grp_col(0)),
                filter: vec![],
                join: None,
            });
            let solo_ms = time_ms(&db, &solo, cfg.repeats)?;
            let joined = Query::Aggregate(AggregateQuery {
                table: fname.clone(),
                aggregates: vec![Aggregate {
                    func: AggFunc::Sum,
                    column: fspec.kf_col(0),
                }],
                group_by: None,
                filter: vec![],
                join: Some(JoinSpec {
                    dim_table: dname.clone(),
                    fact_fk: fspec.fk_col(0),
                    dim_pk: 0,
                    group_by_dim: Some(dspec.grp_col(0)),
                }),
            });
            let join_ms = time_ms(&db, &joined, cfg.repeats)?;
            model.join_factor[store_index(fact_store)][store_index(dim_store)] =
                (join_ms / solo_ms).max(0.5);
            if fact_store == StoreKind::Row {
                // Dim build slope: grow the dimension and re-time.
                let big_rows = dim_rows * 8;
                let mut big = dim_spec.clone();
                big.name = format!("{dname}_big");
                big.rows = big_rows;
                db.create_single(big.schema()?, dim_store)?;
                db.bulk_load(&big.name, big.rows())?;
                let mut joined_big = joined.clone();
                if let Query::Aggregate(a) = &mut joined_big {
                    a.join.as_mut().expect("join present").dim_table = big.name.clone();
                }
                let big_ms = time_ms(&db, &joined_big, cfg.repeats)?;
                let slope = ((big_ms - join_ms) / (big_rows - dim_rows) as f64).max(0.0);
                model.dim_build[store_index(dim_store)] = AdjustmentFn::Linear {
                    slope,
                    intercept: 0.0,
                };
            }
        }
    }
    Ok(())
}

/// Measure the horizontal-union overhead with an empty hot partition: the
/// difference against a plain column-store table is pure rewrite/merge cost.
fn calibrate_union_overhead(model: &mut CostModel, cfg: &CalibrationConfig) -> Result<()> {
    let rows = (cfg.base_rows / 2).max(1000);
    let spec = reference_spec("u_plain", rows, cfg);
    let db = HybridDatabase::new();
    db.create_single(spec.schema()?, StoreKind::Column)?;
    db.bulk_load("u_plain", spec.rows())?;
    let mut part_spec = reference_spec("u_part", rows, cfg);
    part_spec.name = "u_part".into();
    db.create_table(
        part_spec.schema()?,
        TablePlacement::Partitioned(PartitionSpec {
            horizontal: Some(HorizontalSpec {
                split_column: 0,
                split_value: Value::BigInt(rows as i64 * 10),
            }),
            vertical: None,
            ..Default::default()
        }),
    )?;
    db.bulk_load("u_part", part_spec.rows())?;
    // All rows are in the hot partition now (inserts route hot); rebalance
    // everything into the cold partition so the union is CS + empty RS.
    hsd_engine::mover::rebalance_horizontal(&db, "u_part", &Value::BigInt(rows as i64 * 10))?;
    let plain = time_ms(&db, &sum_query("u_plain", spec.kf_col(0)), cfg.repeats)?;
    let part = time_ms(&db, &sum_query("u_part", part_spec.kf_col(0)), cfg.repeats)?;
    model.union_overhead_ms = (part - plain).max(0.0);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One end-to-end calibration at quick scale; asserts the qualitative
    /// asymmetries the whole paper rests on.
    #[test]
    fn quick_calibration_produces_sane_model() {
        let model = calibrate(&CalibrationConfig::quick()).unwrap();

        // Aggregation: CS scan must undercut RS scan at the sweep's top end,
        // where the slopes dominate the fixed per-query overhead.
        let n = 40_000.0;
        let rs = model.row.f_rows.eval(n);
        let cs = model.column.f_rows.eval(n);
        assert!(
            cs < rs,
            "column aggregation ({cs} ms) should beat row ({rs} ms)"
        );

        // Inserts: RS per-row cost below CS per-row cost.
        let rs_ins = model.row.ins_row.eval(20_000.0);
        let cs_ins = model.column.ins_row.eval(20_000.0);
        assert!(
            rs_ins < cs_ins,
            "row insert ({rs_ins}) should beat column ({cs_ins})"
        );

        // Point access exists and is sub-millisecond at this scale.
        assert!(model.row.sel_point_ms > 0.0);
        assert!(model.row.sel_point_ms < 5.0);

        // Group-by costs at least as much as no group-by.
        assert!(model.row.c_group_by >= 1.0);
        assert!(model.column.c_group_by >= 1.0);

        // Delta maintenance: a tail never speeds scans up, the merge has a
        // real cost at calibration scale, and the row store stays neutral.
        assert!(model.column.f_tail.eval(0.0) >= 1.0 - 1e-9);
        assert!(model.column.f_tail.eval(0.12) >= 1.0);
        assert!(model.column.merge_ms.eval(20_000.0) > 0.0);
        assert_eq!(model.row.f_tail, AdjustmentFn::Constant(1.0));
        assert_eq!(model.row.merge_ms, AdjustmentFn::Constant(0.0));

        // Join factors are positive and serde survives a round trip.
        for f in StoreKind::BOTH {
            for d in StoreKind::BOTH {
                assert!(model.join_factor_of(f, d) > 0.0);
            }
        }
        let back = CostModel::from_json(&model.to_json()).unwrap();
        assert_eq!(back, model);
        assert_eq!(back.meta.base_rows, 20_000);
    }
}
