//! Ablations of the design choices called out in DESIGN.md:
//!
//! * bit-packed vs. plain `u32` code vectors (scan cost / memory);
//! * dictionary tail (delta) vs. compacted dictionary (selection cost);
//! * the sorted dictionary's implicit index (code-interval matching) vs. a
//!   row-store scan without a secondary index;
//! * exact store-combination enumeration vs. greedy local search in the
//!   table-level advisor.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hsd_catalog::{ColumnStats, TableStats};
use hsd_core::{AdjustmentFn, CostModel, StorageAdvisor};
use hsd_query::{
    AggFunc, Aggregate, AggregateQuery, JoinSpec, MixedWorkloadConfig, Query, TableSpec,
    WorkloadGenerator,
};
use hsd_storage::{ColRange, ColumnTable, RowSel, RowTable};
use hsd_types::{ColumnDef, ColumnType, TableSchema, Value};

const ROWS: usize = 200_000;

fn schema() -> Arc<TableSchema> {
    Arc::new(
        TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", ColumnType::BigInt),
                ColumnDef::new("kf", ColumnType::Double),
                ColumnDef::new("flt", ColumnType::Integer),
            ],
            vec![0],
        )
        .unwrap(),
    )
}

fn fill(t: &mut ColumnTable) {
    for i in 0..ROWS as i64 {
        t.insert(&[
            Value::BigInt(i),
            Value::Double((i % 5000) as f64 / 4.0),
            Value::Int((i * 37 % 10_000) as i32),
        ])
        .unwrap();
    }
    t.compact();
}

/// Bit-packed vs plain code vectors: aggregation scan speed and heap size.
fn bench_bitpack(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_bitpack_scan");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    for (label, packed) in [("packed", true), ("plain_u32", false)] {
        let mut t = ColumnTable::with_encoding(schema(), packed);
        fill(&mut t);
        println!("[ablation_bitpack] {label}: {} bytes", t.memory_bytes());
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let mut sum = 0.0;
                t.for_each_numeric(1, RowSel::All, |v| sum += v);
                sum
            })
        });
    }
    group.finish();
}

/// Dictionary tail (un-merged delta) vs compacted dictionary: range filter.
fn bench_delta_tail(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_delta_tail_filter");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    let range = ColRange::between(1, Value::Double(100.0), Value::Double(400.0));
    for (label, compact) in [("compacted", true), ("with_tail", false)] {
        let mut t = ColumnTable::with_encoding(schema(), true);
        fill(&mut t);
        // 5% of rows updated to fresh values -> dictionary tail grows.
        let rows: Vec<u32> = (0..ROWS as u32).step_by(20).collect();
        for (k, idx) in rows.iter().enumerate() {
            t.update_rows(&[*idx], &[(1, Value::Double(10_000.0 + k as f64))])
                .unwrap();
        }
        if compact {
            t.compact();
        }
        println!(
            "[ablation_delta] {label}: tail entries = {}",
            t.tail_total()
        );
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| t.filter_rows(std::slice::from_ref(&range)).len())
        });
    }
    group.finish();
}

/// Implicit dictionary index vs row-store scan without secondary index vs
/// row-store with a secondary index.
fn bench_implicit_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_selection_paths");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    let range = ColRange::between(2, Value::Int(0), Value::Int(99));

    let mut ct = ColumnTable::with_encoding(schema(), true);
    fill(&mut ct);
    group.bench_function("column_dictionary_index", |b| {
        b.iter(|| ct.filter_rows(std::slice::from_ref(&range)).len())
    });

    let mut rt = RowTable::new(schema());
    for i in 0..ROWS as i64 {
        rt.insert(&[
            Value::BigInt(i),
            Value::Double((i % 5000) as f64 / 4.0),
            Value::Int((i * 37 % 10_000) as i32),
        ])
        .unwrap();
    }
    group.bench_function("row_table_scan", |b| {
        b.iter(|| rt.filter_rows(std::slice::from_ref(&range)).len())
    });
    rt.create_index(2).unwrap();
    group.bench_function("row_secondary_index", |b| {
        b.iter(|| rt.filter_rows(std::slice::from_ref(&range)).len())
    });
    group.finish();
}

/// Exact enumeration vs greedy local search in the table-level advisor, on
/// a 10-table schema with join coupling.
fn bench_advisor_search(c: &mut Criterion) {
    let mut m = CostModel::neutral();
    m.row.f_rows = AdjustmentFn::Linear {
        slope: 1e-3,
        intercept: 0.05,
    };
    m.column.f_rows = AdjustmentFn::Linear {
        slope: 1e-4,
        intercept: 0.05,
    };
    m.row.ins_row = AdjustmentFn::Constant(0.001);
    m.column.ins_row = AdjustmentFn::Constant(0.005);
    m.join_factor = [[1.0, 2.5], [2.5, 1.0]];

    let tables = 10usize;
    let mut schemas = Vec::new();
    let mut stats: BTreeMap<String, TableStats> = BTreeMap::new();
    let mut queries = Vec::new();
    for t in 0..tables {
        let name = format!("t{t}");
        let spec = TableSpec::paper_wide(&name, 100_000, t as u64);
        schemas.push(Arc::new(spec.schema().unwrap()));
        stats.insert(
            name.clone(),
            TableStats {
                row_count: spec.rows,
                columns: (0..spec.arity())
                    .map(|_| ColumnStats {
                        distinct: 1000,
                        min: Some(Value::BigInt(0)),
                        max: Some(Value::BigInt(spec.rows as i64)),
                        compression_rate: 0.9,
                    })
                    .collect(),
            },
        );
        let w = WorkloadGenerator::single_table(
            &spec,
            &MixedWorkloadConfig {
                queries: 40,
                olap_fraction: 0.1 * (t % 3) as f64,
                seed: t as u64,
                ..Default::default()
            },
        );
        queries.extend(w.queries);
        if t > 0 {
            // couple neighbouring tables with a join query
            let mut q = AggregateQuery {
                table: format!("t{t}"),
                aggregates: vec![Aggregate {
                    func: AggFunc::Sum,
                    column: 1,
                }],
                group_by: None,
                filter: vec![],
                join: None,
            };
            q.join = Some(JoinSpec {
                dim_table: format!("t{}", t - 1),
                fact_fk: 0,
                dim_pk: 0,
                group_by_dim: Some(11),
            });
            queries.push(Query::Aggregate(q));
        }
    }
    let workload = hsd_query::Workload::from_queries(queries);

    let mut group = c.benchmark_group("ablation_advisor_search");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    let mut exact = StorageAdvisor::new(m.clone());
    exact.exact_search_limit = 16;
    group.bench_function("exact_enumeration_10_tables", |b| {
        b.iter(|| {
            exact
                .recommend_offline(&schemas, &stats, &workload, false)
                .unwrap()
        })
    });
    let mut greedy = StorageAdvisor::new(m);
    greedy.exact_search_limit = 0;
    group.bench_function("greedy_local_search_10_tables", |b| {
        b.iter(|| {
            greedy
                .recommend_offline(&schemas, &stats, &workload, false)
                .unwrap()
        })
    });
    // sanity: both find layouts; print agreement
    let e = exact
        .recommend_offline(&schemas, &stats, &workload, false)
        .unwrap();
    let g = greedy
        .recommend_offline(&schemas, &stats, &workload, false)
        .unwrap();
    println!(
        "[ablation_advisor] exact est {:.2} ms, greedy est {:.2} ms, layouts agree: {}",
        e.estimated_ms,
        g.estimated_ms,
        e.layout == g.layout
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_bitpack,
    bench_delta_tail,
    bench_implicit_index,
    bench_advisor_search
);
criterion_main!(benches);
