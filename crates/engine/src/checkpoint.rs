//! Segment checkpoints: bounded-replay recovery for directory-backed
//! databases.
//!
//! A WAL alone recovers by replaying *every* record since the database was
//! created — recovery time grows with the log, not with the data. A
//! checkpoint caps that: it is a consistent materialization of every
//! table's logical contents plus the WAL offset it corresponds to, so
//! recovery restores the checkpoint and replays only the log **suffix**
//! written after it.
//!
//! # Container format
//!
//! A checkpoint file reuses the WAL's checksummed frame codec
//! ([`hsd_storage::wal::encode_frame`]) — every frame is individually
//! CRC-guarded, and the torn-tail/corruption classification recovery
//! already trusts for the log applies verbatim to checkpoints:
//!
//! ```text
//! frame 0            header   (tag 0)   JSON {kind:"header", version,
//!                                             wal_len, tables}
//! frames 1..=2k      per table, in sorted name order:
//!   meta             (tag = table_tag(name))  JSON {kind:"table", name,
//!                                             schema, placement, rows}
//!   fragment         (tag = table_tag(name))  binary: the table's rows
//!                                             packed in the segment format
//!                                             (see [`hsd_storage::segment`])
//! frame 2k+1         end      (tag 0)   JSON {kind:"end", tables}
//! ```
//!
//! The end frame doubles as a commit marker: a file without a valid end
//! frame (torn mid-write, interior corruption, wrong counts) is **invalid
//! as a whole** and recovery falls back to the next-newest checkpoint, or
//! to full-log replay when none is valid. Checkpoint files are immutable
//! once published (temp file + fsync + rename, like segments), so the only
//! way one can be torn is an interrupted publish — which the rename makes
//! invisible — or media damage, which the CRCs catch.
//!
//! # What is (and is not) captured
//!
//! A checkpoint stores each table's **logical rows** (packed as one
//! column-store segment) plus its catalog placement. Restore rebuilds the
//! physical layout from those through the same code path the advisor uses
//! ([`crate::mover::move_table`]): hot/cold splits are re-split, vertical
//! fragments re-derived, disk-tier cold partitions re-demoted (re-creating
//! their segment files — segments stay a derived cache, never a recovery
//! dependency). Physical micro-state that is *not* logically observable —
//! un-merged dictionary tails, in-flight incremental merges — is restored
//! compacted, exactly as full replay restores tables it has no merge
//! records for.
//!
//! # Consistency
//!
//! [`HybridDatabase::checkpoint`] takes every table's write latch (in
//! sorted name order, the global latch order) before reading the WAL
//! length, so the captured `wal_len` is a frontier: every per-table record
//! at an offset below it is reflected in the snapshot, every record at or
//! past it is not and replays from the suffix. Concurrent DDL
//! ([`HybridDatabase::create_table`] logs without holding a table latch)
//! is not serialized against a running checkpoint — run checkpoints from a
//! quiesced maintenance window, not racing schema changes (see
//! `docs/OPERATIONS.md`).

use std::path::{Path, PathBuf};

use hsd_catalog::{placement_from_json, placement_to_json, TablePlacement};
use hsd_storage::wal::{self, encode_frame};
use hsd_storage::{decode_segment, encode_segment, SegmentStore, StoreKind, Table};
use hsd_types::{Error, Json, Result};

use crate::database::HybridDatabase;
use crate::durability::{
    replay_into, schema_from_json, schema_to_json, table_tag, DurabilityConfig, RecoveryReport,
};
use crate::mover;
use crate::partition::TableData;

/// Checkpoint container format version (the `version` field of the header
/// frame). Bumped on incompatible changes; restore rejects unknown
/// versions, falling back to older checkpoints or full replay.
pub const CHECKPOINT_VERSION: i64 = 1;

/// How many published checkpoints [`HybridDatabase::checkpoint`] retains.
/// The newest is the fast-recovery path; the second-newest is the fallback
/// when the newest turns out damaged at recovery time. Older files are
/// deleted after every successful publish.
pub const CHECKPOINT_RETAIN: usize = 2;

/// What one [`HybridDatabase::checkpoint`] call produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointReport {
    /// Sequence number of the published checkpoint (monotonic per
    /// directory).
    pub seq: u64,
    /// Final path of the checkpoint file.
    pub path: PathBuf,
    /// WAL frontier the checkpoint corresponds to: recovery from this
    /// checkpoint replays the log from this byte offset.
    pub wal_len: u64,
    /// Tables captured.
    pub tables: usize,
    /// Size of the checkpoint file in bytes.
    pub bytes: u64,
}

fn frame_json(kind: &str, payload: &[u8]) -> Result<Json> {
    let s = std::str::from_utf8(payload)
        .map_err(|_| Error::Io(format!("checkpoint {kind} frame is not utf-8")))?;
    Json::parse(s).map_err(|e| Error::Io(format!("checkpoint {kind} frame: {e}")))
}

/// Serialize a consistent snapshot of `db` into checkpoint bytes. Returns
/// the image and the WAL frontier it captures.
///
/// Fails if any table is quarantined ([`Error::Degraded`]): a degraded
/// table's WAL suffix is part of the evidence an operator needs, and a
/// checkpoint would retire it.
pub fn encode_checkpoint(db: &HybridDatabase) -> Result<(Vec<u8>, u64)> {
    let names = db.table_names();
    for name in &names {
        db.check_writable(name)?;
    }
    // Catalog placements are read before latching (latch-then-catalog is
    // forbidden by the lock order). A table move that commits its catalog
    // update between this read and the latch acquisition below leaves the
    // checkpointed placement one move behind — data is unaffected (the
    // snapshot rows are authoritative) and the next checkpoint catches up.
    let mut tables = Vec::with_capacity(names.len());
    {
        let catalog = db.catalog();
        for name in &names {
            let entry = catalog.entry_by_name(name)?;
            tables.push((name.clone(), entry.schema.clone(), entry.placement.clone()));
        }
    }
    // Sorted-name latch order is the global multi-latch order. With every
    // latch held, no per-table mutation can append to the WAL (appends
    // happen under the owning table's latch), so `wal_len` is a frontier.
    let shards = tables
        .iter()
        .map(|(name, _, _)| db.shard(name))
        .collect::<Result<Vec<_>>>()?;
    let guards: Vec<_> = shards.iter().map(|s| s.latch()).collect();
    let wal_len = db.wal_len();

    let mut out = Vec::new();
    let header = Json::obj([
        ("kind", Json::Str("header".into())),
        ("version", Json::Int(CHECKPOINT_VERSION)),
        ("wal_len", Json::Int(wal_len as i64)),
        ("tables", Json::Int(tables.len() as i64)),
    ]);
    out.extend_from_slice(&encode_frame(0, header.to_string().as_bytes()));

    let store = db.segment_store();
    for ((name, schema, placement), guard) in tables.iter().zip(&guards) {
        let rows = guard.snapshot_rows(store)?;
        // Pack the logical rows as one column-store segment: dictionary
        // compression plus bit-packing, the same bytes-on-disk layout as
        // demoted cold partitions.
        let mut packed = Table::new(schema.clone(), StoreKind::Column);
        for row in &rows {
            packed.insert(row)?;
        }
        let Table::Column(mut ct) = packed else {
            unreachable!("StoreKind::Column builds a column table")
        };
        ct.compact();
        let meta = Json::obj([
            ("kind", Json::Str("table".into())),
            ("name", Json::Str(name.clone())),
            ("schema", schema_to_json(schema)),
            ("placement", placement_to_json(placement)),
            ("rows", Json::Int(rows.len() as i64)),
        ]);
        let tag = table_tag(name);
        out.extend_from_slice(&encode_frame(tag, meta.to_string().as_bytes()));
        out.extend_from_slice(&encode_frame(tag, &encode_segment(&ct)));
    }

    let end = Json::obj([
        ("kind", Json::Str("end".into())),
        ("tables", Json::Int(tables.len() as i64)),
    ]);
    out.extend_from_slice(&encode_frame(0, end.to_string().as_bytes()));
    Ok((out, wal_len))
}

/// Restore a checkpoint image into `db` (which must be freshly constructed
/// — restore creates every table). Returns the WAL frontier recorded in
/// the header: the offset log replay resumes from.
///
/// Validation is all-or-nothing: any torn frame, CRC failure, version
/// mismatch, count mismatch, or missing end frame rejects the whole image
/// (the caller falls back to an older checkpoint or full replay). `db` may
/// be partially populated after an error and must be discarded.
pub fn restore_checkpoint(db: &HybridDatabase, bytes: &[u8]) -> Result<u64> {
    let invalid = |what: String| Error::Io(format!("invalid checkpoint: {what}"));
    let scan = wal::scan_frames(bytes);
    if let Some(off) = scan.torn_tail {
        return Err(invalid(format!("torn frame at byte {off}")));
    }
    if let Some(c) = scan.corrupt.first() {
        return Err(invalid(format!("corrupt frame at byte {}", c.offset)));
    }
    let mut frames = scan.frames.iter();
    let header = frames
        .next()
        .ok_or_else(|| invalid("empty file".into()))
        .and_then(|f| frame_json("header", &f.payload))?;
    let kind = header
        .get("kind")
        .and_then(Json::as_str)
        .map_err(|e| invalid(e.to_string()))?;
    if kind != "header" {
        return Err(invalid(format!("first frame is `{kind}`, not a header")));
    }
    let version = header
        .get("version")
        .and_then(Json::as_i64)
        .map_err(|e| invalid(e.to_string()))?;
    if version != CHECKPOINT_VERSION {
        return Err(invalid(format!("unsupported version {version}")));
    }
    let wal_len = header
        .get("wal_len")
        .and_then(Json::as_i64)
        .map_err(|e| invalid(e.to_string()))? as u64;
    let expected = header
        .get("tables")
        .and_then(Json::as_usize)
        .map_err(|e| invalid(e.to_string()))?;

    let mut restored = 0usize;
    loop {
        let Some(meta_frame) = frames.next() else {
            return Err(invalid("missing end frame".into()));
        };
        let meta = frame_json("table", &meta_frame.payload)?;
        let kind = meta
            .get("kind")
            .and_then(Json::as_str)
            .map_err(|e| invalid(e.to_string()))?;
        if kind == "end" {
            let count = meta
                .get("tables")
                .and_then(Json::as_usize)
                .map_err(|e| invalid(e.to_string()))?;
            if count != restored || restored != expected {
                return Err(invalid(format!(
                    "table count mismatch: header {expected}, end {count}, found {restored}"
                )));
            }
            if frames.next().is_some() {
                return Err(invalid("frames after the end frame".into()));
            }
            return Ok(wal_len);
        }
        if kind != "table" {
            return Err(invalid(format!("unexpected `{kind}` frame")));
        }
        let name = meta
            .get("name")
            .and_then(Json::as_str)
            .map_err(|e| invalid(e.to_string()))?
            .to_string();
        let schema = schema_from_json(meta.get("schema").map_err(|e| invalid(e.to_string()))?)
            .map_err(|e| invalid(e.to_string()))?;
        let placement =
            placement_from_json(meta.get("placement").map_err(|e| invalid(e.to_string()))?)
                .map_err(|e| invalid(e.to_string()))?;
        let rows = meta
            .get("rows")
            .and_then(Json::as_usize)
            .map_err(|e| invalid(e.to_string()))?;
        let Some(frag_frame) = frames.next() else {
            return Err(invalid(format!("table {name}: missing fragment frame")));
        };

        db.create_table(schema, TablePlacement::Single(StoreKind::Column))?;
        let shard = db.shard(&name)?;
        let schema = db.catalog().entry_by_name(&name)?.schema.clone();
        let ct = decode_segment(schema, &frag_frame.payload)
            .map_err(|e| invalid(format!("table {name}: {e}")))?;
        if ct.row_count() != rows {
            return Err(invalid(format!(
                "table {name}: fragment holds {} rows, meta says {rows}",
                ct.row_count()
            )));
        }
        // Region-exact install of the decoded fragment, then rebuild the
        // recorded physical layout through the mover (re-splitting and
        // re-demoting exactly as the original layout change did).
        *shard.latch() = TableData::Single(Table::Column(ct));
        if placement != TablePlacement::Single(StoreKind::Column) {
            mover::move_table(db, &name, &placement)?;
        }
        restored += 1;
    }
}

fn checkpoint_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("checkpoint_{seq:06}"))
}

/// List `(seq, path)` of well-named checkpoint files in `dir`, newest
/// first. Unparseable names (including `.tmp` leftovers) are ignored.
fn list_checkpoints(dir: &Path) -> Vec<(u64, PathBuf)> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut found: Vec<(u64, PathBuf)> = entries
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            let seq: u64 = name.strip_prefix("checkpoint_")?.parse().ok()?;
            Some((seq, e.path()))
        })
        .collect();
    found.sort_by_key(|&(seq, _)| std::cmp::Reverse(seq));
    found
}

/// The on-disk layout of a directory-backed database.
#[derive(Debug, Clone)]
pub(crate) struct DataDir {
    /// Root directory.
    pub root: PathBuf,
}

impl DataDir {
    pub(crate) fn wal_path(&self) -> PathBuf {
        self.root.join("wal.log")
    }
    pub(crate) fn segments_dir(&self) -> PathBuf {
        self.root.join("segments")
    }
    pub(crate) fn checkpoints_dir(&self) -> PathBuf {
        self.root.join("checkpoints")
    }
}

impl HybridDatabase {
    /// Open (or create) a directory-backed database:
    ///
    /// ```text
    /// <dir>/wal.log                      the write-ahead log
    /// <dir>/segments/<table>.cold.seg    demoted cold-partition segments
    /// <dir>/checkpoints/checkpoint_NNNNNN  bounded-replay checkpoints
    /// ```
    ///
    /// Recovery tries the newest checkpoint first and replays only the WAL
    /// suffix past its recorded frontier; an invalid (torn/corrupt)
    /// checkpoint falls back to the next-newest, and finally to full-log
    /// replay — strictly slower, never less correct. Segment files are
    /// re-derived, not trusted.
    ///
    /// # Example
    ///
    /// ```
    /// use hsd_engine::HybridDatabase;
    /// use hsd_engine::durability::DurabilityConfig;
    ///
    /// let dir = std::env::temp_dir().join(format!("hsd_doc_{}", std::process::id()));
    /// let (db, report) = HybridDatabase::open_dir(&dir, DurabilityConfig::default())?;
    /// assert!(report.is_clean());
    /// // ... create tables, load, mutate ...
    /// let cp = db.checkpoint()?;          // bound future recovery
    /// assert_eq!(cp.seq, 1);
    /// # drop(db);
    /// # std::fs::remove_dir_all(&dir).ok();
    /// # Ok::<(), hsd_types::Error>(())
    /// ```
    pub fn open_dir(
        dir: impl AsRef<Path>,
        cfg: DurabilityConfig,
    ) -> Result<(Self, RecoveryReport)> {
        let layout = DataDir {
            root: dir.as_ref().to_path_buf(),
        };
        std::fs::create_dir_all(layout.checkpoints_dir())
            .map_err(|e| Error::Io(format!("create checkpoint dir: {e}")))?;
        let wal_bytes = match std::fs::read(layout.wal_path()) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(Error::Io(e.to_string())),
        };

        let fresh = || -> Result<HybridDatabase> {
            let mut db = HybridDatabase::new();
            db.set_segment_store(SegmentStore::dir(layout.segments_dir())?);
            Ok(db)
        };

        // Newest-valid checkpoint wins; every failure falls back.
        let mut restored: Option<(HybridDatabase, RecoveryReport)> = None;
        let mut skipped = 0usize;
        for (seq, path) in list_checkpoints(&layout.checkpoints_dir()) {
            let Ok(bytes) = std::fs::read(&path) else {
                skipped += 1;
                continue;
            };
            let db = fresh()?;
            match restore_checkpoint(&db, &bytes) {
                Ok(wal_len) => {
                    let mut report = replay_into(&db, &wal_bytes, wal_len);
                    report.checkpoint_seq = Some(seq);
                    report.checkpoint_wal_len = wal_len;
                    report.checkpoints_skipped = skipped;
                    restored = Some((db, report));
                    break;
                }
                Err(_) => skipped += 1,
            }
        }
        let (db, report) = match restored {
            Some(r) => r,
            None => {
                let db = fresh()?;
                let mut report = replay_into(&db, &wal_bytes, 0);
                report.checkpoints_skipped = skipped;
                (db, report)
            }
        };

        let backend = wal::FileBackend::open_truncated(layout.wal_path(), report.recovered_len)
            .map_err(|e| Error::Io(e.to_string()))?;
        db.attach_wal(wal::WalWriter::with_retry(
            Box::new(backend),
            cfg.sync,
            cfg.retry,
        ));
        db.set_data_dir(layout);
        Ok((db, report))
    }

    /// Write a checkpoint of the current state, bounding future recovery
    /// to the WAL suffix written after it. Retains the
    /// [`CHECKPOINT_RETAIN`] newest checkpoints, deleting older ones.
    ///
    /// Only available on directory-backed databases
    /// ([`HybridDatabase::open_dir`]).
    pub fn checkpoint(&self) -> Result<CheckpointReport> {
        let Some(layout) = self.data_dir() else {
            return Err(Error::InvalidOperation(
                "checkpointing requires a directory-backed database (open_dir)".into(),
            ));
        };
        // Make everything the snapshot will claim durable actually durable
        // before the checkpoint can retire it from replay.
        self.sync_wal()?;
        let (bytes, wal_len) = encode_checkpoint(self)?;

        let dir = layout.checkpoints_dir();
        let existing = list_checkpoints(&dir);
        let seq = existing.first().map_or(1, |(s, _)| s + 1);
        let path = checkpoint_path(&dir, seq);
        let tmp = dir.join(format!("checkpoint_{seq:06}.tmp"));
        let publish = |()| -> std::io::Result<()> {
            std::fs::write(&tmp, &bytes)?;
            std::fs::File::open(&tmp)?.sync_all()?;
            std::fs::rename(&tmp, &path)?;
            // Persist the rename itself.
            if let Ok(d) = std::fs::File::open(&dir) {
                let _ = d.sync_all();
            }
            Ok(())
        };
        publish(()).map_err(|e| Error::Io(format!("publish checkpoint: {e}")))?;
        for (_, old) in existing.iter().skip(CHECKPOINT_RETAIN - 1) {
            let _ = std::fs::remove_file(old);
        }
        Ok(CheckpointReport {
            seq,
            path,
            wal_len,
            tables: self.table_names().len(),
            bytes: bytes.len() as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsd_catalog::{HorizontalSpec, PartitionSpec, Tier};
    use hsd_query::{AggFunc, AggregateQuery, Query, UpdateQuery};
    use hsd_storage::ColRange;
    use hsd_types::{ColumnDef, ColumnType, TableSchema, Value};

    fn schema(name: &str) -> TableSchema {
        TableSchema::new(
            name,
            vec![
                ColumnDef::new("id", ColumnType::BigInt),
                ColumnDef::new("v", ColumnType::Double),
            ],
            vec![0],
        )
        .unwrap()
    }

    fn checksum(db: &HybridDatabase, table: &str) -> f64 {
        let out = db
            .execute(&Query::Aggregate(AggregateQuery::simple(
                table,
                AggFunc::Sum,
                1,
            )))
            .unwrap();
        out.aggregates().unwrap()[0].values[0]
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hsd_ckpt_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn populate(db: &HybridDatabase) {
        db.create_single(schema("t"), StoreKind::Column).unwrap();
        db.bulk_load(
            "t",
            (0..200).map(|i| vec![Value::BigInt(i), Value::Double(i as f64)]),
        )
        .unwrap();
        db.create_single(schema("u"), StoreKind::Row).unwrap();
        db.bulk_load(
            "u",
            (0..50).map(|i| vec![Value::BigInt(i), Value::Double(2.0 * i as f64)]),
        )
        .unwrap();
    }

    #[test]
    fn image_round_trips_all_layouts() {
        let db = HybridDatabase::new();
        populate(&db);
        // A partitioned, disk-tiered third table exercises the demotion
        // path through restore.
        db.create_table(
            schema("p"),
            TablePlacement::Partitioned(PartitionSpec {
                horizontal: Some(HorizontalSpec {
                    split_column: 0,
                    split_value: Value::BigInt(80),
                }),
                vertical: None,
                cold_tier: Tier::Disk,
            }),
        )
        .unwrap();
        db.bulk_load(
            "p",
            (0..100).map(|i| vec![Value::BigInt(i), Value::Double(3.0 * i as f64)]),
        )
        .unwrap();
        mover::demote_cold(&db, "p").unwrap();

        let (bytes, wal_len) = encode_checkpoint(&db).unwrap();
        assert_eq!(wal_len, 0, "no WAL attached");

        let back = HybridDatabase::new();
        let got = restore_checkpoint(&back, &bytes).unwrap();
        assert_eq!(got, 0);
        for t in ["t", "u", "p"] {
            assert_eq!(checksum(&back, t), checksum(&db, t), "table {t}");
        }
        assert_eq!(back.table_names(), db.table_names());
        assert!(back.disk_bytes("p").unwrap() > 0, "p re-demoted on restore");
    }

    #[test]
    fn any_torn_or_flipped_byte_invalidates_the_image() {
        let db = HybridDatabase::new();
        populate(&db);
        let (bytes, _) = encode_checkpoint(&db).unwrap();
        // Truncations: every cut in the last quarter must invalidate (a
        // valid end frame can never survive a cut).
        for cut in (bytes.len() * 3 / 4..bytes.len()).step_by(7) {
            let back = HybridDatabase::new();
            assert!(
                restore_checkpoint(&back, &bytes[..cut]).is_err(),
                "cut at {cut} must invalidate"
            );
        }
        // Bit flips: sampled across the whole image.
        for pos in (0..bytes.len()).step_by(97) {
            let mut damaged = bytes.clone();
            damaged[pos] ^= 1;
            let back = HybridDatabase::new();
            assert!(
                restore_checkpoint(&back, &damaged).is_err(),
                "flip at {pos} must invalidate"
            );
        }
    }

    #[test]
    fn checkpoint_requires_directory_backing() {
        let db = HybridDatabase::new();
        assert!(db.checkpoint().is_err());
    }

    #[test]
    fn dir_database_checkpoints_and_recovers_from_suffix() {
        let dir = temp_dir("suffix");
        let before;
        {
            let (db, report) = HybridDatabase::open_dir(&dir, DurabilityConfig::default()).unwrap();
            assert!(report.is_clean());
            assert_eq!(report.checkpoint_seq, None);
            populate(&db);
            let cp = db.checkpoint().unwrap();
            assert_eq!(cp.seq, 1);
            assert!(cp.wal_len > 0);
            assert_eq!(cp.tables, 2);
            // Post-checkpoint writes land in the suffix.
            db.execute(&Query::Update(UpdateQuery {
                table: "t".into(),
                sets: vec![(1, Value::Double(1_000_000.0))],
                filter: vec![ColRange::eq(0, Value::BigInt(7))],
            }))
            .unwrap();
            db.sync_wal().unwrap();
            before = checksum(&db, "t");
        }
        let (db, report) = HybridDatabase::open_dir(&dir, DurabilityConfig::default()).unwrap();
        assert_eq!(report.checkpoint_seq, Some(1));
        assert!(report.checkpoint_wal_len > 0);
        assert_eq!(
            report.records_replayed, 1,
            "only the post-checkpoint update replays"
        );
        assert_eq!(checksum(&db, "t"), before);
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_newest_checkpoint_falls_back_to_previous() {
        let dir = temp_dir("fallback");
        let before;
        {
            let (db, _) = HybridDatabase::open_dir(&dir, DurabilityConfig::default()).unwrap();
            populate(&db);
            db.checkpoint().unwrap();
            db.execute(&Query::Update(UpdateQuery {
                table: "t".into(),
                sets: vec![(1, Value::Double(500.5))],
                filter: vec![ColRange::eq(0, Value::BigInt(3))],
            }))
            .unwrap();
            let cp2 = db.checkpoint().unwrap();
            assert_eq!(cp2.seq, 2);
            db.sync_wal().unwrap();
            before = checksum(&db, "t");
            // Tear the newest checkpoint mid-file.
            let bytes = std::fs::read(&cp2.path).unwrap();
            std::fs::write(&cp2.path, &bytes[..bytes.len() / 2]).unwrap();
        }
        let (db, report) = HybridDatabase::open_dir(&dir, DurabilityConfig::default()).unwrap();
        assert_eq!(
            report.checkpoint_seq,
            Some(1),
            "torn newest falls back to previous"
        );
        assert_eq!(report.checkpoints_skipped, 1);
        assert!(
            report.records_replayed >= 1,
            "the fallback replays a longer suffix"
        );
        assert_eq!(checksum(&db, "t"), before);
        drop(db);

        // Destroy both checkpoints: full replay still recovers everything.
        for (_, p) in list_checkpoints(&dir.join("checkpoints")) {
            std::fs::write(&p, b"garbage").unwrap();
        }
        let (db, report) = HybridDatabase::open_dir(&dir, DurabilityConfig::default()).unwrap();
        assert_eq!(report.checkpoint_seq, None);
        assert_eq!(report.checkpoints_skipped, 2);
        assert_eq!(checksum(&db, "t"), before);
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_keeps_two_newest() {
        let dir = temp_dir("retain");
        let (db, _) = HybridDatabase::open_dir(&dir, DurabilityConfig::default()).unwrap();
        populate(&db);
        for _ in 0..4 {
            db.checkpoint().unwrap();
        }
        let kept = list_checkpoints(&dir.join("checkpoints"));
        assert_eq!(kept.iter().map(|(s, _)| *s).collect::<Vec<_>>(), vec![4, 3]);
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
