//! The row store: fixed-width tuple arena with a primary-key hash index and
//! optional ordered secondary indexes.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use hsd_types::{ColumnIdx, Error, Result, TableSchema, Value};

use crate::predicate::{ColRange, RowSel};
use crate::selvec::SelVec;
use crate::table::{pk_key_of, PkKey};

/// A row-oriented table.
///
/// All tuples live back-to-back in one `Vec<Value>` arena (`width` slots per
/// row), so whole-tuple operations (insert, point read, update) touch one
/// contiguous region, while single-attribute scans must stride across entire
/// tuples — the access-pattern asymmetry of Figure 1 in the paper.
#[derive(Debug, Clone)]
pub struct RowTable {
    schema: Arc<TableSchema>,
    width: usize,
    data: Vec<Value>,
    pk: HashMap<PkKey, u32>,
    secondary: HashMap<ColumnIdx, BTreeMap<Value, Vec<u32>>>,
}

impl RowTable {
    /// Empty table for `schema`.
    pub fn new(schema: Arc<TableSchema>) -> Self {
        let width = schema.arity();
        RowTable {
            schema,
            width,
            data: Vec::new(),
            pk: HashMap::new(),
            secondary: HashMap::new(),
        }
    }

    /// Table schema.
    pub fn schema(&self) -> &Arc<TableSchema> {
        &self.schema
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.data.len().checked_div(self.width).unwrap_or(0)
    }

    /// Insert a row; enforces schema validity and primary-key uniqueness.
    ///
    /// The uniqueness check is why the paper's insert cost model carries an
    /// `f_#rows` adjustment: verification work depends on the table size.
    pub fn insert(&mut self, row: &[Value]) -> Result<u32> {
        self.schema.validate_row(row)?;
        let key = pk_key_of(&self.schema, row);
        let idx = self.row_count() as u32;
        match self.pk.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                return Err(Error::DuplicateKey(format!(
                    "{}: {:?}",
                    self.schema.name,
                    e.key()
                )));
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(idx);
            }
        }
        self.data.extend_from_slice(row);
        for (&col, index) in &mut self.secondary {
            index.entry(row[col].clone()).or_default().push(idx);
        }
        Ok(idx)
    }

    /// Borrow the row at `idx` as a slice.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    #[inline]
    pub fn row(&self, idx: u32) -> &[Value] {
        let start = idx as usize * self.width;
        &self.data[start..start + self.width]
    }

    /// Borrow a single attribute of a row.
    #[inline]
    pub fn value_at(&self, idx: u32, col: ColumnIdx) -> &Value {
        &self.data[idx as usize * self.width + col]
    }

    /// Find the row index for a primary key, if present.
    pub fn point_lookup(&self, key: &[Value]) -> Option<u32> {
        self.pk.get(key).copied()
    }

    /// Create an ordered secondary index on `col` (idempotent).
    pub fn create_index(&mut self, col: ColumnIdx) -> Result<()> {
        self.schema.column(col)?;
        if self.secondary.contains_key(&col) {
            return Ok(());
        }
        let mut index: BTreeMap<Value, Vec<u32>> = BTreeMap::new();
        for idx in 0..self.row_count() as u32 {
            index
                .entry(self.value_at(idx, col).clone())
                .or_default()
                .push(idx);
        }
        self.secondary.insert(col, index);
        Ok(())
    }

    /// Whether `col` has a secondary index.
    pub fn has_index(&self, col: ColumnIdx) -> bool {
        self.secondary.contains_key(&col)
    }

    /// Drop the secondary index on `col`, if any.
    pub fn drop_index(&mut self, col: ColumnIdx) {
        self.secondary.remove(&col);
    }

    /// Row indexes matching *all* of `ranges` (conjunction), ascending.
    ///
    /// If a secondary index exists for one of the ranges, that index drives
    /// the scan and the remaining ranges are verified per candidate — the
    /// paper's "linear in selectivity if an index is available". Otherwise a
    /// full table scan verifies every range on every row ("constant:
    /// a table scan is executed").
    pub fn filter_rows(&self, ranges: &[ColRange]) -> Vec<u32> {
        if ranges.is_empty() {
            return (0..self.row_count() as u32).collect();
        }
        // Prefer an indexed equality range, then any indexed range.
        let indexed = ranges
            .iter()
            .position(|r| self.secondary.contains_key(&r.column) && r.as_eq().is_some())
            .or_else(|| {
                ranges
                    .iter()
                    .position(|r| self.secondary.contains_key(&r.column))
            });
        match indexed {
            Some(i) => {
                let driver = &ranges[i];
                let index = &self.secondary[&driver.column];
                let mut out: Vec<u32> = Vec::new();
                for (_, rows) in index.range((driver.lo_ref(), driver.hi_ref())) {
                    out.extend_from_slice(rows);
                }
                // Re-check every range (including the driver: the BTree range
                // can surface NULL keys under an unbounded lower end, and
                // ColRange::matches applies SQL NULL semantics).
                out.retain(|&idx| {
                    ranges
                        .iter()
                        .all(|r| r.matches(self.value_at(idx, r.column)))
                });
                out.sort_unstable();
                out
            }
            None => {
                let mut out = Vec::new();
                for idx in 0..self.row_count() as u32 {
                    if ranges
                        .iter()
                        .all(|r| r.matches(self.value_at(idx, r.column)))
                    {
                        out.push(idx);
                    }
                }
                out
            }
        }
    }

    /// The selection matching *all* of `ranges` as a bitmap — the row
    /// store's interop point with the engine's selection-vector pipeline.
    ///
    /// The row store has no code domain to batch over, so this evaluates
    /// through [`RowTable::filter_rows`] (index-driven when possible) and
    /// converts; the payoff is downstream, where conjunctions with
    /// column-store fragments become word-wise `AND`s.
    pub fn filter_selvec(&self, ranges: &[ColRange]) -> SelVec {
        if ranges.is_empty() {
            return SelVec::all(self.row_count());
        }
        SelVec::from_row_ids(self.row_count(), &self.filter_rows(ranges))
    }

    /// Visit the numeric value of `col` for the rows selected by `sel`
    /// (`None` = all rows) — selection-vector counterpart of
    /// [`RowTable::for_each_numeric`].
    pub fn for_each_numeric_sel(
        &self,
        col: ColumnIdx,
        sel: Option<&SelVec>,
        mut f: impl FnMut(f64),
    ) {
        match sel {
            None => self.for_each_numeric(col, RowSel::All, &mut f),
            Some(sv) => {
                for idx in sv.iter() {
                    if let Some(v) = self.value_at(idx, col).as_f64() {
                        f(v);
                    }
                }
            }
        }
    }

    /// Update the given rows, assigning each `(column, value)` pair.
    ///
    /// Primary-key columns cannot be updated (matching the engine's
    /// semantics; the paper's workloads never mutate keys).
    pub fn update_rows(&mut self, rows: &[u32], sets: &[(ColumnIdx, Value)]) -> Result<usize> {
        for (col, value) in sets {
            if self.schema.is_pk_column(*col) {
                return Err(Error::InvalidOperation(format!(
                    "cannot update primary-key column {} of {}",
                    self.schema.column(*col)?.name,
                    self.schema.name
                )));
            }
            self.schema.validate_value_at(*col, value)?;
        }
        for &idx in rows {
            if idx as usize >= self.row_count() {
                return Err(Error::NotFound(format!(
                    "row {idx} in {}",
                    self.schema.name
                )));
            }
        }
        for &idx in rows {
            for (col, value) in sets {
                let slot = idx as usize * self.width + col;
                if let Some(index) = self.secondary.get_mut(col) {
                    let old = self.data[slot].clone();
                    if let Some(list) = index.get_mut(&old) {
                        list.retain(|&r| r != idx);
                        if list.is_empty() {
                            index.remove(&old);
                        }
                    }
                    index.entry(value.clone()).or_default().push(idx);
                }
                self.data[slot] = value.clone();
            }
        }
        Ok(rows.len())
    }

    /// Visit the numeric value of `col` for the selected rows.
    ///
    /// Non-numeric or NULL values are skipped. This is the row store's
    /// aggregation path: note it walks the arena at `width`-sized strides.
    pub fn for_each_numeric(&self, col: ColumnIdx, sel: RowSel<'_>, mut f: impl FnMut(f64)) {
        match sel {
            RowSel::All => {
                let mut pos = col;
                let n = self.row_count();
                for _ in 0..n {
                    if let Some(v) = self.data[pos].as_f64() {
                        f(v);
                    }
                    pos += self.width;
                }
            }
            RowSel::Subset(rows) => {
                for &idx in rows {
                    if let Some(v) = self.value_at(idx, col).as_f64() {
                        f(v);
                    }
                }
            }
        }
    }

    /// Visit the value of `col` for the selected rows.
    pub fn for_each_value(&self, col: ColumnIdx, sel: RowSel<'_>, mut f: impl FnMut(&Value)) {
        match sel {
            RowSel::All => {
                let mut pos = col;
                for _ in 0..self.row_count() {
                    f(&self.data[pos]);
                    pos += self.width;
                }
            }
            RowSel::Subset(rows) => {
                for &idx in rows {
                    f(self.value_at(idx, col));
                }
            }
        }
    }

    /// Materialize the selected rows, optionally projecting to `cols`.
    pub fn collect_rows(&self, sel: RowSel<'_>, cols: Option<&[ColumnIdx]>) -> Vec<Vec<Value>> {
        let emit = |idx: u32| -> Vec<Value> {
            match cols {
                None => self.row(idx).to_vec(),
                Some(cols) => cols
                    .iter()
                    .map(|&c| self.value_at(idx, c).clone())
                    .collect(),
            }
        };
        match sel {
            RowSel::All => (0..self.row_count() as u32).map(emit).collect(),
            RowSel::Subset(rows) => rows.iter().map(|&r| emit(r)).collect(),
        }
    }

    /// Count of distinct values in `col` (scan-based; used by statistics
    /// collection, not by query execution).
    pub fn distinct_count(&self, col: ColumnIdx) -> usize {
        let mut seen: std::collections::HashSet<&Value> = std::collections::HashSet::new();
        let mut pos = col;
        for _ in 0..self.row_count() {
            seen.insert(&self.data[pos]);
            pos += self.width;
        }
        seen.len()
    }

    /// Approximate heap bytes held by the table (arena + indexes).
    pub fn memory_bytes(&self) -> usize {
        let value = std::mem::size_of::<Value>();
        let arena = self.data.capacity() * value;
        let pk = self.pk.capacity() * (value * self.schema.primary_key.len() + 8);
        let secondary: usize = self
            .secondary
            .values()
            .map(|ix| ix.len() * (value + 16))
            .sum();
        arena + pk + secondary
    }

    /// Drain this table into its rows (used by the data mover).
    pub fn into_rows(self) -> Vec<Vec<Value>> {
        let width = self.width;
        let mut rows = Vec::with_capacity(self.row_count());
        let mut iter = self.data.into_iter();
        loop {
            let row: Vec<Value> = iter.by_ref().take(width).collect();
            if row.is_empty() {
                break;
            }
            rows.push(row);
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsd_types::{ColumnDef, ColumnType};

    fn schema() -> Arc<TableSchema> {
        Arc::new(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("id", ColumnType::Integer),
                    ColumnDef::new("price", ColumnType::Double),
                    ColumnDef::new("qty", ColumnType::Integer),
                ],
                vec![0],
            )
            .unwrap(),
        )
    }

    fn sample() -> RowTable {
        let mut t = RowTable::new(schema());
        for i in 0..10 {
            t.insert(&[
                Value::Int(i),
                Value::Double(i as f64 * 1.5),
                Value::Int(i % 3),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn insert_and_read_back() {
        let t = sample();
        assert_eq!(t.row_count(), 10);
        assert_eq!(
            t.row(3),
            &[Value::Int(3), Value::Double(4.5), Value::Int(0)]
        );
        assert_eq!(t.value_at(4, 1), &Value::Double(6.0));
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut t = sample();
        let err = t
            .insert(&[Value::Int(5), Value::Double(0.0), Value::Int(0)])
            .unwrap_err();
        assert!(matches!(err, Error::DuplicateKey(_)));
        assert_eq!(t.row_count(), 10);
    }

    #[test]
    fn schema_violations_rejected() {
        let mut t = sample();
        assert!(t
            .insert(&[Value::Int(100), Value::Int(1), Value::Int(0)])
            .is_err());
        assert!(t.insert(&[Value::Int(100)]).is_err());
    }

    #[test]
    fn point_lookup_finds_rows() {
        let t = sample();
        assert_eq!(t.point_lookup(&[Value::Int(7)]), Some(7));
        assert_eq!(t.point_lookup(&[Value::Int(77)]), None);
    }

    #[test]
    fn filter_without_index_scans() {
        let t = sample();
        let hits = t.filter_rows(&[ColRange::between(2, Value::Int(1), Value::Int(1))]);
        assert_eq!(hits, vec![1, 4, 7]);
        // conjunction
        let hits = t.filter_rows(&[
            ColRange::eq(2, Value::Int(1)),
            ColRange::ge(0, Value::Int(4)),
        ]);
        assert_eq!(hits, vec![4, 7]);
    }

    #[test]
    fn filter_with_index_matches_scan() {
        let mut t = sample();
        let no_index =
            t.filter_rows(&[ColRange::between(1, Value::Double(3.0), Value::Double(9.0))]);
        t.create_index(1).unwrap();
        assert!(t.has_index(1));
        let with_index =
            t.filter_rows(&[ColRange::between(1, Value::Double(3.0), Value::Double(9.0))]);
        assert_eq!(no_index, with_index);
    }

    #[test]
    fn empty_ranges_select_all() {
        let t = sample();
        assert_eq!(t.filter_rows(&[]).len(), 10);
    }

    #[test]
    fn update_rows_changes_values_and_index() {
        let mut t = sample();
        t.create_index(2).unwrap();
        let n = t.update_rows(&[1, 4], &[(2, Value::Int(9))]).unwrap();
        assert_eq!(n, 2);
        assert_eq!(t.value_at(1, 2), &Value::Int(9));
        let hits = t.filter_rows(&[ColRange::eq(2, Value::Int(9))]);
        assert_eq!(hits, vec![1, 4]);
        // old entries are gone from the index
        let old = t.filter_rows(&[ColRange::eq(2, Value::Int(1))]);
        assert_eq!(old, vec![7]);
    }

    #[test]
    fn update_pk_rejected() {
        let mut t = sample();
        let err = t.update_rows(&[0], &[(0, Value::Int(99))]).unwrap_err();
        assert!(matches!(err, Error::InvalidOperation(_)));
    }

    #[test]
    fn update_missing_row_rejected_without_partial_write() {
        let mut t = sample();
        let err = t.update_rows(&[3, 99], &[(2, Value::Int(5))]).unwrap_err();
        assert!(matches!(err, Error::NotFound(_)));
        // row 3 must be untouched (validation precedes mutation)
        assert_eq!(t.value_at(3, 2), &Value::Int(0));
    }

    #[test]
    fn numeric_visitor_sums() {
        let t = sample();
        let mut sum = 0.0;
        t.for_each_numeric(1, RowSel::All, |v| sum += v);
        assert_eq!(sum, (0..10).map(|i| i as f64 * 1.5).sum::<f64>());
        let mut partial = 0.0;
        t.for_each_numeric(1, RowSel::Subset(&[0, 2]), |v| partial += v);
        assert_eq!(partial, 3.0);
    }

    #[test]
    fn collect_rows_projects() {
        let t = sample();
        let rows = t.collect_rows(RowSel::Subset(&[2]), Some(&[2, 0]));
        assert_eq!(rows, vec![vec![Value::Int(2), Value::Int(2)]]);
    }

    #[test]
    fn distinct_count_works() {
        let t = sample();
        assert_eq!(t.distinct_count(0), 10);
        assert_eq!(t.distinct_count(2), 3);
    }

    #[test]
    fn into_rows_round_trip() {
        let t = sample();
        let rows = t.clone().into_rows();
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[9][0], Value::Int(9));
    }

    #[test]
    fn memory_accounting_nonzero() {
        let t = sample();
        assert!(t.memory_bytes() > 0);
    }
}
