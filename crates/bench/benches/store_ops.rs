//! Micro-benchmarks of the primitive operations whose asymmetry the whole
//! paper rests on: aggregation scans, inserts, point queries, updates, range
//! selections, and joins, on both stores.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use hsd_bench::wide_spec;
use hsd_engine::HybridDatabase;
use hsd_query::{
    AggFunc, Aggregate, AggregateQuery, InsertQuery, JoinSpec, Query, SelectQuery, TableSpec,
    UpdateQuery,
};
use hsd_storage::{ColRange, StoreKind};
use hsd_types::Value;

const ROWS: usize = 100_000;

fn db_with(store: StoreKind) -> (HybridDatabase, TableSpec) {
    let spec = wide_spec("t", ROWS, 0xBE);
    let db = HybridDatabase::new();
    db.create_single(spec.schema().unwrap(), store).unwrap();
    db.bulk_load("t", spec.rows()).unwrap();
    (db, spec)
}

fn bench_aggregate(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregate_sum");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for store in StoreKind::BOTH {
        let (db, spec) = db_with(store);
        let q = Query::Aggregate(AggregateQuery::simple("t", AggFunc::Sum, spec.kf_col(0)));
        group.bench_with_input(BenchmarkId::from_parameter(store), &store, |b, _| {
            b.iter(|| db.execute(&q).unwrap())
        });
    }
    group.finish();
}

fn bench_grouped_aggregate(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregate_group_by");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for store in StoreKind::BOTH {
        let (db, spec) = db_with(store);
        let q = Query::Aggregate(AggregateQuery {
            table: "t".into(),
            aggregates: vec![Aggregate {
                func: AggFunc::Sum,
                column: spec.kf_col(0),
            }],
            group_by: Some(spec.grp_col(0)),
            filter: vec![],
            join: None,
        });
        group.bench_with_input(BenchmarkId::from_parameter(store), &store, |b, _| {
            b.iter(|| db.execute(&q).unwrap())
        });
    }
    group.finish();
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert_row");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for store in StoreKind::BOTH {
        let (db, spec) = db_with(store);
        let mut next = ROWS as u64;
        group.bench_with_input(BenchmarkId::from_parameter(store), &store, |b, _| {
            b.iter(|| {
                let q = Query::Insert(InsertQuery {
                    table: "t".into(),
                    rows: vec![spec.row(next)],
                });
                next += 1;
                db.execute(&q).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_point_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("point_select");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for store in StoreKind::BOTH {
        let (db, _) = db_with(store);
        let mut i = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(store), &store, |b, _| {
            b.iter(|| {
                let q = Query::Select(SelectQuery::point(
                    "t",
                    0,
                    Value::BigInt((i * 7919 % ROWS as u64) as i64),
                ));
                i += 1;
                db.execute(&q).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_point_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("point_update");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for store in StoreKind::BOTH {
        let (db, spec) = db_with(store);
        let mut i = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(store), &store, |b, _| {
            b.iter(|| {
                let q = Query::Update(UpdateQuery {
                    table: "t".into(),
                    sets: vec![(spec.st_col(0), Value::Int((i % 8) as i32))],
                    filter: vec![ColRange::eq(
                        0,
                        Value::BigInt((i * 6151 % ROWS as u64) as i64),
                    )],
                });
                i += 1;
                db.execute(&q).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_range_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("range_select_1pct");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for store in StoreKind::BOTH {
        let (db, spec) = db_with(store);
        let q = Query::Select(SelectQuery {
            table: "t".into(),
            columns: Some(vec![0, spec.kf_col(0)]),
            filter: vec![ColRange::between(
                spec.flt_col(0),
                Value::Int(0),
                Value::Int(99),
            )],
        });
        group.bench_with_input(BenchmarkId::from_parameter(store), &store, |b, _| {
            b.iter(|| db.execute(&q).unwrap())
        });
    }
    group.finish();
}

fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_aggregate");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(15);
    let fact_spec = TableSpec {
        name: "fact".into(),
        rows: ROWS,
        fk_attrs: 1,
        fk_cardinality: 1000,
        keyfigures: 2,
        group_attrs: 0,
        filter_attrs: 1,
        status_attrs: 1,
        group_cardinality: 1,
        status_cardinality: 8,
        kf_distinct: (ROWS / 20) as u32,
        seed: 0xFA,
    };
    let dim_spec = TableSpec {
        name: "dim".into(),
        rows: 1000,
        fk_attrs: 0,
        fk_cardinality: 1,
        keyfigures: 0,
        group_attrs: 2,
        filter_attrs: 1,
        status_attrs: 0,
        group_cardinality: 20,
        status_cardinality: 1,
        kf_distinct: 64,
        seed: 0xDB,
    };
    for fact_store in StoreKind::BOTH {
        for dim_store in StoreKind::BOTH {
            let db = HybridDatabase::new();
            db.create_single(fact_spec.schema().unwrap(), fact_store)
                .unwrap();
            db.create_single(dim_spec.schema().unwrap(), dim_store)
                .unwrap();
            db.bulk_load("fact", fact_spec.rows()).unwrap();
            db.bulk_load("dim", dim_spec.rows()).unwrap();
            let q = Query::Aggregate(AggregateQuery {
                table: "fact".into(),
                aggregates: vec![Aggregate {
                    func: AggFunc::Sum,
                    column: fact_spec.kf_col(0),
                }],
                group_by: None,
                filter: vec![],
                join: Some(JoinSpec {
                    dim_table: "dim".into(),
                    fact_fk: fact_spec.fk_col(0),
                    dim_pk: 0,
                    group_by_dim: Some(dim_spec.grp_col(0)),
                }),
            });
            let label = format!("fact={fact_store},dim={dim_store}");
            group.bench_function(BenchmarkId::from_parameter(label), |b| {
                b.iter(|| db.execute(&q).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_aggregate,
    bench_grouped_aggregate,
    bench_insert,
    bench_point_select,
    bench_point_update,
    bench_range_select,
    bench_join
);
criterion_main!(benches);
