//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so this workspace-local
//! crate provides the exact surface the repo uses: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and float
//! ranges, [`Rng::gen_bool`], [`Rng::gen`], and the [`seq::SliceRandom`]
//! helpers (`choose`, `choose_multiple`, `shuffle`).
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — deterministic,
//! high-quality, and entirely dependency-free. It is NOT the upstream
//! `SmallRng`, so seeded streams differ from real `rand`; everything in this
//! repo only relies on determinism, not on specific stream values.

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be drawn uniformly from their full domain via `Rng::gen`.
pub trait Standard: Sized {
    /// Draw one value.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl Standard for u32 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types `Rng::gen_range` can sample uniformly (mirrors
/// `rand::distributions::uniform::SampleUniform` closely enough for type
/// inference: the blanket [`SampleRange`] impls below unify the range's
/// element type with the requested output type).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;

    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                assert!(lo < hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }

            fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
        lo + f64::draw(rng) * (hi - lo)
    }

    fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
        Self::sample_half_open(lo, hi, rng)
    }
}

/// Ranges that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a range (`0..n`, `0..=n`, `0.0..1.0`, ...).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::draw(self) < p
    }

    /// Draw a value of `T` from its full domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // Avoid the all-zero state (splitmix64 of any seed never yields
            // four zeros, but be defensive).
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (subset of `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection / permutation over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// One uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements in random order (all of them when the
        /// slice is shorter).
        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[i])
            }
        }

        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let mut idx: Vec<usize> = (0..self.len()).collect();
            shuffle_indices(&mut idx, rng);
            idx.truncate(amount.min(self.len()));
            idx.into_iter()
                .map(|i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }

    fn shuffle_indices<R: RngCore + ?Sized>(idx: &mut [usize], rng: &mut R) {
        for i in (1..idx.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            idx.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10i64..20);
            assert!((10..20).contains(&v));
            let v = r.gen_range(0usize..=3);
            assert!(v <= 3);
            let f = r.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u = r.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn slice_helpers() {
        let mut r = SmallRng::seed_from_u64(3);
        let xs = [1, 2, 3, 4, 5];
        assert!(xs.choose(&mut r).is_some());
        let picked: Vec<i32> = xs.choose_multiple(&mut r, 3).copied().collect();
        assert_eq!(picked.len(), 3);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "choose_multiple picks distinct elements");
        let mut ys = [1, 2, 3, 4, 5, 6, 7, 8];
        ys.shuffle(&mut r);
        let mut back = ys;
        back.sort_unstable();
        assert_eq!(back, [1, 2, 3, 4, 5, 6, 7, 8]);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
