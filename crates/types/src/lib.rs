//! Shared value model, schemas, identifiers, and errors for the
//! hybrid-store database and its storage advisor.
//!
//! This crate is the bottom of the dependency stack: every other crate in the
//! workspace (storage engine, catalog, query layer, advisor) builds on the
//! types defined here.
//!
//! The value model is deliberately small — the paper's cost model
//! distinguishes data types only through a constant per-type adjustment
//! factor (`c_dataType`), so a handful of scalar types plus dictionary-coded
//! text is sufficient to exercise every code path the advisor cares about.

#![warn(missing_docs)]

pub mod error;
pub mod ids;
pub mod json;
pub mod schema;
pub mod value;

pub use error::{Error, Result};
pub use ids::{ColumnIdx, TableId};
pub use json::{Json, JsonError, JsonResult};
pub use schema::{ColumnDef, TableSchema};
pub use value::{ColumnType, Value};
