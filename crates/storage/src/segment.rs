//! Immutable on-disk column segments: the persistence format for
//! demoted (disk-tier) column fragments and for checkpointed column data.
//!
//! A *segment* is one column-store fragment serialized byte-for-byte in
//! the in-memory layout this crate already uses: per column, the
//! order-preserving dictionary (sorted region + unsorted tail, so a
//! fragment with a live delta tail round-trips exactly) followed by the
//! delimiter-aligned bit-packed code words of [`crate::BitPackedVec`].
//! Loading a segment is therefore a *restore*, not a rebuild — no values
//! are re-interned, no codes re-assigned, and scans over a freshly loaded
//! fragment go through the same SWAR kernels as an always-resident one.
//!
//! # File format
//!
//! All integers are little-endian. The file is a fixed header, one block
//! per column, and a CRC trailer:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "HSDSEG1\0"  (format version is baked into the magic)
//! 8       4     column count (u32)
//! 12      4     row count    (u32)
//! 16      …     column blocks (see below), in schema order
//! end-4   4     CRC-32 over bytes [8, end-4)   (same polynomial as the WAL)
//! ```
//!
//! Each **column block** is:
//!
//! ```text
//! size   field
//! 4      dictionary sorted-region entry count (u32)
//! 4      dictionary tail entry count (u32)
//! 8      merge epoch (u64) — dictionary generation, preserved across demote
//! 1      code width in bits (u8, 0..=32)
//! 8      packed word count (u64)
//! …      sorted-region values, then tail values (tagged value encoding)
//! …      packed code words (word count × 8 bytes, the exact
//!        delimiter-aligned layout of BitPackedVec::words)
//! ```
//!
//! The **tagged value encoding** (also used by the engine's checkpoint for
//! row fragments) is one tag byte followed by the payload:
//!
//! ```text
//! tag  variant   payload
//! 0    Null      —
//! 1    Int       i32 LE
//! 2    BigInt    i64 LE
//! 3    Double    f64 LE bit pattern
//! 4    Decimal   i64 LE
//! 5    Text      u32 LE byte length + UTF-8 bytes
//! 6    Date      i32 LE
//! 7    Bool      u8 (0 or 1)
//! ```
//!
//! The format is **not schema-self-describing**: the decoder takes the
//! table schema from the caller (the catalog is authoritative for it) and
//! validates the column count against the schema's arity. The primary-key
//! index is not persisted; [`crate::ColumnTable::from_parts`] rebuilds it
//! from the decoded PK columns.
//!
//! # Integrity and crash safety
//!
//! The CRC trailer covers everything after the magic; [`decode_segment`]
//! rejects torn or bit-flipped files before interpreting a single byte of
//! them. Segment files are a **derived cache** of WAL state: recovery
//! re-creates them from replayed in-memory data (see the engine's
//! durability module), so a corrupt or missing segment is an availability
//! problem for reads on that fragment, never a correctness problem for
//! recovery. [`SegmentStore`] writes files atomically
//! (`tmp` + fsync + rename) so a crash mid-write leaves either the old
//! segment or none.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use hsd_types::{Error, Result, TableSchema, Value};

use crate::bitpack::BitPackedVec;
use crate::column_store::{ColumnData, ColumnTable};
use crate::dictionary::Dictionary;
use crate::wal::crc32;

/// File magic: `HSDSEG` + format version `1` + NUL.
pub const SEGMENT_MAGIC: [u8; 8] = *b"HSDSEG1\0";

// ---------------------------------------------------------------------------
// Tagged value encoding

/// Append the tagged encoding of `v` to `out` (see the module docs for the
/// byte layout).
pub fn write_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Int(x) => {
            out.push(1);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::BigInt(x) => {
            out.push(2);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::Double(x) => {
            out.push(3);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Decimal(x) => {
            out.push(4);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::Text(s) => {
            out.push(5);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Date(x) => {
            out.push(6);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::Bool(x) => {
            out.push(7);
            out.push(*x as u8);
        }
    }
}

/// Decode one tagged value at `*pos`, advancing `*pos` past it.
pub fn read_value(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    let tag = *bytes
        .get(*pos)
        .ok_or_else(|| Error::Io("value encoding truncated at tag".into()))?;
    *pos += 1;
    let mut take = |n: usize| -> Result<&[u8]> {
        let s = bytes
            .get(*pos..*pos + n)
            .ok_or_else(|| Error::Io("value encoding truncated in payload".into()))?;
        *pos += n;
        Ok(s)
    };
    Ok(match tag {
        0 => Value::Null,
        1 => Value::Int(i32::from_le_bytes(take(4)?.try_into().unwrap())),
        2 => Value::BigInt(i64::from_le_bytes(take(8)?.try_into().unwrap())),
        3 => Value::Double(f64::from_bits(u64::from_le_bytes(
            take(8)?.try_into().unwrap(),
        ))),
        4 => Value::Decimal(i64::from_le_bytes(take(8)?.try_into().unwrap())),
        5 => {
            let len = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
            let s = std::str::from_utf8(take(len)?)
                .map_err(|_| Error::Io("value encoding: invalid UTF-8 in text".into()))?;
            Value::text(s)
        }
        6 => Value::Date(i32::from_le_bytes(take(4)?.try_into().unwrap())),
        7 => Value::Bool(take(1)?[0] != 0),
        other => return Err(Error::Io(format!("value encoding: unknown tag {other}"))),
    })
}

// ---------------------------------------------------------------------------
// Segment encode / decode

fn u32_at(bytes: &[u8], pos: &mut usize, what: &str) -> Result<u32> {
    let s = bytes
        .get(*pos..*pos + 4)
        .ok_or_else(|| Error::Io(format!("segment truncated at {what}")))?;
    *pos += 4;
    Ok(u32::from_le_bytes(s.try_into().unwrap()))
}

fn u64_at(bytes: &[u8], pos: &mut usize, what: &str) -> Result<u64> {
    let s = bytes
        .get(*pos..*pos + 8)
        .ok_or_else(|| Error::Io(format!("segment truncated at {what}")))?;
    *pos += 8;
    Ok(u64::from_le_bytes(s.try_into().unwrap()))
}

/// Serialize a column table into the segment byte format (see the module
/// docs). The table need not be compacted: a live dictionary tail is
/// persisted region-exact and restores identically.
///
/// ```
/// use std::sync::Arc;
/// use hsd_storage::segment::{decode_segment, encode_segment};
/// use hsd_storage::ColumnTable;
/// use hsd_types::{ColumnDef, ColumnType, TableSchema, Value};
///
/// let schema = Arc::new(
///     TableSchema::new(
///         "t",
///         vec![
///             ColumnDef::new("id", ColumnType::Integer),
///             ColumnDef::new("name", ColumnType::Varchar),
///         ],
///         vec![0],
///     )
///     .unwrap(),
/// );
/// let mut t = ColumnTable::new(schema.clone());
/// t.insert(&[Value::Int(1), Value::text("a")]).unwrap();
/// t.insert(&[Value::Int(2), Value::text("b")]).unwrap();
/// let bytes = encode_segment(&t);
/// let back = decode_segment(schema, &bytes).unwrap();
/// assert_eq!(back.row_count(), 2);
/// assert_eq!(back.row(1), vec![Value::Int(2), Value::text("b")]);
/// ```
pub fn encode_segment(table: &ColumnTable) -> Vec<u8> {
    let schema = table.schema();
    let mut out = Vec::new();
    out.extend_from_slice(&SEGMENT_MAGIC);
    out.extend_from_slice(&(schema.arity() as u32).to_le_bytes());
    out.extend_from_slice(&(table.row_count() as u32).to_le_bytes());
    for c in 0..schema.arity() {
        let col = table.column(c);
        let dict = col.dictionary();
        // The plain (ablation) encoding is re-packed on the way out; the
        // production packed encoding is written zero-copy.
        let packed_owned: BitPackedVec;
        let packed = match col.packed_codes() {
            Some(v) => v,
            None => {
                packed_owned = (0..col.len()).map(|i| col.code_at(i)).collect();
                &packed_owned
            }
        };
        out.extend_from_slice(&(dict.sorted_len() as u32).to_le_bytes());
        out.extend_from_slice(&(dict.tail_len() as u32).to_le_bytes());
        out.extend_from_slice(&col.merge_epoch().to_le_bytes());
        out.push(packed.width());
        out.extend_from_slice(&(packed.words().len() as u64).to_le_bytes());
        for v in dict.values() {
            write_value(&mut out, v);
        }
        for w in packed.words() {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }
    let crc = crc32(&out[SEGMENT_MAGIC.len()..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decode a segment back into a [`ColumnTable`] under `schema`.
///
/// Verifies the magic and the CRC trailer before interpreting the body,
/// then restores each column dictionary region-exact and adopts the packed
/// code words directly (see [`BitPackedVec::from_raw_parts`]). The
/// primary-key index is rebuilt from the decoded PK columns.
pub fn decode_segment(schema: Arc<TableSchema>, bytes: &[u8]) -> Result<ColumnTable> {
    let magic_len = SEGMENT_MAGIC.len();
    if bytes.len() < magic_len + 4 + 4 + 4 {
        return Err(Error::Io(format!(
            "segment for {} too short ({} bytes)",
            schema.name,
            bytes.len()
        )));
    }
    if bytes[..magic_len] != SEGMENT_MAGIC {
        return Err(Error::Io(format!(
            "segment for {} has a bad magic (not a segment file, or an \
             unsupported format version)",
            schema.name
        )));
    }
    let body_end = bytes.len() - 4;
    let stored_crc = u32::from_le_bytes(bytes[body_end..].try_into().unwrap());
    let actual_crc = crc32(&bytes[magic_len..body_end]);
    if stored_crc != actual_crc {
        return Err(Error::Io(format!(
            "segment for {} failed its CRC check (stored {stored_crc:#010x}, \
             computed {actual_crc:#010x})",
            schema.name
        )));
    }
    let body = &bytes[..body_end];
    let mut pos = magic_len;
    let column_count = u32_at(body, &mut pos, "column count")? as usize;
    let row_count = u32_at(body, &mut pos, "row count")? as usize;
    if column_count != schema.arity() {
        return Err(Error::InvalidOperation(format!(
            "segment for {} has {column_count} columns, schema expects {}",
            schema.name,
            schema.arity()
        )));
    }
    let mut columns = Vec::with_capacity(column_count);
    for c in 0..column_count {
        let sorted_len = u32_at(body, &mut pos, "sorted length")? as usize;
        let tail_len = u32_at(body, &mut pos, "tail length")? as usize;
        let epoch = u64_at(body, &mut pos, "merge epoch")?;
        let width = *body
            .get(pos)
            .ok_or_else(|| Error::Io("segment truncated at code width".into()))?;
        pos += 1;
        if width > 32 {
            return Err(Error::Io(format!(
                "segment for {}: column {c} has invalid code width {width}",
                schema.name
            )));
        }
        let word_count = u64_at(body, &mut pos, "word count")? as usize;
        let mut sorted = Vec::with_capacity(sorted_len);
        for _ in 0..sorted_len {
            sorted.push(read_value(body, &mut pos)?);
        }
        if !sorted.is_sorted() {
            return Err(Error::Io(format!(
                "segment for {}: column {c} sorted region out of order",
                schema.name
            )));
        }
        let mut tail = Vec::with_capacity(tail_len);
        for _ in 0..tail_len {
            tail.push(read_value(body, &mut pos)?);
        }
        let dict = Dictionary::from_regions(sorted, tail);
        let mut words = Vec::with_capacity(word_count);
        for _ in 0..word_count {
            words.push(u64_at(body, &mut pos, "packed words")?);
        }
        let expect_words = if width == 0 {
            0
        } else {
            row_count.div_ceil(64 / (width as usize + 1))
        };
        if words.len() != expect_words {
            return Err(Error::Io(format!(
                "segment for {}: column {c} has {} packed words, expected \
                 {expect_words} for {row_count} rows at width {width}",
                schema.name,
                words.len()
            )));
        }
        let codes = BitPackedVec::from_raw_parts(words, width, row_count);
        if codes.iter().any(|code| code as usize >= dict.len()) {
            return Err(Error::Io(format!(
                "segment for {}: column {c} has a code beyond its dictionary",
                schema.name
            )));
        }
        columns.push(ColumnData::from_parts(dict, codes, epoch));
    }
    if pos != body.len() {
        return Err(Error::Io(format!(
            "segment for {} has {} trailing bytes",
            schema.name,
            body.len() - pos
        )));
    }
    ColumnTable::from_parts(schema, columns)
}

// ---------------------------------------------------------------------------
// Segment store

/// Where segment files live: a real directory, or an in-memory map.
///
/// The in-memory backend exists for the same reason the WAL has
/// [`crate::MemBackend`]: WAL replay and the crash-point property tests
/// must be able to reconstruct demoted fragments without touching the
/// filesystem, and a database created with no directory
/// (`HybridDatabase::new`) still supports the full demote/promote
/// lifecycle. Both backends expose the same atomic-publish semantics:
/// [`SegmentStore::put`] makes the new bytes visible all-or-nothing (the
/// directory backend writes a temp file, fsyncs, and renames over the
/// final name).
///
/// ```
/// use hsd_storage::segment::SegmentStore;
/// let store = SegmentStore::mem();
/// store.put("t", vec![1, 2, 3]).unwrap();
/// assert_eq!(&*store.get("t").unwrap(), &[1, 2, 3]);
/// store.remove("t").unwrap();
/// assert!(store.get("t").is_err());
/// ```
#[derive(Debug)]
pub enum SegmentStore {
    /// Segments held in a process-local map (tests, replay, dir-less
    /// databases).
    Mem(Mutex<HashMap<String, Arc<[u8]>>>),
    /// Segments as files under a directory, one `<name>.seg` per segment.
    Dir(PathBuf),
}

impl Default for SegmentStore {
    /// Defaults to the in-memory backend (what a directory-less database
    /// uses).
    fn default() -> Self {
        SegmentStore::mem()
    }
}

fn io_err(what: &str, path: &Path, e: std::io::Error) -> Error {
    Error::Io(format!("{what} {}: {e}", path.display()))
}

impl SegmentStore {
    /// An empty in-memory store.
    pub fn mem() -> Self {
        SegmentStore::Mem(Mutex::new(HashMap::new()))
    }

    /// A directory-backed store rooted at `dir` (created if absent).
    pub fn dir(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| io_err("create segment dir", &dir, e))?;
        Ok(SegmentStore::Dir(dir))
    }

    fn path_of(dir: &Path, name: &str) -> PathBuf {
        dir.join(format!("{name}.seg"))
    }

    /// Publish `bytes` under `name`, replacing any previous segment
    /// atomically (temp file + fsync + rename for the directory backend).
    pub fn put(&self, name: &str, bytes: Vec<u8>) -> Result<()> {
        match self {
            SegmentStore::Mem(map) => {
                map.lock()
                    .expect("segment store poisoned")
                    .insert(name.to_string(), bytes.into());
                Ok(())
            }
            SegmentStore::Dir(dir) => {
                let tmp = dir.join(format!("{name}.seg.tmp"));
                let path = Self::path_of(dir, name);
                std::fs::write(&tmp, &bytes).map_err(|e| io_err("write segment", &tmp, e))?;
                let f = std::fs::File::open(&tmp).map_err(|e| io_err("open segment", &tmp, e))?;
                f.sync_all().map_err(|e| io_err("sync segment", &tmp, e))?;
                std::fs::rename(&tmp, &path).map_err(|e| io_err("publish segment", &path, e))?;
                // Persist the rename itself.
                if let Ok(d) = std::fs::File::open(dir) {
                    let _ = d.sync_all();
                }
                Ok(())
            }
        }
    }

    /// Fetch the current bytes of segment `name`.
    pub fn get(&self, name: &str) -> Result<Arc<[u8]>> {
        match self {
            SegmentStore::Mem(map) => map
                .lock()
                .expect("segment store poisoned")
                .get(name)
                .cloned()
                .ok_or_else(|| Error::NotFound(format!("segment {name}"))),
            SegmentStore::Dir(dir) => {
                let path = Self::path_of(dir, name);
                std::fs::read(&path)
                    .map(Arc::from)
                    .map_err(|e| io_err("read segment", &path, e))
            }
        }
    }

    /// Delete segment `name` (a no-op if it is already gone).
    pub fn remove(&self, name: &str) -> Result<()> {
        match self {
            SegmentStore::Mem(map) => {
                map.lock().expect("segment store poisoned").remove(name);
                Ok(())
            }
            SegmentStore::Dir(dir) => {
                let path = Self::path_of(dir, name);
                match std::fs::remove_file(&path) {
                    Ok(()) => Ok(()),
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
                    Err(e) => Err(io_err("remove segment", &path, e)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsd_types::{ColumnDef, ColumnType};

    fn schema() -> Arc<TableSchema> {
        Arc::new(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("id", ColumnType::Integer),
                    ColumnDef::new("price", ColumnType::Double),
                    ColumnDef::new("status", ColumnType::Varchar),
                ],
                vec![0],
            )
            .unwrap(),
        )
    }

    fn sample(rows: i32) -> ColumnTable {
        let mut t = ColumnTable::new(schema());
        let statuses = ["new", "paid", "shipped"];
        for i in 0..rows {
            t.insert(&[
                Value::Int(i),
                Value::Double((i % 7) as f64 / 2.0),
                Value::text(statuses[i as usize % 3]),
            ])
            .unwrap();
        }
        t.compact();
        t
    }

    #[test]
    fn value_codec_round_trips_every_variant() {
        let vals = [
            Value::Null,
            Value::Int(-42),
            Value::BigInt(i64::MIN),
            Value::Double(std::f64::consts::PI),
            Value::Double(-0.0),
            Value::Decimal(123_456_789),
            Value::text(""),
            Value::text("héllo wörld"),
            Value::Date(19_000),
            Value::Bool(true),
            Value::Bool(false),
        ];
        let mut buf = Vec::new();
        for v in &vals {
            write_value(&mut buf, v);
        }
        let mut pos = 0;
        for v in &vals {
            let got = read_value(&buf, &mut pos).unwrap();
            // Bit-exact doubles (incl. -0.0) matter for round-trips.
            match (&got, v) {
                (Value::Double(a), Value::Double(b)) => {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
                _ => assert_eq!(&got, v),
            }
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn value_codec_rejects_truncation_and_bad_tags() {
        let mut buf = Vec::new();
        write_value(&mut buf, &Value::text("abcdef"));
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert!(read_value(&buf[..cut], &mut pos).is_err(), "cut {cut}");
        }
        let mut pos = 0;
        assert!(read_value(&[99], &mut pos).is_err());
    }

    #[test]
    fn segment_round_trips_compacted_table() {
        let t = sample(500);
        let bytes = encode_segment(&t);
        let back = decode_segment(schema(), &bytes).unwrap();
        assert_eq!(back.row_count(), t.row_count());
        assert_eq!(back.merge_epoch(), t.merge_epoch());
        assert_eq!(back.tail_total(), 0);
        for r in 0..500u32 {
            assert_eq!(back.row(r), t.row(r), "row {r}");
        }
        // The restored PK index answers point lookups.
        assert_eq!(back.point_lookup(&[Value::Int(123)]), Some(123));
        // Scans agree (restored codes go through the same kernels).
        let range = ColRange::ge(1, Value::Double(2.0));
        assert_eq!(
            back.filter_rows(std::slice::from_ref(&range)),
            t.filter_rows(std::slice::from_ref(&range))
        );
    }

    use crate::predicate::ColRange;

    #[test]
    fn segment_round_trips_live_tail() {
        let mut t = sample(64);
        // Leave both updated codes and a dictionary tail in place.
        t.update_rows(&[3, 9], &[(1, Value::Double(99.5))]).unwrap();
        t.update_rows(&[5], &[(2, Value::text("returned"))])
            .unwrap();
        assert!(t.tail_total() > 0);
        let bytes = encode_segment(&t);
        let back = decode_segment(schema(), &bytes).unwrap();
        assert_eq!(back.tail_total(), t.tail_total());
        for r in 0..64u32 {
            assert_eq!(back.row(r), t.row(r), "row {r}");
        }
        // The restored tail lookup still interns to the same codes.
        let mut restored = back;
        restored
            .update_rows(&[4], &[(1, Value::Double(99.5))])
            .unwrap();
        assert_eq!(restored.tail_total(), t.tail_total(), "no re-interning");
    }

    #[test]
    fn segment_round_trips_empty_table() {
        let t = ColumnTable::new(schema());
        let bytes = encode_segment(&t);
        let back = decode_segment(schema(), &bytes).unwrap();
        assert_eq!(back.row_count(), 0);
    }

    #[test]
    fn corruption_is_detected_at_every_byte() {
        let t = sample(40);
        let bytes = encode_segment(&t);
        // Flip each byte (sampled stride to keep the test fast) — decode
        // must fail rather than return wrong data. Flips inside the magic
        // fail the magic check; anywhere else, the CRC.
        for i in (0..bytes.len()).step_by(3) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                decode_segment(schema(), &bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
        // Truncations too.
        for cut in [0, 7, 8, 15, 16, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_segment(schema(), &bytes[..cut]).is_err(),
                "truncation to {cut} went undetected"
            );
        }
    }

    #[test]
    fn schema_arity_mismatch_rejected() {
        let t = sample(10);
        let bytes = encode_segment(&t);
        let narrow = Arc::new(
            TableSchema::new(
                "t",
                vec![ColumnDef::new("id", ColumnType::Integer)],
                vec![0],
            )
            .unwrap(),
        );
        assert!(decode_segment(narrow, &bytes).is_err());
    }

    #[test]
    fn mem_store_round_trip() {
        let store = SegmentStore::mem();
        assert!(store.get("x").is_err());
        store.put("x", vec![1, 2, 3]).unwrap();
        assert_eq!(&*store.get("x").unwrap(), &[1u8, 2, 3]);
        store.put("x", vec![9]).unwrap();
        assert_eq!(&*store.get("x").unwrap(), &[9u8]);
        store.remove("x").unwrap();
        assert!(store.get("x").is_err());
        store.remove("x").unwrap(); // idempotent
    }

    #[test]
    fn dir_store_round_trip() {
        let dir = std::env::temp_dir().join(format!("hsd_seg_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SegmentStore::dir(&dir).unwrap();
        store.put("t", vec![5, 6]).unwrap();
        assert_eq!(&*store.get("t").unwrap(), &[5u8, 6]);
        assert!(dir.join("t.seg").exists());
        assert!(!dir.join("t.seg.tmp").exists(), "temp file cleaned up");
        store.put("t", vec![7]).unwrap();
        assert_eq!(&*store.get("t").unwrap(), &[7u8]);
        store.remove("t").unwrap();
        assert!(store.get("t").is_err());
        store.remove("t").unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
