//! Basic table statistics ("data characteristics" in the paper).

use hsd_storage::{RowSel, Table};
use hsd_types::Value;

/// Per-column statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of distinct values.
    pub distinct: usize,
    /// Smallest non-null value, if the column is non-empty.
    pub min: Option<Value>,
    /// Largest value, if the column is non-empty.
    pub max: Option<Value>,
    /// Dictionary compression rate in `[0, 1]`: the fraction of value
    /// entries saved by dictionary encoding (`1 - distinct/rows`). The
    /// paper's `f_compression` adjustment consumes exactly this quantity
    /// (e.g. "the compression rate be 0.7").
    pub compression_rate: f64,
}

/// Basic statistics for one table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Number of rows at collection time.
    pub row_count: usize,
    /// Per-column statistics, schema order.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Empty statistics for an `arity`-column table (all zero).
    pub fn empty(arity: usize) -> Self {
        TableStats {
            row_count: 0,
            columns: vec![
                ColumnStats {
                    distinct: 0,
                    min: None,
                    max: None,
                    compression_rate: 0.0
                };
                arity
            ],
        }
    }

    /// Scan `table` and collect fresh statistics.
    ///
    /// For column-store tables the dictionary answers distinct counts and
    /// min/max directly; row-store tables are scanned.
    pub fn collect(table: &Table) -> Self {
        let rows = table.row_count();
        let arity = table.schema().arity();
        let mut columns = Vec::with_capacity(arity);
        for col in 0..arity {
            let distinct = table.distinct_count(col);
            let (mut min, mut max): (Option<Value>, Option<Value>) = match table {
                Table::Column(ct) => ct.column(col).min_max(),
                Table::Row(_) => (None, None),
            };
            if min.is_none() && max.is_none() {
                table.for_each_value(col, RowSel::All, |v| {
                    if v.is_null() {
                        return;
                    }
                    match &min {
                        None => min = Some(v.clone()),
                        Some(m) if v < m => min = Some(v.clone()),
                        _ => {}
                    }
                    match &max {
                        None => max = Some(v.clone()),
                        Some(m) if v > m => max = Some(v.clone()),
                        _ => {}
                    }
                });
            }
            let compression_rate = if rows == 0 {
                0.0
            } else {
                (1.0 - distinct as f64 / rows as f64).max(0.0)
            };
            columns.push(ColumnStats {
                distinct,
                min,
                max,
                compression_rate,
            });
        }
        TableStats {
            row_count: rows,
            columns,
        }
    }

    /// Mean compression rate over all columns — the table-level value the
    /// cost model uses when a query touches the table as a whole.
    pub fn avg_compression_rate(&self) -> f64 {
        if self.columns.is_empty() {
            return 0.0;
        }
        self.columns.iter().map(|c| c.compression_rate).sum::<f64>() / self.columns.len() as f64
    }

    /// Estimate the selectivity (fraction of rows) of a closed range
    /// `[lo, hi]` on `col`, assuming a uniform distribution between the
    /// column's min and max — the standard textbook estimate used when no
    /// histogram is available.
    pub fn estimate_range_selectivity(&self, col: usize, lo: &Value, hi: &Value) -> f64 {
        let stats = match self.columns.get(col) {
            Some(s) => s,
            None => return 1.0,
        };
        let (min, max) = match (&stats.min, &stats.max) {
            (Some(a), Some(b)) => (a, b),
            _ => return 1.0,
        };
        let (min_f, max_f) = match (min.as_numeric_key(), max.as_numeric_key()) {
            (Some(a), Some(b)) if b > a => (a, b),
            // Degenerate or non-numeric domain: fall back to equality logic.
            _ => {
                return if stats.distinct > 0 {
                    1.0 / stats.distinct as f64
                } else {
                    1.0
                };
            }
        };
        let lo_f = lo.as_numeric_key().unwrap_or(min_f).max(min_f);
        let hi_f = hi.as_numeric_key().unwrap_or(max_f).min(max_f);
        if hi_f < lo_f {
            return 0.0;
        }
        if lo == hi {
            // Point predicate: 1/distinct is sharper than width-based.
            return if stats.distinct > 0 {
                1.0 / stats.distinct as f64
            } else {
                0.0
            };
        }
        ((hi_f - lo_f) / (max_f - min_f)).clamp(0.0, 1.0)
    }
}

/// Numeric ordering key for selectivity estimation (dates and booleans are
/// orderable numerics here, unlike in aggregation).
trait NumericKey {
    fn as_numeric_key(&self) -> Option<f64>;
}

impl NumericKey for Value {
    fn as_numeric_key(&self) -> Option<f64> {
        match self {
            Value::Date(d) => Some(*d as f64),
            Value::Bool(b) => Some(*b as i64 as f64),
            other => other.as_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsd_storage::StoreKind;
    use hsd_types::{ColumnDef, ColumnType, TableSchema};
    use std::sync::Arc;

    fn table() -> Table {
        let schema = Arc::new(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("id", ColumnType::Integer),
                    ColumnDef::new("grp", ColumnType::Integer),
                ],
                vec![0],
            )
            .unwrap(),
        );
        Table::from_rows(
            schema,
            StoreKind::Column,
            (0..100).map(|i| vec![Value::Int(i), Value::Int(i % 5)]),
        )
        .unwrap()
    }

    #[test]
    fn collect_basic_stats() {
        let stats = TableStats::collect(&table());
        assert_eq!(stats.row_count, 100);
        assert_eq!(stats.columns[0].distinct, 100);
        assert_eq!(stats.columns[1].distinct, 5);
        assert_eq!(stats.columns[0].min, Some(Value::Int(0)));
        assert_eq!(stats.columns[0].max, Some(Value::Int(99)));
        assert!((stats.columns[1].compression_rate - 0.95).abs() < 1e-9);
        assert!(stats.columns[0].compression_rate.abs() < 1e-9);
    }

    #[test]
    fn avg_compression() {
        let stats = TableStats::collect(&table());
        let expect = (0.0 + 0.95) / 2.0;
        assert!((stats.avg_compression_rate() - expect).abs() < 1e-9);
    }

    #[test]
    fn range_selectivity_uniform() {
        let stats = TableStats::collect(&table());
        let sel = stats.estimate_range_selectivity(0, &Value::Int(0), &Value::Int(49));
        assert!((sel - 49.0 / 99.0).abs() < 1e-9);
        // point predicate uses distinct counts
        let sel = stats.estimate_range_selectivity(1, &Value::Int(3), &Value::Int(3));
        assert!((sel - 0.2).abs() < 1e-9);
        // out-of-domain range
        let sel = stats.estimate_range_selectivity(0, &Value::Int(200), &Value::Int(300));
        assert_eq!(sel, 0.0);
    }

    #[test]
    fn empty_stats() {
        let stats = TableStats::empty(3);
        assert_eq!(stats.row_count, 0);
        assert_eq!(stats.columns.len(), 3);
        assert_eq!(stats.avg_compression_rate(), 0.0);
    }

    #[test]
    fn selectivity_of_unknown_column_is_one() {
        let stats = TableStats::empty(1);
        assert_eq!(
            stats.estimate_range_selectivity(9, &Value::Int(0), &Value::Int(1)),
            1.0
        );
    }
}
