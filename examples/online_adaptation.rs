//! The online working mode (Section 4 / Figure 5): the advisor records
//! extended workload statistics while the system runs, re-evaluates the
//! layout at intervals, and applies an adaptation when the workload shifts
//! from transactional to analytical. Alongside placement changes it also
//! schedules delta-merge maintenance: with the engine's auto-merge
//! demoted to a disabled fallback, merges run exactly when the cost
//! model's scan savings have paid for them.
//!
//! ```sh
//! cargo run --release --example online_adaptation
//! ```

use hybrid_store_advisor::prelude::*;

fn main() -> hybrid_store_advisor::types::Result<()> {
    let spec = TableSpec::paper_wide("events", 40_000, 7);
    let db = HybridDatabase::new();
    db.create_single(spec.schema()?, StoreKind::Row)?;
    db.bulk_load("events", spec.rows())?;
    // The online advisor is the merge scheduler; the engine keeps no
    // size-triggered fallback of its own in this setup.
    db.set_merge_config(MergeConfig::disabled());

    // Offline phase: calibrate once, wrap the advisor for online use.
    println!("calibrating cost model ...");
    let model = calibrate(&CalibrationConfig::quick())?;
    let mut online = OnlineAdvisor::new(
        StorageAdvisor::new(model),
        OnlineConfig {
            evaluation_interval: 200,
            min_improvement: 0.05,
            ..Default::default()
        },
    );
    let mut merges = 0usize;

    // Phase 1: transactional traffic — the row store is already right.
    let oltp = WorkloadGenerator::single_table(
        &spec,
        &MixedWorkloadConfig {
            queries: 400,
            olap_fraction: 0.0,
            ..Default::default()
        },
    );
    let mut adaptations = 0;
    for q in &oltp.queries {
        db.execute(q)?;
        if let Some(a) = online.observe(&db, q)? {
            adaptations += 1;
            println!("unexpected adaptation: {:?}", a.changed_tables);
        }
        for action in online.take_maintenance() {
            let folded = action.apply(&db)?;
            merges += 1;
            println!("scheduled merge applied ({folded} tail entries folded)");
        }
    }
    println!(
        "phase 1 (OLTP): {} statements recorded, {adaptations} adaptations, \
         {merges} scheduled merges — layout is {}",
        online.recorded_statements(),
        db.catalog().single_store_of("events")?,
    );

    // Phase 2: the workload turns analytical; ids continue beyond phase 1.
    let shifted = TableSpec {
        rows: 200_000,
        ..spec
    };
    let olap = WorkloadGenerator::single_table(
        &shifted,
        &MixedWorkloadConfig {
            queries: 400,
            olap_fraction: 0.8,
            ..Default::default()
        },
    );
    let mut applied = false;
    for q in &olap.queries {
        db.execute(q)?;
        for action in online.take_maintenance() {
            let folded = action.apply(&db)?;
            merges += 1;
            println!("scheduled merge applied ({folded} tail entries folded)");
        }
        if let Some(adaptation) = online.observe(&db, q)? {
            println!(
                "adaptation recommended: {:?} (estimated improvement {:.0} %)",
                adaptation.changed_tables,
                adaptation.improvement * 100.0
            );
            for stmt in &adaptation.recommendation.statements {
                println!("  {stmt}");
            }
            let moved = online.apply(&db, &adaptation)?;
            println!("applied; moved {moved:?}");
            applied = true;
            break;
        }
    }
    if !applied {
        println!("no interval evaluation fired an adaptation; forcing one ...");
        if let Some(adaptation) = online.evaluate(&db)? {
            let moved = online.apply(&db, &adaptation)?;
            println!(
                "applied adaptation of {moved:?} (estimated improvement {:.0} %)",
                adaptation.improvement * 100.0
            );
        } else {
            println!("the advisor holds the current layout (estimates within threshold)");
        }
    }
    println!(
        "phase 2 (OLAP): layout is now {} ({merges} scheduled merges total, \
         residual tail: {})",
        db.catalog().entry_by_name("events")?.placement.describe(),
        db.delta_tail("events")?,
    );
    Ok(())
}
