//! WAL overhead and crash-recovery cost, recorded as `BENCH_recovery.json`.
//!
//! Three questions about the durability layer, measured on an OLTP-shaped
//! single-row insert/update stream:
//!
//! * **Logging overhead** — the same statement stream timed with the WAL
//!   detached and attached (file-backed, batched fsyncs):
//!   `wal_overhead_ratio = on_ms / off_ms`.
//! * **Write amplification** — physical frame bytes over logical payload
//!   bytes from the writer's lifetime counters:
//!   `wal_write_amplification`.
//! * **Recovery time** — `HybridDatabase::recover` replaying the log at two
//!   sizes (the large log is 4x the statements of the small one), with
//!   `recovery_time_ratio = large_ms / small_ms` showing how replay scales.
//!
//! The pass flag is correctness, not speed: both recoveries must rebuild
//! exactly the live database's table contents (compared by a canonical
//! sorted probe).
//!
//! Run with `cargo run --release -p hsd-bench --bin bench_recovery`
//! (`-- --smoke` for the small CI configuration).

use std::path::PathBuf;
use std::time::Instant;

use hsd_bench::ratio_json;
use hsd_engine::{mover, HybridDatabase, MergeConfig, QueryOutput};
use hsd_query::{InsertQuery, Query, SelectQuery, UpdateQuery};
use hsd_storage::{ColRange, StoreKind};
use hsd_types::{ColumnDef, ColumnType, Json, TableSchema, Value};

struct Scale {
    /// Statements of the small log; the large log runs 4x as many.
    statements: usize,
    /// Rows preloaded before the stream starts.
    base_rows: usize,
    smoke: bool,
}

impl Scale {
    fn from_args() -> Self {
        let smoke = std::env::args().any(|a| a == "--smoke");
        if smoke {
            Scale {
                statements: 2_000,
                base_rows: 5_000,
                smoke: true,
            }
        } else {
            Scale {
                statements: 20_000,
                base_rows: 50_000,
                smoke: false,
            }
        }
    }
}

fn schema() -> TableSchema {
    TableSchema::new(
        "t",
        vec![
            ColumnDef::new("id", ColumnType::BigInt),
            ColumnDef::new("kf", ColumnType::Double),
            ColumnDef::new("grp", ColumnType::Integer),
        ],
        vec![0],
    )
    .expect("schema")
}

/// Load the base table and run the statement stream: 2/3 fresh-id inserts,
/// 1/3 point updates, with a periodic explicit delta merge so the log also
/// carries merge-completion records.
fn run_stream(db: &HybridDatabase, base_rows: usize, statements: usize) {
    db.create_single(schema(), StoreKind::Column)
        .expect("create");
    db.bulk_load(
        "t",
        (0..base_rows as i64).map(|i| {
            vec![
                Value::BigInt(i),
                Value::Double(i as f64 * 0.25),
                Value::Int((i % 9) as i32),
            ]
        }),
    )
    .expect("load");
    for i in 0..statements {
        let q = if i % 3 == 2 {
            Query::Update(UpdateQuery {
                table: "t".into(),
                sets: vec![(1, Value::Double(1e6 + i as f64 * 0.017))],
                filter: vec![ColRange::eq(0, Value::BigInt((i % base_rows) as i64))],
            })
        } else {
            Query::Insert(InsertQuery {
                table: "t".into(),
                rows: vec![vec![
                    Value::BigInt((base_rows + i) as i64),
                    Value::Double(i as f64 * 0.5),
                    Value::Int((i % 9) as i32),
                ]],
            })
        };
        db.execute(&q).expect("statement");
        if i % 1_000 == 999 {
            mover::merge_delta(db, "t").expect("merge");
        }
    }
}

/// Canonical table contents, sorted by primary key — the correctness
/// checksum compared between the live and the recovered database.
fn probe(db: &HybridDatabase) -> Vec<Vec<Value>> {
    let out = db
        .execute(&Query::Select(SelectQuery {
            table: "t".into(),
            columns: None,
            filter: vec![],
        }))
        .expect("probe");
    let mut rows = match out {
        QueryOutput::Rows(r) => r,
        other => panic!("probe expected rows, got {other:?}"),
    };
    rows.sort_by_key(|r| match &r[0] {
        Value::BigInt(i) => *i,
        v => panic!("non-bigint key {v:?}"),
    });
    rows
}

fn wal_path(tag: &str) -> PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
    PathBuf::from(target).join(format!("hsd_bench_recovery_{tag}.wal"))
}

/// One logged run: stream into a fresh WAL at `path`, returning
/// `(elapsed_ms, final probe, frame_bytes, payload_bytes)`.
fn logged_run(
    path: &PathBuf,
    base_rows: usize,
    statements: usize,
) -> (f64, Vec<Vec<Value>>, u64, u64) {
    let _ = std::fs::remove_file(path);
    let (db, report) = HybridDatabase::recover(path).expect("open wal");
    assert!(report.is_clean() && report.records_replayed == 0);
    db.set_merge_config(MergeConfig::disabled());
    let start = Instant::now();
    run_stream(&db, base_rows, statements);
    db.sync_wal().expect("final sync");
    let ms = start.elapsed().as_secs_f64() * 1e3;
    let stats = db.wal_stats().expect("wal stats");
    (ms, probe(&db), stats.frame_bytes, stats.payload_bytes)
}

fn main() {
    let scale = Scale::from_args();

    // Baseline: the identical stream with no WAL attached.
    let off_db = HybridDatabase::new();
    off_db.set_merge_config(MergeConfig::disabled());
    let start = Instant::now();
    run_stream(&off_db, scale.base_rows, scale.statements);
    let off_ms = start.elapsed().as_secs_f64() * 1e3;

    // Logged runs at two log sizes.
    let small_path = wal_path("small");
    let large_path = wal_path("large");
    let (on_ms, small_probe, frame_bytes, payload_bytes) =
        logged_run(&small_path, scale.base_rows, scale.statements);
    let (_, large_probe, _, _) = logged_run(&large_path, scale.base_rows, scale.statements * 4);
    eprintln!(
        "[bench_recovery] stream of {} statements: {off_ms:.1} ms without WAL, \
         {on_ms:.1} ms with WAL ({:.3}x)",
        scale.statements,
        on_ms / off_ms
    );

    // Recovery replays.
    let recover = |path: &PathBuf, expected: &Vec<Vec<Value>>| {
        let bytes = std::fs::metadata(path).expect("wal metadata").len();
        let start = Instant::now();
        let (rec, report) = HybridDatabase::recover(path).expect("recover");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let ok = report.is_clean() && &probe(&rec) == expected;
        eprintln!(
            "[bench_recovery] recovered {bytes} bytes / {} records in {ms:.1} ms -> {}",
            report.records_replayed,
            if ok { "match" } else { "MISMATCH" }
        );
        (bytes, report.records_replayed, ms, ok)
    };
    let (small_bytes, small_records, small_ms, small_ok) = recover(&small_path, &small_probe);
    let (large_bytes, large_records, large_ms, large_ok) = recover(&large_path, &large_probe);
    let pass = small_ok && large_ok;

    let doc = Json::obj([
        ("benchmark", Json::Str("wal_recovery".into())),
        ("smoke", Json::Bool(scale.smoke)),
        ("base_rows", Json::Int(scale.base_rows as i64)),
        ("statements", Json::Int(scale.statements as i64)),
        ("wal_off_ms", Json::Num(off_ms)),
        ("wal_on_ms", Json::Num(on_ms)),
        ("wal_overhead_ratio", ratio_json(on_ms, off_ms)),
        (
            "wal_write_amplification",
            ratio_json(frame_bytes as f64, payload_bytes as f64),
        ),
        (
            "recovery_small",
            Json::obj([
                ("log_bytes", Json::Int(small_bytes as i64)),
                ("records", Json::Int(small_records as i64)),
                ("ms", Json::Num(small_ms)),
            ]),
        ),
        (
            "recovery_large",
            Json::obj([
                ("log_bytes", Json::Int(large_bytes as i64)),
                ("records", Json::Int(large_records as i64)),
                ("ms", Json::Num(large_ms)),
            ]),
        ),
        ("recovery_time_ratio", ratio_json(large_ms, small_ms)),
        ("pass", Json::Bool(pass)),
    ]);
    std::fs::write("BENCH_recovery.json", doc.to_string_pretty() + "\n")
        .expect("write BENCH_recovery.json");
    eprintln!("[bench_recovery] wrote BENCH_recovery.json");
    let _ = std::fs::remove_file(&small_path);
    let _ = std::fs::remove_file(&large_path);
    if !pass {
        std::process::exit(1);
    }
}
