//! The storage advisor — the paper's primary contribution.
//!
//! The advisor answers the hybrid-store question *"which data should be
//! managed in which store?"* in three stages:
//!
//! 1. **Cost model** ([`cost`]): store-specific base costs per query type
//!    composed with multiplicative adjustment functions for the query and
//!    data characteristics (`Costs = BaseCosts · QueryAdjustment ·
//!    DataAdjustment`, Section 3 of the paper). The adjustment functions are
//!    constants, linear, or piecewise-linear ([`cost::AdjustmentFn`]).
//! 2. **Calibration** ([`calibration`]): "based on some representative tests
//!    the base costs and the adjustment functions are set to reflect the
//!    current system's hardware settings" — micro-benchmarks run against a
//!    live [`hsd_engine::HybridDatabase`] and the functions are fitted by
//!    least squares / interpolation.
//! 3. **Recommendation** ([`advisor`], [`partition`]): the table-level
//!    advisor estimates workload runtime for every store assignment (join
//!    queries couple tables, so store *combinations* are searched), and the
//!    partition advisor applies the paper's heuristic for up-to-two
//!    horizontal and up-to-two vertical partitions per table.
//!
//! [`online`] implements the online working mode: consume recorded extended
//! statistics, re-evaluate periodically, and emit adaptation
//! recommendations — including workload-aware delta-merge scheduling
//! ([`maintenance`]): merges are recommended when the cost model's scan
//! savings exceed its merge cost, instead of on a size-only trigger.

#![deny(missing_docs)]

pub mod advisor;
pub mod budget;
pub mod calibration;
pub mod cost;
pub mod estimator;
pub mod health;
pub mod maintenance;
pub mod online;
pub mod partition;
pub mod report;

pub use advisor::{Recommendation, StorageAdvisor, TableRecommendation};
pub use budget::{
    layout_disk_bytes, layout_footprint_bytes, placement_disk_bytes, placement_footprint_bytes,
    select_under_budget, GlobalSelection, PlacementCandidate, TableCandidates,
};
pub use calibration::online::{
    CoefFamily, DriftGauge, FamilyDrift, OnlineCalibrator, OnlineCalibratorConfig, PhaseConfig,
    RefitReport,
};
pub use calibration::{calibrate, CalibrationConfig};
pub use cost::{AdjustmentFn, CostModel, ModelHandle, SchemaDiff, StoreModel, TierModel};
pub use estimator::{
    placement_fragment_drivers, EstimationCtx, FragmentDrivers, MaintenanceDrivers, TableCtx,
};
pub use health::render_health;
pub use maintenance::{
    estimate_maintenance, estimate_placement_maintenance, evaluate_merge, MaintenanceAction,
    MaintenanceEstimate, MergeDecision, MergePartition,
};
pub use online::{AdaptationRecommendation, OnlineAdvisor, OnlineConfig};
pub use partition::{horizontal_hot_fraction, PartitionAdvisorConfig};
