//! Error type shared across the workspace.

use std::fmt;

use crate::value::ColumnType;

/// Convenience alias used by every crate in the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by the storage engine, catalog, and advisor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A table name or id could not be resolved.
    UnknownTable(String),
    /// A column name or index could not be resolved.
    UnknownColumn(String),
    /// A value did not match the column's declared type.
    TypeMismatch {
        /// Declared column type.
        expected: ColumnType,
        /// What was provided instead.
        got: String,
    },
    /// A row's arity did not match the schema.
    ArityMismatch {
        /// Number of columns in the schema.
        expected: usize,
        /// Number of values provided.
        got: usize,
    },
    /// Primary-key uniqueness violation on insert.
    DuplicateKey(String),
    /// NULL provided for a non-nullable column.
    NullViolation(String),
    /// The requested operation is not valid in the current state.
    InvalidOperation(String),
    /// A row, partition, or other entity was not found.
    NotFound(String),
    /// The schema definition itself is invalid (e.g. empty PK).
    InvalidSchema(String),
    /// An I/O failure in the durability layer (message carries the
    /// underlying `std::io::Error`; stored as text so `Error` stays
    /// `Clone + Eq`).
    Io(String),
    /// The table was quarantined read-only by crash recovery (corrupt WAL
    /// record); mutations are rejected until the operator intervenes.
    Degraded(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownTable(t) => write!(f, "unknown table: {t}"),
            Error::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            Error::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: expected {expected}, got {got}")
            }
            Error::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "arity mismatch: schema has {expected} columns, row has {got}"
                )
            }
            Error::DuplicateKey(k) => write!(f, "duplicate primary key: {k}"),
            Error::NullViolation(c) => write!(f, "NULL not allowed in column {c}"),
            Error::InvalidOperation(m) => write!(f, "invalid operation: {m}"),
            Error::NotFound(m) => write!(f, "not found: {m}"),
            Error::InvalidSchema(m) => write!(f, "invalid schema: {m}"),
            Error::Io(m) => write!(f, "i/o error: {m}"),
            Error::Degraded(m) => write!(f, "table degraded (read-only): {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            Error::UnknownTable("x".into()).to_string(),
            "unknown table: x"
        );
        assert_eq!(
            Error::TypeMismatch {
                expected: ColumnType::Integer,
                got: "'a'".into()
            }
            .to_string(),
            "type mismatch: expected integer, got 'a'"
        );
        assert_eq!(
            Error::ArityMismatch {
                expected: 3,
                got: 2
            }
            .to_string(),
            "arity mismatch: schema has 3 columns, row has 2"
        );
    }

    #[test]
    fn implements_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::NotFound("row".into()));
    }
}
