//! Statistics recorder: accumulates the online mode's extended workload
//! statistics as queries execute.

use hsd_catalog::ExtendedStats;
use hsd_query::{Query, SelectQuery, UpdateQuery};
use hsd_types::TableSchema;

use crate::database::HybridDatabase;

/// Records per-table / per-attribute activity ("Record extended statistics"
/// in Figure 5 of the paper).
#[derive(Debug, Default)]
pub struct StatisticsRecorder {
    stats: ExtendedStats,
}

impl StatisticsRecorder {
    /// Fresh recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> &ExtendedStats {
        &self.stats
    }

    /// Consume the recorder, yielding its statistics.
    pub fn into_stats(self) -> ExtendedStats {
        self.stats
    }

    /// Reset all counters (a new observation interval).
    pub fn reset(&mut self) {
        self.stats = ExtendedStats::new();
    }

    /// Record one query. The database is only consulted for schema arity.
    pub fn record(&mut self, db: &HybridDatabase, query: &Query) {
        self.stats.total_statements += 1;
        match query {
            Query::Insert(q) => {
                let arity = arity_of(db, &q.table);
                let t = self.stats.table_mut(&q.table, arity);
                t.inserts += 1;
            }
            Query::Update(q) => self.record_update(db, q),
            Query::Select(q) => self.record_select(db, q),
            Query::Aggregate(q) => {
                let arity = arity_of(db, &q.table);
                let t = self.stats.table_mut(&q.table, arity);
                t.aggregations += 1;
                for a in &q.aggregates {
                    if a.column < t.columns.len() {
                        t.columns[a.column].aggregates += 1;
                    }
                }
                if let Some(g) = q.group_by {
                    if g < t.columns.len() {
                        t.columns[g].group_bys += 1;
                    }
                }
                for r in &q.filter {
                    if r.column < t.columns.len() {
                        t.columns[r.column].select_preds += 1;
                    }
                }
                if let Some(join) = &q.join {
                    *t.join_partners.entry(join.dim_table.clone()).or_insert(0) += 1;
                    let dim_arity = arity_of(db, &join.dim_table);
                    let d = self.stats.table_mut(&join.dim_table, dim_arity);
                    *d.join_partners.entry(q.table.clone()).or_insert(0) += 1;
                    if let Some(g) = join.group_by_dim {
                        if g < d.columns.len() {
                            d.columns[g].group_bys += 1;
                        }
                    }
                }
            }
        }
    }

    fn record_update(&mut self, db: &HybridDatabase, q: &UpdateQuery) {
        let schema = schema_of(db, &q.table);
        let arity = schema.as_ref().map_or(q.sets.len() + 1, |s| s.arity());
        let non_key = schema
            .as_ref()
            .map_or(arity, |s| s.arity() - s.primary_key.len());
        let t = self.stats.table_mut(&q.table, arity);
        t.updates += 1;
        // "updates that are addressing many attributes": a strict majority
        // of the non-key attributes assigned.
        if q.sets.len() * 2 > non_key.max(1) {
            t.whole_tuple_updates += 1;
        }
        for (col, _) in &q.sets {
            if *col < t.columns.len() {
                t.columns[*col].update_sets += 1;
            }
        }
        for r in &q.filter {
            if r.column < t.columns.len() {
                t.columns[r.column].update_preds += 1;
            }
            // Envelope of updated key ranges, for the hot-region heuristic.
            let lo = match r.lo_ref() {
                std::ops::Bound::Included(v) | std::ops::Bound::Excluded(v) => Some(v),
                std::ops::Bound::Unbounded => None,
            };
            let hi = match r.hi_ref() {
                std::ops::Bound::Included(v) | std::ops::Bound::Excluded(v) => Some(v),
                std::ops::Bound::Unbounded => None,
            };
            if let (Some(lo), Some(hi)) = (lo, hi) {
                t.update_envelopes
                    .entry(r.column)
                    .or_default()
                    .observe(lo, hi);
            }
        }
    }

    fn record_select(&mut self, db: &HybridDatabase, q: &SelectQuery) {
        let arity = arity_of(db, &q.table);
        let t = self.stats.table_mut(&q.table, arity);
        t.selects += 1;
        for r in &q.filter {
            if r.column < t.columns.len() {
                t.columns[r.column].select_preds += 1;
            }
        }
        match &q.columns {
            Some(cols) => {
                for &c in cols {
                    if c < t.columns.len() {
                        t.columns[c].select_projs += 1;
                    }
                }
            }
            None => {
                // SELECT *: every column is projected.
                for c in &mut t.columns {
                    c.select_projs += 1;
                }
            }
        }
    }
}

fn arity_of(db: &HybridDatabase, table: &str) -> usize {
    schema_of(db, table).map_or(0, |s| s.arity())
}

fn schema_of(db: &HybridDatabase, table: &str) -> Option<std::sync::Arc<TableSchema>> {
    db.catalog()
        .entry_by_name(table)
        .ok()
        .map(|e| e.schema.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsd_query::{AggFunc, Aggregate, AggregateQuery, InsertQuery, JoinSpec};
    use hsd_storage::{ColRange, StoreKind};
    use hsd_types::{ColumnDef, ColumnType, Value};

    fn db() -> HybridDatabase {
        let mut db = HybridDatabase::new();
        db.create_single(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("id", ColumnType::BigInt),
                    ColumnDef::new("kf", ColumnType::Double),
                    ColumnDef::new("st", ColumnType::Integer),
                ],
                vec![0],
            )
            .unwrap(),
            StoreKind::Row,
        )
        .unwrap();
        db.create_single(
            TableSchema::new(
                "dim",
                vec![
                    ColumnDef::new("dk", ColumnType::BigInt),
                    ColumnDef::new("region", ColumnType::Integer),
                ],
                vec![0],
            )
            .unwrap(),
            StoreKind::Row,
        )
        .unwrap();
        db
    }

    #[test]
    fn records_inserts_updates_selects() {
        let db = db();
        let mut rec = StatisticsRecorder::new();
        rec.record(
            &db,
            &Query::Insert(InsertQuery {
                table: "t".into(),
                rows: vec![],
            }),
        );
        rec.record(
            &db,
            &Query::Update(UpdateQuery {
                table: "t".into(),
                sets: vec![(2, Value::Int(1))],
                filter: vec![ColRange::eq(0, Value::BigInt(7))],
            }),
        );
        rec.record(
            &db,
            &Query::Select(SelectQuery {
                table: "t".into(),
                columns: Some(vec![2]),
                filter: vec![ColRange::eq(0, Value::BigInt(7))],
            }),
        );
        let t = rec.stats().table("t").unwrap();
        assert_eq!(t.inserts, 1);
        assert_eq!(t.updates, 1);
        assert_eq!(t.selects, 1);
        assert_eq!(t.columns[2].update_sets, 1);
        assert_eq!(t.columns[2].select_projs, 1);
        assert_eq!(t.columns[0].update_preds, 1);
        assert_eq!(t.columns[0].select_preds, 1);
        let env = &t.update_envelopes[&0];
        assert_eq!(env.lo, Some(Value::BigInt(7)));
        assert_eq!(env.hi, Some(Value::BigInt(7)));
        assert_eq!(rec.stats().total_statements, 3);
    }

    #[test]
    fn whole_tuple_update_detection() {
        let db = db();
        let mut rec = StatisticsRecorder::new();
        // schema has 2 non-key columns; assigning both is a whole-tuple update
        rec.record(
            &db,
            &Query::Update(UpdateQuery {
                table: "t".into(),
                sets: vec![(1, Value::Double(0.0)), (2, Value::Int(1))],
                filter: vec![ColRange::eq(0, Value::BigInt(3))],
            }),
        );
        // single-column update is not
        rec.record(
            &db,
            &Query::Update(UpdateQuery {
                table: "t".into(),
                sets: vec![(2, Value::Int(1))],
                filter: vec![ColRange::eq(0, Value::BigInt(3))],
            }),
        );
        let t = rec.stats().table("t").unwrap();
        assert_eq!(t.updates, 2);
        assert_eq!(t.whole_tuple_updates, 1);
    }

    #[test]
    fn records_aggregations_and_joins() {
        let db = db();
        let mut rec = StatisticsRecorder::new();
        rec.record(
            &db,
            &Query::Aggregate(AggregateQuery {
                table: "t".into(),
                aggregates: vec![Aggregate {
                    func: AggFunc::Sum,
                    column: 1,
                }],
                group_by: Some(2),
                filter: vec![],
                join: Some(JoinSpec {
                    dim_table: "dim".into(),
                    fact_fk: 2,
                    dim_pk: 0,
                    group_by_dim: Some(1),
                }),
            }),
        );
        let t = rec.stats().table("t").unwrap();
        assert_eq!(t.aggregations, 1);
        assert_eq!(t.columns[1].aggregates, 1);
        assert_eq!(t.columns[2].group_bys, 1);
        assert_eq!(t.join_partners["dim"], 1);
        let d = rec.stats().table("dim").unwrap();
        assert_eq!(d.join_partners["t"], 1);
        assert_eq!(d.columns[1].group_bys, 1);
    }

    #[test]
    fn reset_clears() {
        let db = db();
        let mut rec = StatisticsRecorder::new();
        rec.record(
            &db,
            &Query::Insert(InsertQuery {
                table: "t".into(),
                rows: vec![],
            }),
        );
        rec.reset();
        assert_eq!(rec.stats().total_statements, 0);
        assert!(rec.stats().table("t").is_none());
    }
}
