//! Library behind the `bench_summary` bin: summarize `BENCH_*.json`
//! trajectory artifacts into one markdown table.
//!
//! Everything degrades to an `n/a`/note row instead of panicking: an
//! absent file, unparsable JSON, a missing `pass` flag, and ratio keys
//! recorded as `"n/a"` strings or non-finite numbers all render gracefully
//! so one broken artifact never takes the whole summary down with it.

use hsd_types::Json;

/// One summarized artifact — one row of the markdown table.
#[derive(Debug, Clone, PartialEq)]
pub struct ArtifactRow {
    /// File name of the artifact.
    pub file: String,
    /// The artifact's `benchmark` field, or a placeholder.
    pub benchmark: String,
    /// The artifact's `pass` flag; `None` when absent or unreadable.
    pub pass: Option<bool>,
    /// Why the row is degraded (unreadable/unparsable), if it is.
    pub note: Option<String>,
    /// Headline ratios: `(key path, value)`; `None` value renders `n/a`.
    pub ratios: Vec<(String, Option<f64>)>,
    /// Modeled-vs-measured drift gauges: `(key path, value)`; `None`
    /// renders `n/a`. Populated by artifacts of self-calibration runs.
    pub drifts: Vec<(String, Option<f64>)>,
}

impl ArtifactRow {
    /// Whether this row should fail the summary (explicit `pass: false`,
    /// or a degraded artifact that could not be read at all).
    pub fn failing(&self) -> bool {
        self.pass == Some(false) || self.note.is_some()
    }
}

/// Recursively collect `(path, value)` pairs of explicit ratio fields.
/// `None` marks a ratio recorded without a usable value — a missing/zero
/// baseline (`"n/a"` markers from the bench bins) or a non-finite number —
/// which the table renders as `n/a` instead of `inf`/panicking.
pub fn collect_ratios(prefix: &str, json: &Json, out: &mut Vec<(String, Option<f64>)>) {
    match json {
        Json::Obj(map) => {
            for (k, v) in map {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                let ratio_key = k == "speedup"
                    || k.ends_with("_speedup")
                    || k.ends_with("_reduction")
                    || k.ends_with("_ratio")
                    || k.ends_with("_amplification")
                    || k.ends_with("_overhead")
                    || k.ends_with("_scaling");
                match v {
                    Json::Num(n) if ratio_key => out.push((path, n.is_finite().then_some(*n))),
                    Json::Int(n) if ratio_key => out.push((path, Some(*n as f64))),
                    Json::Str(_) | Json::Null if ratio_key => out.push((path, None)),
                    _ => collect_ratios(&path, v, out),
                }
            }
        }
        Json::Arr(items) => {
            for (i, v) in items.iter().enumerate() {
                collect_ratios(&format!("{prefix}[{i}]"), v, out);
            }
        }
        _ => {}
    }
}

/// Recursively collect `(path, value)` pairs of drift-gauge fields — keys
/// named `drift` or ending in `_drift` (e.g. `static_model_drift`). Drift
/// is the decayed mean `|ln(measured/predicted)|` of the cost model, so it
/// renders as a plain number, not a `…x` ratio. Degrades like
/// [`collect_ratios`]: non-finite or non-numeric values become `None`.
pub fn collect_drifts(prefix: &str, json: &Json, out: &mut Vec<(String, Option<f64>)>) {
    match json {
        Json::Obj(map) => {
            for (k, v) in map {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                let drift_key = k == "drift" || k.ends_with("_drift");
                match v {
                    Json::Num(n) if drift_key => out.push((path, n.is_finite().then_some(*n))),
                    Json::Int(n) if drift_key => out.push((path, Some(*n as f64))),
                    Json::Str(_) | Json::Null if drift_key => out.push((path, None)),
                    _ => collect_drifts(&path, v, out),
                }
            }
        }
        Json::Arr(items) => {
            for (i, v) in items.iter().enumerate() {
                collect_drifts(&format!("{prefix}[{i}]"), v, out);
            }
        }
        _ => {}
    }
}

/// Derive best/baseline throughput ratios from `results`-style arrays
/// (entries with `name` + `rows_per_sec`), grouped by the name's leading
/// token: `unselective_scalar_get` vs `unselective_block_selvec` etc.
pub fn derive_throughput_ratios(json: &Json, out: &mut Vec<(String, Option<f64>)>) {
    let Some(results) = json.get_opt("results").and_then(|r| r.as_arr().ok()) else {
        return;
    };
    let mut groups: std::collections::BTreeMap<String, (f64, f64)> = Default::default();
    for entry in results {
        let (Ok(name), Ok(rps)) = (
            entry.get("name").and_then(Json::as_str),
            entry.get("rows_per_sec").and_then(Json::as_f64),
        ) else {
            continue;
        };
        let group = name.split('_').next().unwrap_or(name).to_string();
        let slot = groups.entry(group).or_insert((f64::INFINITY, 0.0));
        slot.0 = slot.0.min(rps);
        slot.1 = slot.1.max(rps);
    }
    for (group, (worst, best)) in groups {
        if worst.is_finite() && worst > 0.0 && best > worst {
            out.push((format!("{group} best/baseline"), Some(best / worst)));
        }
    }
}

/// Summarize one artifact's JSON text into a row.
pub fn summarize_text(file: &str, text: &str) -> ArtifactRow {
    let json = match Json::parse(text) {
        Ok(j) => j,
        Err(e) => {
            return ArtifactRow {
                file: file.into(),
                benchmark: format!("(unparsable: {e:?})"),
                pass: None,
                note: Some(format!("unparsable: {e:?}")),
                ratios: Vec::new(),
                drifts: Vec::new(),
            }
        }
    };
    let benchmark = json
        .get_opt("benchmark")
        .and_then(|b| b.as_str().ok())
        .unwrap_or("?")
        .to_string();
    let pass = json.get_opt("pass").and_then(|p| p.as_bool().ok());
    let mut ratios = Vec::new();
    collect_ratios("", &json, &mut ratios);
    derive_throughput_ratios(&json, &mut ratios);
    let mut drifts = Vec::new();
    collect_drifts("", &json, &mut drifts);
    ArtifactRow {
        file: file.into(),
        benchmark,
        pass,
        note: None,
        ratios,
        drifts,
    }
}

/// Summarize the artifact at `path`. An absent or unreadable file becomes
/// a degraded note row (`missing: ...`) instead of a panic, so a bench bin
/// that never ran (e.g. no `BENCH_htap.json` yet) degrades to `n/a`.
pub fn summarize_path(path: &str) -> ArtifactRow {
    match std::fs::read_to_string(path) {
        Ok(text) => summarize_text(path, &text),
        Err(e) => ArtifactRow {
            file: path.into(),
            benchmark: format!("(missing: {e})"),
            pass: None,
            note: Some(format!("missing: {e}")),
            ratios: Vec::new(),
            drifts: Vec::new(),
        },
    }
}

/// Which committed `BENCH_*.json` artifacts have no row in the README's
/// bench documentation: returns every artifact name that does not appear
/// verbatim anywhere in `readme`. Used by `bench_summary --check-readme`
/// so the README bench table cannot silently drift from the artifacts
/// actually in the repository.
pub fn readme_missing_rows(readme: &str, artifacts: &[String]) -> Vec<String> {
    artifacts
        .iter()
        .filter(|a| !readme.contains(a.as_str()))
        .cloned()
        .collect()
}

/// Render rows as the markdown table the CI job prints.
pub fn render_markdown(rows: &[ArtifactRow]) -> String {
    let mut out = String::new();
    out.push_str("| artifact | benchmark | pass | speedup ratios | drift gauge |\n");
    out.push_str("|---|---|---|---|---|\n");
    for row in rows {
        let ratio_cell = if row.ratios.is_empty() {
            "—".to_string()
        } else {
            row.ratios
                .iter()
                .map(|(k, v)| match v {
                    Some(v) => format!("{k} {v:.2}x"),
                    None => format!("{k} n/a"),
                })
                .collect::<Vec<_>>()
                .join(", ")
        };
        let drift_cell = if row.drifts.is_empty() {
            "—".to_string()
        } else {
            row.drifts
                .iter()
                .map(|(k, v)| match v {
                    Some(v) => format!("{k} {v:.3}"),
                    None => format!("{k} n/a"),
                })
                .collect::<Vec<_>>()
                .join(", ")
        };
        let pass_cell = match (row.pass, &row.note) {
            (_, Some(_)) => "?",
            (Some(true), _) => "✅",
            (Some(false), _) => "❌",
            (None, _) => "—",
        };
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} |\n",
            row.file, row.benchmark, pass_cell, ratio_cell, drift_cell
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_file_degrades_to_note_row() {
        let row = summarize_path("/nonexistent/BENCH_htap.json");
        assert!(row.note.as_deref().unwrap_or("").starts_with("missing"));
        assert!(row.failing());
        let table = render_markdown(&[row]);
        assert!(table.contains("| ? |"), "{table}");
    }

    #[test]
    fn unparsable_json_degrades_to_note_row() {
        let row = summarize_text("BENCH_bad.json", "{not json");
        assert!(row.note.is_some());
        assert!(row.failing());
    }

    #[test]
    fn missing_keys_render_na_not_panic() {
        // No benchmark, no pass, a ratio recorded as the "n/a" marker, and
        // a non-finite ratio: all must land in the table as n/a.
        let row = summarize_text(
            "BENCH_x.json",
            r#"{"htap_speedup": "n/a", "scan_ratio": null}"#,
        );
        assert_eq!(row.benchmark, "?");
        assert_eq!(row.pass, None);
        assert!(!row.failing());
        assert_eq!(
            row.ratios,
            vec![
                ("htap_speedup".to_string(), None),
                ("scan_ratio".to_string(), None)
            ]
        );
        let table = render_markdown(&[row]);
        assert!(table.contains("htap_speedup n/a"), "{table}");
    }

    #[test]
    fn ratios_and_pass_flow_through() {
        let row = summarize_text(
            "BENCH_htap.json",
            r#"{"benchmark": "htap", "pass": true,
                "measured": {"vs_row_speedup": 1.5, "vs_col_speedup": 2.0},
                "notes": "no ratio here"}"#,
        );
        assert_eq!(row.benchmark, "htap");
        assert_eq!(row.pass, Some(true));
        assert!(!row.failing());
        assert_eq!(row.ratios.len(), 2);
        assert!(render_markdown(&[row]).contains("1.50x"));
    }

    #[test]
    fn drift_gauges_get_their_own_column() {
        let row = summarize_text(
            "BENCH_adaptive.json",
            r#"{"benchmark": "adaptive_costmodel", "pass": true,
                "adaptive_speedup": 2.5,
                "static_model_drift": 1.261,
                "self_calibrating_drift": 0.108,
                "arms": [{"arm": "static", "drift": 1.261}]}"#,
        );
        assert_eq!(
            row.ratios,
            vec![("adaptive_speedup".to_string(), Some(2.5))]
        );
        assert_eq!(
            row.drifts,
            vec![
                ("arms[0].drift".to_string(), Some(1.261)),
                ("self_calibrating_drift".to_string(), Some(0.108)),
                ("static_model_drift".to_string(), Some(1.261)),
            ]
        );
        let table = render_markdown(&[row]);
        assert!(table.contains("| drift gauge |"), "{table}");
        assert!(table.contains("self_calibrating_drift 0.108"), "{table}");
        assert!(table.contains("adaptive_speedup 2.50x"), "{table}");
    }

    #[test]
    fn explicit_fail_is_failing() {
        let row = summarize_text("BENCH_y.json", r#"{"benchmark": "y", "pass": false}"#);
        assert!(row.failing());
        assert!(render_markdown(&[row]).contains("❌"));
    }

    #[test]
    fn readme_check_flags_undocumented_artifacts() {
        let readme = "## Benchmarks\n\
                      | `BENCH_scan.json` | batched vs scalar |\n\
                      | `BENCH_tiering.json` | tiered recovery |\n";
        let artifacts = vec![
            "BENCH_scan.json".to_string(),
            "BENCH_tiering.json".to_string(),
            "BENCH_newthing.json".to_string(),
        ];
        assert_eq!(
            readme_missing_rows(readme, &artifacts),
            vec!["BENCH_newthing.json".to_string()]
        );
        assert!(readme_missing_rows(readme, &artifacts[..2]).is_empty());
    }

    #[test]
    fn derived_throughput_ratios_group_by_leading_token() {
        let row = summarize_text(
            "BENCH_scan.json",
            r#"{"results": [
                {"name": "unselective_scalar", "rows_per_sec": 100.0},
                {"name": "unselective_block", "rows_per_sec": 400.0}
            ]}"#,
        );
        assert_eq!(
            row.ratios,
            vec![("unselective best/baseline".to_string(), Some(4.0))]
        );
    }
}
