//! Figure 10: **combination and comparison** on the TPC-H scenario.
//!
//! Four configurations run the same 5000-query, ~1 %-OLAP mixed workload:
//! (i) all tables in the row store, (ii) all tables in the column store,
//! (iii) the advisor's table-level layout, (iv) the advisor's layout with
//! horizontal and vertical partitioning. Paper result: Table ≈ −40 % and
//! Partitioned ≈ −65 % vs. the single-store baselines.

use std::collections::BTreeMap;

use hsd_bench::{calibrated_model, fmt_s, print_series, scale};
use hsd_catalog::StorageLayout;
use hsd_core::{report, StorageAdvisor};
use hsd_engine::{mover, HybridDatabase, WorkloadRunner};
use hsd_storage::StoreKind;
use hsd_tpch::{generate_workload, TpchGenerator, TpchWorkloadConfig};
use hsd_types::Result;

fn load_with_layout(g: &TpchGenerator, layout: Option<&StorageLayout>) -> Result<HybridDatabase> {
    // Load uniformly into the row store first, then let the mover rebuild
    // whatever the layout demands (this splits horizontal partitions
    // correctly instead of routing the bulk load to the hot partition).
    let db = HybridDatabase::new();
    g.load_uniform(&db, StoreKind::Row)?;
    if let Some(layout) = layout {
        mover::apply_layout(&db, layout)?;
    }
    Ok(db)
}

/// Median-of-repeats runs on freshly loaded databases (the paper averages
/// "over several runs"; a fresh load per run keeps mutations comparable).
fn run_repeated(
    runner: &WorkloadRunner,
    workload: &hsd_query::Workload,
    mut fresh: impl FnMut() -> Result<HybridDatabase>,
) -> Result<Vec<f64>> {
    let repeats: usize = std::env::var("HSD_REPEATS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let mut secs = Vec::with_capacity(repeats);
    for _ in 0..repeats.max(1) {
        let db = fresh()?;
        secs.push(runner.run(&db, workload)?.total.as_secs_f64());
    }
    Ok(secs)
}

fn main() -> Result<()> {
    let sf = scale();
    let model = calibrated_model()?;
    let g = TpchGenerator::new(sf, 0x7C);
    let cfg = TpchWorkloadConfig {
        queries: 5_000,
        olap_fraction: 0.01,
        ..Default::default()
    };
    let workload = generate_workload(&g, &cfg);
    let runner = WorkloadRunner::new();
    println!(
        "TPC-H scale factor {sf} (orders={}, lineitem={}), {} queries, {:.1}% OLAP",
        g.orders(),
        g.lineitems(),
        workload.len(),
        workload.olap_fraction() * 100.0
    );

    // Baselines.
    let mut results: Vec<(String, f64)> = Vec::new();
    let mut stats_snapshot: Option<BTreeMap<String, hsd_catalog::TableStats>> = None;
    for (name, store) in [("RS only", StoreKind::Row), ("CS only", StoreKind::Column)] {
        let db = HybridDatabase::new();
        g.load_uniform(&db, store)?;
        if stats_snapshot.is_none() {
            stats_snapshot = Some(
                db.catalog()
                    .entries()
                    .iter()
                    .map(|e| (e.schema.name.clone(), e.stats.clone()))
                    .collect(),
            );
        }
        let mut secs = run_repeated(&runner, &workload, || {
            let db = HybridDatabase::new();
            g.load_uniform(&db, store)?;
            Ok(db)
        })?;
        secs.insert(0, runner.run(&db, &workload)?.total.as_secs_f64());
        secs.sort_by(f64::total_cmp);
        results.push((name.to_string(), secs[secs.len() / 2]));
    }
    let stats = stats_snapshot.expect("captured from first load");
    let schemas: Vec<_> = hsd_tpch::schema::all()?
        .into_iter()
        .map(std::sync::Arc::new)
        .collect();
    let advisor = StorageAdvisor::new(model);

    // (iii) table-level recommendation.
    let rec_table = advisor.recommend_offline(&schemas, &stats, &workload, false)?;
    println!("\n--- table-level recommendation ---");
    print!("{}", report::render(&rec_table));
    let mut secs = run_repeated(&runner, &workload, || {
        load_with_layout(&g, Some(&rec_table.layout))
    })?;
    secs.sort_by(f64::total_cmp);
    results.push(("Table".to_string(), secs[secs.len() / 2]));

    // (iv) partitioned recommendation.
    let rec_part = advisor.recommend_offline(&schemas, &stats, &workload, true)?;
    println!("\n--- partitioned recommendation ---");
    print!("{}", report::render(&rec_part));
    let mut secs = run_repeated(&runner, &workload, || {
        load_with_layout(&g, Some(&rec_part.layout))
    })?;
    secs.sort_by(f64::total_cmp);
    results.push(("Partitioned".to_string(), secs[secs.len() / 2]));

    let rows_out: Vec<Vec<String>> = results
        .iter()
        .map(|(n, s)| vec![n.clone(), fmt_s(*s)])
        .collect();
    print_series(
        "Figure 10: comparison of decisions on different levels (TPC-H mixed workload)",
        &["configuration", "runtime (s)"],
        &rows_out,
    );
    let rs = results[0].1;
    let cs = results[1].1;
    let table = results[2].1;
    let part = results[3].1;
    println!(
        "Table vs best single store : {:+.1} %",
        100.0 * (table - rs.min(cs)) / rs.min(cs)
    );
    println!(
        "Partitioned vs Table       : {:+.1} %",
        100.0 * (part - table) / table
    );
    println!(
        "Partitioned vs CS only     : {:+.1} %",
        100.0 * (part - cs) / cs
    );
    Ok(())
}
